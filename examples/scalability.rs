//! Scalability study (the paper's Figure 12): EquiNox vs the separate-
//! network baseline on 8×8, 12×12 and 16×16 meshes. Larger meshes have a
//! harsher few-to-many ratio (more PEs per CB), so the injection
//! bottleneck — and EquiNox's benefit — grows with size.
//!
//! ```text
//! cargo run --release --example scalability     # ~a minute in release
//! ```

use equinox_core::{EquiNoxDesign, SchemeKind, System, SystemConfig};
use equinox_traffic::{profile::benchmark, Workload};

fn main() {
    let profile = benchmark("kmeans").expect("kmeans in suite");
    for n in [8u16, 12, 16] {
        // One design per size (8 CBs throughout, per Table 1 — for n > 8
        // the redundant N-Queen rows are deleted, §6.8).
        let design = EquiNoxDesign::search(n, 8, 800, 7);
        let mut ipcs = Vec::new();
        for scheme in [SchemeKind::SeparateBase, SchemeKind::EquiNox] {
            let workload = Workload::new(profile, 0.2, 42);
            let mut cfg = SystemConfig::new(scheme, n, workload);
            cfg.design = Some(design.clone());
            let m = System::build(cfg).run();
            ipcs.push((scheme, m.ipc, m.cycles));
        }
        let speedup = ipcs[1].1 / ipcs[0].1;
        println!(
            "{n:2}x{n:<2}  SeparateBase {:>7} cycles | EquiNox {:>7} cycles | IPC gain {speedup:.2}x  ({} EIR links)",
            ipcs[0].2, ipcs[1].2, design.num_links()
        );
    }
    println!("\nPaper reports 1.23x / 1.31x / 1.30x — the gain holds or grows with size.");
}
