//! Head-to-head of the paper's seven schemes on a network-bound and a
//! compute-bound benchmark (the two extremes of Figure 9's spectrum).
//!
//! ```text
//! cargo run --release --example compare_schemes
//! ```

use equinox_core::{SchemeKind, System, SystemConfig};
use equinox_traffic::{profile::benchmark, Workload};

fn main() {
    for bench in ["kmeans", "gaussian"] {
        println!("== {bench} ==");
        let profile = benchmark(bench).expect("benchmark in suite");
        let mut baseline = None;
        for scheme in SchemeKind::ALL {
            let workload = Workload::new(profile, 0.25, 42);
            let cfg = SystemConfig::new(scheme, 8, workload);
            let m = System::build(cfg).run();
            let base = *baseline.get_or_insert(m.exec_ns);
            println!(
                "  {:18} exec {:>6.0} ns ({:>5.3}x) | reply lat {:5.1} ns | request lat {:6.1} ns",
                scheme.name(),
                m.exec_ns,
                m.exec_ns / base,
                m.latency.reply_ns(),
                m.latency.request_ns(),
            );
        }
        println!();
    }
    println!("Network-bound workloads separate the schemes; compute-bound ones barely do —");
    println!("exactly the spread the paper's Figure 9 shows across its 29 benchmarks.");
}
