//! Design-space exploration: walk the paper's §4 pipeline step by step —
//! N-Queen enumeration, hot-zone scoring, MCTS EIR selection, and the
//! physical checks (crossings, RDL layers, µbumps) — printing what each
//! stage decides.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use equinox_core::EquiNoxDesign;
use equinox_mcts::eval::{evaluate, EvalWeights};
use equinox_mcts::problem::EirProblem;
use equinox_mcts::{ga, sa, tree};
use equinox_phys::segment::count_crossings;
use equinox_placement::nqueen::{solutions, to_placement};
use equinox_placement::PlacementScorer;

fn main() {
    // --- Stage 1: N-Queen placement candidates (§4.2) ---
    let sols = solutions(8);
    let scorer = PlacementScorer::new(8, 8);
    let mut scored: Vec<(u64, usize)> = sols
        .iter()
        .enumerate()
        .map(|(i, s)| (scorer.penalty(&to_placement(8, s, None).cbs), i))
        .collect();
    scored.sort();
    println!(
        "Stage 1 — N-Queen: {} solutions; hot-zone penalties {}..{} (best solution #{})",
        sols.len(),
        scored[0].0,
        scored.last().unwrap().0,
        scored[0].1
    );

    // --- Stage 2: MCTS EIR selection (§4.3), with GA/SA for contrast ---
    let placement = to_placement(8, &sols[scored[0].1], None);
    let problem = EirProblem::new(placement.clone());
    let weights = EvalWeights::default();
    let mcts = tree::search(
        &problem,
        &tree::MctsConfig {
            iterations: 1_500,
            seed: 1,
            ..Default::default()
        },
    );
    let ga_r = ga::search(&problem, &ga::GaConfig { seed: 1, ..Default::default() });
    let sa_r = sa::search(&problem, &sa::SaConfig { seed: 1, ..Default::default() });
    println!("Stage 2 — search (cost lower = better):");
    for (name, r) in [("MCTS", &mcts), ("GA", &ga_r), ("SA", &sa_r)] {
        println!(
            "  {name:5} cost {:7.3} | crossings {:2} | {} EIRs | {} evaluations",
            r.eval.cost,
            r.eval.crossings,
            r.selection.total_eirs(),
            r.evaluations
        );
    }

    // --- Stage 3: physical viability (§3.2.3) ---
    let design = EquiNoxDesign {
        placement,
        selection: mcts.selection.clone(),
    };
    let segs = design.segments();
    let ev = evaluate(&problem, &design.selection, &weights);
    println!("Stage 3 — physical checks on the MCTS design:");
    println!(
        "  {} interposer links | {} crossings | {} RDL layer(s) | {} µbumps | avg hops {:.2}",
        design.num_links(),
        count_crossings(&segs),
        design.rdl_layers(),
        design.ubump_count(128),
        ev.avg_hops
    );
    println!(
        "  every wire single-cycle on a passive interposer: {}",
        problem.wire.all_single_cycle(&segs)
    );
}
