//! The classic NoC load–latency sweep on the reply network: where does
//! the few-to-many injection path saturate, and how far do EquiNox's
//! EIRs push the knee?
//!
//! ```text
//! cargo run --release --example load_latency
//! ```

use equinox_suite::core::loadlat::{load_latency_curve, ReplySide};
use equinox_suite::core::EquiNoxDesign;

fn main() {
    let design = EquiNoxDesign::search_k(8, 8, 800, 7, 2);
    let rates = [0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0];
    println!("offered (pkts/CB/cyc) |  baseline lat (cyc) thr (flits/cyc) |  EquiNox lat thr");
    let base = load_latency_curve(&design.placement, &ReplySide::Local, &rates, 6_000, 1);
    let eq = load_latency_curve(
        &design.placement,
        &ReplySide::Equinox(design.clone()),
        &rates,
        6_000,
        1,
    );
    for (b, e) in base.iter().zip(&eq) {
        println!(
            "            {:>5.2}     |   {:>8.1}      {:>6.2}          |  {:>8.1} {:>6.2}",
            b.offered, b.latency, b.throughput, e.latency, e.throughput
        );
    }
    println!(
        "\nThe baseline saturates at ~1 flit/cycle/CB; the EIRs roughly double the\nsustainable injection bandwidth and keep latency flat far past the old knee."
    );
}
