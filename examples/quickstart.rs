//! Quickstart: design an EquiNox NoC for an 8×8 interposer GPU and run
//! one benchmark on it, next to the separate-network baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use equinox_core::{SchemeKind, System, SystemConfig};
use equinox_traffic::{profile::benchmark, Workload};

fn main() {
    // A benchmark profile from the paper's suite (Rodinia's kmeans is the
    // most network-hungry one) at a laptop-friendly scale.
    let profile = benchmark("kmeans").expect("kmeans is in the suite");
    let workload = Workload::new(profile, 0.25, 42);

    println!("designing + simulating — a few seconds in release mode…\n");
    for scheme in [SchemeKind::SeparateBase, SchemeKind::EquiNox] {
        let cfg = SystemConfig::new(scheme, 8, workload);
        let mut system = System::build(cfg);
        if scheme == SchemeKind::EquiNox {
            println!("EquiNox CB placement (N-Queen):\n{}", system.placement);
        }
        let m = system.run();
        println!(
            "{:14} {:>7} cycles | IPC {:5.2} | energy {:.2e} J | EDP {:.2e} Js | reply bits {:.1}%",
            m.scheme.name(),
            m.cycles,
            m.ipc,
            m.energy_j(),
            m.edp,
            m.reply_bit_fraction * 100.0
        );
    }
    println!("\nEquiNox turns the few-to-many reply injection into many-to-many;");
    println!("run `cargo run --release -p equinox-bench --bin repro -- all` for every figure.");
}
