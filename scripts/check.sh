#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and a performance
# regression check against the committed BENCH_perf.json baseline.
#
#   scripts/check.sh
#
# The perf check compares the single-simulation cycle rate (the hot-loop
# figure of merit) with a tolerance band, CHECK_TOLERANCE_PCT percent
# (default 10). Baselines are machine-specific: on new hardware,
# regenerate with `./target/release/perf > BENCH_perf.json` first, or
# skip the comparison with EQUINOX_SKIP_PERF=1.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== env-mutation guard =="
# Configuration flows by value through the equinox-config spec; nothing
# outside test code may mutate the process environment. (Tests may — the
# env fallback shims need coverage.)
if grep -rn "set_var(" --include='*.rs' crates/*/src src examples 2>/dev/null \
    | grep -vE ':[0-9]+: *(//|\*)'; then
  echo "FAIL: std::env::set_var outside tests — thread configuration through ExperimentSpec instead" >&2
  exit 1
fi
echo "OK: no set_var outside tests"

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== perf =="
# Default 3-rep best-of (not --quick): single-rep rates swing close to
# the tolerance band on a noisy box.
out=$(./target/release/perf 2>/dev/null)
echo "$out"

if [ "${EQUINOX_SKIP_PERF:-0}" = "1" ]; then
  echo "perf comparison skipped (EQUINOX_SKIP_PERF=1)"
  exit 0
fi

rate=$(echo "$out" | sed -n 's/.*"single_cycles_per_sec": \([0-9]*\).*/\1/p')
base=$(sed -n 's/.*"single_cycles_per_sec": \([0-9]*\).*/\1/p' BENCH_perf.json)
if [ -z "$rate" ] || [ -z "$base" ]; then
  echo "FAIL: could not parse single_cycles_per_sec from perf output or BENCH_perf.json" >&2
  exit 1
fi
tol=${CHECK_TOLERANCE_PCT:-10}
min=$(( base * (100 - tol) / 100 ))
if [ "$rate" -lt "$min" ]; then
  echo "FAIL: single-sim rate $rate cycles/s is more than ${tol}% below baseline $base" >&2
  echo "      (machine-specific baseline; regenerate with ./target/release/perf > BENCH_perf.json)" >&2
  exit 1
fi
echo "OK: single-sim rate $rate cycles/s vs baseline $base (floor $min)"
