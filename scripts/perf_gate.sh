#!/usr/bin/env bash
# CI perf regression gate: runs the `perf` binary at reduced scale and
# enforces two bounds on the reported rates.
#
#   1. `single_cycles_per_sec` must reach at least PERF_GATE_MIN_PCT% of
#      the checked-in BENCH_perf.json baseline. Baselines are
#      machine-specific (see scripts/check.sh), so the default band is
#      deliberately wide — it catches catastrophic hot-loop regressions
#      (an accidental allocation in Network::step, quadratic bookkeeping),
#      not noise or runner-speed differences. For a same-machine
#      comparison with a tight band, use scripts/check.sh instead.
#
#   2. `low_load_cycles_per_sec` must be at least PERF_GATE_RATIO× the
#      `single_cycles_per_sec` measured in the same run. The ratio cancels
#      machine speed entirely: with activity-gated stepping working, the
#      low-load load–latency point steps >10× faster than the saturated
#      hot loop (measured ~18×), while the exhaustive sweep manages only
#      ~3.5×. A broken, disabled, or regressed gate fails this bound on
#      any hardware.
#
#   3. `sim_thread_speedup` (saturated DA2Mesh at sim-threads=4 vs 1)
#      must reach PERF_GATE_SIM_RATIO on machines with at least 4 cores.
#      Like bound 2 this is a within-run ratio, so it is machine-speed
#      independent; it is skipped (with a notice) when the runner has
#      fewer than 4 cores, where a 4-lane team cannot physically scale.
#
#   4. `cached_sweep_speedup` (the quick repro sweep served from the
#      content-addressed result cache vs computed) must reach
#      PERF_GATE_CACHE_RATIO. Another within-run ratio: replaying
#      finished RunMetrics from disk skips the simulation entirely, so a
#      healthy cache beats the computed sweep by orders of magnitude
#      (measured >100x); the conservative floor only trips when caching
#      silently stops hitting.
#
#   5. `single_cycles_per_sec / obs_on_cycles_per_sec` (the obs-off vs
#      obs-on cost of the same saturated hot loop) must stay at or below
#      PERF_GATE_OBS_RATIO. Within-run and machine-independent: the full
#      observability layer — registry sampling plus per-router stall
#      attribution — is designed to cost one branch per event when off
#      and bounded counter arithmetic when on (measured ~3-12% overhead).
#      The 2x ceiling only trips when instrumentation grows a per-event
#      allocation or a hot-loop scan.
#
# Usage: scripts/perf_gate.sh
# Env:   PERF_GATE_MIN_PCT (default 40), PERF_GATE_RATIO (default 6),
#        PERF_GATE_SIM_RATIO (default 1.5), PERF_GATE_CACHE_RATIO
#        (default 3), PERF_GATE_OBS_RATIO (default 2.0),
#        PERF_GATE_SCALE (default 0.15)

set -euo pipefail
cd "$(dirname "$0")/.."

MIN_PCT="${PERF_GATE_MIN_PCT:-40}"
RATIO="${PERF_GATE_RATIO:-6}"
SIM_RATIO="${PERF_GATE_SIM_RATIO:-1.5}"
CACHE_RATIO="${PERF_GATE_CACHE_RATIO:-3}"
OBS_RATIO="${PERF_GATE_OBS_RATIO:-2.0}"
SCALE="${PERF_GATE_SCALE:-0.15}"

if [ ! -x target/release/perf ]; then
    echo "perf_gate: target/release/perf missing — run cargo build --release first" >&2
    exit 1
fi

out=$(./target/release/perf --quick --scale "$SCALE" 2>/dev/null)
echo "$out"

single=$(echo "$out" | sed -n 's/.*"single_cycles_per_sec": \([0-9]*\).*/\1/p')
low=$(echo "$out" | sed -n 's/.*"low_load_cycles_per_sec": \([0-9]*\).*/\1/p')
base=$(sed -n 's/.*"single_cycles_per_sec": \([0-9]*\).*/\1/p' BENCH_perf.json)

if [ -z "$single" ] || [ -z "$low" ] || [ -z "$base" ]; then
    echo "perf_gate: failed to parse rates (single='$single' low='$low' base='$base')" >&2
    exit 1
fi

min=$((base * MIN_PCT / 100))
if [ "$single" -lt "$min" ]; then
    echo "perf_gate: FAIL — single_cycles_per_sec $single < ${MIN_PCT}% of baseline $base ($min)" >&2
    exit 1
fi

floor=$((single * RATIO))
if [ "$low" -lt "$floor" ]; then
    echo "perf_gate: FAIL — low_load_cycles_per_sec $low < ${RATIO}x single rate $single ($floor): activity gating regressed" >&2
    exit 1
fi

speedup=$(echo "$out" | sed -n 's/.*"sim_thread_speedup": \([0-9.]*\).*/\1/p')
cores=$(echo "$out" | sed -n 's/.*"cores": \([0-9]*\).*/\1/p')
if [ -z "$speedup" ] || [ -z "$cores" ]; then
    echo "perf_gate: failed to parse sim-thread fields (speedup='$speedup' cores='$cores')" >&2
    exit 1
fi
if [ "$cores" -ge 4 ]; then
    if ! awk -v s="$speedup" -v r="$SIM_RATIO" 'BEGIN { exit !(s >= r) }'; then
        echo "perf_gate: FAIL — sim_thread_speedup ${speedup}x < ${SIM_RATIO}x on a ${cores}-core runner: intra-run parallelism regressed" >&2
        exit 1
    fi
    sim_note="sim-thread speedup ${speedup}x >= ${SIM_RATIO}x"
else
    sim_note="sim-thread speedup check skipped (${cores} cores < 4; measured ${speedup}x)"
fi

cache_speedup=$(echo "$out" | sed -n 's/.*"cached_sweep_speedup": \([0-9.]*\).*/\1/p')
if [ -z "$cache_speedup" ]; then
    echo "perf_gate: failed to parse cached_sweep_speedup" >&2
    exit 1
fi
if ! awk -v s="$cache_speedup" -v r="$CACHE_RATIO" 'BEGIN { exit !(s >= r) }'; then
    echo "perf_gate: FAIL — cached_sweep_speedup ${cache_speedup}x < ${CACHE_RATIO}x: result cache regressed" >&2
    exit 1
fi

obs_on=$(echo "$out" | sed -n 's/.*"obs_on_cycles_per_sec": \([0-9]*\).*/\1/p')
if [ -z "$obs_on" ] || [ "$obs_on" -eq 0 ]; then
    echo "perf_gate: failed to parse obs_on_cycles_per_sec (got '$obs_on')" >&2
    exit 1
fi
if ! awk -v s="$single" -v o="$obs_on" -v r="$OBS_RATIO" 'BEGIN { exit !(s / o <= r) }'; then
    echo "perf_gate: FAIL — obs-off/obs-on ratio $single/$obs_on exceeds ${OBS_RATIO}x: observability overhead regressed" >&2
    exit 1
fi

echo "perf_gate: OK — single $single >= $min (${MIN_PCT}% of $base), low-load $low >= ${RATIO}x single ($floor), $sim_note, cached sweep ${cache_speedup}x >= ${CACHE_RATIO}x, obs-on $obs_on within ${OBS_RATIO}x of obs-off"
