#![warn(missing_docs)]
//! `equinox-suite` — umbrella crate for the EquiNox reproduction.
//!
//! Re-exports every crate of the workspace so examples and downstream
//! users can depend on one name:
//!
//! * [`core`] — the EquiNox system (schemes, NIs, simulation, metrics)
//! * [`noc`] — the cycle-accurate NoC simulator
//! * [`traffic`] — GPU traffic model and the 29 benchmark profiles
//! * [`hbm`] — the HBM stack model
//! * [`power`] — DSENT-style energy/area models
//! * [`placement`] — CB placement engines (N-Queen, Diamond, …)
//! * [`mcts`] — the EIR design-space search (MCTS, GA, SA)
//! * [`phys`] — interposer physics (wires, crossings, µbumps)
//! * [`exec`] — worker pool + deterministic PRNG streams
//! * [`obs`] — metrics registry, span profiler, trace export
//! * [`bench`] — experiment runners behind the repro binaries
//! * [`snap`] — snapshot codec + content-addressed checkpoint cache

pub use equinox_bench as bench;
pub use equinox_config as config;
pub use equinox_core as core;
pub use equinox_exec as exec;
pub use equinox_hbm as hbm;
pub use equinox_mcts as mcts;
pub use equinox_noc as noc;
pub use equinox_obs as obs;
pub use equinox_phys as phys;
pub use equinox_placement as placement;
pub use equinox_power as power;
pub use equinox_snap as snap;
pub use equinox_traffic as traffic;
