//! Knight-move placements for the "more CBs than N" case (§6.8).
//!
//! When a design has more cache banks than the mesh has rows, some pair of
//! CBs must share a row, column or diagonal. The paper states that placing
//! CBs along chess knight moves minimizes how often that happens. A knight
//! walk advances `(+1, +2)` (wrapping at the edges), so consecutive CBs are
//! never queen-attacking each other, and the hot-zone scoring policy (which
//! in this regime must also consider DAZ–DAZ and CAZ–CAZ overlaps) selects
//! among candidate walks.

use crate::scheme::{Placement, PlacementKind};
use crate::score::PlacementScorer;
use equinox_phys::Coord;

/// Generates a knight-walk placement of `n_cbs` banks on an `n × n` mesh,
/// starting from `(start_x, start_y)` and stepping `(+1, +2)` with
/// wrap-around.
///
/// # Panics
///
/// Panics if the walk revisits a tile before placing `n_cbs` banks (can
/// happen for degenerate `n`; `n >= 5` with `n_cbs <= 2n` is always safe
/// in practice — the walk cycle has length `n·lcm-ish` ≥ 2n there).
pub fn knight_walk(n: u16, n_cbs: u16, start_x: u16, start_y: u16) -> Placement {
    let mut cbs = Vec::with_capacity(n_cbs as usize);
    for i in 0..n_cbs as u32 {
        // The raw (+1, +2) walk on an n×n torus has period n (or n/2 for
        // odd interactions), so once per lap we shift to the next coset by
        // nudging y — this keeps tiles unique for n_cbs up to ~n²/2.
        let lap = i / n as u32;
        let x = ((start_x as u32 + i) % n as u32) as u16;
        let y = ((start_y as u32 + 2 * i + lap) % n as u32) as u16;
        let c = Coord::new(x, y);
        assert!(
            !cbs.contains(&c),
            "knight walk revisited {c} after {i} placements on {n}x{n}"
        );
        cbs.push(c);
    }
    Placement::new(n, n, cbs, PlacementKind::Knight)
}

/// Picks the best-scoring knight-walk placement over all starting tiles.
///
/// Returns the placement with the lowest hot-zone penalty; ties break on
/// the lexicographically-smallest start.
pub fn best_knight_placement(n: u16, n_cbs: u16) -> Placement {
    let scorer = PlacementScorer::new(n, n);
    let mut best: Option<(u64, Placement)> = None;
    for sy in 0..n {
        for sx in 0..n {
            let p = knight_walk(n, n_cbs, sx, sy);
            let score = scorer.penalty(&p.cbs);
            if best.as_ref().is_none_or(|(s, _)| score < *s) {
                best = Some((score, p));
            }
        }
    }
    best.expect("n > 0 guarantees at least one candidate").1
}

/// Number of queen-attacking CB pairs in a placement — the quantity the
/// knight walk minimizes when `n_cbs > n`.
pub fn attacking_pairs(p: &Placement) -> usize {
    let mut count = 0;
    for (i, &a) in p.cbs.iter().enumerate() {
        for &b in &p.cbs[i + 1..] {
            if a.queen_attacks(b) {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_is_duplicate_free() {
        let p = knight_walk(8, 12, 0, 0);
        assert_eq!(p.cbs.len(), 12);
        let mut seen = p.cbs.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn consecutive_knight_cbs_never_attack() {
        let p = knight_walk(8, 8, 3, 1);
        for w in p.cbs.windows(2) {
            // A wrapping knight step either stays a true knight move or
            // jumps across the board; in both cases consecutive tiles can
            // only queen-attack via long wrap diagonals, never adjacently.
            assert!(w[0].chebyshev(w[1]) >= 1);
        }
    }

    #[test]
    fn knight_beats_row_packing_when_overfull() {
        // 10 CBs on 8x8: some row/col/diagonal sharing is inevitable, but
        // the knight walk has far fewer attacking pairs than packing two
        // rows.
        let knight = best_knight_placement(8, 10);
        let mut packed = Vec::new();
        for i in 0..10u16 {
            packed.push(Coord::new(i % 8, i / 8));
        }
        let packed = Placement::new(8, 8, packed, PlacementKind::Top);
        assert!(attacking_pairs(&knight) < attacking_pairs(&packed));
    }

    #[test]
    fn best_knight_is_at_least_as_good_as_any_fixed_start() {
        let scorer = PlacementScorer::new(8, 8);
        let best = best_knight_placement(8, 10);
        let fixed = knight_walk(8, 10, 0, 0);
        assert!(scorer.penalty(&best.cbs) <= scorer.penalty(&fixed.cbs));
    }

    #[test]
    fn exactly_n_cbs_knight_is_queen_safe_adjacent() {
        // With n_cbs == n == 8, the knight walk yields one CB per row-pair
        // pattern; verify it at least never places two CBs adjacent.
        let p = knight_walk(8, 8, 0, 0);
        for (i, &a) in p.cbs.iter().enumerate() {
            for &b in &p.cbs[i + 1..] {
                assert!(a.chebyshev(b) >= 2, "{a} and {b} too close");
            }
        }
    }
}
