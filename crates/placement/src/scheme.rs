//! The placement data type and the classic reference placements.
//!
//! Top, Side, Diagonal and Diamond were proposed for all-to-all CPU traffic
//! (Abts et al. \[21\]); the paper's Figure 4 analyzes them on the reply
//! network of a throughput processor to motivate the N-Queen placement.

use equinox_phys::Coord;
use std::fmt;

/// Which placement family a [`Placement`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementKind {
    /// All CBs along the top row — maximal row alignment (worst case).
    Top,
    /// CBs split between the west and east edge columns.
    Side,
    /// CBs along the main diagonal.
    Diagonal,
    /// Diamond lattice: `x ≡ y + n/2 (mod n)` — one CB per row and column,
    /// with runs of diagonally-adjacent CBs (the property §4.2 criticizes).
    Diamond,
    /// N-Queen based placement (§4.2): no shared row, column or diagonal.
    NQueen,
    /// Knight-move placement for more CBs than rows (§6.8).
    Knight,
}

impl fmt::Display for PlacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PlacementKind::Top => "Top",
            PlacementKind::Side => "Side",
            PlacementKind::Diagonal => "Diagonal",
            PlacementKind::Diamond => "Diamond",
            PlacementKind::NQueen => "N-Queen",
            PlacementKind::Knight => "Knight",
        };
        f.write_str(s)
    }
}

/// A concrete assignment of cache banks to tiles on a `width × height`
/// mesh. Tiles not listed in `cbs` hold processing elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Mesh width in tiles.
    pub width: u16,
    /// Mesh height in tiles.
    pub height: u16,
    /// Cache-bank tiles, in memory-controller order.
    pub cbs: Vec<Coord>,
    /// The family this placement belongs to.
    pub kind: PlacementKind,
}

impl Placement {
    /// Creates a placement after validating that every CB is on the grid
    /// and no two CBs share a tile.
    ///
    /// # Panics
    ///
    /// Panics if a CB falls outside the grid or two CBs coincide.
    pub fn new(width: u16, height: u16, cbs: Vec<Coord>, kind: PlacementKind) -> Self {
        for (i, c) in cbs.iter().enumerate() {
            assert!(
                c.x < width && c.y < height,
                "CB {i} at {c} outside {width}x{height} grid"
            );
            assert!(
                !cbs[..i].contains(c),
                "duplicate CB position {c}"
            );
        }
        Placement {
            width,
            height,
            cbs,
            kind,
        }
    }

    /// Number of tiles in the mesh.
    pub fn num_tiles(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Number of PE tiles (total minus CBs).
    pub fn num_pes(&self) -> usize {
        self.num_tiles() - self.cbs.len()
    }

    /// `true` if `tile` hosts a cache bank.
    pub fn is_cb(&self, tile: Coord) -> bool {
        self.cbs.contains(&tile)
    }

    /// Index of the CB at `tile`, if any.
    pub fn cb_index(&self, tile: Coord) -> Option<usize> {
        self.cbs.iter().position(|&c| c == tile)
    }

    /// Iterator over all PE tiles in row-major order.
    pub fn pe_tiles(&self) -> impl Iterator<Item = Coord> + '_ {
        let (w, h) = (self.width, self.height);
        (0..h).flat_map(move |y| (0..w).map(move |x| Coord::new(x, y)))
            .filter(move |t| !self.is_cb(*t))
    }

    /// `true` if no two CBs share a row, column or diagonal — the N-Queen
    /// property (§4.2).
    pub fn is_queen_safe(&self) -> bool {
        for (i, &a) in self.cbs.iter().enumerate() {
            for &b in &self.cbs[i + 1..] {
                if a.queen_attacks(b) {
                    return false;
                }
            }
        }
        true
    }

    /// All CBs along the top row (`y = 0`). Requires `n_cbs <= width`.
    pub fn top(width: u16, height: u16, n_cbs: u16) -> Self {
        assert!(n_cbs <= width, "Top placement needs n_cbs <= width");
        // Spread evenly across the row.
        let cbs = (0..n_cbs)
            .map(|i| Coord::new(i * width / n_cbs, 0))
            .collect();
        Placement::new(width, height, cbs, PlacementKind::Top)
    }

    /// CBs split between the west (`x = 0`) and east (`x = width-1`)
    /// edges, staggered by one row to avoid same-row pairs across edges.
    pub fn side(width: u16, height: u16, n_cbs: u16) -> Self {
        let half = n_cbs / 2;
        let mut cbs = Vec::with_capacity(n_cbs as usize);
        for i in 0..half {
            cbs.push(Coord::new(0, (2 * i) % height));
        }
        for i in 0..(n_cbs - half) {
            cbs.push(Coord::new(width - 1, (2 * i + 1) % height));
        }
        Placement::new(width, height, cbs, PlacementKind::Side)
    }

    /// CBs along the main diagonal, spread over the full grid.
    pub fn diagonal(width: u16, height: u16, n_cbs: u16) -> Self {
        let n = width.min(height);
        assert!(n_cbs <= n, "Diagonal placement needs n_cbs <= min(w,h)");
        let cbs = (0..n_cbs)
            .map(|i| {
                let p = i * n / n_cbs;
                Coord::new(p, p)
            })
            .collect();
        Placement::new(width, height, cbs, PlacementKind::Diagonal)
    }

    /// Diamond lattice placement: on an `n × n` grid, CB `y` sits at
    /// `x = (y + n/2) mod n` (rows spread over the grid when
    /// `n_cbs < n`). One CB per row and column, but consecutive CBs are
    /// diagonally adjacent — exactly the wiring hazard §4.2 points out.
    pub fn diamond(width: u16, height: u16, n_cbs: u16) -> Self {
        let n = width.min(height);
        assert!(n_cbs <= n, "Diamond placement needs n_cbs <= min(w,h)");
        let cbs = (0..n_cbs)
            .map(|i| {
                let y = i * n / n_cbs;
                let x = (y + n / 2) % n;
                Coord::new(x, y)
            })
            .collect();
        Placement::new(width, height, cbs, PlacementKind::Diamond)
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} placement on {}x{} ({} CBs):",
            self.kind,
            self.width,
            self.height,
            self.cbs.len()
        )?;
        for y in 0..self.height {
            for x in 0..self.width {
                let ch = if self.is_cb(Coord::new(x, y)) { 'C' } else { '.' };
                write!(f, "{ch} ")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_places_all_in_row_zero() {
        let p = Placement::top(8, 8, 8);
        assert_eq!(p.cbs.len(), 8);
        assert!(p.cbs.iter().all(|c| c.y == 0));
        assert!(!p.is_queen_safe());
    }

    #[test]
    fn side_places_on_edges() {
        let p = Placement::side(8, 8, 8);
        assert_eq!(p.cbs.len(), 8);
        assert!(p.cbs.iter().all(|c| c.x == 0 || c.x == 7));
    }

    #[test]
    fn diagonal_is_row_column_unique_but_diagonal_aligned() {
        let p = Placement::diagonal(8, 8, 8);
        for (i, &a) in p.cbs.iter().enumerate() {
            for &b in &p.cbs[i + 1..] {
                assert_ne!(a.x, b.x);
                assert_ne!(a.y, b.y);
            }
        }
        assert!(!p.is_queen_safe(), "diagonal CBs attack each other");
    }

    #[test]
    fn diamond_is_row_column_unique_with_diagonal_neighbors() {
        let p = Placement::diamond(8, 8, 8);
        for (i, &a) in p.cbs.iter().enumerate() {
            for &b in &p.cbs[i + 1..] {
                assert_ne!(a.x, b.x, "diamond must not share columns");
                assert_ne!(a.y, b.y, "diamond must not share rows");
            }
        }
        // The §4.2 hazard: at least one diagonally-adjacent CB pair.
        let has_diag_neighbors = p.cbs.iter().enumerate().any(|(i, &a)| {
            p.cbs[i + 1..].iter().any(|&b| a.chebyshev(b) == 1)
        });
        assert!(has_diag_neighbors);
    }

    #[test]
    fn pe_tiles_complement_cbs() {
        let p = Placement::diamond(8, 8, 8);
        assert_eq!(p.num_pes(), 56);
        assert_eq!(p.pe_tiles().count(), 56);
        assert!(p.pe_tiles().all(|t| !p.is_cb(t)));
    }

    #[test]
    fn cb_index_lookup() {
        let p = Placement::diagonal(8, 8, 8);
        assert_eq!(p.cb_index(Coord::new(0, 0)), Some(0));
        assert_eq!(p.cb_index(Coord::new(1, 0)), None);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_off_grid_cb() {
        let _ = Placement::new(4, 4, vec![Coord::new(4, 0)], PlacementKind::Top);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_cb() {
        let _ = Placement::new(
            4,
            4,
            vec![Coord::new(1, 1), Coord::new(1, 1)],
            PlacementKind::Top,
        );
    }

    #[test]
    fn larger_grids_supported() {
        for n in [12u16, 16] {
            let p = Placement::diamond(n, n, 8);
            assert_eq!(p.cbs.len(), 8);
            assert!(p.cbs.iter().all(|c| c.x < n && c.y < n));
        }
    }
}
