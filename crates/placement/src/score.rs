//! The hot-zone scoring policy (§4.2).
//!
//! The eight tiles surrounding a CB are its *hot zone*: the four direct
//! neighbours form the Direct Access Zone (DAZ, first hop of every injected
//! packet), the four diagonal neighbours the Corner Access Zone (CAZ,
//! likely second hop). When the hot zones of two CBs overlap, injection
//! traffic of both banks contends on the same tiles.
//!
//! The policy assigns each tile a penalty of `1 + 2 + … + m` where `m` is
//! the number of its four direct neighbours that are hot-zone *overlap*
//! tiles — a compounding penalty reflecting that congestion from multiple
//! overlaps multiplies queuing delay. The placement's score is the sum over
//! all tiles; **lower is better**.

use equinox_phys::Coord;

/// Which hot-zone class a tile belongs to for a given CB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneKind {
    /// Direct Access Zone — orthogonal neighbour of the CB.
    Daz,
    /// Corner Access Zone — diagonal neighbour of the CB.
    Caz,
}

/// Scores CB placements on a `width × height` mesh by hot-zone overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementScorer {
    width: u16,
    height: u16,
}

impl PlacementScorer {
    /// Creates a scorer for a `width × height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be nonzero");
        PlacementScorer { width, height }
    }

    /// For each tile, the list of `(cb_index, zone)` memberships.
    fn zone_map(&self, cbs: &[Coord]) -> Vec<Vec<(usize, ZoneKind)>> {
        let mut map = vec![Vec::new(); self.width as usize * self.height as usize];
        for (i, &cb) in cbs.iter().enumerate() {
            for t in cb.daz(self.width, self.height) {
                map[t.to_index(self.width)].push((i, ZoneKind::Daz));
            }
            for t in cb.caz(self.width, self.height) {
                map[t.to_index(self.width)].push((i, ZoneKind::Caz));
            }
        }
        map
    }

    /// Tiles that belong to the hot zones of two or more distinct CBs.
    ///
    /// In an N-Queen placement these are always DAZ–CAZ overlaps (DAZ–DAZ
    /// and CAZ–CAZ are geometrically impossible, §4.2); knight-move
    /// placements may produce the other kinds too (§6.8).
    pub fn overlap_tiles(&self, cbs: &[Coord]) -> Vec<Coord> {
        self.zone_map(cbs)
            .iter()
            .enumerate()
            .filter(|(_, members)| {
                let mut owners: Vec<usize> = members.iter().map(|&(i, _)| i).collect();
                owners.dedup();
                owners.sort_unstable();
                owners.dedup();
                owners.len() >= 2
            })
            .map(|(idx, _)| Coord::from_index(idx, self.width))
            .collect()
    }

    /// The penalty score of a placement: for every tile, if `m` of its four
    /// direct neighbours are overlap tiles, add `m·(m+1)/2`. Lower is
    /// better.
    ///
    /// ```
    /// # use equinox_placement::score::PlacementScorer;
    /// # use equinox_phys::Coord;
    /// let s = PlacementScorer::new(8, 8);
    /// // Far-apart CBs: no overlaps, zero penalty.
    /// assert_eq!(s.penalty(&[Coord::new(1, 1), Coord::new(6, 6)]), 0);
    /// // Hot zones overlapping: positive penalty.
    /// assert!(s.penalty(&[Coord::new(2, 2), Coord::new(4, 3)]) > 0);
    /// ```
    pub fn penalty(&self, cbs: &[Coord]) -> u64 {
        let overlaps = self.overlap_tiles(cbs);
        let mut is_overlap = vec![false; self.width as usize * self.height as usize];
        for t in &overlaps {
            is_overlap[t.to_index(self.width)] = true;
        }
        let mut total = 0u64;
        for y in 0..self.height {
            for x in 0..self.width {
                let t = Coord::new(x, y);
                let m = t
                    .daz(self.width, self.height)
                    .into_iter()
                    .filter(|n| is_overlap[n.to_index(self.width)])
                    .count() as u64;
                total += m * (m + 1) / 2;
            }
        }
        total
    }

    /// `true` if `tile` lies in the hot zone (DAZ or CAZ) of any CB.
    pub fn in_any_hot_zone(&self, cbs: &[Coord], tile: Coord) -> bool {
        cbs.iter().any(|cb| cb.chebyshev(tile) == 1)
    }

    /// Counts overlap tiles by the pair of zone kinds involved, returned as
    /// `(daz_daz, daz_caz, caz_caz)`. Used by the knight-placement analysis
    /// of §6.8 and to verify the N-Queen impossibility claim.
    pub fn overlap_kinds(&self, cbs: &[Coord]) -> (usize, usize, usize) {
        let map = self.zone_map(cbs);
        let (mut dd, mut dc, mut cc) = (0, 0, 0);
        for members in &map {
            let mut seen_pairs = (false, false, false);
            for (ai, &(cb_a, ka)) in members.iter().enumerate() {
                for &(cb_b, kb) in &members[ai + 1..] {
                    if cb_a == cb_b {
                        continue;
                    }
                    match (ka, kb) {
                        (ZoneKind::Daz, ZoneKind::Daz) => seen_pairs.0 = true,
                        (ZoneKind::Caz, ZoneKind::Caz) => seen_pairs.2 = true,
                        _ => seen_pairs.1 = true,
                    }
                }
            }
            if seen_pairs.0 {
                dd += 1;
            }
            if seen_pairs.1 {
                dc += 1;
            }
            if seen_pairs.2 {
                cc += 1;
            }
        }
        (dd, dc, cc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nqueen::{solutions, to_placement};
    use crate::scheme::Placement;

    #[test]
    fn isolated_cbs_have_zero_penalty() {
        let s = PlacementScorer::new(8, 8);
        assert_eq!(s.penalty(&[Coord::new(1, 1), Coord::new(5, 5)]), 0);
        assert!(s.overlap_tiles(&[Coord::new(1, 1), Coord::new(5, 5)]).is_empty());
    }

    #[test]
    fn adjacent_cbs_overlap_heavily() {
        let s = PlacementScorer::new(8, 8);
        let tight = s.penalty(&[Coord::new(3, 3), Coord::new(4, 3)]);
        let loose = s.penalty(&[Coord::new(2, 3), Coord::new(5, 3)]);
        assert!(tight > loose, "closer CBs must score worse: {tight} vs {loose}");
    }

    #[test]
    fn nqueen_has_no_dazdaz_or_cazcaz_overlaps() {
        // §4.2: "in N-Queen placement, it is not possible to have DAZ-DAZ
        // or CAZ-CAZ overlaps".
        let s = PlacementScorer::new(8, 8);
        for sol in solutions(8) {
            let p = to_placement(8, &sol, None);
            let (dd, _dc, cc) = s.overlap_kinds(&p.cbs);
            assert_eq!(dd, 0, "DAZ-DAZ overlap in {sol:?}");
            assert_eq!(cc, 0, "CAZ-CAZ overlap in {sol:?}");
        }
    }

    #[test]
    fn nqueen_beats_top_and_diamond() {
        let s = PlacementScorer::new(8, 8);
        let best_nq = solutions(8)
            .iter()
            .map(|sol| s.penalty(&to_placement(8, sol, None).cbs))
            .min()
            .unwrap();
        let top = s.penalty(&Placement::top(8, 8, 8).cbs);
        let diamond = s.penalty(&Placement::diamond(8, 8, 8).cbs);
        assert!(best_nq < diamond, "N-Queen {best_nq} !< Diamond {diamond}");
        assert!(best_nq < top, "N-Queen {best_nq} !< Top {top}");
    }

    #[test]
    fn compounding_penalty_example() {
        // A tile with two overlap neighbours contributes 1+2 = 3, not 2
        // (the paper's Figure 5 walk-through).
        let s = PlacementScorer::new(8, 8);
        // Construct CBs so overlap tiles can be pinpointed: CBs at (2,2)
        // and (4,4) share hot-zone tile (3,3).
        let cbs = [Coord::new(2, 2), Coord::new(4, 4)];
        let overlaps = s.overlap_tiles(&cbs);
        assert_eq!(overlaps, vec![Coord::new(3, 3)]);
        // Four tiles have (3,3) as a direct neighbour; each adds 1.
        assert_eq!(s.penalty(&cbs), 4);
    }

    #[test]
    fn hot_zone_membership() {
        let s = PlacementScorer::new(8, 8);
        let cbs = [Coord::new(3, 3)];
        assert!(s.in_any_hot_zone(&cbs, Coord::new(4, 4)));
        assert!(s.in_any_hot_zone(&cbs, Coord::new(3, 2)));
        assert!(!s.in_any_hot_zone(&cbs, Coord::new(3, 3)), "CB itself is not its hot zone");
        assert!(!s.in_any_hot_zone(&cbs, Coord::new(5, 3)));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_grid_rejected() {
        let _ = PlacementScorer::new(0, 8);
    }
}
