//! End-to-end placement selection (§4.2, §6.8).
//!
//! Given a mesh size and a CB count, produce the least-penalized placement:
//!
//! * `n_cbs == n` — score every N-Queen solution (up to a cap for large
//!   boards) and keep the best.
//! * `n_cbs < n` — per §6.8, generate N-Queen solutions, delete redundant
//!   queens (we delete evenly-spaced rows rather than randomly, which is
//!   deterministic and never worse), and score.
//! * `n_cbs > n` — fall back to the knight-move walk of [`crate::knight`].

use crate::knight::best_knight_placement;
use crate::nqueen::{solutions_limited, to_placement};
use crate::scheme::Placement;
use crate::score::PlacementScorer;

/// Deterministic sub-sampling of rows when fewer CBs than rows are needed:
/// rows are spread evenly across the board, which keeps the surviving
/// queens far apart.
fn spread_rows(n: u16, k: u16) -> Vec<u16> {
    (0..k).map(|i| i * n / k).collect()
}

/// Selects the best-scoring N-Queen-based placement of `n_cbs` cache banks
/// on an `n × n` mesh, examining at most `max_solutions` N-Queen solutions
/// (pass `usize::MAX` to examine all — fine for `n <= 12`).
///
/// `seed` reserves determinism knobs for future randomized row deletion; it
/// currently only breaks exact score ties by rotating the solution list,
/// so different seeds may return different (equally-scored) placements.
///
/// # Panics
///
/// Panics if no N-Queen solution exists for `n` (i.e. `n` in `{2, 3}`) and
/// `n_cbs <= n`, or if `n == 0`.
pub fn best_nqueen_placement(n: u16, n_cbs: u16, max_solutions: usize, seed: u64) -> Placement {
    assert!(n > 0, "mesh size must be nonzero");
    if n_cbs > n {
        return best_knight_placement(n, n_cbs);
    }
    let scorer = PlacementScorer::new(n, n);
    let sols = solutions_limited(n, max_solutions);
    assert!(
        !sols.is_empty(),
        "no N-Queen solutions exist for n = {n}; use a different mesh size"
    );
    let keep = if n_cbs < n {
        Some(spread_rows(n, n_cbs))
    } else {
        None
    };
    let rotate = (seed as usize) % sols.len();
    let mut best: Option<(u64, Placement)> = None;
    for i in 0..sols.len() {
        let sol = &sols[(i + rotate) % sols.len()];
        let p = to_placement(n, sol, keep.as_deref());
        let score = scorer.penalty(&p.cbs);
        if best.as_ref().is_none_or(|(s, _)| score < *s) {
            best = Some((score, p));
        }
    }
    best.expect("at least one solution scored").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nqueen::solutions;

    #[test]
    fn best_8x8_is_minimum_over_all_92() {
        let scorer = PlacementScorer::new(8, 8);
        let best = best_nqueen_placement(8, 8, usize::MAX, 0);
        let min = solutions(8)
            .iter()
            .map(|s| scorer.penalty(&to_placement(8, s, None).cbs))
            .min()
            .unwrap();
        assert_eq!(scorer.penalty(&best.cbs), min);
    }

    #[test]
    fn fewer_cbs_than_n() {
        let p = best_nqueen_placement(12, 8, 2000, 0);
        assert_eq!(p.cbs.len(), 8);
        assert!(p.is_queen_safe(), "deleting queens preserves safety");
    }

    #[test]
    fn more_cbs_than_n_uses_knight() {
        let p = best_nqueen_placement(8, 10, usize::MAX, 0);
        assert_eq!(p.cbs.len(), 10);
        assert_eq!(p.kind, crate::scheme::PlacementKind::Knight);
    }

    #[test]
    fn seed_changes_tie_breaking_but_not_score() {
        let scorer = PlacementScorer::new(8, 8);
        let a = best_nqueen_placement(8, 8, usize::MAX, 0);
        let b = best_nqueen_placement(8, 8, usize::MAX, 17);
        assert_eq!(scorer.penalty(&a.cbs), scorer.penalty(&b.cbs));
    }

    #[test]
    fn large_board_with_cap_terminates() {
        let p = best_nqueen_placement(16, 8, 500, 0);
        assert_eq!(p.cbs.len(), 8);
        assert!(p.is_queen_safe());
    }

    #[test]
    fn spread_rows_even() {
        assert_eq!(spread_rows(12, 8), vec![0, 1, 3, 4, 6, 7, 9, 10]);
        assert_eq!(spread_rows(8, 8), vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }
}
