//! N-Queen solution enumeration.
//!
//! The paper places CBs like queens on a chessboard so that no two share a
//! row, column or diagonal (§4.2): this simultaneously balances injection
//! traffic and keeps CB→EIR interposer wires from being forced to cross.
//! Solutions are not unique (92 for 8×8), so downstream code scores them
//! with the hot-zone policy and keeps the best.

use crate::scheme::{Placement, PlacementKind};
use equinox_phys::Coord;

/// Enumerates N-Queen solutions on an `n × n` board.
///
/// A solution is a vector `cols` where `cols[row]` is the queen's column in
/// `row`. Solutions are produced in lexicographic order of `cols`, up to
/// `limit` of them (use `usize::MAX` for all).
///
/// For `n = 8` there are exactly 92 solutions; for `n = 12` there are
/// 14,200. For `n = 16` (about 14.8M) pass a finite `limit`.
///
/// ```
/// # use equinox_placement::nqueen::solutions_limited;
/// assert_eq!(solutions_limited(6, usize::MAX).len(), 4);
/// assert_eq!(solutions_limited(8, 10).len(), 10);
/// ```
pub fn solutions_limited(n: u16, limit: usize) -> Vec<Vec<u16>> {
    let mut out = Vec::new();
    if n == 0 || limit == 0 {
        return out;
    }
    let n = n as usize;
    let mut cols = vec![0u16; n];
    let mut col_used = vec![false; n];
    let mut diag_used = vec![false; 2 * n - 1]; // row + col
    let mut anti_used = vec![false; 2 * n - 1]; // row - col + n - 1
    search(
        0,
        n,
        limit,
        &mut cols,
        &mut col_used,
        &mut diag_used,
        &mut anti_used,
        &mut out,
    );
    out
}

/// Enumerates *all* N-Queen solutions on an `n × n` board.
///
/// Convenience wrapper for [`solutions_limited`] with no cap; only sensible
/// for `n <= 13` or so.
pub fn solutions(n: u16) -> Vec<Vec<u16>> {
    solutions_limited(n, usize::MAX)
}

#[allow(clippy::too_many_arguments)]
fn search(
    row: usize,
    n: usize,
    limit: usize,
    cols: &mut Vec<u16>,
    col_used: &mut [bool],
    diag_used: &mut [bool],
    anti_used: &mut [bool],
    out: &mut Vec<Vec<u16>>,
) {
    if out.len() >= limit {
        return;
    }
    if row == n {
        out.push(cols.clone());
        return;
    }
    for col in 0..n {
        let d = row + col;
        let a = row + n - 1 - col;
        if col_used[col] || diag_used[d] || anti_used[a] {
            continue;
        }
        cols[row] = col as u16;
        col_used[col] = true;
        diag_used[d] = true;
        anti_used[a] = true;
        search(row + 1, n, limit, cols, col_used, diag_used, anti_used, out);
        col_used[col] = false;
        diag_used[d] = false;
        anti_used[a] = false;
        if out.len() >= limit {
            return;
        }
    }
}

/// Converts an N-Queen solution (`cols[row] = column`) into a [`Placement`]
/// on an `n × n` mesh, keeping only the CBs in `keep_rows` (pass
/// `None` to keep all `n`). Used for the "fewer CBs than N" case of §6.8,
/// where redundant queens are deleted.
pub fn to_placement(n: u16, cols: &[u16], keep_rows: Option<&[u16]>) -> Placement {
    let cbs: Vec<Coord> = match keep_rows {
        None => cols
            .iter()
            .enumerate()
            .map(|(y, &x)| Coord::new(x, y as u16))
            .collect(),
        Some(rows) => rows
            .iter()
            .map(|&y| Coord::new(cols[y as usize], y))
            .collect(),
    };
    Placement::new(n, n, cbs, PlacementKind::NQueen)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known N-Queen solution counts.
    #[test]
    fn classic_counts() {
        assert_eq!(solutions(1).len(), 1);
        assert_eq!(solutions(2).len(), 0);
        assert_eq!(solutions(3).len(), 0);
        assert_eq!(solutions(4).len(), 2);
        assert_eq!(solutions(5).len(), 10);
        assert_eq!(solutions(6).len(), 4);
        assert_eq!(solutions(7).len(), 40);
        // The paper: "In case of an 8×8 network, there are 92 different
        // N-Queen placements" (§4.2).
        assert_eq!(solutions(8).len(), 92);
    }

    #[test]
    fn every_solution_is_queen_safe() {
        for sol in solutions(8) {
            let p = to_placement(8, &sol, None);
            assert!(p.is_queen_safe(), "solution {sol:?} not queen-safe");
        }
    }

    #[test]
    fn limit_respected_and_prefix_stable() {
        let all = solutions(8);
        let some = solutions_limited(8, 5);
        assert_eq!(some.len(), 5);
        assert_eq!(&all[..5], &some[..]);
    }

    #[test]
    fn deleted_queens_keep_safety() {
        // §6.8: with fewer CBs than N, delete redundant queens; remaining
        // CBs are still mutually non-attacking.
        let sol = &solutions(12)[0];
        let p = to_placement(12, sol, Some(&[0, 2, 4, 6, 8, 10, 11, 1]));
        assert_eq!(p.cbs.len(), 8);
        assert!(p.is_queen_safe());
    }

    #[test]
    fn twelve_queens_count() {
        assert_eq!(solutions(12).len(), 14_200);
    }
}
