#![warn(missing_docs)]
//! Cache-bank (CB) placement engines for EquiNox.
//!
//! In an interposer-based throughput processor, the few last-level cache
//! banks (CBs, each paired with a memory controller) are the injection
//! points of the heavily-loaded reply network, so *where* they sit on the
//! mesh dominates congestion (§4.2 of the paper). This crate implements:
//!
//! * [`scheme`] — the four classic placements evaluated as references
//!   (Top, Side, Diagonal, Diamond, after Abts et al. \[21\]);
//! * [`nqueen`] — enumeration of N-Queen solutions (92 for 8×8) and
//!   N-Queen-based CB placements, which guarantee no two CBs share a row,
//!   column or diagonal;
//! * [`knight`] — knight-move placements for the "more CBs than N" case
//!   (§6.8);
//! * [`score`] — the hot-zone overlap *scoring policy* that ranks
//!   candidate placements (DAZ/CAZ overlaps, compounded penalty);
//! * [`select`] — end-to-end selection of the least-penalized placement.
//!
//! # Example
//!
//! ```
//! use equinox_placement::{nqueen, score::PlacementScorer, select};
//!
//! // All 92 eight-queen solutions exist, and the scorer picks the
//! // least-congested one among them.
//! assert_eq!(nqueen::solutions(8).len(), 92);
//! let best = select::best_nqueen_placement(8, 8, usize::MAX, 0);
//! assert_eq!(best.cbs.len(), 8);
//! ```

pub mod knight;
pub mod nqueen;
pub mod scheme;
pub mod score;
pub mod select;

pub use scheme::{Placement, PlacementKind};
pub use score::PlacementScorer;
pub use select::best_nqueen_placement;
