//! Randomized (seeded, deterministic) tests for placement engines and
//! the scoring policy.

use equinox_exec::Rng;
use equinox_placement::knight::knight_walk;
use equinox_placement::nqueen::{solutions_limited, to_placement};
use equinox_placement::score::PlacementScorer;
use equinox_placement::select::best_nqueen_placement;
use equinox_phys::Coord;

#[test]
fn nqueen_solutions_are_queen_safe() {
    let mut rng = Rng::seed_from_u64(0x9E1);
    for _ in 0..32 {
        let n = rng.random_range(4u16..9);
        let limit = rng.random_range(1usize..30);
        for sol in solutions_limited(n, limit) {
            let p = to_placement(n, &sol, None);
            assert!(p.is_queen_safe());
            assert_eq!(p.cbs.len(), n as usize);
        }
    }
}

#[test]
fn deleting_queens_preserves_safety() {
    let mut rng = Rng::seed_from_u64(0x9E2);
    let sols = solutions_limited(8, 1);
    for _ in 0..64 {
        let mut keep = std::collections::BTreeSet::new();
        for _ in 0..rng.random_range(1usize..8) {
            keep.insert(rng.random_range(0u16..8));
        }
        let rows: Vec<u16> = keep.into_iter().collect();
        let p = to_placement(8, &sols[0], Some(&rows));
        assert!(p.is_queen_safe());
        assert_eq!(p.cbs.len(), rows.len());
    }
}

#[test]
fn knight_walks_are_duplicate_free() {
    let mut rng = Rng::seed_from_u64(0x9E3);
    for _ in 0..128 {
        let n = rng.random_range(5u16..10);
        let cbs = rng.random_range(1u16..12);
        if cbs > 2 * n {
            continue;
        }
        let sx = rng.random_range(0u16..8);
        let sy = rng.random_range(0u16..8);
        let p = knight_walk(n, cbs, sx % n, sy % n);
        let mut seen = p.cbs.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), cbs as usize);
    }
}

#[test]
fn penalty_zero_iff_no_overlaps() {
    let mut rng = Rng::seed_from_u64(0x9E4);
    for _ in 0..256 {
        let a = Coord::new(rng.random_range(0u16..8), rng.random_range(0u16..8));
        let b = Coord::new(rng.random_range(0u16..8), rng.random_range(0u16..8));
        if a == b {
            continue;
        }
        let s = PlacementScorer::new(8, 8);
        let overlaps = s.overlap_tiles(&[a, b]);
        let penalty = s.penalty(&[a, b]);
        assert_eq!(
            overlaps.is_empty(),
            penalty == 0,
            "overlaps {overlaps:?} penalty {penalty}"
        );
        // Far-apart CBs can never overlap (hot zones have radius 1).
        if a.chebyshev(b) > 3 {
            assert_eq!(penalty, 0);
        }
    }
}

#[test]
fn single_cb_has_zero_penalty() {
    for x in 0..8 {
        for y in 0..8 {
            let s = PlacementScorer::new(8, 8);
            assert_eq!(s.penalty(&[Coord::new(x, y)]), 0);
        }
    }
}

#[test]
fn best_placement_no_worse_than_any_sample() {
    let scorer = PlacementScorer::new(8, 8);
    for seed in 0u64..50 {
        let best = best_nqueen_placement(8, 8, usize::MAX, seed);
        // Compare against a handful of raw solutions.
        for sol in solutions_limited(8, 5) {
            let p = to_placement(8, &sol, None);
            assert!(scorer.penalty(&best.cbs) <= scorer.penalty(&p.cbs));
        }
    }
}
