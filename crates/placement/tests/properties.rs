//! Property-based tests for placement engines and the scoring policy.

use equinox_placement::knight::knight_walk;
use equinox_placement::nqueen::{solutions_limited, to_placement};
use equinox_placement::score::PlacementScorer;
use equinox_placement::select::best_nqueen_placement;
use equinox_phys::Coord;
use proptest::prelude::*;

proptest! {
    #[test]
    fn nqueen_solutions_are_queen_safe(n in 4u16..9, limit in 1usize..30) {
        for sol in solutions_limited(n, limit) {
            let p = to_placement(n, &sol, None);
            prop_assert!(p.is_queen_safe());
            prop_assert_eq!(p.cbs.len(), n as usize);
        }
    }

    #[test]
    fn deleting_queens_preserves_safety(keep in prop::collection::btree_set(0u16..8, 1..8)) {
        let sols = solutions_limited(8, 1);
        let rows: Vec<u16> = keep.into_iter().collect();
        let p = to_placement(8, &sols[0], Some(&rows));
        prop_assert!(p.is_queen_safe());
        prop_assert_eq!(p.cbs.len(), rows.len());
    }

    #[test]
    fn knight_walks_are_duplicate_free(n in 5u16..10, cbs in 1u16..12, sx in 0u16..8, sy in 0u16..8) {
        prop_assume!(cbs <= 2 * n);
        let p = knight_walk(n, cbs, sx % n, sy % n);
        let mut seen = p.cbs.clone();
        seen.sort();
        seen.dedup();
        prop_assert_eq!(seen.len(), cbs as usize);
    }

    #[test]
    fn penalty_zero_iff_no_overlaps(x1 in 0u16..8, y1 in 0u16..8, x2 in 0u16..8, y2 in 0u16..8) {
        let a = Coord::new(x1, y1);
        let b = Coord::new(x2, y2);
        prop_assume!(a != b);
        let s = PlacementScorer::new(8, 8);
        let overlaps = s.overlap_tiles(&[a, b]);
        let penalty = s.penalty(&[a, b]);
        prop_assert_eq!(overlaps.is_empty(), penalty == 0,
            "overlaps {:?} penalty {}", overlaps, penalty);
        // Far-apart CBs can never overlap (hot zones have radius 1).
        if a.chebyshev(b) > 3 {
            prop_assert_eq!(penalty, 0);
        }
    }

    #[test]
    fn single_cb_has_zero_penalty(x in 0u16..8, y in 0u16..8) {
        let s = PlacementScorer::new(8, 8);
        prop_assert_eq!(s.penalty(&[Coord::new(x, y)]), 0);
    }

    #[test]
    fn best_placement_no_worse_than_any_sample(seed in 0u64..50) {
        let scorer = PlacementScorer::new(8, 8);
        let best = best_nqueen_placement(8, 8, usize::MAX, seed);
        // Compare against a handful of raw solutions.
        for sol in solutions_limited(8, 5) {
            let p = to_placement(8, &sol, None);
            prop_assert!(scorer.penalty(&best.cbs) <= scorer.penalty(&p.cbs));
        }
    }
}
