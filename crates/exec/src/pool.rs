//! Scoped-thread worker pool.
//!
//! The build environment is fully offline, so this is a std-only
//! replacement for the usual rayon `par_iter().map().collect()` shape:
//! [`par_map`] fans a vector of independent jobs over a scoped thread
//! pool (`std::thread::scope`) and returns the results **in input
//! order**. Work is distributed dynamically through an atomic cursor so
//! a slow job does not stall the queue behind a fixed partition.
//!
//! Determinism is the caller's problem and is easy to keep: jobs must
//! not share mutable state, and any randomness must come from a
//! per-job stream ([`crate::rng::Rng::stream`]) so the output of job
//! `i` is a pure function of `i`, never of scheduling order.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Global override for the worker count, settable once by binaries
/// (`--threads`). 0 = unset.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count used by [`par_map`]. Intended for
/// binaries parsing a `--threads` flag; tests should call
/// [`par_map_with`] with an explicit count instead (this is a global).
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Worker count used by [`par_map`]: the [`set_threads`] override if
/// set, else `EQUINOX_THREADS` from the environment, else
/// `std::thread::available_parallelism()`.
///
/// The environment read is a fallback-only shim: the binaries resolve
/// `threads` through the layered `equinox_config` spec (whose env layer
/// covers `EQUINOX_THREADS`) and call [`set_threads`] explicitly, so
/// the variable only matters for embedders that never configure the
/// pool.
pub fn thread_count() -> usize {
    let over = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    if let Ok(v) = std::env::var("EQUINOX_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `jobs` on [`thread_count`] workers; results are
/// returned in input order. See [`par_map_with`].
pub fn par_map<T, R, F>(jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = thread_count();
    par_map_with(n, jobs, f)
}

/// Maps `f(index, job)` over `jobs` on at most `threads` workers and
/// returns the results in input order.
///
/// * With `threads <= 1` or fewer than two jobs the work runs inline on
///   the calling thread — no spawn cost, identical results.
/// * Jobs are claimed dynamically from an atomic cursor, so `jobs.len()`
///   may be far larger than `threads`.
/// * If any job panics, the panic is re-raised on the caller **after**
///   all workers have stopped (first panic wins); results are dropped.
pub fn par_map_with<T, R, F>(threads: usize, jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n_jobs = jobs.len();
    if threads <= 1 || n_jobs <= 1 {
        return jobs.into_iter().enumerate().map(|(i, j)| f(i, j)).collect();
    }
    let workers = threads.min(n_jobs);
    let slots: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n_jobs {
                    break;
                }
                let job = slots[i].lock().expect("job slot poisoned").take();
                let Some(job) = job else { break };
                match catch_unwind(AssertUnwindSafe(|| f(i, job))) {
                    Ok(r) => *results[i].lock().expect("result slot poisoned") = Some(r),
                    Err(payload) => {
                        // Record the first panic and stop claiming work;
                        // peers drain naturally once the cursor runs out.
                        let mut slot = panic_payload.lock().expect("panic slot poisoned");
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        cursor.store(n_jobs, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });

    if let Some(payload) = panic_payload.into_inner().expect("panic slot poisoned") {
        resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every job ran exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_job_list() {
        let out: Vec<u32> = par_map_with(4, Vec::<u32>::new(), |_, x| x * 2);
        assert!(out.is_empty());
    }

    #[test]
    fn single_job_runs_inline() {
        let out = par_map_with(8, vec![21], |i, x| (i, x * 2));
        assert_eq!(out, vec![(0, 42)]);
    }

    #[test]
    fn more_jobs_than_threads_preserves_order() {
        let jobs: Vec<usize> = (0..103).collect();
        let out = par_map_with(3, jobs, |i, x| {
            assert_eq!(i, x);
            x * x
        });
        assert_eq!(out.len(), 103);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let count = AtomicU64::new(0);
        let jobs: Vec<u64> = (0..57).collect();
        let out = par_map_with(5, jobs, |_, x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(count.load(Ordering::Relaxed), 57);
        assert_eq!(out.iter().sum::<u64>(), 57 * 56 / 2);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let jobs: Vec<u64> = (0..40).collect();
        let seq = par_map_with(1, jobs.clone(), |i, x| x.wrapping_mul(i as u64 + 3));
        let par = par_map_with(7, jobs, |i, x| x.wrapping_mul(i as u64 + 3));
        assert_eq!(seq, par);
    }

    #[test]
    fn panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            par_map_with(4, (0..32).collect::<Vec<_>>(), |_, x| {
                if x == 13 {
                    panic!("job 13 exploded");
                }
                x
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("exploded"), "original payload kept: {msg}");
    }

    #[test]
    fn panic_on_single_thread_path_propagates_too() {
        let result = std::panic::catch_unwind(|| {
            par_map_with(1, vec![1, 2, 3], |_, x: i32| {
                if x == 2 {
                    panic!("inline boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn env_and_override_precedence() {
        // No override set in this test binary unless we set it: exercise
        // the setter path (the env path is covered by binaries).
        set_threads(3);
        assert_eq!(thread_count(), 3);
        set_threads(0); // back to auto for other tests
        assert!(thread_count() >= 1);
    }
}
