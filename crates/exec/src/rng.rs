//! Small, fast, seedable PRNG for deterministic simulation.
//!
//! The generator is xoshiro256** (Blackman & Vigna), seeded through
//! splitmix64 so that nearby user seeds (0, 1, 2, ...) yield well-mixed,
//! statistically independent states. Both algorithms are public domain.
//!
//! Two properties matter for the simulator:
//!
//! * **Determinism** — the sequence depends only on the seed, never on
//!   platform, build flags, or crate versions (the previous external
//!   `rand` dependency could change streams across releases).
//! * **Stream splitting** — [`Rng::stream`] derives the seed for logical
//!   stream `i` of a run through an extra splitmix64 round, so parallel
//!   workers get independent sequences that are a pure function of
//!   `(seed, i)` and therefore independent of how many threads execute
//!   them (see DESIGN.md, "Determinism contract").

/// One splitmix64 step: advances `state` and returns the next output.
///
/// Used both as the seeding PRNG for xoshiro and as a standalone mixer
/// for deriving per-stream seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (splitmix64-expanded, per
    /// the xoshiro authors' recommendation). Named to match the old
    /// `rand::SeedableRng` call sites.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state is the one invalid xoshiro state; splitmix64
        // cannot produce four zero outputs in a row, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s }
    }

    /// Derives the generator for logical stream `index` of a run seeded
    /// with `seed`. Streams are a pure function of `(seed, index)`:
    /// worker threads that process streams in any order or any grouping
    /// observe identical sequences.
    pub fn stream(seed: u64, index: u64) -> Self {
        let mut sm = seed ^ 0xA076_1D64_78BD_642F_u64.wrapping_mul(index.wrapping_add(1));
        let mixed = splitmix64(&mut sm) ^ index.wrapping_mul(0xE703_7ED1_A0B4_28DB);
        Rng::seed_from_u64(mixed)
    }

    /// Next raw 64-bit output (xoshiro256**).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform sample of type `T` (replacement for `rand`'s
    /// `rng.random::<T>()`). `f64` lies in `[0, 1)`.
    #[inline]
    pub fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from `range` (replacement for `rand`'s
    /// `rng.random_range(a..b)`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn random_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Uniform `u64` below `bound` via Lemire's multiply-shift with
    /// rejection (exactly uniform, no modulo bias).
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample from an empty range");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

impl equinox_snap::Snap for Rng {
    fn snap(&self, e: &mut equinox_snap::Enc) {
        self.s.snap(e);
    }
    fn restore(d: &mut equinox_snap::Dec) -> Result<Self, equinox_snap::SnapError> {
        let s = <[u64; 4]>::restore(d)?;
        if s == [0; 4] {
            // The all-zero state is the one state xoshiro cannot leave.
            return Err(equinox_snap::SnapError::BadValue("all-zero rng state"));
        }
        Ok(Rng { s })
    }
}

/// Types that [`Rng::random`] can produce.
pub trait Sample {
    fn sample(rng: &mut Rng) -> Self;
}

impl Sample for f64 {
    /// 53 uniform mantissa bits scaled into `[0, 1)`.
    #[inline]
    fn sample(rng: &mut Rng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for u64 {
    #[inline]
    fn sample(rng: &mut Rng) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample(rng: &mut Rng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    #[inline]
    fn sample(rng: &mut Rng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// Types that [`Rng::random_range`] can produce.
pub trait RangeSample: Sized {
    fn sample_range(rng: &mut Rng, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_range_sample {
    ($($ty:ty),*) => {$(
        impl RangeSample for $ty {
            #[inline]
            fn sample_range(rng: &mut Rng, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from an empty range");
                let span = (range.end as u64) - (range.start as u64);
                range.start + rng.below(span) as $ty
            }
        }
    )*};
}

impl_range_sample!(usize, u64, u32, u16, u8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // xoshiro256** from the all-splitmix64(0) seed; first outputs are
        // fixed forever — any change to the generator is a determinism
        // break and must fail here.
        let mut rng = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = Rng::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        assert_eq!(
            first,
            [
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ],
            "stream changed: determinism break"
        );
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = Rng::seed_from_u64(42);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_respects_bounds_and_hits_all_values() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 reachable");
        for _ in 0..1_000 {
            let v = rng.random_range(5u64..7);
            assert!((5..7).contains(&v));
        }
        // Unit-width range is the degenerate-but-valid case.
        assert_eq!(rng.random_range(9u32..10), 9);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Rng::seed_from_u64(0);
        let _ = rng.random_range(3usize..3);
    }

    #[test]
    fn snapshot_resumes_the_exact_stream() {
        use equinox_snap::{Dec, Enc, Snap, SnapError};
        let mut rng = Rng::stream(7, 3);
        for _ in 0..100 {
            rng.next_u64();
        }
        let mut e = Enc::new();
        rng.snap(&mut e);
        let bytes = e.into_bytes();
        let expect: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        let mut d = Dec::new(&bytes);
        let mut restored = Rng::restore(&mut d).unwrap();
        d.finish().unwrap();
        let got: Vec<u64> = (0..16).map(|_| restored.next_u64()).collect();
        assert_eq!(expect, got, "restored rng must continue the stream");
        // The all-zero state must be refused, never restored.
        let mut e = Enc::new();
        [0u64; 4].snap(&mut e);
        let z = e.into_bytes();
        assert_eq!(
            Rng::restore(&mut Dec::new(&z)).unwrap_err(),
            SnapError::BadValue("all-zero rng state")
        );
    }

    #[test]
    fn streams_are_independent_of_grouping() {
        // stream(seed, i) is a pure function — no hidden state.
        let a = Rng::stream(99, 0);
        let b = Rng::stream(99, 1);
        let a2 = Rng::stream(99, 0);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        let base = Rng::seed_from_u64(99);
        assert_ne!(a, base, "stream 0 differs from the root stream");
    }
}
