//! Persistent cycle-step worker team.
//!
//! [`par_map`](crate::par_map) spawns scoped threads per call, which is
//! fine when a job is a whole simulation but far too heavy for work
//! dispatched **every simulated cycle** — e.g. stepping the nine
//! independent subnets of a DA2Mesh system inside one `System::step`.
//! A [`StepTeam`] spawns its workers exactly once, then hands them a
//! borrowed task closure per *round* through an epoch-numbered barrier:
//!
//! ```text
//! leader: publish (f, n), epoch += 1  ──▶  workers wake
//! all lanes run their fixed stride of tasks 0..n
//! workers: done += 1                  ──▶  leader returns from run()
//! ```
//!
//! Determinism contract: task `i` always runs on lane `i % lanes`
//! (lane `lanes-1` is the caller), so the task→thread assignment is a
//! pure function of the task index and the team size — never of
//! scheduling order. Tasks must touch disjoint state; the barrier's
//! release/acquire pair publishes everything a lane wrote before the
//! leader resumes.
//!
//! The steady-state [`StepTeam::run`] path performs **zero heap
//! allocations**: the task slot, counters and parking primitives are
//! all built in [`StepTeam::new`], and waiting lanes spin briefly, then
//! yield, then park on a condvar (so an oversubscribed or single-core
//! host degrades to cooperative scheduling instead of live-lock).

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Epoch value signalling workers to exit.
const SHUTDOWN: u64 = u64::MAX;
/// Busy-poll iterations before yielding the CPU.
const SPINS: u32 = 256;
/// `yield_now` rounds before parking on the condvar.
const YIELDS: u32 = 16;

/// The round's task: a borrowed closure (lifetime erased while the
/// round is in flight) plus the task count.
struct TaskSlot {
    f: UnsafeCell<Option<*const (dyn Fn(usize) + Sync)>>,
    n: AtomicUsize,
}

// SAFETY: the slot is written only by the leader between rounds (while
// every worker is provably waiting on the next epoch) and read only
// during a round the leader is blocked in; the epoch store/load pair
// orders those accesses.
unsafe impl Send for TaskSlot {}
unsafe impl Sync for TaskSlot {}

struct Shared {
    /// Round counter. The leader's `Release` store publishes the task
    /// slot; workers `Acquire`-load it to pick the round up.
    epoch: AtomicU64,
    /// Lanes finished with the current round (workers only — the
    /// leader does not count itself).
    done: AtomicUsize,
    task: TaskSlot,
    /// Parking for workers waiting on the next round.
    go_lock: Mutex<()>,
    go: Condvar,
    /// Parking for the leader waiting on round completion.
    done_lock: Mutex<()>,
    done_cv: Condvar,
    /// First panic raised by any lane this round, re-raised by the
    /// leader once the round has fully drained.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A persistent team of worker threads for per-cycle fan-out.
///
/// Construct once (e.g. at `System::build`), call
/// [`run`](StepTeam::run) once per cycle phase, drop to shut the
/// workers down. The calling thread is always lane `lanes() - 1` and
/// does its share of the work, so a team of `k` lanes spawns `k - 1`
/// threads.
pub struct StepTeam {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    lanes: usize,
}

impl std::fmt::Debug for StepTeam {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StepTeam").field("lanes", &self.lanes).finish()
    }
}

impl StepTeam {
    /// Creates a team with `lanes` total lanes (caller included).
    /// `lanes <= 1` builds a degenerate team that runs everything
    /// inline on the caller.
    pub fn new(lanes: usize) -> Self {
        let lanes = lanes.max(1);
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            done: AtomicUsize::new(0),
            task: TaskSlot {
                f: UnsafeCell::new(None),
                n: AtomicUsize::new(0),
            },
            go_lock: Mutex::new(()),
            go: Condvar::new(),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        let handles = (0..lanes.saturating_sub(1))
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("equinox-step-{lane}"))
                    .spawn(move || worker_loop(&shared, lane, lanes))
                    .expect("spawn step worker")
            })
            .collect();
        StepTeam {
            shared,
            handles,
            lanes,
        }
    }

    /// Total lanes (worker threads + the caller).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Runs `f(i)` for every task `i in 0..n`, fanning the tasks over
    /// the team with the fixed assignment `lane = i % lanes`. Returns
    /// once every task has finished; writes made by any lane are
    /// visible to the caller. Panics in any task are re-raised here
    /// after the round drains (first panic wins).
    ///
    /// `f` must be safe to call concurrently for distinct `i` (tasks
    /// touch disjoint state). Allocation-free in steady state.
    pub fn run(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        if self.handles.is_empty() || n <= 1 {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let shared = &*self.shared;
        shared.done.store(0, Ordering::Relaxed);
        shared.task.n.store(n, Ordering::Relaxed);
        // SAFETY: every worker is waiting on the epoch (the previous
        // round fully drained before `run` returned), so the slot is
        // not being read. The lifetime erasure is sound because this
        // call does not return until every lane is done with `f`.
        unsafe {
            let erased: *const (dyn Fn(usize) + Sync) = std::mem::transmute::<
                &(dyn Fn(usize) + Sync),
                &'static (dyn Fn(usize) + Sync),
            >(f);
            *shared.task.f.get() = Some(erased);
        }
        let round = shared.epoch.load(Ordering::Relaxed).wrapping_add(1);
        shared.epoch.store(round, Ordering::Release);
        {
            let _g = shared.go_lock.lock().expect("go lock");
            shared.go.notify_all();
        }
        // The leader is the last lane; even if its stride panics it
        // must wait for the workers before unwinding (they still hold
        // the borrow of `f`).
        let leader_panic = catch_unwind(AssertUnwindSafe(|| {
            run_stride(f, n, self.lanes - 1, self.lanes);
        }))
        .err();
        self.wait_round_done();
        // SAFETY: round drained; no lane reads the slot until the next
        // epoch store.
        unsafe {
            *shared.task.f.get() = None;
        }
        if let Some(payload) = leader_panic {
            resume_unwind(payload);
        }
        let worker_panic = shared.panic.lock().expect("panic slot").take();
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }

    /// Blocks until every worker has finished the current round.
    fn wait_round_done(&self) {
        let shared = &*self.shared;
        let workers = self.handles.len();
        for _ in 0..SPINS {
            if shared.done.load(Ordering::Acquire) == workers {
                return;
            }
            std::hint::spin_loop();
        }
        for _ in 0..YIELDS {
            if shared.done.load(Ordering::Acquire) == workers {
                return;
            }
            std::thread::yield_now();
        }
        let mut g = shared.done_lock.lock().expect("done lock");
        while shared.done.load(Ordering::Acquire) != workers {
            g = shared.done_cv.wait(g).expect("done wait");
        }
    }
}

impl Drop for StepTeam {
    fn drop(&mut self) {
        self.shared.epoch.store(SHUTDOWN, Ordering::Release);
        {
            let _g = self.shared.go_lock.lock().expect("go lock");
            self.shared.go.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Runs lane `lane`'s fixed stride of the round: tasks
/// `lane, lane + lanes, lane + 2*lanes, ...`.
#[inline]
fn run_stride(f: &(dyn Fn(usize) + Sync), n: usize, lane: usize, lanes: usize) {
    let mut i = lane;
    while i < n {
        f(i);
        i += lanes;
    }
}

fn worker_loop(shared: &Shared, lane: usize, lanes: usize) {
    let mut seen = 0u64;
    loop {
        let round = wait_for_round(shared, seen);
        if round == SHUTDOWN {
            return;
        }
        seen = round;
        // SAFETY: the Acquire load of the epoch in `wait_for_round`
        // synchronizes with the leader's Release store, which happens
        // after the task slot was written; the leader will not clear
        // the slot until this lane bumps `done`.
        let f = unsafe { (*shared.task.f.get()).expect("task published with round") };
        let n = shared.task.n.load(Ordering::Relaxed);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_stride(unsafe { &*f }, n, lane, lanes);
        }));
        if let Err(payload) = result {
            let mut slot = shared.panic.lock().expect("panic slot");
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        // AcqRel: the Release half publishes this lane's task writes to
        // the leader's Acquire load in `wait_round_done`.
        let finished = shared.done.fetch_add(1, Ordering::AcqRel) + 1;
        if finished == lanes - 1 {
            let _g = shared.done_lock.lock().expect("done lock");
            shared.done_cv.notify_one();
        }
    }
}

/// Waits for the epoch to move past `seen`: spin, then yield, then
/// park. Returns the new epoch.
fn wait_for_round(shared: &Shared, seen: u64) -> u64 {
    for _ in 0..SPINS {
        let e = shared.epoch.load(Ordering::Acquire);
        if e != seen {
            return e;
        }
        std::hint::spin_loop();
    }
    for _ in 0..YIELDS {
        let e = shared.epoch.load(Ordering::Acquire);
        if e != seen {
            return e;
        }
        std::thread::yield_now();
    }
    let mut g = shared.go_lock.lock().expect("go lock");
    loop {
        let e = shared.epoch.load(Ordering::Acquire);
        if e != seen {
            return e;
        }
        g = shared.go.wait(g).expect("go wait");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn degenerate_team_runs_inline() {
        let team = StepTeam::new(1);
        assert_eq!(team.lanes(), 1);
        let hits = AtomicU64::new(0);
        team.run(5, &|i| {
            hits.fetch_add(1 << i, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 0b11111);
    }

    #[test]
    fn every_task_runs_exactly_once_per_round() {
        let team = StepTeam::new(4);
        let counts: Vec<AtomicU64> = (0..9).map(|_| AtomicU64::new(0)).collect();
        for _ in 0..200 {
            team.run(counts.len(), &|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 200, "task {i} miscounted");
        }
    }

    #[test]
    fn disjoint_writes_are_visible_after_run() {
        let team = StepTeam::new(3);
        let mut data = vec![0u64; 17];
        let ptr = data.as_mut_ptr() as usize;
        team.run(data.len(), &move |i| {
            // SAFETY: each task writes only its own slot.
            unsafe { *(ptr as *mut u64).add(i) = (i as u64) * 3 + 1 };
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 3 + 1);
        }
    }

    #[test]
    fn single_task_round_stays_on_caller() {
        let team = StepTeam::new(4);
        let caller = std::thread::current().id();
        team.run(1, &|_| {
            assert_eq!(std::thread::current().id(), caller);
        });
    }

    #[test]
    fn team_survives_many_small_rounds() {
        let team = StepTeam::new(2);
        let total = AtomicU64::new(0);
        for round in 0..5_000u64 {
            team.run(2, &|i| {
                total.fetch_add(round + i as u64, Ordering::Relaxed);
            });
        }
        // sum over rounds of (round + 0) + (round + 1)
        let expect: u64 = (0..5_000u64).map(|r| 2 * r + 1).sum();
        assert_eq!(total.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn worker_panic_propagates_and_team_recovers() {
        let team = StepTeam::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            team.run(8, &|i| {
                // Lane 1's stride (tasks 1 and 5) includes the bomb.
                if i == 5 {
                    panic!("subnet 5 exploded");
                }
            });
        }));
        let payload = result.expect_err("panic must reach the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("exploded"), "payload preserved: {msg}");
        // The team must still be usable for the next round.
        let hits = AtomicU64::new(0);
        team.run(8, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn leader_panic_waits_for_workers() {
        let team = StepTeam::new(2);
        let done = AtomicU64::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            team.run(2, &|i| {
                if i == 1 {
                    // Leader's own stride (lane 1 of 2 takes task 1).
                    panic!("leader stride boom");
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        assert_eq!(done.load(Ordering::Relaxed), 1, "worker task still ran");
    }

    #[test]
    fn assignment_is_a_fixed_stride() {
        // Task i must land on lane i % lanes: record which thread ran
        // each task twice and check the mapping is identical.
        let team = StepTeam::new(3);
        let map = |_: u64| {
            let ids: Vec<Mutex<Option<std::thread::ThreadId>>> =
                (0..7).map(|_| Mutex::new(None)).collect();
            team.run(7, &|i| {
                *ids[i].lock().unwrap() = Some(std::thread::current().id());
            });
            ids.into_iter()
                .map(|m| m.into_inner().unwrap().unwrap())
                .collect::<Vec<_>>()
        };
        let a = map(0);
        let b = map(1);
        assert_eq!(a, b, "task→lane assignment must be reproducible");
        for (i, id) in a.iter().enumerate() {
            assert_eq!(*id, a[i % 3], "task {i} off its stride");
        }
    }
}
