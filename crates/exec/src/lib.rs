//! # equinox-exec — parallel execution layer
//!
//! Std-only infrastructure shared by every other crate in the
//! workspace:
//!
//! * [`pool`] — a scoped-thread worker pool ([`par_map`]) that fans
//!   independent jobs (scheme × workload sweep cells, MCTS root
//!   streams, load-latency sample points) across cores with no external
//!   dependency. Thread count comes from `--threads` /
//!   `EQUINOX_THREADS` / available parallelism.
//! * [`team`] — a persistent worker team ([`StepTeam`]) for intra-run
//!   parallelism: spawned once per `System`, handed a borrowed task
//!   closure per cycle phase through an epoch barrier, with a fixed
//!   task→lane stride so work placement is reproducible.
//! * [`rng`] — a deterministic splitmix64 + xoshiro256** PRNG
//!   ([`Rng`]) replacing the external `rand` crate, with explicit
//!   stream splitting ([`Rng::stream`]) so parallel work is
//!   reproducible independent of the worker count.
//!
//! The determinism contract: any function that uses `par_map` +
//! per-job `Rng::stream` produces output that is a pure function of
//! its inputs and seed — never of thread count or scheduling order.
//! [`StepTeam`] extends it to mutable fan-out: tasks own disjoint
//! state, so results are independent of the lane count too.

pub mod pool;
pub mod rng;
pub mod team;

pub use pool::{par_map, par_map_with, set_threads, thread_count};
pub use rng::{splitmix64, RangeSample, Rng, Sample};
pub use team::StepTeam;
