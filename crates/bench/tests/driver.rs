//! End-to-end tests of the unified `equinox` driver and the artifact
//! layer: every registered scenario resolves and is listed in `--help`,
//! malformed command lines die loudly, a real scenario round-trips
//! through the artifact envelope, and a full `RunMetrics` emission is
//! pinned against a golden snapshot (regenerate with
//! `EQUINOX_REGEN_GOLDEN=1`).

use equinox_bench::artifact::run_metrics_json;
use equinox_bench::scenarios::{scenario, scenarios};
use equinox_config::{parse_json, Json};
use equinox_core::SchemeKind;
use std::path::Path;
use std::process::Command;

fn driver() -> Command {
    Command::new(env!("CARGO_BIN_EXE_equinox"))
}

#[test]
fn every_scenario_resolves_and_appears_in_help() {
    let out = driver().arg("--help").output().expect("run driver");
    assert!(out.status.success(), "--help must exit 0");
    let help = String::from_utf8(out.stdout).expect("utf8 help");
    for s in scenarios() {
        assert!(scenario(s.name).is_some(), "{} must resolve", s.name);
        assert!(help.contains(s.name), "--help must list '{}'", s.name);
    }
    // The flag section comes from the shared registry.
    for flag in ["--scale", "--seeds", "--no-activity-gate", "--spec", "--out", "--topology", "--traffic"] {
        assert!(help.contains(flag), "--help must list '{flag}'");
    }
}

#[test]
fn unknown_scenario_is_fatal() {
    let out = driver().arg("fig99").output().expect("run driver");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("fig99"), "stderr must name the scenario: {err}");
}

#[test]
fn malformed_values_and_unknown_flags_are_fatal() {
    for (args, needle) in [
        (vec!["table1", "--scale", "fast"], "--scale"),
        (vec!["table1", "--threads", "many"], "--threads"),
        (vec!["table1", "--bogus"], "--bogus"),
        (vec!["table1", "--scale"], "--scale"),
        (vec!["table1", "--seeds", "1,x"], "--seeds"),
        (vec!["fabric", "--topology", "torus"], "--topology"),
        (vec!["fabric", "--traffic", "tornado"], "--traffic"),
        (vec!["observe", "--obs-interval", "0"], "--obs-interval"),
    ] {
        let out = driver().args(&args).output().expect("run driver");
        assert!(!out.status.success(), "{args:?} must exit nonzero");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains(needle), "{args:?}: stderr must name {needle}: {err}");
        assert!(err.contains("usage:"), "{args:?}: stderr must show usage");
    }
}

#[test]
fn driver_emits_a_valid_artifact_with_spec_provenance() {
    let out = driver()
        .args(["table1", "--scale", "0.25", "--audit"])
        .output()
        .expect("run driver");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let artifact = parse_json(&String::from_utf8(out.stdout).unwrap()).expect("stdout is JSON");
    assert_eq!(
        artifact.get("schema").and_then(Json::as_str),
        Some("equinox.artifact/v1")
    );
    assert_eq!(artifact.get("scenario").and_then(Json::as_str), Some("table1"));
    let spec = artifact.get("spec").expect("spec block");
    assert_eq!(spec.get("scale").and_then(Json::as_f64), Some(0.25));
    assert_eq!(spec.get("audit").and_then(Json::as_bool), Some(true));
    let prov = spec.get("provenance").expect("provenance block");
    assert_eq!(prov.get("scale").and_then(Json::as_str), Some("cli"));
    assert_eq!(prov.get("n").and_then(Json::as_str), Some("default"));
    assert!(artifact.get("results").is_some());
    // The human report went to stderr, not stdout.
    assert!(String::from_utf8(out.stderr).unwrap().contains("Table 1"));
}

#[test]
fn spec_file_layer_reaches_the_artifact() {
    let dir = std::env::temp_dir().join("equinox_driver_test");
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("spec.json");
    std::fs::write(&spec_path, r#"{"scale": 0.125, "seeds": [5]}"#).unwrap();
    let out_path = dir.join("artifact.json");
    let out = driver()
        .args(["table1", "--spec"])
        .arg(&spec_path)
        .arg("--out")
        .arg(&out_path)
        .output()
        .expect("run driver");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let artifact = parse_json(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
    let spec = artifact.get("spec").unwrap();
    assert_eq!(spec.get("scale").and_then(Json::as_f64), Some(0.125));
    assert_eq!(
        spec.get("provenance").unwrap().get("scale").and_then(Json::as_str),
        Some("file")
    );
}

#[test]
fn observe_scenario_emits_obs_block_and_chrome_trace() {
    let dir = std::env::temp_dir().join("equinox_driver_obs_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.json");
    let out = driver()
        .args(["observe", "--scale", "0.05", "--obs", "--obs-interval", "500", "--trace"])
        .arg("--trace-out")
        .arg(&trace_path)
        .output()
        .expect("run driver");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // The artifact carries the obs/v1 block with series, percentile
    // histograms and heat grids.
    let artifact = parse_json(&String::from_utf8(out.stdout).unwrap()).expect("stdout is JSON");
    let results = artifact.get("results").expect("results block");
    let obs = results.get("obs").expect("obs block");
    assert_eq!(obs.get("schema").and_then(Json::as_str), Some("equinox.obs/v1"));
    assert_eq!(obs.get("interval").and_then(Json::as_u64), Some(500));
    let series = obs.get("series").expect("series block");
    let cycles = series.get("cycle").and_then(Json::as_arr).expect("cycle axis");
    assert!(!cycles.is_empty(), "the run must have produced samples");
    for col in ["throughput_flits_per_cycle", "packets_in_flight", "ff_cycles_skipped"] {
        let vals = series.get(col).and_then(Json::as_arr).unwrap_or_else(|| panic!("series '{col}'"));
        assert_eq!(vals.len(), cycles.len(), "'{col}' rows match the cycle axis");
    }
    let hist = obs
        .get("histograms")
        .and_then(|h| h.get("rep_latency_cycles"))
        .expect("reply latency histogram");
    assert!(hist.get("count").and_then(Json::as_u64).unwrap() > 0);
    for q in ["p50", "p95", "p99"] {
        let v = hist.get(q).and_then(Json::as_f64).unwrap_or_else(|| panic!("{q} present"));
        assert!(v > 0.0, "{q} must be positive, got {v}");
    }
    let heat = obs.get("heat").and_then(Json::as_arr).expect("heat grids");
    assert_eq!(heat.len(), 2, "EquiNox runs request + reply nets");
    for hm in heat {
        let w = hm.get("width").and_then(Json::as_u64).expect("width");
        let grid = hm.get("heat").and_then(Json::as_arr).expect("grid");
        assert_eq!(grid.len() as u64, w * w, "row-major width² grid");
    }
    // EquiNox arms EIR load series, one per CB group.
    assert!(series.get("eir_load_cb0").is_some(), "EIR load series present");

    // The obs/v2 block rides along: stall taxonomy, per-class latency
    // breakdown summing to the measured end-to-end latency, heat grids.
    let v2 = results.get("obs_v2").expect("obs_v2 block");
    assert_eq!(v2.get("schema").and_then(Json::as_str), Some("equinox.obs/v2"));
    let causes = v2.get("causes").and_then(Json::as_arr).expect("cause list");
    assert_eq!(causes.len(), 6, "six named stall causes");
    for class in ["request", "reply"] {
        let row = v2.get("per_class").and_then(|p| p.get(class)).expect("class row");
        let get = |k: &str| row.get(k).and_then(Json::as_u64).unwrap_or_else(|| panic!("{class}.{k}"));
        let sum: u64 = ["inj_queue", "vc_alloc", "switch_loss", "credit_starve", "eject_wait", "serialization"]
            .iter()
            .map(|&c| get(c))
            .sum();
        assert_eq!(sum, get("e2e_cycles"), "{class}: causes reconstruct e2e");
    }
    let stall_heat = v2.get("stall_heat").and_then(Json::as_arr).expect("stall heat grids");
    assert_eq!(stall_heat.len(), 2 * 4, "2 nets x 4 in-network causes");
    for hm in stall_heat {
        let w = hm.get("width").and_then(Json::as_u64).expect("width");
        let h = hm.get("height").and_then(Json::as_u64).expect("height");
        let grid = hm.get("heat").and_then(Json::as_arr).expect("grid");
        assert_eq!(grid.len() as u64, w * h, "row-major width x height grid");
    }

    // The trace file is valid Chrome trace-event JSON with both span
    // (complete) and flit (instant) events.
    let doc = std::fs::read_to_string(&trace_path).expect("trace file written");
    let trace = parse_json(&doc).expect("trace parses as JSON");
    let events = trace.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
    let phases: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("ph").and_then(Json::as_str))
        .collect();
    assert!(phases.contains(&"X"), "wall-clock span events present");
    assert!(phases.contains(&"i"), "flit instant events present");
    assert!(phases.contains(&"M"), "process/thread metadata present");
}

#[test]
fn stream_records_and_watch_replays_end_to_end() {
    // Record: an instrumented run streams line-JSON frames to a file.
    let dir = std::env::temp_dir().join("equinox_driver_stream_test");
    std::fs::create_dir_all(&dir).unwrap();
    let stream_path = dir.join("stream.jsonl");
    let _ = std::fs::remove_file(&stream_path);
    let out = driver()
        .args(["observe", "--scale", "0.05", "--obs-interval", "500", "--obs-stream"])
        .arg(&stream_path)
        .output()
        .expect("run driver");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // Framing contract: every line is one standalone JSON object, with
    // sample frames during the run and exactly one terminal summary.
    let doc = std::fs::read_to_string(&stream_path).expect("stream file written");
    let (mut samples, mut summaries) = (0, 0);
    for line in doc.lines() {
        let frame = parse_json(line).unwrap_or_else(|e| panic!("frame not standalone JSON: {e}\n{line}"));
        match frame.get("schema").and_then(Json::as_str) {
            Some("obs.sample/v1") => samples += 1,
            Some("obs.summary/v1") => summaries += 1,
            other => panic!("unknown frame schema {other:?}"),
        }
        assert!(frame.get("cycle").and_then(Json::as_u64).is_some(), "cycle stamp");
    }
    assert!(samples > 0, "run long enough to emit samples");
    assert_eq!(summaries, 1, "exactly one terminal summary frame");

    // Replay: `equinox watch` attaches to the recorded stream and
    // accounts for every frame with no corruption.
    let out = driver()
        .args(["watch", "--obs-stream"])
        .arg(&stream_path)
        .output()
        .expect("run driver");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let artifact = parse_json(&String::from_utf8(out.stdout).unwrap()).expect("stdout is JSON");
    assert_eq!(artifact.get("scenario").and_then(Json::as_str), Some("watch"));
    let results = artifact.get("results").expect("results block");
    assert_eq!(
        results.get("frames_seen").and_then(Json::as_u64),
        Some(samples + summaries),
        "watch accounts for every recorded frame"
    );
    assert_eq!(results.get("corrupt_lines").and_then(Json::as_u64), Some(0));
    assert_eq!(results.get("summary_seen").and_then(Json::as_bool), Some(true));
    // The dashboard rendered to stderr.
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("run summary"), "dashboard on stderr: {err}");

    // A watcher with no stream target dies loudly.
    let out = driver().arg("watch").output().expect("run driver");
    assert!(!out.status.success(), "watch without --obs-stream must fail");
}

#[test]
fn fabric_scenario_runs_end_to_end_through_the_driver() {
    // A ring fabric under hotspot traffic, audited, through the real
    // binary: the artifact must carry the new spec fields with CLI
    // provenance and a clean audit + snapshot round-trip.
    let out = driver()
        .args([
            "fabric", "--topology", "ring", "--traffic", "hotspot", "--n", "6", "--scale",
            "0.08", "--cycles", "600", "--audit",
        ])
        .output()
        .expect("run driver");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let artifact = parse_json(&String::from_utf8(out.stdout).unwrap()).expect("stdout is JSON");
    assert_eq!(artifact.get("scenario").and_then(Json::as_str), Some("fabric"));
    let spec = artifact.get("spec").expect("spec block");
    assert_eq!(spec.get("topology").and_then(Json::as_str), Some("ring"));
    assert_eq!(spec.get("traffic").and_then(Json::as_str), Some("hotspot"));
    let prov = spec.get("provenance").expect("provenance block");
    assert_eq!(prov.get("topology").and_then(Json::as_str), Some("cli"));
    assert_eq!(prov.get("traffic").and_then(Json::as_str), Some("cli"));
    let results = artifact.get("results").expect("results block");
    assert_eq!(results.get("topology").and_then(Json::as_str), Some("ring"));
    assert_eq!(results.get("snapshot_roundtrip").and_then(Json::as_bool), Some(true));
    assert_eq!(results.get("audit_violations").and_then(Json::as_u64), Some(0));
    let inj = results.get("injected_flits").and_then(Json::as_u64).unwrap();
    let ej = results.get("ejected_flits").and_then(Json::as_u64).unwrap();
    assert!(inj > 0 && inj == ej, "ring must move and conserve flits ({inj}/{ej})");
}

#[test]
fn run_metrics_emission_matches_golden_snapshot() {
    let m = equinox_bench::run_one(SchemeKind::SeparateBase, 8, "gaussian", 0.05, 1);
    let emitted = run_metrics_json(&m).pretty();
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/run_metrics.json");
    if std::env::var("EQUINOX_REGEN_GOLDEN").is_ok() {
        std::fs::write(&golden_path, &emitted).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden snapshot missing — run with EQUINOX_REGEN_GOLDEN=1");
    assert_eq!(
        emitted, golden,
        "RunMetrics emission drifted from the golden snapshot; \
         if intentional, regenerate with EQUINOX_REGEN_GOLDEN=1"
    );
}
