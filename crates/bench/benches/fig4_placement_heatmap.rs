//! Criterion bench for the Figure 4 experiment: one placement heat map
//! per iteration, for each of the five placements the paper compares.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use equinox_core::heatmap::placement_heatmap;
use equinox_placement::select::best_nqueen_placement;
use equinox_placement::Placement;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_placement_heatmap");
    g.sample_size(10);
    let placements: Vec<(&str, Placement)> = vec![
        ("top", Placement::top(8, 8, 8)),
        ("diamond", Placement::diamond(8, 8, 8)),
        ("nqueen", best_nqueen_placement(8, 8, usize::MAX, 0)),
    ];
    for (name, p) in placements {
        g.bench_with_input(BenchmarkId::from_parameter(name), &p, |b, p| {
            b.iter(|| black_box(placement_heatmap(p, 0.85, 1_000, 1).variance))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
