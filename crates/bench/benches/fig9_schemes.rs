//! Criterion bench for the Figure 9/10/12 machinery: one full-system run
//! per scheme on a small workload (the unit of work behind every bar in
//! those figures).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use equinox_core::{EquiNoxDesign, SchemeKind, System, SystemConfig};
use equinox_traffic::{profile::benchmark, Workload};
use std::hint::black_box;
use std::sync::OnceLock;

fn design() -> &'static EquiNoxDesign {
    static D: OnceLock<EquiNoxDesign> = OnceLock::new();
    D.get_or_init(|| EquiNoxDesign::search_k(8, 8, 300, 7, 2))
}

fn run(scheme: SchemeKind) -> u64 {
    let w = Workload::new(benchmark("hotspot").unwrap(), 0.05, 42);
    let mut cfg = SystemConfig::new(scheme, 8, w);
    if scheme == SchemeKind::EquiNox {
        cfg.design = Some(design().clone());
    }
    System::build(cfg).run().cycles
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_scheme_run");
    g.sample_size(10);
    for scheme in [
        SchemeKind::SingleBase,
        SchemeKind::SeparateBase,
        SchemeKind::InterposerCMesh,
        SchemeKind::MultiPort,
        SchemeKind::EquiNox,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &scheme,
            |b, &s| b.iter(|| black_box(run(s))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
