//! Criterion bench for the substrate layers: HBM stack throughput,
//! N-Queen enumeration + scoring, and the EIR evaluation function (the
//! inner loop of every search).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use equinox_hbm::{HbmConfig, HbmStack, MemAccess};
use equinox_mcts::eval::{evaluate, EvalWeights};
use equinox_mcts::problem::EirProblem;
use equinox_placement::nqueen::{solutions, to_placement};
use equinox_placement::select::best_nqueen_placement;
use equinox_placement::PlacementScorer;
use std::hint::black_box;

fn hbm_run(accesses: u64) -> u64 {
    let mut s = HbmStack::new(HbmConfig::hbm2());
    let mut submitted = 0u64;
    let mut done = 0u64;
    let mut t = 0u64;
    while done < accesses {
        while submitted < accesses
            && s.enqueue(
                MemAccess {
                    id: submitted,
                    addr: submitted * 64,
                    write: false,
                },
                t,
            )
            .is_ok()
        {
            submitted += 1;
        }
        s.step(t);
        while s.pop_completed().is_some() {
            done += 1;
        }
        t += 1;
    }
    t
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrates");
    g.sample_size(10);

    g.throughput(Throughput::Elements(4_000));
    g.bench_function("hbm_stack_4000_accesses", |b| {
        b.iter(|| black_box(hbm_run(4_000)))
    });

    g.throughput(Throughput::Elements(92));
    g.bench_function("nqueen_enumerate_and_score_8x8", |b| {
        b.iter(|| {
            let scorer = PlacementScorer::new(8, 8);
            let best = solutions(8)
                .iter()
                .map(|s| scorer.penalty(&to_placement(8, s, None).cbs))
                .min();
            black_box(best)
        })
    });

    let problem = EirProblem::new(best_nqueen_placement(8, 8, usize::MAX, 0));
    let mut rng = EirProblem::rng(1);
    let sel = problem.random_completion(&[], &mut rng);
    g.throughput(Throughput::Elements(1));
    g.bench_function("eir_evaluation_fn", |b| {
        b.iter(|| black_box(evaluate(&problem, &sel, &EvalWeights::default()).cost))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
