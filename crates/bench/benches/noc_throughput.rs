//! Criterion bench: raw simulator speed — cycles per second of an 8×8
//! mesh under saturating few-to-many reply traffic (the regime every
//! figure-9 run spends its time in).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use equinox_noc::config::NocConfig;
use equinox_noc::flit::{Flit, MessageClass, PacketDesc};
use equinox_noc::network::Network;
use equinox_phys::Coord;
use equinox_placement::Placement;
use std::hint::black_box;

fn run_cycles(cycles: u64) -> u64 {
    let p = Placement::diamond(8, 8, 8);
    let mut net = Network::mesh(NocConfig::mesh(8));
    let pes: Vec<Coord> = p.pe_tiles().collect();
    let mut pending: Vec<Vec<Flit>> = vec![Vec::new(); 8];
    let mut id = 0u64;
    let mut ejected = 0u64;
    for t in 0..cycles {
        for (ci, &cb) in p.cbs.iter().enumerate() {
            if pending[ci].is_empty() {
                let dst = pes[(ci * 13 + t as usize * 7) % pes.len()];
                let mut fl = PacketDesc::new(id, cb, dst, MessageClass::Reply, 5).flits(8);
                id += 1;
                fl.reverse();
                pending[ci] = fl;
            }
            if let Some(&f) = pending[ci].last() {
                let inj = net.local_injector(cb);
                if net.try_inject_flit(inj, f) {
                    pending[ci].pop();
                }
            }
        }
        net.step();
        for &pe in &pes {
            while net.pop_ejected_node(pe).is_some() {
                ejected += 1;
            }
        }
    }
    ejected
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("noc_throughput");
    let cycles = 2_000u64;
    g.throughput(Throughput::Elements(cycles));
    g.bench_function("mesh8x8_saturated_cycles", |b| {
        b.iter(|| black_box(run_cycles(black_box(cycles))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
