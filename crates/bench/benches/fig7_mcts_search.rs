//! Criterion bench for the Figure 7 design search: MCTS vs the GA and SA
//! baselines at equal (small) evaluation budgets.

use criterion::{criterion_group, criterion_main, Criterion};
use equinox_mcts::problem::EirProblem;
use equinox_mcts::{ga, sa, tree};
use equinox_placement::select::best_nqueen_placement;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let placement = best_nqueen_placement(8, 8, usize::MAX, 0);
    let problem = EirProblem::new(placement);
    let mut g = c.benchmark_group("fig7_search");
    g.sample_size(10);
    g.bench_function("mcts_200_iters", |b| {
        b.iter(|| {
            black_box(tree::search(
                &problem,
                &tree::MctsConfig {
                    iterations: 200,
                    seed: 1,
                    ..Default::default()
                },
            ))
        })
    });
    g.bench_function("ga_200_evals", |b| {
        b.iter(|| {
            black_box(ga::search(
                &problem,
                &ga::GaConfig {
                    population: 20,
                    generations: 10,
                    seed: 1,
                    ..Default::default()
                },
            ))
        })
    });
    g.bench_function("sa_200_steps", |b| {
        b.iter(|| {
            black_box(sa::search(
                &problem,
                &sa::SaConfig {
                    steps: 200,
                    seed: 1,
                    ..Default::default()
                },
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
