//! Content-addressed result caching for the experiment harness.
//!
//! A resolved [`ExperimentSpec`] plus a scenario (or a matrix cell's
//! `(scheme, n, bench)` coordinates) fully determines a run's output —
//! the simulator is bit-deterministic — so finished results can be
//! cached on disk keyed by a hash of the canonical spec rendering
//! ([`ExperimentSpec::cache_key_material`]) and replayed verbatim. Two
//! kinds live side by side in the spec's `checkpoint_dir`:
//!
//! * `artifact_<key>` — a whole `equinox.artifact/v1` document, stored
//!   and replayed byte-for-byte by the `equinox` driver.
//! * `run_<key>` — one [`RunMetrics`] cell of the scheme × benchmark
//!   matrix, encoded bit-exactly (floats by bit pattern) so a cache hit
//!   in [`run_seeds_spec`](crate::run_seeds_spec) is indistinguishable
//!   from recomputation.
//!
//! A corrupt, truncated or mismatched entry is treated as a miss and
//! rewritten; caching is never load-bearing for correctness.

use equinox_config::ExperimentSpec;
use equinox_core::{LatencyBreakdown, RunMetrics, SchemeKind};
use equinox_snap::{fnv1a, CheckpointCache, Dec, Enc, Snap, SnapError};

/// The cache a spec asks for (`None` when `checkpoint_dir` is empty).
pub fn cache_for(spec: &ExperimentSpec) -> Option<CheckpointCache> {
    (!spec.checkpoint_dir.is_empty()).then(|| CheckpointCache::new(&spec.checkpoint_dir))
}

/// Cache key for a whole scenario artifact.
pub fn artifact_key(scenario: &str, spec: &ExperimentSpec) -> u64 {
    fnv1a(format!("equinox.artifact/v1\n{scenario}\n{}", spec.cache_key_material()).as_bytes())
}

/// Cache key for one `(scheme, n, bench)` cell under the spec.
pub fn run_key(scheme: SchemeKind, n: u16, bench: &str, spec: &ExperimentSpec) -> u64 {
    fnv1a(
        format!(
            "equinox.run_metrics/v1\n{}\n{n}\n{bench}\n{}",
            scheme.name(),
            spec.cache_key_material()
        )
        .as_bytes(),
    )
}

fn scheme_tag(s: SchemeKind) -> u8 {
    SchemeKind::ALL.iter().position(|&k| k == s).expect("registered scheme") as u8
}

/// Serializes one [`RunMetrics`] bit-exactly.
pub fn encode_metrics(m: &RunMetrics) -> Vec<u8> {
    let mut e = Enc::new();
    e.put_u8(scheme_tag(m.scheme));
    m.benchmark.snap(&mut e);
    e.put_u64(m.cycles);
    e.put_f64(m.exec_ns);
    e.put_f64(m.ipc);
    e.put_bool(m.completed);
    e.put_f64(m.latency.req_queue_ns);
    e.put_f64(m.latency.req_net_ns);
    e.put_f64(m.latency.rep_queue_ns);
    e.put_f64(m.latency.rep_net_ns);
    e.put_f64(m.dynamic_j);
    e.put_f64(m.leakage_j);
    e.put_f64(m.edp);
    e.put_f64(m.area_mm2);
    e.put_usize(m.ubumps);
    e.put_f64(m.reply_bit_fraction);
    e.into_bytes()
}

/// Decodes an [`encode_metrics`] payload.
///
/// # Errors
///
/// Any malformed byte stream (truncation, trailing bytes, an unknown
/// scheme tag) returns a [`SnapError`]; the caller treats it as a miss.
pub fn decode_metrics(bytes: &[u8]) -> Result<RunMetrics, SnapError> {
    let mut d = Dec::new(bytes);
    let tag = d.u8()? as usize;
    let scheme = *SchemeKind::ALL.get(tag).ok_or(SnapError::BadValue("scheme tag"))?;
    let m = RunMetrics {
        scheme,
        benchmark: String::restore(&mut d)?,
        cycles: d.u64()?,
        exec_ns: d.f64()?,
        ipc: d.f64()?,
        completed: d.bool()?,
        latency: LatencyBreakdown {
            req_queue_ns: d.f64()?,
            req_net_ns: d.f64()?,
            rep_queue_ns: d.f64()?,
            rep_net_ns: d.f64()?,
        },
        dynamic_j: d.f64()?,
        leakage_j: d.f64()?,
        edp: d.f64()?,
        area_mm2: d.f64()?,
        ubumps: d.usize()?,
        reply_bit_fraction: d.f64()?,
    };
    d.finish()?;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_round_trip_bit_exactly() {
        let m = crate::run_one(SchemeKind::EquiNox, 8, "gaussian", 0.02, 1);
        let bytes = encode_metrics(&m);
        let r = decode_metrics(&bytes).unwrap();
        assert_eq!(r.scheme, m.scheme);
        assert_eq!(r.benchmark, m.benchmark);
        assert_eq!(r.cycles, m.cycles);
        assert_eq!(r.exec_ns.to_bits(), m.exec_ns.to_bits());
        assert_eq!(r.ipc.to_bits(), m.ipc.to_bits());
        assert_eq!(r.latency, m.latency);
        assert_eq!(r.edp.to_bits(), m.edp.to_bits());
        assert_eq!(r.ubumps, m.ubumps);
        // Corruption and truncation surface as errors, never bad data.
        for cut in 0..bytes.len() {
            assert!(decode_metrics(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut bad = bytes.clone();
        bad[0] = 99;
        assert!(decode_metrics(&bad).is_err());
    }

    #[test]
    fn keys_separate_cells_but_not_cache_locations() {
        let mut spec = ExperimentSpec::default();
        let a = run_key(SchemeKind::EquiNox, 8, "bfs", &spec);
        assert_ne!(a, run_key(SchemeKind::SingleBase, 8, "bfs", &spec));
        assert_ne!(a, run_key(SchemeKind::EquiNox, 12, "bfs", &spec));
        assert_ne!(a, run_key(SchemeKind::EquiNox, 8, "kmeans", &spec));
        assert_ne!(a, artifact_key("sweep", &spec));
        spec.checkpoint_dir = "/somewhere/else".into();
        assert_eq!(a, run_key(SchemeKind::EquiNox, 8, "bfs", &spec));
        spec.scale = 0.07;
        assert_ne!(a, run_key(SchemeKind::EquiNox, 8, "bfs", &spec));
    }
}
