//! The scenario registry: every runnable experiment, by name.
//!
//! A [`Scenario`] is a pure function of the resolved
//! [`ExperimentSpec`]: it renders its human-readable report to the
//! provided writer (the driver sends it to stderr, the legacy wrappers
//! to stdout) and returns its structured results as [`Json`], which the
//! driver wraps in an `equinox.artifact/v1` envelope. Scenario code
//! never touches `std::env` — everything it needs rides in the spec.
//!
//! The registry is the single source of truth for scenario names: the
//! driver's dispatch, its `--help` listing, and the `all` meta-scenario
//! iterate it.

use crate::artifact::{load_point_json, run_metrics_json};
use crate::{bench_set, design_for, run_matrix_spec, run_one_spec, run_seeds_spec, strong_design_8x8, timed_run_spec};
use equinox_config::{ExperimentSpec, Json};
use equinox_core::heatmap::placement_heatmap;
use equinox_core::loadlat::{load_latency_curve_cfg, load_latency_curve_checkpointed, ReplySide};
use equinox_core::svg::{design_svg, heatmap_svg};
use equinox_core::{EquiNoxDesign, ObsConfig, RunMetrics, SchemeKind, System, SystemConfig};
use equinox_mcts::eval::{evaluate, EvalWeights};
use equinox_mcts::problem::EirProblem;
use equinox_mcts::tree::{search, MctsConfig};
use equinox_mcts::{ga, sa};
use equinox_phys::segment::count_crossings;
use equinox_phys::{BumpModel, Coord};
use equinox_placement::nqueen::{solutions, to_placement};
use equinox_placement::select::best_nqueen_placement;
use equinox_placement::{Placement, PlacementScorer};
use equinox_traffic::Workload;
use std::io::Write;
use std::time::Instant;

/// One registered scenario.
pub struct Scenario {
    /// Name used as the driver's positional argument.
    pub name: &'static str,
    /// One-line description for `--help`.
    pub about: &'static str,
    /// Runs the scenario: human report to `log`, structured results out.
    pub run: fn(&ExperimentSpec, &mut dyn Write) -> Json,
}

/// All scenarios, in paper order.
pub fn scenarios() -> &'static [Scenario] {
    static SCENARIOS: &[Scenario] = &[
        Scenario { name: "table1", about: "Table 1: key simulation parameters", run: table1 },
        Scenario { name: "fig4", about: "Figure 4: placement heat maps + variances", run: fig4 },
        Scenario { name: "fig5", about: "Figure 5: N-Queen scoring policy", run: fig5 },
        Scenario { name: "fig7", about: "Figure 7: MCTS-selected EIR design", run: fig7 },
        Scenario { name: "fig9", about: "Figure 9: time/energy/EDP across schemes x benchmarks", run: fig9 },
        Scenario { name: "fig10", about: "Figure 10: packet-latency split", run: fig10 },
        Scenario { name: "fig11", about: "Figure 11: NoC area", run: fig11 },
        Scenario { name: "fig12", about: "Figure 12: scalability (8/12/16)", run: fig12 },
        Scenario { name: "ubumps", about: "Section 6.6: ubump accounting", run: ubumps },
        Scenario { name: "ablation", about: "Section 4 design-choice ablations", run: ablation },
        Scenario { name: "overfull", about: "Section 6.8: 12 CBs on an 8x8 mesh", run: overfull },
        Scenario { name: "extensions", about: "Reply compression + pipeline-depth extensions", run: extensions },
        Scenario { name: "svg", about: "Write the SVG figures into docs/", run: svg_artifacts },
        Scenario { name: "sweep", about: "Full scheme x benchmark matrix as raw run metrics", run: sweep },
        Scenario { name: "loadlat", about: "Reply-network load-latency curves (baseline vs EquiNox)", run: loadlat },
        Scenario { name: "perf", about: "Micro-benchmark the simulation substrate", run: perf },
        Scenario { name: "observe", about: "Instrumented EquiNox run: obs/v1 metrics block + Chrome trace", run: observe },
        Scenario { name: "designer", about: "Search and export an EquiNox design", run: designer },
        Scenario { name: "fabric", about: "Synthetic-traffic stress run on any topology (--topology/--traffic)", run: fabric },
        Scenario { name: "watch", about: "Attach to an --obs-stream telemetry feed and render a live dashboard", run: watch },
        Scenario { name: "all", about: "Every paper table and figure in sequence", run: all },
    ];
    SCENARIOS
}

/// Looks a scenario up by name.
pub fn scenario(name: &str) -> Option<&'static Scenario> {
    scenarios().iter().find(|s| s.name == name)
}

/// The auditor configuration a spec asks for (`None` when disarmed).
pub fn audit_cfg(spec: &ExperimentSpec) -> Option<equinox_noc::AuditConfig> {
    spec.audit.then_some(equinox_noc::AuditConfig {
        check_interval: spec.audit_check_interval,
        watchdog_window: spec.audit_watchdog_window,
        panic_on_violation: spec.audit_panic,
    })
}

macro_rules! out {
    ($log:expr) => { let _ = writeln!($log); };
    ($log:expr, $($t:tt)*) => { let _ = writeln!($log, $($t)*); };
}

fn header(log: &mut dyn Write, title: &str) {
    out!(log, "\n=== {title} ===");
}

fn table1(_spec: &ExperimentSpec, log: &mut dyn Write) -> Json {
    header(log, "Table 1: key simulation parameters");
    let rows = [
        ("Network size", "8x8 (12x12, 16x16 for scalability)"),
        ("Network routing", "Minimal adaptive (XY escape VC)"),
        ("Virtual channels", "2/port, 1 pkt (5 flits)/VC"),
        ("Allocator", "Separable input-first"),
        ("PE frequency", "1126 MHz"),
        ("L2 cache (LLC) per bank", "2 MB (modelled as hit probability)"),
        ("# of LLC banks", "8"),
        ("HBM bandwidth", "256 GB/s per stack"),
        ("Memory controllers", "8, FR-FCFS"),
        ("Link width", "128 bits"),
    ];
    let mut j = Json::obj();
    for (k, v) in rows {
        out!(log, "  {k:26} {v}");
        j = j.with(k, v);
    }
    j
}

fn fig4(_spec: &ExperimentSpec, log: &mut dyn Write) -> Json {
    header(log, "Figure 4: placement heat maps (avg cycles per router; variance)");
    let placements: Vec<(&str, Placement)> = vec![
        ("Top", Placement::top(8, 8, 8)),
        ("Side", Placement::side(8, 8, 8)),
        ("Diagonal", Placement::diagonal(8, 8, 8)),
        ("Diamond", Placement::diamond(8, 8, 8)),
        ("N-Queen", best_nqueen_placement(8, 8, usize::MAX, 0)),
    ];
    let heats = equinox_exec::par_map(placements, |_, (name, p)| {
        (name, placement_heatmap(&p, 0.85, 8_000, 1))
    });
    let mut variances = Json::obj();
    let mut rows = Vec::new();
    for (name, h) in heats {
        rows.push((name, h.variance));
        variances = variances.with(name, h.variance);
        out!(log, "-- {name} (variance {:.2}) --\n{}", h.variance, h.render());
    }
    out!(log, "variance summary (paper: Top 16.4 >> Diamond 0.84 > N-Queen 0.54):");
    for (name, v) in rows {
        out!(log, "  {name:9} {v:8.2}");
    }
    Json::obj().with("variance", variances)
}

fn fig5(_spec: &ExperimentSpec, log: &mut dyn Write) -> Json {
    header(log, "Figure 5: N-Queen scoring policy");
    let sols = solutions(8);
    out!(log, "  8x8 N-Queen solutions: {} (paper: 92)", sols.len());
    let scorer = PlacementScorer::new(8, 8);
    let mut scores: Vec<u64> = sols
        .iter()
        .map(|s| scorer.penalty(&to_placement(8, s, None).cbs))
        .collect();
    scores.sort_unstable();
    let (best_p, median_p, worst_p) =
        (scores[0], scores[scores.len() / 2], scores[scores.len() - 1]);
    out!(log, "  penalty scores: best {best_p} / median {median_p} / worst {worst_p}");
    let best = best_nqueen_placement(8, 8, usize::MAX, 0);
    let chosen = scorer.penalty(&best.cbs);
    out!(log, "  chosen placement (penalty {chosen}):");
    let _ = write!(log, "{best}");
    Json::obj()
        .with("solutions", sols.len())
        .with(
            "penalty",
            Json::obj().with("best", best_p).with("median", median_p).with("worst", worst_p),
        )
        .with("chosen_penalty", chosen)
}

fn render_design(log: &mut dyn Write, d: &EquiNoxDesign) {
    let n = d.placement.width;
    for y in 0..n {
        for x in 0..n {
            let t = Coord::new(x, y);
            if let Some(ci) = d.placement.cb_index(t) {
                let _ = write!(log, "C{ci} ");
            } else if let Some(ci) = d.selection.groups.iter().position(|g| g.contains(&t)) {
                let _ = write!(log, "e{ci} ");
            } else {
                let _ = write!(log, " . ");
            }
        }
        out!(log);
    }
}

fn fig7(_spec: &ExperimentSpec, log: &mut dyn Write) -> Json {
    header(log, "Figure 7: MCTS-selected EIR design for 8x8");
    let d = strong_design_8x8();
    render_design(log, d);
    let problem = EirProblem::new(d.placement.clone());
    let ev = evaluate(&problem, &d.selection, &EvalWeights::default());
    let segs = d.segments();
    let wire_mm = problem.wire.total_length_mm(&segs);
    out!(
        log,
        "  links {} | crossings {} (paper: 0) | RDL layers {} (paper: 1) | total wire {:.1} mm",
        d.num_links(),
        count_crossings(&segs),
        d.rdl_layers(),
        wire_mm,
    );
    let hops: Vec<u32> = segs.iter().map(|s| s.hop_length()).collect();
    let (hop_min, hop_max) = (*hops.iter().min().unwrap(), *hops.iter().max().unwrap());
    out!(log, "  EIR hop distances: min {hop_min} max {hop_max} (paper: all exactly 2)");
    out!(
        log,
        "  eval: load {:.3} | hops {:.2} ({:.0}% of no-EIR) | cost {:.3}",
        ev.max_load_norm,
        ev.avg_hops,
        ev.avg_hops_norm * 100.0,
        ev.cost
    );
    Json::obj()
        .with("links", d.num_links())
        .with("crossings", count_crossings(&segs) as u64)
        .with("rdl_layers", d.rdl_layers() as u64)
        .with("wire_mm", wire_mm)
        .with("hops", Json::obj().with("min", hop_min).with("max", hop_max))
        .with(
            "eval",
            Json::obj()
                .with("max_load_norm", ev.max_load_norm)
                .with("avg_hops", ev.avg_hops)
                .with("avg_hops_norm", ev.avg_hops_norm)
                .with("cost", ev.cost),
        )
}

/// Renders one normalized table to the log and returns it as JSON:
/// per-benchmark normalized values per scheme, plus per-scheme geomeans.
fn table_json(
    log: &mut dyn Write,
    title: &str,
    benches: &[&str],
    all_runs: &[Vec<RunMetrics>],
    f: impl Fn(&RunMetrics) -> f64,
) -> Json {
    header(log, title);
    let _ = write!(log, "{:18}", "benchmark");
    for s in SchemeKind::ALL {
        let _ = write!(log, "{:>18}", s.name());
    }
    out!(log);
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); 7];
    let mut rows = Json::obj();
    for (bench, runs) in benches.iter().zip(all_runs) {
        let base = f(&runs[0]);
        let _ = write!(log, "{bench:18}");
        let mut row = Vec::new();
        for (i, m) in runs.iter().enumerate() {
            let v = f(m) / base;
            per_scheme[i].push(v);
            row.push(Json::Num(v));
            let _ = write!(log, "{:>18.3}", v);
        }
        rows = rows.with(bench, row);
        out!(log);
    }
    let _ = write!(log, "{:18}", "geomean");
    let mut geo = Json::obj();
    for (s, vals) in SchemeKind::ALL.into_iter().zip(&per_scheme) {
        let g = equinox_core::metrics::geomean(vals);
        geo = geo.with(s.name(), g);
        let _ = write!(log, "{:>18.3}", g);
    }
    out!(log, "  (normalized to SingleBase)");
    Json::obj().with("normalized", rows).with("geomean", geo)
}

fn fig9(spec: &ExperimentSpec, log: &mut dyn Write) -> Json {
    let benches = bench_set(spec);
    // Simulate once (each scheme × benchmark cell in parallel); derive
    // all three tables from the same runs.
    let all_runs = run_matrix_spec(&SchemeKind::ALL, 8, &benches, spec);
    let time = table_json(
        log,
        "Figure 9(a): normalized execution time (paper geomeans: EquiNox 0.523, CMesh 0.621)",
        &benches,
        &all_runs,
        |m| m.exec_ns,
    );
    let energy = table_json(
        log,
        "Figure 9(b): normalized NoC energy (paper: EquiNox 0.850 of SingleBase)",
        &benches,
        &all_runs,
        |m| m.energy_j(),
    );
    let edp = table_json(
        log,
        "Figure 9(c): normalized EDP (paper: EquiNox 0.450 of SingleBase)",
        &benches,
        &all_runs,
        |m| m.edp,
    );
    Json::obj()
        .with("benches", benches.iter().map(|&b| Json::from(b)).collect::<Vec<_>>())
        .with("exec_time", time)
        .with("energy", energy)
        .with("edp", edp)
}

fn fig10(spec: &ExperimentSpec, log: &mut dyn Write) -> Json {
    header(log, "Figure 10: packet latency split, ns (geomean over quick subset)");
    out!(
        log,
        "{:18}{:>10}{:>10}{:>10}{:>10}{:>10}",
        "scheme", "req_queue", "req_net", "rep_queue", "rep_net", "total"
    );
    let runs = run_matrix_spec(&SchemeKind::ALL, 8, &crate::QUICK_BENCHES, spec);
    let mut j = Json::obj();
    for (si, scheme) in SchemeKind::ALL.into_iter().enumerate() {
        let mut qs = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for row in &runs {
            let m = &row[si];
            qs[0].push(m.latency.req_queue_ns.max(0.01));
            qs[1].push(m.latency.req_net_ns.max(0.01));
            qs[2].push(m.latency.rep_queue_ns.max(0.01));
            qs[3].push(m.latency.rep_net_ns.max(0.01));
        }
        let g: Vec<f64> = qs.iter().map(|v| equinox_core::metrics::geomean(v)).collect();
        out!(
            log,
            "{:18}{:>10.1}{:>10.1}{:>10.1}{:>10.1}{:>10.1}",
            scheme.name(),
            g[0],
            g[1],
            g[2],
            g[3],
            g.iter().sum::<f64>()
        );
        j = j.with(
            scheme.name(),
            Json::obj()
                .with("req_queue_ns", g[0])
                .with("req_net_ns", g[1])
                .with("rep_queue_ns", g[2])
                .with("rep_net_ns", g[3])
                .with("total_ns", g.iter().sum::<f64>()),
        );
    }
    out!(log, "(paper: request latency >> reply latency — reply-injection backpressure)");
    j
}

fn fig11(spec: &ExperimentSpec, log: &mut dyn Write) -> Json {
    header(log, "Figure 11: NoC area, mm^2 (relative; paper: EquiNox +4.6% vs SeparateBase)");
    // Area is load-independent, so a tiny fixed workload suffices.
    let mut area_spec = spec.clone();
    area_spec.scale = 0.02;
    let mut areas = Vec::new();
    for scheme in SchemeKind::ALL {
        let m = run_one_spec(scheme, 8, "gaussian", 1, &area_spec);
        areas.push((scheme, m.area_mm2));
    }
    let single = areas[0].1;
    let separate = areas[3].1;
    let mut j = Json::obj();
    for (s, a) in &areas {
        out!(
            log,
            "  {:18} {a:8.2} mm^2   ({:.2}x SingleBase, {:+.1}% vs SeparateBase)",
            s.name(),
            a / single,
            (a / separate - 1.0) * 100.0
        );
        j = j.with(s.name(), *a);
    }
    Json::obj().with("area_mm2", j)
}

fn fig12(spec: &ExperimentSpec, log: &mut dyn Write) -> Json {
    header(log, "Figure 12: scalability — EquiNox IPC vs SeparateBase (paper: 1.23x/1.31x/1.30x)");
    let sizes = [8u16, 12, 16];
    let jobs: Vec<(u16, SchemeKind)> = sizes
        .iter()
        .flat_map(|&n| [(n, SchemeKind::SeparateBase), (n, SchemeKind::EquiNox)])
        .collect();
    // Force the per-size design searches before the fan-out.
    for &n in &sizes {
        let _ = design_for(n);
    }
    let runs = equinox_exec::par_map(jobs, |_, (n, scheme)| {
        run_seeds_spec(scheme, n, "kmeans", spec)
    });
    let mut j = Json::obj();
    for (i, &n) in sizes.iter().enumerate() {
        let (s, e) = (&runs[2 * i], &runs[2 * i + 1]);
        out!(
            log,
            "  {n:2}x{n:<2}  SeparateBase IPC {:6.2}  EquiNox IPC {:6.2}  speedup {:.2}x",
            s.ipc,
            e.ipc,
            e.ipc / s.ipc
        );
        j = j.with(
            &format!("{n}x{n}"),
            Json::obj()
                .with("separate_base_ipc", s.ipc)
                .with("equinox_ipc", e.ipc)
                .with("speedup", e.ipc / s.ipc),
        );
    }
    j
}

fn ubumps(_spec: &ExperimentSpec, log: &mut dyn Write) -> Json {
    header(log, "Section 6.6: ubump accounting");
    let m = BumpModel::default();
    let cmesh = m.bump_count(2 * 64, 256, 1);
    let d = strong_design_8x8();
    let equinox = d.ubump_count(128);
    let saving = equinox_phys::bumps::saving_fraction(equinox as f64, cmesh as f64);
    out!(
        log,
        "  Interposer-CMesh: 128 uni links x 256b x 1 bump  = {cmesh} ubumps ({:.2} mm^2)",
        m.bump_area_mm2(cmesh)
    );
    out!(
        log,
        "  EquiNox: {} uni links x 128b x 2 bumps           = {equinox} ubumps ({:.2} mm^2)",
        d.num_links(),
        m.bump_area_mm2(equinox)
    );
    out!(log, "  saving: {:.2}% (paper: 81.25% with 24 links)", saving * 100.0);
    Json::obj()
        .with("cmesh_ubumps", cmesh as u64)
        .with("equinox_ubumps", equinox as u64)
        .with("saving_fraction", saving)
}

fn run_with_design(d: &EquiNoxDesign, bench: &str, spec: &ExperimentSpec) -> RunMetrics {
    let profile = equinox_traffic::profile::benchmark(bench).expect("known benchmark");
    let mut best: Option<RunMetrics> = None;
    for &seed in &spec.seeds {
        let mut cfg = SystemConfig::from_spec(
            SchemeKind::EquiNox,
            d.placement.width,
            Workload::new(profile, spec.scale, seed),
            spec,
        );
        cfg.design = Some(d.clone());
        let m = System::build(cfg).run();
        if best.as_ref().is_none_or(|b| m.cycles < b.cycles) {
            best = Some(m);
        }
    }
    best.expect("ran at least one seed")
}

fn ablation(spec: &ExperimentSpec, log: &mut dyn Write) -> Json {
    header(log, "Ablation A: search method quality (same evaluation function)");
    let placement = strong_design_8x8().placement.clone();
    let problem = EirProblem::new(placement.clone());
    let mcts = search(
        &problem,
        &MctsConfig { iterations: 2_000, seed: 7, ..Default::default() },
    );
    let ga_r = ga::search(
        &problem,
        &ga::GaConfig { population: 32, generations: 80, seed: 7, ..Default::default() },
    );
    let sa_r = sa::search(
        &problem,
        &sa::SaConfig { steps: 2_600, seed: 7, ..Default::default() },
    );
    let mut methods = Json::obj();
    for (name, r) in [("MCTS", &mcts), ("GA", &ga_r), ("SA", &sa_r)] {
        out!(
            log,
            "  {name:5} cost {:8.4}  crossings {:2}  links {:2}  evaluations {}",
            r.eval.cost,
            r.eval.crossings,
            r.selection.total_eirs(),
            r.evaluations
        );
        methods = methods.with(
            name,
            Json::obj()
                .with("cost", r.eval.cost)
                .with("crossings", r.eval.crossings as u64)
                .with("links", r.selection.total_eirs())
                .with("evaluations", r.evaluations as u64),
        );
    }

    header(log, "Ablation B: EIR hop budget (paper: 2 hops suffice)");
    let mut hop_budget = Json::obj();
    for max_hops in [2u32, 3, 4] {
        let mut p = EirProblem::new(placement.clone());
        p.max_hops = max_hops;
        let r = search(&p, &MctsConfig { iterations: 2_000, seed: 7, ..Default::default() });
        let d = EquiNoxDesign { placement: placement.clone(), selection: r.selection };
        let m = run_with_design(&d, "kmeans", spec);
        out!(
            log,
            "  max_hops {max_hops}: cost {:.3} crossings {} -> exec {} cycles",
            r.eval.cost, r.eval.crossings, m.cycles
        );
        hop_budget = hop_budget.with(
            &max_hops.to_string(),
            Json::obj()
                .with("cost", r.eval.cost)
                .with("crossings", r.eval.crossings as u64)
                .with("cycles", m.cycles),
        );
    }

    header(log, "Ablation C: EIRs per group (paper balances number vs. capability)");
    let mut group_size = Json::obj();
    for k in [1usize, 2, 4, 6] {
        let mut p = EirProblem::new(placement.clone());
        p.group_size = k;
        let r = search(&p, &MctsConfig { iterations: 1_500, seed: 7, ..Default::default() });
        let d = EquiNoxDesign { placement: placement.clone(), selection: r.selection };
        let m = run_with_design(&d, "kmeans", spec);
        out!(
            log,
            "  group_size {k}: links {:2} load {:.3} -> exec {} cycles",
            d.num_links(),
            r.eval.max_load_norm,
            m.cycles
        );
        group_size = group_size.with(
            &k.to_string(),
            Json::obj()
                .with("links", d.num_links())
                .with("max_load_norm", r.eval.max_load_norm)
                .with("cycles", m.cycles),
        );
    }

    header(log, "Ablation D: CB placement under EIRs (N-Queen vs Diamond)");
    let mut placements = Json::obj();
    for (name, plc) in [
        ("N-Queen", placement.clone()),
        ("Diamond", Placement::diamond(8, 8, 8)),
    ] {
        let p = EirProblem::new(plc.clone());
        let r = search(&p, &MctsConfig { iterations: 2_000, seed: 7, ..Default::default() });
        let d = EquiNoxDesign { placement: plc, selection: r.selection };
        let m = run_with_design(&d, "kmeans", spec);
        let penalty = PlacementScorer::new(8, 8).penalty(&d.placement.cbs);
        out!(
            log,
            "  {name:8} crossings {:2} RDL layers {} -> exec {} cycles (penalty {})",
            r.eval.crossings,
            d.rdl_layers(),
            m.cycles,
            penalty
        );
        placements = placements.with(
            name,
            Json::obj()
                .with("crossings", r.eval.crossings as u64)
                .with("rdl_layers", d.rdl_layers() as u64)
                .with("cycles", m.cycles)
                .with("penalty", penalty),
        );
    }
    Json::obj()
        .with("search_methods", methods)
        .with("hop_budget", hop_budget)
        .with("group_size", group_size)
        .with("placement", placements)
}

/// §6.8: more CBs than rows — knight-move placement + EIRs.
fn overfull(spec: &ExperimentSpec, log: &mut dyn Write) -> Json {
    header(log, "Section 6.8: 12 cache banks on an 8x8 mesh (knight-move placement)");
    let d = EquiNoxDesign::search_k(8, 12, 1_500, 7, 1);
    out!(log, "{}", d.render());
    out!(
        log,
        "  attacking CB pairs {} | links {} | crossings {} | RDL layers {}",
        equinox_placement::knight::attacking_pairs(&d.placement),
        d.num_links(),
        count_crossings(&d.segments()),
        d.rdl_layers()
    );
    let profile = equinox_traffic::profile::benchmark("kmeans").expect("known");
    let seed = spec.seeds[0];
    let mut j = Json::obj()
        .with("links", d.num_links())
        .with("crossings", count_crossings(&d.segments()) as u64)
        .with("rdl_layers", d.rdl_layers() as u64);
    for scheme in [SchemeKind::SeparateBase, SchemeKind::EquiNox] {
        let mut cfg =
            SystemConfig::from_spec(scheme, 8, Workload::new(profile, spec.scale, seed), spec);
        cfg.n_cbs = 12;
        if scheme == SchemeKind::EquiNox {
            cfg.design = Some(d.clone());
        } else {
            cfg.placement_override = Some(d.placement.clone());
        }
        let m = System::build(cfg).run();
        out!(log, "  {:14} {:>7} cycles | EDP {:.2e}", scheme.name(), m.cycles, m.edp);
        j = j.with(
            scheme.name(),
            Json::obj().with("cycles", m.cycles).with("edp", m.edp),
        );
    }
    j
}

/// Extensions: reply compression (§7 \[47\], orthogonal) and router
/// pipeline depth sensitivity.
fn extensions(spec: &ExperimentSpec, log: &mut dyn Write) -> Json {
    let profile = equinox_traffic::profile::benchmark("kmeans").expect("known");
    let d = strong_design_8x8();
    let seed = spec.seeds[0];

    header(log, "Extension: reply compression is complementary to EquiNox (§7)");
    let mut compression = Vec::new();
    for (scheme, comp) in [
        (SchemeKind::SeparateBase, 0.0),
        (SchemeKind::SeparateBase, 0.6),
        (SchemeKind::EquiNox, 0.0),
        (SchemeKind::EquiNox, 0.6),
    ] {
        let mut cfg =
            SystemConfig::from_spec(scheme, 8, Workload::new(profile, spec.scale, seed), spec);
        cfg.design = Some(d.clone());
        cfg.reply_compression = comp;
        let m = System::build(cfg).run();
        out!(
            log,
            "  {:14} compression {:.0}% -> {:>7} cycles, EDP {:.2e}",
            scheme.name(),
            comp * 100.0,
            m.cycles,
            m.edp
        );
        compression.push(
            Json::obj()
                .with("scheme", scheme.name())
                .with("compression", comp)
                .with("cycles", m.cycles)
                .with("edp", m.edp),
        );
    }

    header(log, "Extension: router pipeline depth sensitivity");
    let mut pipeline = Vec::new();
    for extra in [0u32, 1, 2] {
        let mut a = SystemConfig::from_spec(
            SchemeKind::SeparateBase,
            8,
            Workload::new(profile, spec.scale, seed),
            spec,
        );
        a.pipeline_extra = extra;
        let base = System::build(a).run();
        let mut b = SystemConfig::from_spec(
            SchemeKind::EquiNox,
            8,
            Workload::new(profile, spec.scale, seed),
            spec,
        );
        b.design = Some(d.clone());
        b.pipeline_extra = extra;
        let eq = System::build(b).run();
        out!(
            log,
            "  +{extra} stages: SeparateBase {:>7} cycles | EquiNox {:>7} cycles | speedup {:.2}x",
            base.cycles,
            eq.cycles,
            base.cycles as f64 / eq.cycles as f64
        );
        pipeline.push(
            Json::obj()
                .with("extra_stages", extra)
                .with("separate_base_cycles", base.cycles)
                .with("equinox_cycles", eq.cycles)
                .with("speedup", base.cycles as f64 / eq.cycles as f64),
        );
    }
    Json::obj().with("compression", compression).with("pipeline_depth", pipeline)
}

/// Writes the SVG artifacts (Figure 7 wiring diagram, Figure 4 heat
/// maps) into docs/.
fn svg_artifacts(_spec: &ExperimentSpec, log: &mut dyn Write) -> Json {
    header(log, "SVG artifacts -> docs/");
    std::fs::create_dir_all("docs").expect("create docs dir");
    let d = strong_design_8x8();
    std::fs::write("docs/fig7_design.svg", design_svg(d)).expect("write fig7 svg");
    out!(log, "  docs/fig7_design.svg");
    let mut written = vec![Json::from("docs/fig7_design.svg")];
    for (name, p) in [
        ("top", Placement::top(8, 8, 8)),
        ("diamond", Placement::diamond(8, 8, 8)),
        ("nqueen", best_nqueen_placement(8, 8, usize::MAX, 0)),
    ] {
        let h = placement_heatmap(&p, 0.85, 8_000, 1);
        let path = format!("docs/fig4_{name}.svg");
        std::fs::write(&path, heatmap_svg(&h, &p.cbs)).expect("write heat svg");
        out!(log, "  {path} (variance {:.2})", h.variance);
        written.push(Json::from(path));
    }
    Json::obj().with("written", written)
}

/// Full scheme × benchmark matrix emitted as raw per-run metrics — the
/// machine-readable counterpart of fig9/fig10's derived tables.
fn sweep(spec: &ExperimentSpec, log: &mut dyn Write) -> Json {
    let benches = bench_set(spec);
    out!(
        log,
        "sweeping {} schemes x {} benchmarks x {} seeds (mesh {}x{})…",
        SchemeKind::ALL.len(),
        benches.len(),
        spec.seeds.len(),
        spec.n,
        spec.n
    );
    let rows = run_matrix_spec(&SchemeKind::ALL, spec.n, &benches, spec);
    let mut runs = Vec::new();
    for row in &rows {
        runs.push(Json::Arr(row.iter().map(run_metrics_json).collect()));
    }
    out!(log, "done: {} cells", rows.iter().map(Vec::len).sum::<usize>());
    Json::obj()
        .with("benches", benches.iter().map(|&b| Json::from(b)).collect::<Vec<_>>())
        .with(
            "schemes",
            SchemeKind::ALL.iter().map(|s| Json::from(s.name())).collect::<Vec<_>>(),
        )
        .with("runs", runs)
}

/// Reply-network load–latency curves: local-buffer baseline vs the
/// EquiNox injection structure (the old `sweep` binary's experiment).
fn loadlat(spec: &ExperimentSpec, log: &mut dyn Write) -> Json {
    out!(
        log,
        "searching design ({}x{}, {} CBs, {} iterations, seed {})…",
        spec.n, spec.n, spec.n_cbs, spec.iters, spec.seed
    );
    let design = EquiNoxDesign::search(spec.n, spec.n_cbs, spec.iters, spec.seed);
    let rates: Vec<f64> = (1..=20).map(|i| i as f64 / 20.0).collect();
    let audit = audit_cfg(spec);
    let seed = spec.seeds[0];
    // With a checkpoint dir armed, each point's warm-up phase is
    // snapshotted/restored through the content-addressed cache; the
    // curves are bit-identical either way.
    let curve = |side: &ReplySide, audit: Option<equinox_noc::AuditConfig>| {
        if spec.checkpoint_dir.is_empty() {
            load_latency_curve_cfg(
                &design.placement,
                side,
                &rates,
                spec.cycles,
                seed,
                audit,
                spec.activity_gate,
            )
        } else {
            load_latency_curve_checkpointed(
                &design.placement,
                side,
                &rates,
                spec.cycles,
                seed,
                audit,
                spec.activity_gate,
                &spec.checkpoint_dir,
            )
        }
    };
    let base = curve(&ReplySide::Local, audit.clone());
    let eq = curve(&ReplySide::Equinox(design.clone()), audit);
    out!(log, "measured {} rates x 2 sides over {} cycles", rates.len(), spec.cycles);
    Json::obj()
        .with("links", design.num_links())
        .with("baseline", base.iter().map(load_point_json).collect::<Vec<_>>())
        .with("equinox", eq.iter().map(load_point_json).collect::<Vec<_>>())
}

/// Micro-benchmark of the simulation substrate itself (see the `perf`
/// wrapper's docs for what each rate means).
fn perf(spec: &ExperimentSpec, log: &mut dyn Write) -> Json {
    // Warm everything the timed regions would otherwise pay for once:
    // the cached 8×8 EquiNox design and the allocator's steady state.
    out!(log, "warming design cache + hot loop…");
    let _ = design_for(8);
    let _ = run_one_spec(SchemeKind::SeparateBase, 8, "kmeans", 1, spec);

    // Single-simulation cycle rate (sequential hot loop), saturated.
    let reps = if spec.quick { 1 } else { 3 };
    let mut best_rate = 0f64;
    for _ in 0..reps {
        let (cycles, secs) = timed_run_spec(SchemeKind::SeparateBase, 8, "kmeans", 1, spec);
        best_rate = best_rate.max(cycles as f64 / secs);
    }

    // Intra-run parallelism: the saturated DA2Mesh configuration (one
    // request mesh + eight reply subnets, the densest subnet fan-out in
    // the paper) at sim-threads 1 vs 4. The ratio is what the perf gate
    // bounds on multi-core machines; both absolute rates are recorded
    // so the refreshed baseline stays honest about the machine it ran
    // on (a `cores` field rides along in the JSON line).
    out!(log, "measuring DA2Mesh sim-thread scaling…");
    let mut da2_rate = [0f64; 2];
    for (slot, lanes) in [(0usize, 1usize), (1, 4)] {
        let mut s = spec.clone();
        s.sim_threads = lanes;
        for _ in 0..reps {
            let (cycles, secs) = timed_run_spec(SchemeKind::Da2Mesh, 8, "kmeans", 1, &s);
            da2_rate[slot] = da2_rate[slot].max(cycles as f64 / secs);
        }
    }
    let sim_thread_speedup = if da2_rate[0] > 0.0 {
        da2_rate[1] / da2_rate[0]
    } else {
        0.0
    };

    // Observability overhead: the same saturated single-sim hot loop
    // with the full obs layer armed (registry sampling plus per-router
    // stall attribution). The perf gate bounds the obs-on/obs-off
    // ratio, pinning the "one branch per event" cost claim.
    out!(log, "measuring obs-armed cycle rate…");
    let mut obs_rate = 0f64;
    {
        let mut s = spec.clone();
        s.obs = true;
        for _ in 0..reps {
            let (cycles, secs) = timed_run_spec(SchemeKind::SeparateBase, 8, "kmeans", 1, &s);
            obs_rate = obs_rate.max(cycles as f64 / secs);
        }
    }

    // Low-load cycle rate: one deeply sub-saturation load–latency point,
    // where activity-gated stepping pays off.
    let placement = Placement::diamond(8, 8, 8);
    let low_cycles = 50_000u64;
    let audit = audit_cfg(spec);
    let measure = |cycles: u64| {
        load_latency_curve_cfg(
            &placement,
            &ReplySide::Local,
            &[0.02],
            cycles,
            1,
            audit.clone(),
            spec.activity_gate,
        )
    };
    let _ = measure(5_000);
    let mut low_load_rate = 0f64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let pts = measure(low_cycles);
        let rate = low_cycles as f64 / t0.elapsed().as_secs_f64();
        assert!(pts[0].throughput > 0.0, "low-load run carried no traffic");
        low_load_rate = low_load_rate.max(rate);
    }

    // Quick repro sweep (7 schemes × 6 benchmarks × seeds) on the pool.
    let t0 = Instant::now();
    let rows = run_matrix_spec(&SchemeKind::ALL, 8, &crate::QUICK_BENCHES, spec);
    let sweep_wall_s = t0.elapsed().as_secs_f64();
    let sims = rows.iter().map(Vec::len).sum::<usize>() * spec.seeds.len();

    // The same sweep served from the content-addressed result cache: a
    // throwaway checkpoint dir is populated (untimed), then the
    // cache-served pass is timed. The perf gate bounds the speedup.
    out!(log, "measuring cache-served sweep…");
    let ckpt = std::env::temp_dir().join(format!("equinox_perf_ckpt_{}", std::process::id()));
    let mut cspec = spec.clone();
    cspec.checkpoint_dir = ckpt.to_string_lossy().into_owned();
    std::fs::remove_dir_all(&ckpt).ok();
    let warm = run_matrix_spec(&SchemeKind::ALL, 8, &crate::QUICK_BENCHES, &cspec);
    let t0 = Instant::now();
    let cached = run_matrix_spec(&SchemeKind::ALL, 8, &crate::QUICK_BENCHES, &cspec);
    let sweep_cached_wall_s = t0.elapsed().as_secs_f64();
    std::fs::remove_dir_all(&ckpt).ok();
    for (a, b) in warm.iter().flatten().zip(cached.iter().flatten()) {
        assert_eq!(a.cycles, b.cycles, "cache served different metrics");
        assert_eq!(a.edp.to_bits(), b.edp.to_bits(), "cache served different metrics");
    }
    let cached_sweep_speedup = if sweep_cached_wall_s > 0.0 {
        sweep_wall_s / sweep_cached_wall_s
    } else {
        f64::INFINITY
    };

    Json::obj()
        .with("single_cycles_per_sec", best_rate.round())
        .with("obs_on_cycles_per_sec", obs_rate.round())
        .with("da2mesh_cycles_per_sec", da2_rate[0].round())
        .with("da2mesh_cycles_per_sec_simt4", da2_rate[1].round())
        .with("sim_thread_speedup", (sim_thread_speedup * 1000.0).round() / 1000.0)
        .with("low_load_cycles_per_sec", low_load_rate.round())
        .with("sweep_wall_s", (sweep_wall_s * 1000.0).round() / 1000.0)
        .with("sweep_cached_wall_s", (sweep_cached_wall_s * 1000.0).round() / 1000.0)
        .with("cached_sweep_speedup", (cached_sweep_speedup * 1000.0).round() / 1000.0)
        .with("sweep_sims", sims)
        .with("threads", equinox_exec::thread_count())
        .with(
            "cores",
            std::thread::available_parallelism().map_or(1, |n| n.get()),
        )
        .with("scale", spec.scale)
}

/// Searches an EquiNox design per the spec and returns it in both the
/// stable text format and as an SVG wiring diagram (the wrapper's
/// `--out`/`--svg` write these fields to files).
fn designer(spec: &ExperimentSpec, log: &mut dyn Write) -> Json {
    out!(
        log,
        "searching: {}x{} mesh, {} CBs, {} MCTS iterations, seed {}…",
        spec.n, spec.n, spec.n_cbs, spec.iters, spec.seed
    );
    let start = Instant::now();
    let design = EquiNoxDesign::search(spec.n, spec.n_cbs, spec.iters, spec.seed);
    out!(log, "search took {:.1?}", start.elapsed());
    out!(log, "{}", design.render());
    let crossings = count_crossings(&design.segments());
    out!(
        log,
        "links {} | crossings {} | RDL layers {} | ubumps {}",
        design.num_links(),
        crossings,
        design.rdl_layers(),
        design.ubump_count(128)
    );
    Json::obj()
        .with("links", design.num_links())
        .with("crossings", crossings as u64)
        .with("rdl_layers", design.rdl_layers() as u64)
        .with("ubumps", design.ubump_count(128) as u64)
        .with("design_text", design.to_text())
        .with("svg", design_svg(&design))
}

/// Every paper table and figure in sequence (the repro default).
fn observe(spec: &ExperimentSpec, log: &mut dyn Write) -> Json {
    header(log, "Observability: metrics registry, time series, spans, flit trace");
    let profile = equinox_traffic::profile::benchmark("bfs").expect("known");
    let seed = spec.seeds[0];
    let mut cfg = SystemConfig::from_spec(
        SchemeKind::EquiNox,
        8,
        Workload::new(profile, spec.scale, seed),
        spec,
    );
    cfg.design = Some(design_for(8));
    // The scenario exists to exercise the observability layer, so it is
    // armed even when the spec left `--obs` off; the spec's
    // `--obs-interval` / `--trace` / `--trace-capacity` still apply.
    if cfg.obs.is_none() {
        cfg.obs = Some(ObsConfig {
            interval: spec.obs_interval.max(1),
            ..Default::default()
        });
    }
    let mut sys = System::build(cfg);
    let m = sys.run();
    out!(
        log,
        "  EquiNox/bfs: {} cycles, {} packets delivered",
        m.cycles,
        sys.tracker.delivered()
    );
    let _ = log.write_all(sys.obs_summary().as_bytes());
    for (i, hm) in sys.heat_maps().iter().enumerate() {
        out!(log, "  net{i} heat variance {:.3}", hm.variance);
    }
    let obs = sys.obs_json().expect("observe arms the obs layer");
    let obs_v2 = sys.obs_json_v2().expect("observe arms the obs layer");
    let mut j = Json::obj()
        .with("metrics", run_metrics_json(&m))
        .with("obs", obs)
        .with("obs_v2", obs_v2);
    if let Some((lines, errors)) = sys.obs_stream_stats() {
        out!(log, "  stream: {lines} frames written, {errors} write errors");
    }
    // The Chrome export drains the flit rings, so it comes last. It is
    // always assembled (spans alone make a useful timeline); the file is
    // only written when the spec names a destination.
    let doc = sys.export_chrome_trace();
    let events = doc.matches("\"ph\": ").count();
    out!(log, "  chrome trace: {events} events");
    j = j.with("trace_events", events as u64);
    if !spec.trace_out.is_empty() {
        std::fs::write(&spec.trace_out, &doc).expect("write trace file");
        out!(log, "  wrote {}", spec.trace_out);
        j = j.with("trace_out", spec.trace_out.as_str());
    }
    j
}

/// Synthetic-traffic stress run on an arbitrary fabric: builds a bare
/// network from the spec's `--topology` / `--n`, drives the spec's
/// `--traffic` pattern at `--scale` packets per node per cycle for
/// `--cycles` cycles, drains to quiescence, and self-checks a
/// mid-flight snapshot → restore → snapshot byte round-trip. With
/// `--audit` the invariant auditor sweeps the whole run, so this is the
/// deadlock-freedom gauntlet for new topologies.
fn fabric(spec: &ExperimentSpec, log: &mut dyn Write) -> Json {
    use equinox_exec::Rng;
    use equinox_noc::flit::{Flit, MessageClass, PacketDesc};
    use equinox_noc::network::Network;
    use equinox_noc::{NocConfig, TopologyKind};
    use equinox_traffic::SyntheticPattern;

    // The spec layer validated both names; failure here means the spec
    // and noc/traffic registries drifted apart.
    let topo = TopologyKind::parse(&spec.topology).expect("spec-validated topology");
    let pattern = SyntheticPattern::parse(&spec.traffic).expect("spec-validated traffic");
    header(
        log,
        &format!("Fabric stress: {} {}x{}, {} traffic", topo.name(), spec.n, spec.n, pattern.name()),
    );

    let mut cfg = NocConfig::fabric(topo, spec.n);
    cfg.pipeline_extra = spec.pipeline_extra;
    cfg.activity_gate = spec.activity_gate;
    let arm = |cfg: &NocConfig| {
        let mut net = Network::new(cfg.clone());
        if let Some(a) = audit_cfg(spec) {
            net.enable_audit(a);
        }
        net
    };
    let mut net = arm(&cfg);
    let (w, h) = (net.width(), net.height());
    let nodes: Vec<Coord> = (0..h).flat_map(|y| (0..w).map(move |x| Coord::new(x, y))).collect();
    let offered = spec.scale;
    let cycles = spec.cycles;
    let mut rng = Rng::seed_from_u64(spec.seed);
    let len = 5u16;
    let mut pending: Vec<Vec<Flit>> = vec![Vec::new(); nodes.len()];
    let mut pkt_id = 0u64;
    let mut born: Vec<u64> = Vec::new();
    let mut delivered = 0u64;
    let mut latency_sum = 0u64;
    let mut roundtrip = false;

    let mut t = 0u64;
    // Measured window, then drain with injection stopped (budget scales
    // with what is still in flight; a healthy fabric needs a fraction).
    while t < cycles + 200_000 {
        for (i, &src) in nodes.iter().enumerate() {
            // New packets only inside the measured window; flits of a
            // packet already started keep streaming during the drain.
            if t < cycles
                && pending[i].is_empty()
                && pattern.active(t, i)
                && rng.random::<f64>() < offered
            {
                if let Some(d) = pattern.dest(i, w, h, &mut rng) {
                    let dst = nodes[d];
                    let desc = PacketDesc::new(pkt_id, src, dst, MessageClass::Reply, len);
                    pkt_id += 1;
                    born.push(t);
                    let mut flits = desc.flits(w);
                    flits.reverse(); // pop from the back
                    pending[i] = flits;
                }
            }
            if let Some(&f) = pending[i].last() {
                let inj = net.local_injector(src);
                if net.try_inject_flit(inj, f) {
                    pending[i].pop();
                }
            }
        }
        net.step();
        for &node in &nodes {
            while let Some(f) = net.pop_ejected_node(node) {
                if f.seq + 1 == len {
                    delivered += 1;
                    latency_sum += t + 1 - born[f.pkt.0 as usize];
                }
            }
        }
        if t + 1 == cycles / 2 {
            // Snapshot → restore into a fresh identically-armed network
            // → snapshot again: the two byte streams must be identical.
            let mut e = equinox_snap::Enc::new();
            net.snapshot_state(&mut e);
            let bytes = e.into_bytes();
            let mut twin = arm(&cfg);
            twin.restore_state(&mut equinox_snap::Dec::new(&bytes))
                .expect("mid-flight snapshot restores");
            let mut e2 = equinox_snap::Enc::new();
            twin.snapshot_state(&mut e2);
            assert_eq!(bytes, e2.into_bytes(), "snapshot round-trip drifted");
            roundtrip = true;
        }
        t += 1;
        if t >= cycles && net.quiescent() && pending.iter().all(Vec::is_empty) {
            break;
        }
    }
    assert!(net.quiescent(), "fabric failed to drain after injection stopped");

    let s = net.stats();
    let avg_lat = if delivered > 0 { latency_sum as f64 / delivered as f64 } else { 0.0 };
    let throughput = s.ejected_flits as f64 / t.max(1) as f64 / nodes.len() as f64;
    out!(log, "  offered {offered} pkt/node/cycle for {cycles} cycles (+{} drain)", t.saturating_sub(cycles));
    out!(log, "  delivered {delivered}/{pkt_id} packets, avg latency {avg_lat:.1} cycles");
    out!(log, "  throughput {throughput:.4} flits/node/cycle");
    if spec.audit {
        out!(log, "  audit: {} sweeps, {} violations", net.audit_sweeps(), net.audit_violations().len());
    }
    assert_eq!(delivered, pkt_id, "every injected packet must arrive");
    assert_eq!(s.injected_flits, s.ejected_flits);

    let mut j = Json::obj()
        .with("topology", topo.name())
        .with("traffic", pattern.name())
        .with("width", w)
        .with("height", h)
        .with("offered", offered)
        .with("cycles", cycles)
        .with("drain_cycles", t.saturating_sub(cycles))
        .with("packets", pkt_id)
        .with("avg_packet_latency", avg_lat)
        .with("throughput_flits_per_node_cycle", throughput)
        .with("injected_flits", s.injected_flits)
        .with("ejected_flits", s.ejected_flits)
        .with("snapshot_roundtrip", roundtrip);
    if spec.audit {
        j = j
            .with("audit_sweeps", net.audit_sweeps())
            .with("audit_violations", net.audit_violations().len() as u64);
    }
    j
}

/// Attaches to the telemetry stream named by `--obs-stream` and renders
/// the live dashboard (see the `watch` module). For `tcp:host:port`
/// targets this side listens and the instrumented run connects out, so
/// start `equinox watch` first; for file targets it tails the file,
/// live or post-hoc.
fn watch(spec: &ExperimentSpec, log: &mut dyn Write) -> Json {
    assert!(
        !spec.obs_stream.is_empty(),
        "watch needs --obs-stream <path|tcp:host:port> naming the feed to attach to"
    );
    header(log, &format!("Watching telemetry stream {}", spec.obs_stream));
    let stats = crate::watch::watch(&spec.obs_stream, log)
        .unwrap_or_else(|e| panic!("watch {}: {e}", spec.obs_stream));
    out!(
        log,
        "  {} frames ({} samples), {} corrupt lines, last cycle {}",
        stats.frames, stats.samples, stats.corrupt, stats.last_cycle
    );
    stats.to_json().with("target", spec.obs_stream.as_str())
}

fn all(spec: &ExperimentSpec, log: &mut dyn Write) -> Json {
    let mut j = Json::obj();
    for s in scenarios() {
        if matches!(s.name, "all" | "sweep" | "loadlat" | "perf" | "observe" | "designer" | "fabric" | "watch") {
            continue;
        }
        j = j.with(s.name, (s.run)(spec, &mut *log));
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut names: Vec<&str> = scenarios().iter().map(|s| s.name).collect();
        assert!(names.contains(&"all"));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scenarios().len(), "duplicate scenario name");
        for n in names {
            assert!(scenario(n).is_some());
        }
        assert!(scenario("nope").is_none());
    }

    #[test]
    fn table1_logs_and_returns_rows() {
        let mut log = Vec::new();
        let j = table1(&ExperimentSpec::default(), &mut log);
        let text = String::from_utf8(log).unwrap();
        assert!(text.contains("Table 1"));
        assert_eq!(
            j.get("Link width").and_then(Json::as_str),
            Some("128 bits")
        );
    }

    #[test]
    fn spec_choice_lists_match_the_parsers() {
        // The spec layer validates names against its own static lists;
        // this pins them to the actual parsers so they cannot drift.
        for t in equinox_config::spec::TOPOLOGY_CHOICES {
            let k = equinox_noc::TopologyKind::parse(t).expect("spec topology parses");
            assert_eq!(k.name(), *t);
        }
        for p in equinox_config::spec::TRAFFIC_CHOICES {
            let k = equinox_traffic::SyntheticPattern::parse(p).expect("spec traffic parses");
            assert_eq!(k.name(), *p);
        }
        assert_eq!(
            equinox_config::spec::TRAFFIC_CHOICES.len(),
            equinox_traffic::SyntheticPattern::all().len(),
            "a pattern exists that the spec cannot name"
        );
    }

    /// Every topology × pattern combination runs the fabric scenario
    /// end-to-end under audit, including the snapshot round-trip
    /// self-check. Short window, small grid: this is a smoke matrix,
    /// the deep soaks live in the noc crate's property tests.
    #[test]
    fn fabric_scenario_runs_every_topology_and_pattern() {
        for topo in equinox_config::spec::TOPOLOGY_CHOICES {
            for traffic in equinox_config::spec::TRAFFIC_CHOICES {
                let mut spec = ExperimentSpec::default();
                spec.n = 4;
                spec.topology = topo.to_string();
                spec.traffic = traffic.to_string();
                spec.scale = 0.1;
                spec.cycles = 400;
                spec.audit = true;
                let mut log = Vec::new();
                let j = fabric(&spec, &mut log);
                assert_eq!(j.get("topology").and_then(Json::as_str), Some(*topo));
                assert_eq!(j.get("traffic").and_then(Json::as_str), Some(*traffic));
                assert_eq!(j.get("snapshot_roundtrip"), Some(&Json::Bool(true)));
                assert_eq!(j.get("audit_violations").and_then(Json::as_u64), Some(0));
                let inj = j.get("injected_flits").and_then(Json::as_u64).unwrap();
                assert!(inj > 0, "{topo}/{traffic} must move traffic");
            }
        }
    }

    #[test]
    fn audit_cfg_mirrors_the_spec() {
        let mut spec = ExperimentSpec::default();
        assert!(audit_cfg(&spec).is_none());
        spec.audit = true;
        spec.audit_check_interval = 32;
        spec.audit_watchdog_window = 123;
        spec.audit_panic = false;
        let a = audit_cfg(&spec).unwrap();
        assert_eq!(a.check_interval, 32);
        assert_eq!(a.watchdog_window, 123);
        assert!(!a.panic_on_violation);
    }
}
