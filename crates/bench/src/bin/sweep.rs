//! `sweep` — reply-network load–latency curves as CSV.
//!
//! ```text
//! sweep [--n 8] [--cycles 6000] [--out curve.csv] [--threads N] [--audit]
//!       [--no-activity-gate]
//! ```
//!
//! Emits `offered,baseline_latency,baseline_throughput,equinox_latency,
//! equinox_throughput` rows, ready for plotting. The 20 rate points of
//! each curve run in parallel on the worker pool; `--threads` (or
//! `EQUINOX_THREADS`) pins the worker count without changing the output.
//! `--audit` sets `EQUINOX_AUDIT=1` so every measured network runs with
//! the invariant auditor enabled (panics on the first violation).
//! `--no-activity-gate` sets `EQUINOX_NO_ACTIVITY_GATE=1` to fall back
//! to exhaustive every-router-every-cycle stepping (bit-identical,
//! slower — an escape hatch and cross-check).

use equinox_core::loadlat::{load_latency_curve, ReplySide};
use equinox_core::EquiNoxDesign;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--audit") {
        std::env::set_var("EQUINOX_AUDIT", "1");
    }
    if args.iter().any(|a| a == "--no-activity-gate") {
        std::env::set_var("EQUINOX_NO_ACTIVITY_GATE", "1");
    }
    let get = |name: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let n = get("--n", 8) as u16;
    let cycles = get("--cycles", 6_000);
    if args.iter().any(|a| a == "--threads") {
        equinox_exec::set_threads(get("--threads", 0) as usize);
    }
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let design = EquiNoxDesign::search(n, 8, 1_500, 7);
    let rates: Vec<f64> = (1..=20).map(|i| i as f64 / 20.0).collect();
    let base = load_latency_curve(&design.placement, &ReplySide::Local, &rates, cycles, 1);
    let eq = load_latency_curve(
        &design.placement,
        &ReplySide::Equinox(design.clone()),
        &rates,
        cycles,
        1,
    );
    let mut csv =
        String::from("offered,baseline_latency,baseline_throughput,equinox_latency,equinox_throughput\n");
    for (b, e) in base.iter().zip(&eq) {
        csv.push_str(&format!(
            "{:.2},{:.2},{:.3},{:.2},{:.3}\n",
            b.offered, b.latency, b.throughput, e.latency, e.throughput
        ));
    }
    match out {
        Some(path) => {
            std::fs::write(&path, &csv).expect("write csv");
            eprintln!("wrote {path}");
        }
        None => print!("{csv}"),
    }
}
