//! `sweep` — reply-network load–latency curves as CSV.
//!
//! ```text
//! sweep [--n 8] [--cycles 6000] [--out curve.csv] [--threads N] [--audit]
//!       [--no-activity-gate]
//! ```
//!
//! Thin wrapper over the `loadlat` scenario of the unified `equinox`
//! driver: it resolves the same layered spec (defaults → `--spec` file →
//! `EQUINOX_*` env → flags), runs the scenario, and renders the JSON
//! results as `offered,baseline_latency,baseline_throughput,
//! equinox_latency,equinox_throughput` rows, ready for plotting. The 20
//! rate points of each curve run in parallel on the worker pool;
//! auditing and activity gating ride into the workers by value.
//!
//! For compatibility with the historical binary, the design search
//! defaults to 1500 MCTS iterations here (the driver's `loadlat`
//! default is the spec's 4000); `--iters` still overrides.

use equinox_bench::scenarios::scenario;
use equinox_config::spec::Layer;
use equinox_config::{flag_help, parse_cli, resolve_process, CliError, Extras, Json};

fn usage() -> String {
    format!("usage: sweep [flags]\n\nflags:\n{}", flag_help(Extras::default()))
}

fn fail(message: &str) -> ! {
    eprintln!("sweep: {message}\n\n{}", usage());
    std::process::exit(2);
}

fn col(points: &Json, i: usize, key: &str) -> f64 {
    points
        .as_arr()
        .and_then(|a| a.get(i))
        .and_then(|p| p.get(key))
        .and_then(Json::as_f64)
        .expect("well-formed load point")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_cli(&args, Extras::default()) {
        Ok(p) => p,
        Err(CliError::Help) => {
            println!("{}", usage());
            return;
        }
        Err(e) => fail(&e.to_string()),
    };
    if !parsed.positionals.is_empty() {
        fail(&format!("unexpected argument '{}'", parsed.positionals[0]));
    }
    let mut spec = match resolve_process(parsed.spec_file.as_deref(), &parsed.sets) {
        Ok(s) => s,
        Err(e) => fail(&e.to_string()),
    };
    if spec.provenance_of("iters") == Some(Layer::Default) {
        spec.iters = 1_500;
    }
    equinox_exec::set_threads(spec.threads);

    let loadlat = scenario("loadlat").expect("registered scenario");
    let mut log = std::io::stderr();
    let results = (loadlat.run)(&spec, &mut log);

    let base = results.get("baseline").expect("baseline curve");
    let eq = results.get("equinox").expect("equinox curve");
    let rows = base.as_arr().map_or(0, <[Json]>::len);
    let mut csv = String::from(
        "offered,baseline_latency,baseline_throughput,equinox_latency,equinox_throughput\n",
    );
    for i in 0..rows {
        csv.push_str(&format!(
            "{:.2},{:.2},{:.3},{:.2},{:.3}\n",
            col(base, i, "offered"),
            col(base, i, "latency"),
            col(base, i, "throughput"),
            col(eq, i, "latency"),
            col(eq, i, "throughput"),
        ));
    }
    match &parsed.out {
        Some(path) => {
            std::fs::write(path, &csv).expect("write csv");
            eprintln!("wrote {path}");
        }
        None => print!("{csv}"),
    }
}
