//! `repro` — regenerates every table and figure of the EquiNox paper.
//!
//! ```text
//! repro <table1|fig4|fig5|fig7|fig9|fig10|fig11|fig12|ubumps|ablation|all>
//!       [--full] [--scale S] [--audit] [--no-activity-gate]
//! ```
//!
//! `fig9`/`fig10` default to the 6-benchmark quick subset; pass `--full`
//! for all 29 benchmarks (a few minutes). `--scale` multiplies the per-PE
//! instruction quota (default 0.5). The scheme × benchmark sweeps fan
//! out across cores; `--threads N` (or `EQUINOX_THREADS=N`) pins the
//! worker count — results are identical either way. `--audit` turns on
//! the invariant auditor (sets `EQUINOX_AUDIT=1`, which worker threads
//! inherit): every simulated system checks credit/flit conservation,
//! escape-VC compliance and packet accounting, and panics on the first
//! violation or deadlock instead of producing silently-wrong tables.
//! `--no-activity-gate` (`EQUINOX_NO_ACTIVITY_GATE=1`) falls back to the
//! exhaustive every-router-every-cycle sweep — an escape hatch for
//! cross-checking the (bit-identical) activity-gated default.

use equinox_bench::{
    all_bench_names, design_for, run_matrix, run_seeds, strong_design_8x8, QUICK_BENCHES,
};
use equinox_core::heatmap::placement_heatmap;
use equinox_core::{EquiNoxDesign, RunMetrics, SchemeKind};
use equinox_mcts::eval::{evaluate, EvalWeights};
use equinox_mcts::problem::EirProblem;
use equinox_mcts::tree::{search, MctsConfig};
use equinox_mcts::{ga, sa};
use equinox_phys::segment::count_crossings;
use equinox_phys::{BumpModel, Coord};
use equinox_placement::nqueen::{solutions, to_placement};
use equinox_placement::select::best_nqueen_placement;
use equinox_placement::{Placement, PlacementScorer};

const SEEDS: [u64; 2] = [42, 7];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--audit") {
        // Before any worker-pool or simulation activity, so every thread
        // inherits it (see `SystemConfig::new` / `audit_from_env`).
        std::env::set_var("EQUINOX_AUDIT", "1");
    }
    if args.iter().any(|a| a == "--no-activity-gate") {
        std::env::set_var("EQUINOX_NO_ACTIVITY_GATE", "1");
    }
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let full = args.iter().any(|a| a == "--full");
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.5);
    if let Some(t) = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok())
    {
        equinox_exec::set_threads(t);
    }

    match cmd {
        "table1" => table1(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "fig7" => fig7(),
        "fig9" => fig9(full, scale),
        "fig10" => fig10(scale),
        "fig11" => fig11(),
        "fig12" => fig12(scale),
        "ubumps" => ubumps(),
        "ablation" => ablation(scale),
        "overfull" => overfull(scale),
        "extensions" => extensions(scale),
        "svg" => svg_artifacts(),
        "all" => {
            table1();
            fig4();
            fig5();
            fig7();
            fig9(full, scale);
            fig10(scale);
            fig11();
            fig12(scale);
            ubumps();
            ablation(scale);
            overfull(scale);
            extensions(scale);
            svg_artifacts();
        }
        other => {
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

fn table1() {
    header("Table 1: key simulation parameters");
    for (k, v) in [
        ("Network size", "8x8 (12x12, 16x16 for scalability)"),
        ("Network routing", "Minimal adaptive (XY escape VC)"),
        ("Virtual channels", "2/port, 1 pkt (5 flits)/VC"),
        ("Allocator", "Separable input-first"),
        ("PE frequency", "1126 MHz"),
        ("L2 cache (LLC) per bank", "2 MB (modelled as hit probability)"),
        ("# of LLC banks", "8"),
        ("HBM bandwidth", "256 GB/s per stack"),
        ("Memory controllers", "8, FR-FCFS"),
        ("Link width", "128 bits"),
    ] {
        println!("  {k:26} {v}");
    }
}

fn fig4() {
    header("Figure 4: placement heat maps (avg cycles per router; variance)");
    let placements: Vec<(&str, Placement)> = vec![
        ("Top", Placement::top(8, 8, 8)),
        ("Side", Placement::side(8, 8, 8)),
        ("Diagonal", Placement::diagonal(8, 8, 8)),
        ("Diamond", Placement::diamond(8, 8, 8)),
        ("N-Queen", best_nqueen_placement(8, 8, usize::MAX, 0)),
    ];
    let heats = equinox_exec::par_map(placements, |_, (name, p)| {
        (name, placement_heatmap(&p, 0.85, 8_000, 1))
    });
    let mut rows = Vec::new();
    for (name, h) in heats {
        rows.push((name, h.variance));
        println!("-- {name} (variance {:.2}) --\n{}", h.variance, h.render());
    }
    println!("variance summary (paper: Top 16.4 >> Diamond 0.84 > N-Queen 0.54):");
    for (name, v) in rows {
        println!("  {name:9} {v:8.2}");
    }
}

fn fig5() {
    header("Figure 5: N-Queen scoring policy");
    let sols = solutions(8);
    println!("  8x8 N-Queen solutions: {} (paper: 92)", sols.len());
    let scorer = PlacementScorer::new(8, 8);
    let mut scores: Vec<u64> = sols
        .iter()
        .map(|s| scorer.penalty(&to_placement(8, s, None).cbs))
        .collect();
    scores.sort_unstable();
    println!(
        "  penalty scores: best {} / median {} / worst {}",
        scores[0],
        scores[scores.len() / 2],
        scores[scores.len() - 1]
    );
    let best = best_nqueen_placement(8, 8, usize::MAX, 0);
    println!("  chosen placement (penalty {}):", scorer.penalty(&best.cbs));
    print!("{best}");
}

fn render_design(d: &EquiNoxDesign) {
    let n = d.placement.width;
    for y in 0..n {
        for x in 0..n {
            let t = Coord::new(x, y);
            if let Some(ci) = d.placement.cb_index(t) {
                print!("C{ci} ");
            } else if let Some(ci) = d
                .selection
                .groups
                .iter()
                .position(|g| g.contains(&t))
            {
                print!("e{ci} ");
            } else {
                print!(" . ");
            }
        }
        println!();
    }
}

fn fig7() {
    header("Figure 7: MCTS-selected EIR design for 8x8");
    let d = strong_design_8x8();
    render_design(d);
    let problem = EirProblem::new(d.placement.clone());
    let ev = evaluate(&problem, &d.selection, &EvalWeights::default());
    let segs = d.segments();
    println!(
        "  links {} | crossings {} (paper: 0) | RDL layers {} (paper: 1) | total wire {:.1} mm",
        d.num_links(),
        count_crossings(&segs),
        d.rdl_layers(),
        problem.wire.total_length_mm(&segs),
    );
    let hops: Vec<u32> = segs.iter().map(|s| s.hop_length()).collect();
    println!(
        "  EIR hop distances: min {} max {} (paper: all exactly 2)",
        hops.iter().min().unwrap(),
        hops.iter().max().unwrap()
    );
    println!(
        "  eval: load {:.3} | hops {:.2} ({:.0}% of no-EIR) | cost {:.3}",
        ev.max_load_norm,
        ev.avg_hops,
        ev.avg_hops_norm * 100.0,
        ev.cost
    );
    // Fraction of the design space assessed (paper: 0.047%).
    let space: f64 = (0..8)
        .map(|i| {
            let c = problem.candidates(i).len() as f64;
            // ~sum over group sizes of C(c, k) with octant limits ~ c^4/24
            (c.powi(4) / 24.0).max(1.0)
        })
        .product();
    println!("  solution space ≈ {space:.2e} combinations (paper: 1.7e10 under its constraints)");
}

fn print_table(title: &str, benches: &[&str], all_runs: &[Vec<RunMetrics>], f: impl Fn(&RunMetrics) -> f64) {
    header(title);
    print!("{:18}", "benchmark");
    for s in SchemeKind::ALL {
        print!("{:>18}", s.name());
    }
    println!();
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); 7];
    for (bench, runs) in benches.iter().zip(all_runs) {
        let base = f(&runs[0]);
        print!("{bench:18}");
        for (i, m) in runs.iter().enumerate() {
            let v = f(m) / base;
            per_scheme[i].push(v);
            print!("{:>18.3}", v);
        }
        println!();
    }
    print!("{:18}", "geomean");
    for vals in &per_scheme {
        print!("{:>18.3}", equinox_core::metrics::geomean(vals));
    }
    println!("  (normalized to SingleBase)");
}

fn fig9(full: bool, scale: f64) {
    let benches: Vec<&str> = if full {
        all_bench_names()
    } else {
        QUICK_BENCHES.to_vec()
    };
    // Simulate once (each scheme × benchmark cell in parallel); derive
    // all three tables from the same runs.
    let all_runs: Vec<Vec<RunMetrics>> = run_matrix(&SchemeKind::ALL, 8, &benches, scale, &SEEDS);
    print_table(
        "Figure 9(a): normalized execution time (paper geomeans: EquiNox 0.523, CMesh 0.621)",
        &benches,
        &all_runs,
        |m| m.exec_ns,
    );
    print_table(
        "Figure 9(b): normalized NoC energy (paper: EquiNox 0.850 of SingleBase)",
        &benches,
        &all_runs,
        |m| m.energy_j(),
    );
    print_table(
        "Figure 9(c): normalized EDP (paper: EquiNox 0.450 of SingleBase)",
        &benches,
        &all_runs,
        |m| m.edp,
    );
}

fn fig10(scale: f64) {
    header("Figure 10: packet latency split, ns (geomean over quick subset)");
    println!(
        "{:18}{:>10}{:>10}{:>10}{:>10}{:>10}",
        "scheme", "req_queue", "req_net", "rep_queue", "rep_net", "total"
    );
    let runs = run_matrix(&SchemeKind::ALL, 8, &QUICK_BENCHES, scale, &SEEDS);
    for (si, scheme) in SchemeKind::ALL.into_iter().enumerate() {
        let mut qs = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for row in &runs {
            let m = &row[si];
            qs[0].push(m.latency.req_queue_ns.max(0.01));
            qs[1].push(m.latency.req_net_ns.max(0.01));
            qs[2].push(m.latency.rep_queue_ns.max(0.01));
            qs[3].push(m.latency.rep_net_ns.max(0.01));
        }
        let g: Vec<f64> = qs
            .iter()
            .map(|v| equinox_core::metrics::geomean(v))
            .collect();
        println!(
            "{:18}{:>10.1}{:>10.1}{:>10.1}{:>10.1}{:>10.1}",
            scheme.name(),
            g[0],
            g[1],
            g[2],
            g[3],
            g.iter().sum::<f64>()
        );
    }
    println!("(paper: request latency >> reply latency — reply-injection backpressure)");
}

fn fig11() {
    header("Figure 11: NoC area, mm^2 (relative; paper: EquiNox +4.6% vs SeparateBase)");
    let mut areas = Vec::new();
    for scheme in SchemeKind::ALL {
        let m = equinox_bench::run_one(scheme, 8, "gaussian", 0.02, 1);
        areas.push((scheme, m.area_mm2));
    }
    let single = areas[0].1;
    let separate = areas[3].1;
    for (s, a) in &areas {
        println!(
            "  {:18} {a:8.2} mm^2   ({:.2}x SingleBase, {:+.1}% vs SeparateBase)",
            s.name(),
            a / single,
            (a / separate - 1.0) * 100.0
        );
    }
}

fn fig12(scale: f64) {
    header("Figure 12: scalability — EquiNox IPC vs SeparateBase (paper: 1.23x/1.31x/1.30x)");
    let sizes = [8u16, 12, 16];
    let jobs: Vec<(u16, SchemeKind)> = sizes
        .iter()
        .flat_map(|&n| [(n, SchemeKind::SeparateBase), (n, SchemeKind::EquiNox)])
        .collect();
    let runs = equinox_exec::par_map(jobs, |_, (n, scheme)| {
        run_seeds(scheme, n, "kmeans", scale, &SEEDS)
    });
    for (i, &n) in sizes.iter().enumerate() {
        let (s, e) = (&runs[2 * i], &runs[2 * i + 1]);
        println!(
            "  {n:2}x{n:<2}  SeparateBase IPC {:6.2}  EquiNox IPC {:6.2}  speedup {:.2}x",
            s.ipc,
            e.ipc,
            e.ipc / s.ipc
        );
    }
}

fn ubumps() {
    header("Section 6.6: ubump accounting");
    let m = BumpModel::default();
    let cmesh = m.bump_count(2 * 64, 256, 1);
    let d = strong_design_8x8();
    let equinox = d.ubump_count(128);
    println!(
        "  Interposer-CMesh: 128 uni links x 256b x 1 bump  = {cmesh} ubumps ({:.2} mm^2)",
        m.bump_area_mm2(cmesh)
    );
    println!(
        "  EquiNox: {} uni links x 128b x 2 bumps           = {equinox} ubumps ({:.2} mm^2)",
        d.num_links(),
        m.bump_area_mm2(equinox)
    );
    println!(
        "  saving: {:.2}% (paper: 81.25% with 24 links)",
        equinox_phys::bumps::saving_fraction(equinox as f64, cmesh as f64) * 100.0
    );
}

fn ablation(scale: f64) {
    header("Ablation A: search method quality (same evaluation function)");
    let placement = strong_design_8x8().placement.clone();
    let problem = EirProblem::new(placement.clone());
    let w = EvalWeights::default();
    let mcts = search(
        &problem,
        &MctsConfig {
            iterations: 2_000,
            seed: 7,
            ..Default::default()
        },
    );
    let ga_r = ga::search(
        &problem,
        &ga::GaConfig {
            population: 32,
            generations: 80,
            seed: 7,
            ..Default::default()
        },
    );
    let sa_r = sa::search(
        &problem,
        &sa::SaConfig {
            steps: 2_600,
            seed: 7,
            ..Default::default()
        },
    );
    for (name, r) in [("MCTS", &mcts), ("GA", &ga_r), ("SA", &sa_r)] {
        println!(
            "  {name:5} cost {:8.4}  crossings {:2}  links {:2}  evaluations {}",
            r.eval.cost,
            r.eval.crossings,
            r.selection.total_eirs(),
            r.evaluations
        );
    }

    header("Ablation B: EIR hop budget (paper: 2 hops suffice)");
    for max_hops in [2u32, 3, 4] {
        let mut p = EirProblem::new(placement.clone());
        p.max_hops = max_hops;
        let r = search(
            &p,
            &MctsConfig {
                iterations: 2_000,
                seed: 7,
                ..Default::default()
            },
        );
        let d = EquiNoxDesign {
            placement: placement.clone(),
            selection: r.selection,
        };
        let m = run_with_design(&d, "kmeans", scale);
        println!(
            "  max_hops {max_hops}: cost {:.3} crossings {} -> exec {} cycles",
            r.eval.cost, r.eval.crossings, m.cycles
        );
    }

    header("Ablation C: EIRs per group (paper balances number vs. capability)");
    for k in [1usize, 2, 4, 6] {
        let mut p = EirProblem::new(placement.clone());
        p.group_size = k;
        let r = search(
            &p,
            &MctsConfig {
                iterations: 1_500,
                seed: 7,
                ..Default::default()
            },
        );
        let d = EquiNoxDesign {
            placement: placement.clone(),
            selection: r.selection,
        };
        let m = run_with_design(&d, "kmeans", scale);
        println!(
            "  group_size {k}: links {:2} load {:.3} -> exec {} cycles",
            d.num_links(),
            r.eval.max_load_norm,
            m.cycles
        );
    }

    header("Ablation D: CB placement under EIRs (N-Queen vs Diamond)");
    for (name, plc) in [
        ("N-Queen", placement.clone()),
        ("Diamond", Placement::diamond(8, 8, 8)),
    ] {
        let p = EirProblem::new(plc.clone());
        let r = search(
            &p,
            &MctsConfig {
                iterations: 2_000,
                seed: 7,
                ..Default::default()
            },
        );
        let d = EquiNoxDesign {
            placement: plc,
            selection: r.selection,
        };
        let m = run_with_design(&d, "kmeans", scale);
        println!(
            "  {name:8} crossings {:2} RDL layers {} -> exec {} cycles (penalty {})",
            r.eval.crossings,
            d.rdl_layers(),
            m.cycles,
            PlacementScorer::new(8, 8).penalty(&d.placement.cbs)
        );
    }
    let _ = w;
}

/// §6.8: more CBs than rows — knight-move placement + EIRs.
fn overfull(scale: f64) {
    header("Section 6.8: 12 cache banks on an 8x8 mesh (knight-move placement)");
    let d = EquiNoxDesign::search_k(8, 12, 1_500, 7, 1);
    println!("{}", d.render());
    println!(
        "  attacking CB pairs {} | links {} | crossings {} | RDL layers {}",
        equinox_placement::knight::attacking_pairs(&d.placement),
        d.num_links(),
        count_crossings(&d.segments()),
        d.rdl_layers()
    );
    use equinox_core::{System, SystemConfig};
    use equinox_traffic::Workload;
    let profile = equinox_traffic::profile::benchmark("kmeans").expect("known");
    for scheme in [SchemeKind::SeparateBase, SchemeKind::EquiNox] {
        let mut cfg = SystemConfig::new(scheme, 8, Workload::new(profile, scale, 42));
        cfg.n_cbs = 12;
        if scheme == SchemeKind::EquiNox {
            cfg.design = Some(d.clone());
        } else {
            cfg.placement_override = Some(d.placement.clone());
        }
        let m = System::build(cfg).run();
        println!(
            "  {:14} {:>7} cycles | EDP {:.2e}",
            scheme.name(),
            m.cycles,
            m.edp
        );
    }
}

/// Extensions: reply compression (§7 \[47\], orthogonal) and router
/// pipeline depth sensitivity.
fn extensions(scale: f64) {
    use equinox_core::{System, SystemConfig};
    use equinox_traffic::Workload;
    let profile = equinox_traffic::profile::benchmark("kmeans").expect("known");
    let d = strong_design_8x8();

    header("Extension: reply compression is complementary to EquiNox (§7)");
    for (scheme, comp) in [
        (SchemeKind::SeparateBase, 0.0),
        (SchemeKind::SeparateBase, 0.6),
        (SchemeKind::EquiNox, 0.0),
        (SchemeKind::EquiNox, 0.6),
    ] {
        let mut cfg = SystemConfig::new(scheme, 8, Workload::new(profile, scale, 42));
        cfg.design = Some(d.clone());
        cfg.reply_compression = comp;
        let m = System::build(cfg).run();
        println!(
            "  {:14} compression {:.0}% -> {:>7} cycles, EDP {:.2e}",
            scheme.name(),
            comp * 100.0,
            m.cycles,
            m.edp
        );
    }

    header("Extension: router pipeline depth sensitivity");
    for extra in [0u32, 1, 2] {
        let mut a = SystemConfig::new(SchemeKind::SeparateBase, 8, Workload::new(profile, scale, 42));
        a.pipeline_extra = extra;
        let base = System::build(a).run();
        let mut b = SystemConfig::new(SchemeKind::EquiNox, 8, Workload::new(profile, scale, 42));
        b.design = Some(d.clone());
        b.pipeline_extra = extra;
        let eq = System::build(b).run();
        println!(
            "  +{extra} stages: SeparateBase {:>7} cycles | EquiNox {:>7} cycles | speedup {:.2}x",
            base.cycles,
            eq.cycles,
            base.cycles as f64 / eq.cycles as f64
        );
    }
}

/// Writes the SVG artifacts (Figure 7 wiring diagram, Figure 4 heat maps)
/// into docs/.
fn svg_artifacts() {
    use equinox_core::svg::{design_svg, heatmap_svg};
    header("SVG artifacts -> docs/");
    std::fs::create_dir_all("docs").expect("create docs dir");
    let d = strong_design_8x8();
    std::fs::write("docs/fig7_design.svg", design_svg(d)).expect("write fig7 svg");
    println!("  docs/fig7_design.svg");
    for (name, p) in [
        ("top", Placement::top(8, 8, 8)),
        ("diamond", Placement::diamond(8, 8, 8)),
        ("nqueen", best_nqueen_placement(8, 8, usize::MAX, 0)),
    ] {
        let h = placement_heatmap(&p, 0.85, 8_000, 1);
        let path = format!("docs/fig4_{name}.svg");
        std::fs::write(&path, heatmap_svg(&h, &p.cbs)).expect("write heat svg");
        println!("  {path} (variance {:.2})", h.variance);
    }
}

fn run_with_design(d: &EquiNoxDesign, bench: &str, scale: f64) -> RunMetrics {
    use equinox_core::{System, SystemConfig};
    use equinox_traffic::Workload;
    let profile = equinox_traffic::profile::benchmark(bench).expect("known benchmark");
    let mut best: Option<RunMetrics> = None;
    for &seed in &SEEDS {
        let mut cfg = SystemConfig::new(SchemeKind::EquiNox, d.placement.width, Workload::new(profile, scale, seed));
        cfg.design = Some(d.clone());
        let m = System::build(cfg).run();
        if best.as_ref().is_none_or(|b| m.cycles < b.cycles) {
            best = Some(m);
        }
    }
    best.expect("ran at least one seed")
}

// design_for is used by fig12 indirectly through run_seeds.
#[allow(unused_imports)]
use design_for as _design_for_linked;
