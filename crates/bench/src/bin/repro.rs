//! `repro` — regenerates every table and figure of the EquiNox paper.
//!
//! ```text
//! repro [table1|fig4|fig5|fig7|fig9|fig10|fig11|fig12|ubumps|ablation|all|…]
//!       [--full] [--scale S] [--audit] [--no-activity-gate] [--threads N] …
//! ```
//!
//! Thin wrapper over the unified `equinox` driver's scenario registry,
//! kept for muscle memory: same scenarios, same flags (the shared spec
//! field registry — see `equinox --help`), but the human-readable
//! report goes to **stdout** like it always did, and no JSON artifact
//! is emitted unless `--out PATH` asks for one.
//!
//! `fig9`/`fig10` default to the 6-benchmark quick subset; pass
//! `--full` for all 29 benchmarks (a few minutes). `--audit` arms the
//! invariant auditor in every simulated system — by value through the
//! resolved spec, not via environment variables.

use equinox_bench::artifact::artifact;
use equinox_bench::scenarios::{scenario, scenarios};
use equinox_config::{flag_help, parse_cli, resolve_process, CliError, Extras};

fn usage() -> String {
    let mut u = String::from("usage: repro [scenario] [flags]\n\nscenarios:\n");
    for s in scenarios() {
        u.push_str(&format!("  {:10} {}\n", s.name, s.about));
    }
    u.push_str("\nflags:\n");
    u.push_str(&flag_help(Extras::default()));
    u
}

fn fail(message: &str) -> ! {
    eprintln!("repro: {message}\n\n{}", usage());
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_cli(&args, Extras::default()) {
        Ok(p) => p,
        Err(CliError::Help) => {
            println!("{}", usage());
            return;
        }
        Err(e) => fail(&e.to_string()),
    };
    let name = match parsed.positionals.as_slice() {
        [] => "all",
        [one] => one.as_str(),
        [_, extra, ..] => fail(&format!("unexpected argument '{extra}'")),
    };
    let Some(sc) = scenario(name) else {
        fail(&format!("unknown command '{name}'"));
    };
    let spec = match resolve_process(parsed.spec_file.as_deref(), &parsed.sets) {
        Ok(s) => s,
        Err(e) => fail(&e.to_string()),
    };
    equinox_exec::set_threads(spec.threads);

    let mut log = std::io::stdout();
    let results = (sc.run)(&spec, &mut log);
    if let Some(path) = &parsed.out {
        let text = artifact(sc.name, &spec, results).pretty();
        std::fs::write(path, &text).unwrap_or_else(|e| {
            eprintln!("repro: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }
}
