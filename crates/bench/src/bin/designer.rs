//! `designer` — run the EquiNox design pipeline and save the result.
//!
//! ```text
//! designer [--n 8] [--cbs 8] [--iters 4000] [--seed 7] [--out design.txt] [--svg design.svg] [--threads N]
//! ```
//!
//! Searches the N-Queen placement + MCTS EIR selection for the requested
//! mesh, prints the design summary, and optionally writes the stable text
//! format (reload with `EquiNoxDesign::from_text`) and an SVG wiring
//! diagram.

use equinox_core::svg::design_svg;
use equinox_core::EquiNoxDesign;
use equinox_phys::segment::count_crossings;

fn arg<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_opt(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: u16 = arg(&args, "--n", 8);
    let cbs: u16 = arg(&args, "--cbs", 8);
    let iters: usize = arg(&args, "--iters", 4_000);
    let seed: u64 = arg(&args, "--seed", 7);
    if args.iter().any(|a| a == "--threads") {
        equinox_exec::set_threads(arg(&args, "--threads", 0usize));
    }

    eprintln!("searching: {n}x{n} mesh, {cbs} CBs, {iters} MCTS iterations, seed {seed}…");
    let start = std::time::Instant::now();
    let design = EquiNoxDesign::search(n, cbs, iters, seed);
    eprintln!("search took {:.1?}", start.elapsed());

    println!("{}", design.render());
    println!(
        "links {} | crossings {} | RDL layers {} | ubumps {}",
        design.num_links(),
        count_crossings(&design.segments()),
        design.rdl_layers(),
        design.ubump_count(128)
    );

    if let Some(path) = arg_opt(&args, "--out") {
        std::fs::write(&path, design.to_text()).expect("write design file");
        println!("wrote {path}");
    }
    if let Some(path) = arg_opt(&args, "--svg") {
        std::fs::write(&path, design_svg(&design)).expect("write svg");
        println!("wrote {path}");
    }
}
