//! `designer` — run the EquiNox design pipeline and save the result.
//!
//! ```text
//! designer [--n 8] [--cbs 8] [--iters 4000] [--seed 7] [--out design.txt]
//!          [--svg design.svg] [--threads N]
//! ```
//!
//! Thin wrapper over the `designer` scenario of the unified `equinox`
//! driver: searches the N-Queen placement + MCTS EIR selection for the
//! requested mesh, prints the design summary, and optionally writes the
//! stable text format (reload with `EquiNoxDesign::from_text`) from the
//! artifact's `design_text` field and an SVG wiring diagram from its
//! `svg` field.

use equinox_bench::scenarios::scenario;
use equinox_config::{flag_help, parse_cli, resolve_process, CliError, Extras, Json};

const EXTRAS: Extras<'static> = Extras {
    value_flags: &[("--svg", "write an SVG wiring diagram to this path")],
    bool_flags: &[],
};

fn usage() -> String {
    format!("usage: designer [flags]\n\nflags:\n{}", flag_help(EXTRAS))
}

fn fail(message: &str) -> ! {
    eprintln!("designer: {message}\n\n{}", usage());
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_cli(&args, EXTRAS) {
        Ok(p) => p,
        Err(CliError::Help) => {
            println!("{}", usage());
            return;
        }
        Err(e) => fail(&e.to_string()),
    };
    if !parsed.positionals.is_empty() {
        fail(&format!("unexpected argument '{}'", parsed.positionals[0]));
    }
    let spec = match resolve_process(parsed.spec_file.as_deref(), &parsed.sets) {
        Ok(s) => s,
        Err(e) => fail(&e.to_string()),
    };
    equinox_exec::set_threads(spec.threads);

    let designer = scenario("designer").expect("registered scenario");
    let mut log = std::io::stdout();
    let results = (designer.run)(&spec, &mut log);

    if let Some(path) = &parsed.out {
        let text = results
            .get("design_text")
            .and_then(Json::as_str)
            .expect("design_text in results");
        std::fs::write(path, text).expect("write design file");
        println!("wrote {path}");
    }
    if let Some(path) = parsed.extra("--svg") {
        let svg = results.get("svg").and_then(Json::as_str).expect("svg in results");
        std::fs::write(path, svg).expect("write svg");
        println!("wrote {path}");
    }
}
