//! `equinox` — the unified experiment driver.
//!
//! ```text
//! equinox <scenario> [--spec FILE] [--out PATH] [<field flags>…]
//! ```
//!
//! One binary runs every registered scenario (`equinox --help` lists
//! them) under the layered configuration spine: built-in defaults, then
//! the optional `--spec` JSON file, then `EQUINOX_*` environment
//! variables, then CLI flags — last writer wins, with the winning layer
//! recorded per field.
//!
//! The human-readable report streams to **stderr**; the structured
//! `equinox.artifact/v1` JSON artifact (scenario name, fully resolved
//! spec with provenance, results) goes to **stdout**, or to the `--out`
//! path when given. Malformed values, unknown flags and unknown
//! scenarios exit nonzero with a message naming the offender.

use equinox_bench::artifact::artifact;
use equinox_bench::cache::{artifact_key, cache_for};
use equinox_bench::scenarios::{scenario, scenarios};
use equinox_config::{flag_help, parse_cli, resolve_process, CliError, Extras, Json};

fn usage() -> String {
    let mut u = String::from(
        "usage: equinox <scenario> [--spec FILE] [--out PATH] [flags]\n\nscenarios:\n",
    );
    for s in scenarios() {
        u.push_str(&format!("  {:10} {}\n", s.name, s.about));
    }
    u.push_str("\nflags:\n");
    u.push_str(&flag_help(Extras::default()));
    u
}

fn fail(message: &str) -> ! {
    eprintln!("equinox: {message}\n\n{}", usage());
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_cli(&args, Extras::default()) {
        Ok(p) => p,
        Err(CliError::Help) => {
            println!("{}", usage());
            return;
        }
        Err(e) => fail(&e.to_string()),
    };
    let name = match parsed.positionals.as_slice() {
        [] => fail("missing scenario name"),
        [one] => one.as_str(),
        [_, extra, ..] => fail(&format!("unexpected argument '{extra}'")),
    };
    let Some(sc) = scenario(name) else {
        fail(&format!("unknown scenario '{name}'"));
    };
    let spec = match resolve_process(parsed.spec_file.as_deref(), &parsed.sets) {
        Ok(s) => s,
        Err(e) => fail(&e.to_string()),
    };
    equinox_exec::set_threads(spec.threads);

    // With `--checkpoint-dir` armed, finished artifacts are
    // content-addressed by the canonical spec rendering plus the
    // scenario name: a hit replays the stored document byte-for-byte
    // (sound because every scenario is a pure function of the resolved
    // spec), a miss runs the scenario and stores the result. The
    // artifact itself records only the cache key — identical on the
    // populating and replaying runs — while hit/miss goes to stderr, so
    // cold and warm artifacts stay byte-identical.
    let cache = cache_for(&spec);
    let key = artifact_key(sc.name, &spec);
    let cached: Option<String> = cache.as_ref().and_then(|c| {
        let bytes = c.load("artifact", key).ok().flatten()?;
        let text = String::from_utf8(bytes).ok()?;
        equinox_config::parse_json(&text).ok()?;
        Some(text)
    });
    let text = match cached {
        Some(text) => {
            eprintln!("checkpoint cache hit: artifact_{key:016x}");
            text
        }
        None => {
            if cache.is_some() {
                eprintln!("checkpoint cache miss: artifact_{key:016x}");
            }
            let mut log = std::io::stderr();
            let mut doc = artifact(sc.name, &spec, (sc.run)(&spec, &mut log));
            if cache.is_some() {
                doc = doc.with(
                    "cache",
                    Json::obj()
                        .with("schema", "equinox.cache/v1")
                        .with("key", format!("{key:016x}")),
                );
            }
            let text = doc.pretty();
            if let Some(c) = &cache {
                if let Err(e) = c.store("artifact", key, text.as_bytes()) {
                    eprintln!("checkpoint cache store failed: {e}");
                }
            }
            text
        }
    };
    match &parsed.out {
        Some(path) => {
            std::fs::write(path, &text).unwrap_or_else(|e| {
                eprintln!("equinox: cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
}
