//! `perf` — micro-benchmark of the simulation substrate itself.
//!
//! ```text
//! perf [--scale S] [--threads N] [--quick] [--audit] [--no-activity-gate]
//! ```
//!
//! Thin wrapper over the `perf` scenario of the unified `equinox`
//! driver. `--audit` arms the invariant auditor inside the timed runs
//! (by value through the resolved spec) — useful for measuring its
//! overhead, never for baselines. `--no-activity-gate` times the
//! exhaustive every-router-every-cycle sweep — useful for quantifying
//! what the gate buys, never for baselines.
//!
//! Reports three rates as a single JSON line on stdout:
//!
//! * `single_cycles_per_sec` — simulated cycles per wall-clock second of
//!   one saturated full-system run (the hot-loop figure of merit; this
//!   is what the allocation-free `Network::step()` refactor speeds up),
//! * `low_load_cycles_per_sec` — cycles per second of a low-load
//!   load–latency point (offered 0.02 replies/CB/cycle, where most
//!   routers are idle most cycles — the regime that dominates
//!   load–latency curves and benchmark sweeps, and the figure of merit
//!   for activity-gated stepping), and
//! * `sweep_wall_s` — wall-clock seconds for the quick scheme × benchmark
//!   repro sweep on the worker pool (the parallel-fan-out figure of
//!   merit), plus `sweep_cached_wall_s` / `cached_sweep_speedup` for
//!   the same sweep served from the content-addressed result cache
//!   (the `--checkpoint-dir` figure of merit; the perf gate bounds the
//!   speedup).
//!
//! The EquiNox design search is pre-warmed outside both timed regions so
//! the numbers measure the simulator, not the one-off MCTS. A committed
//! baseline lives in `BENCH_perf.json`; `scripts/check.sh` compares
//! `single_cycles_per_sec` against it with a tolerance band.
//!
//! For compatibility with the historical binary, the workload scale
//! defaults to 0.3 here (the driver's spec default is 0.5); `--scale`,
//! a spec file, or `EQUINOX_SCALE` still override.

use equinox_bench::scenarios::scenario;
use equinox_config::spec::Layer;
use equinox_config::{flag_help, parse_cli, resolve_process, CliError, Extras};

fn usage() -> String {
    format!("usage: perf [flags]\n\nflags:\n{}", flag_help(Extras::default()))
}

fn fail(message: &str) -> ! {
    eprintln!("perf: {message}\n\n{}", usage());
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_cli(&args, Extras::default()) {
        Ok(p) => p,
        Err(CliError::Help) => {
            println!("{}", usage());
            return;
        }
        Err(e) => fail(&e.to_string()),
    };
    if !parsed.positionals.is_empty() {
        fail(&format!("unexpected argument '{}'", parsed.positionals[0]));
    }
    let mut spec = match resolve_process(parsed.spec_file.as_deref(), &parsed.sets) {
        Ok(s) => s,
        Err(e) => fail(&e.to_string()),
    };
    if spec.provenance_of("scale") == Some(Layer::Default) {
        spec.scale = 0.3;
    }
    equinox_exec::set_threads(spec.threads);

    let perf = scenario("perf").expect("registered scenario");
    let mut log = std::io::stderr();
    let results = (perf.run)(&spec, &mut log);
    println!("{}", results.to_compact());
}
