//! `perf` — micro-benchmark of the simulation substrate itself.
//!
//! ```text
//! perf [--scale S] [--threads N] [--quick] [--audit]
//! ```
//!
//! `--audit` enables the invariant auditor (`EQUINOX_AUDIT=1`) inside the
//! timed runs — useful for measuring its overhead, never for baselines.
//!
//! Reports two numbers as a single JSON line on stdout:
//!
//! * `single_cycles_per_sec` — simulated cycles per wall-clock second of
//!   one full-system run (the hot-loop figure of merit; this is what the
//!   allocation-free `Network::step()` refactor speeds up), and
//! * `sweep_wall_s` — wall-clock seconds for the quick scheme × benchmark
//!   repro sweep on the worker pool (the parallel-fan-out figure of
//!   merit).
//!
//! The EquiNox design search is pre-warmed outside both timed regions so
//! the numbers measure the simulator, not the one-off MCTS. A committed
//! baseline lives in `BENCH_perf.json`; `scripts/check.sh` compares
//! `single_cycles_per_sec` against it with a tolerance band.

use equinox_bench::{design_for, run_matrix, run_one, QUICK_BENCHES};
use equinox_core::SchemeKind;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--audit") {
        std::env::set_var("EQUINOX_AUDIT", "1");
    }
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.3);
    if let Some(t) = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok())
    {
        equinox_exec::set_threads(t);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let seeds: [u64; 2] = [42, 7];

    // Warm everything the timed regions would otherwise pay for once:
    // the cached 8×8 EquiNox design and the allocator's steady state.
    eprintln!("warming design cache + hot loop…");
    let _ = design_for(8);
    let _ = run_one(SchemeKind::SeparateBase, 8, "kmeans", scale, 1);

    // Single-simulation cycle rate (sequential hot loop).
    let reps = if quick { 1 } else { 3 };
    let mut best_rate = 0f64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let m = run_one(SchemeKind::SeparateBase, 8, "kmeans", scale, 1);
        let rate = m.cycles as f64 / t0.elapsed().as_secs_f64();
        best_rate = best_rate.max(rate);
    }

    // Quick repro sweep (7 schemes × 6 benchmarks × 2 seeds) on the pool.
    let t0 = Instant::now();
    let rows = run_matrix(&SchemeKind::ALL, 8, &QUICK_BENCHES, scale, &seeds);
    let sweep_wall_s = t0.elapsed().as_secs_f64();
    let sims = rows.iter().map(|r| r.len()).sum::<usize>() * seeds.len();

    println!(
        "{{\"single_cycles_per_sec\": {:.0}, \"sweep_wall_s\": {:.3}, \"sweep_sims\": {}, \"threads\": {}, \"scale\": {}}}",
        best_rate,
        sweep_wall_s,
        sims,
        equinox_exec::thread_count(),
        scale
    );
}
