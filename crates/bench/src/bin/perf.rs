//! `perf` — micro-benchmark of the simulation substrate itself.
//!
//! ```text
//! perf [--scale S] [--threads N] [--quick] [--audit] [--no-activity-gate]
//! ```
//!
//! `--audit` enables the invariant auditor (`EQUINOX_AUDIT=1`) inside the
//! timed runs — useful for measuring its overhead, never for baselines.
//! `--no-activity-gate` (`EQUINOX_NO_ACTIVITY_GATE=1`) disables the
//! activity-driven stepping, i.e. measures the exhaustive
//! every-router-every-cycle sweep — useful for quantifying what the gate
//! buys, never for baselines.
//!
//! Reports three rates as a single JSON line on stdout:
//!
//! * `single_cycles_per_sec` — simulated cycles per wall-clock second of
//!   one saturated full-system run (the hot-loop figure of merit; this
//!   is what the allocation-free `Network::step()` refactor speeds up),
//! * `low_load_cycles_per_sec` — cycles per second of a low-load
//!   load–latency point (offered 0.02 replies/CB/cycle, where most
//!   routers are idle most cycles — the regime that dominates
//!   load–latency curves and benchmark sweeps, and the figure of merit
//!   for activity-gated stepping), and
//! * `sweep_wall_s` — wall-clock seconds for the quick scheme × benchmark
//!   repro sweep on the worker pool (the parallel-fan-out figure of
//!   merit).
//!
//! The EquiNox design search is pre-warmed outside both timed regions so
//! the numbers measure the simulator, not the one-off MCTS. A committed
//! baseline lives in `BENCH_perf.json`; `scripts/check.sh` compares
//! `single_cycles_per_sec` against it with a tolerance band.

use equinox_bench::{design_for, run_matrix, run_one, timed_run, QUICK_BENCHES};
use equinox_core::loadlat::{load_latency_curve, ReplySide};
use equinox_core::SchemeKind;
use equinox_placement::Placement;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--audit") {
        std::env::set_var("EQUINOX_AUDIT", "1");
    }
    if args.iter().any(|a| a == "--no-activity-gate") {
        std::env::set_var("EQUINOX_NO_ACTIVITY_GATE", "1");
    }
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.3);
    if let Some(t) = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok())
    {
        equinox_exec::set_threads(t);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let seeds: [u64; 2] = [42, 7];

    // Warm everything the timed regions would otherwise pay for once:
    // the cached 8×8 EquiNox design and the allocator's steady state.
    eprintln!("warming design cache + hot loop…");
    let _ = design_for(8);
    let _ = run_one(SchemeKind::SeparateBase, 8, "kmeans", scale, 1);

    // Single-simulation cycle rate (sequential hot loop), saturated
    // (kmeans is network-bound — the gate keeps nearly everything
    // active, so this figure guards against gating overhead). Only the
    // run loop is timed; `System::build` cost would otherwise dominate
    // short runs and hide stepping regressions.
    let reps = if quick { 1 } else { 3 };
    let mut best_rate = 0f64;
    for _ in 0..reps {
        let (cycles, secs) = timed_run(SchemeKind::SeparateBase, 8, "kmeans", scale, 1);
        best_rate = best_rate.max(cycles as f64 / secs);
    }

    // Low-load cycle rate: one load–latency point at a deeply
    // sub-saturation offered rate. Almost every router is idle almost
    // every cycle, so this measures what activity-gated stepping buys
    // on the regions that dominate load–latency curves.
    let placement = Placement::diamond(8, 8, 8);
    let low_cycles = 50_000u64;
    let _ = load_latency_curve(&placement, &ReplySide::Local, &[0.02], 5_000, 1);
    let mut low_load_rate = 0f64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let pts = load_latency_curve(&placement, &ReplySide::Local, &[0.02], low_cycles, 1);
        let rate = low_cycles as f64 / t0.elapsed().as_secs_f64();
        assert!(pts[0].throughput > 0.0, "low-load run carried no traffic");
        low_load_rate = low_load_rate.max(rate);
    }

    // Quick repro sweep (7 schemes × 6 benchmarks × 2 seeds) on the pool.
    let t0 = Instant::now();
    let rows = run_matrix(&SchemeKind::ALL, 8, &QUICK_BENCHES, scale, &seeds);
    let sweep_wall_s = t0.elapsed().as_secs_f64();
    let sims = rows.iter().map(|r| r.len()).sum::<usize>() * seeds.len();

    println!(
        "{{\"single_cycles_per_sec\": {:.0}, \"low_load_cycles_per_sec\": {:.0}, \"sweep_wall_s\": {:.3}, \"sweep_sims\": {}, \"threads\": {}, \"scale\": {}}}",
        best_rate,
        low_load_rate,
        sweep_wall_s,
        sims,
        equinox_exec::thread_count(),
        scale
    );
}
