use equinox_bench::run_seeds;
use equinox_core::SchemeKind;
fn main() {
    for s in [SchemeKind::SeparateBase, SchemeKind::Da2Mesh] {
        let m = run_seeds(s, 8, "kmeans", 0.5, &[42, 7]);
        println!("{} {}", s.name(), m.cycles);
    }
}
