//! Structured JSON artifacts for every scenario result.
//!
//! Each converter tags its object with a `schema` string so downstream
//! tooling can dispatch without guessing:
//!
//! * `equinox.artifact/v1` — the driver's top-level envelope:
//!   `{schema, scenario, spec, results}` where `spec` is the resolved
//!   [`ExperimentSpec`](equinox_config::ExperimentSpec) (including its
//!   per-field `provenance` block, so every artifact records where each
//!   knob's value came from) and `results` is the scenario's payload.
//! * `equinox.run_metrics/v1` — one full-system run
//!   ([`RunMetrics`]): scheme, benchmark, cycles, `exec_ns`, `ipc`,
//!   `completed`, the four-way `latency_ns` split, `dynamic_j`,
//!   `leakage_j`, `energy_j`, `edp`, `area_mm2`, `ubumps`,
//!   `reply_bit_fraction`.
//! * `equinox.net_stats/v1` — raw per-network counters
//!   ([`NetStats`]): buffer/crossbar/VC-allocation activity, link-flit
//!   counts by link kind, injected/ejected totals.
//! * `equinox.load_point/v1` — one load–latency measurement
//!   ([`LoadPoint`]): offered rate, accepted throughput, mean latency.
//! * `equinox.obs/v1` — the observability block of an obs-armed run
//!   (emitted by the `observe` scenario via
//!   [`System::obs_json`](equinox_core::System::obs_json)): counters,
//!   latency histograms with interpolated p50/p95/p99, the interval
//!   time series, per-router heat grids and per-link flit counts. The
//!   block is cycle-derived only, so it is bit-identical across
//!   `EQUINOX_THREADS` settings; wall-clock span timings go to the
//!   separate `--trace-out` Chrome trace file instead.
//!
//! The emitted spec block round-trips: feeding an artifact's `spec`
//! object back via `--spec` reproduces the run's configuration (the
//! resolver skips the `provenance` key).

use equinox_config::{ExperimentSpec, Json};
use equinox_core::loadlat::LoadPoint;
use equinox_core::RunMetrics;
use equinox_noc::NetStats;

/// The driver's top-level artifact envelope (`equinox.artifact/v1`).
pub fn artifact(scenario: &str, spec: &ExperimentSpec, results: Json) -> Json {
    Json::obj()
        .with("schema", "equinox.artifact/v1")
        .with("scenario", scenario)
        .with("spec", spec.to_json())
        .with("results", results)
}

/// One full-system run as JSON (`equinox.run_metrics/v1`).
pub fn run_metrics_json(m: &RunMetrics) -> Json {
    Json::obj()
        .with("schema", "equinox.run_metrics/v1")
        .with("scheme", m.scheme.name())
        .with("benchmark", m.benchmark.as_str())
        .with("cycles", m.cycles)
        .with("exec_ns", m.exec_ns)
        .with("ipc", m.ipc)
        .with("completed", m.completed)
        .with(
            "latency_ns",
            Json::obj()
                .with("req_queue", m.latency.req_queue_ns)
                .with("req_net", m.latency.req_net_ns)
                .with("rep_queue", m.latency.rep_queue_ns)
                .with("rep_net", m.latency.rep_net_ns),
        )
        .with("dynamic_j", m.dynamic_j)
        .with("leakage_j", m.leakage_j)
        .with("energy_j", m.energy_j())
        .with("edp", m.edp)
        .with("area_mm2", m.area_mm2)
        .with("ubumps", m.ubumps as u64)
        .with("reply_bit_fraction", m.reply_bit_fraction)
}

/// Raw per-network counters as JSON (`equinox.net_stats/v1`). The
/// per-router vectors are summarized (length + totals) rather than
/// dumped — they scale with mesh size and the totals are what the
/// energy model consumes.
pub fn net_stats_json(s: &NetStats) -> Json {
    Json::obj()
        .with("schema", "equinox.net_stats/v1")
        .with("cycles", s.cycles)
        .with("buffer_writes", s.buffer_writes)
        .with("buffer_reads", s.buffer_reads)
        .with("xbar_traversals", s.xbar_traversals)
        .with("vc_allocs", s.vc_allocs)
        .with("link_flits_mesh", s.link_flits_mesh)
        .with("link_flits_interposer", s.link_flits_interposer)
        .with("link_flits_ni", s.link_flits_ni)
        .with("injected_flits", s.injected_flits)
        .with("ejected_flits", s.ejected_flits)
        .with("routers", s.router_flits.len() as u64)
        .with("router_flits_total", s.router_flits.iter().sum::<u64>())
        .with("router_cycles_total", s.router_cycles.iter().sum::<u64>())
}

/// One load–latency point as JSON (`equinox.load_point/v1`).
pub fn load_point_json(p: &LoadPoint) -> Json {
    Json::obj()
        .with("schema", "equinox.load_point/v1")
        .with("offered", p.offered)
        .with("throughput", p.throughput)
        .with("latency", p.latency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use equinox_core::SchemeKind;

    #[test]
    fn run_metrics_emit_the_documented_schema() {
        let m = crate::run_one(SchemeKind::SeparateBase, 8, "gaussian", 0.02, 1);
        let j = run_metrics_json(&m);
        assert_eq!(j.get("schema").and_then(Json::as_str), Some("equinox.run_metrics/v1"));
        assert_eq!(j.get("cycles").and_then(Json::as_u64), Some(m.cycles));
        assert!(j.get("latency_ns").and_then(|l| l.get("req_net")).is_some());
        // The emission is valid JSON and round-trips.
        let text = j.to_compact();
        assert_eq!(equinox_config::parse_json(&text).unwrap(), j);
    }

    #[test]
    fn artifact_envelope_embeds_spec_and_results() {
        let spec = ExperimentSpec::default();
        let a = artifact("table1", &spec, Json::obj().with("ok", true));
        assert_eq!(a.get("scenario").and_then(Json::as_str), Some("table1"));
        assert!(a.get("spec").and_then(|s| s.get("provenance")).is_some());
        assert_eq!(
            a.get("results").and_then(|r| r.get("ok")).and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn obs_block_round_trips_through_the_parser() {
        use equinox_core::{ObsConfig, System, SystemConfig};
        use equinox_traffic::{profile::benchmark, Workload};
        let workload = Workload::new(benchmark("gaussian").unwrap(), 0.02, 1);
        let mut cfg = SystemConfig::new(SchemeKind::SeparateBase, 8, workload);
        cfg.max_cycles = 100_000;
        cfg.obs = Some(ObsConfig { interval: 500, ..Default::default() });
        let mut sys = System::build(cfg);
        let m = sys.run();
        assert!(m.completed);
        let obs = sys.obs_json().expect("obs was armed");
        assert_eq!(obs.get("schema").and_then(Json::as_str), Some("equinox.obs/v1"));
        assert!(obs.get("histograms").and_then(|h| h.get("rep_latency_cycles")).is_some());
        // The block embeds into the artifact envelope and survives a
        // write → parse round trip bit-for-bit.
        let spec = ExperimentSpec::default();
        let a = artifact("observe", &spec, Json::obj().with("obs", obs));
        let parsed = equinox_config::parse_json(&a.pretty()).unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn load_point_fields() {
        let p = LoadPoint { offered: 0.5, throughput: 3.25, latency: 17.5 };
        let j = load_point_json(&p);
        assert_eq!(j.get("offered").and_then(Json::as_f64), Some(0.5));
        assert_eq!(j.get("latency").and_then(Json::as_f64), Some(17.5));
    }
}
