//! The `equinox watch` client: attaches to a telemetry stream produced
//! by a run's `--obs-stream` flag and renders a live dashboard.
//!
//! Framing is one JSON object per `\n`-terminated line (`obs.sample/v1`
//! frames during the run, one terminal `obs.summary/v1`). The client is
//! deliberately forgiving: a line that fails to parse — clipped
//! mid-write by a dying producer, or plain garbage — is counted and
//! skipped, never fatal, so a watcher can attach to a stream that is
//! still being written (or that survived a crash) and keep rendering.
//!
//! Transport duality mirrors the writer: for `tcp:host:port` targets
//! the *watcher* is the server — it binds, listens and accepts the one
//! connection the simulation's stream writer opens. Start `equinox
//! watch` first, then the instrumented run. For file targets the
//! watcher tails the file, following appends until the terminal
//! summary frame or a few seconds of quiet after end-of-file.

use equinox_config::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// How often the dashboard re-renders, in sample frames.
const DASH_EVERY: u64 = 10;
/// File tailing gives up after this much quiet at end-of-file.
const FILE_IDLE: Duration = Duration::from_secs(3);
/// TCP accept/read deadlines (generous: the producer may still be
/// building its design before it connects).
const TCP_WAIT: Duration = Duration::from_secs(60);

/// Everything the client learned from one stream.
#[derive(Debug, Default)]
pub struct WatchStats {
    /// Frames that parsed and carried a known schema.
    pub frames: u64,
    /// The `obs.sample/v1` subset of `frames`.
    pub samples: u64,
    /// Lines that failed to parse or carried no known schema.
    pub corrupt: u64,
    /// Highest cycle stamp seen on any frame.
    pub last_cycle: u64,
    /// The terminal frame, when one arrived.
    pub summary: Option<Json>,
}

impl WatchStats {
    /// The scenario's structured result block.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .with("frames_seen", self.frames as f64)
            .with("sample_frames", self.samples as f64)
            .with("corrupt_lines", self.corrupt as f64)
            .with("last_cycle", self.last_cycle as f64)
            .with("summary_seen", self.summary.is_some());
        if let Some(s) = &self.summary {
            j = j.with("summary", s.clone());
        }
        j
    }
}

/// Consumes one stream line: classifies it, folds it into `stats`, and
/// renders to `log` on the dashboard cadence. Returns `true` when the
/// line was the terminal summary frame (the caller's stop signal).
fn consume_line(line: &str, stats: &mut WatchStats, log: &mut dyn Write) -> bool {
    let trimmed = line.trim_end_matches(['\n', '\r']);
    if trimmed.is_empty() {
        return false;
    }
    let Ok(frame) = equinox_config::parse_json(trimmed) else {
        stats.corrupt += 1;
        return false;
    };
    match frame.get("schema").and_then(|s| s.as_str()) {
        Some("obs.sample/v1") => {
            stats.frames += 1;
            stats.samples += 1;
            if let Some(c) = frame.get("cycle").and_then(|v| v.as_u64()) {
                stats.last_cycle = stats.last_cycle.max(c);
            }
            if stats.samples % DASH_EVERY == 1 {
                let _ = writeln!(log, "{}", dashboard(&frame));
            }
            false
        }
        Some("obs.summary/v1") => {
            stats.frames += 1;
            if let Some(c) = frame.get("cycle").and_then(|v| v.as_u64()) {
                stats.last_cycle = stats.last_cycle.max(c);
            }
            let _ = writeln!(log, "{}", summary_table(&frame));
            stats.summary = Some(frame);
            true
        }
        _ => {
            stats.corrupt += 1;
            false
        }
    }
}

/// One dashboard row from a sample frame: cycle, throughput, packets in
/// flight, and each stall cause's share of the total stalled cycles.
fn dashboard(frame: &Json) -> String {
    let num = |k: &str| frame.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
    let mut row = format!(
        "cycle {:>9} | {:6.2} flits/cyc | {:>5} in flight",
        num("cycle") as u64,
        num("throughput_flits_per_cycle"),
        num("packets_in_flight") as u64,
    );
    if let Some(stall) = frame.get("stall") {
        let causes = ["inj_queue", "vc_alloc", "switch_loss", "credit_starve", "eject_wait"];
        let total: f64 = causes
            .iter()
            .filter_map(|&c| stall.get(c).and_then(|v| v.as_f64()))
            .sum();
        row.push_str(" | stall");
        for c in causes {
            let v = stall.get(c).and_then(|v| v.as_f64()).unwrap_or(0.0);
            let share = if total > 0.0 { 100.0 * v / total } else { 0.0 };
            row.push_str(&format!(" {c} {share:4.1}%"));
        }
    }
    row
}

/// The terminal latency-breakdown table from a summary frame.
fn summary_table(frame: &Json) -> String {
    let mut out = String::from("=== run summary ===\n");
    let causes = [
        "inj_queue",
        "vc_alloc",
        "switch_loss",
        "credit_starve",
        "serialization",
        "eject_wait",
    ];
    for class in ["request", "reply"] {
        let Some(row) = frame.get("per_class").and_then(|p| p.get(class)) else {
            continue;
        };
        let num = |k: &str| row.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
        let (delivered, e2e) = (num("delivered"), num("e2e_cycles"));
        let avg = if delivered > 0.0 { e2e / delivered } else { 0.0 };
        out.push_str(&format!(
            "{class:>8}: {} delivered, {avg:.1} avg cycles —",
            delivered as u64
        ));
        for c in causes {
            let share = if e2e > 0.0 { 100.0 * num(c) / e2e } else { 0.0 };
            out.push_str(&format!(" {c} {share:4.1}%"));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "delivered: {} requests, {} replies (cycle {})",
        frame.get("req_delivered").and_then(|v| v.as_u64()).unwrap_or(0),
        frame.get("rep_delivered").and_then(|v| v.as_u64()).unwrap_or(0),
        frame.get("cycle").and_then(|v| v.as_u64()).unwrap_or(0),
    ));
    out
}

/// Drains a finite reader (a recorded stream, a test fixture): every
/// line is consumed, stopping early only at the summary frame.
pub fn watch_reader(r: impl BufRead, log: &mut dyn Write) -> WatchStats {
    let mut stats = WatchStats::default();
    for line in r.lines() {
        let Ok(line) = line else { break };
        if consume_line(&line, &mut stats, log) {
            break;
        }
    }
    stats
}

/// Tails a stream file, following appends. Stops at the summary frame
/// or after [`FILE_IDLE`] of quiet at end-of-file, so it works both
/// live (attached before or during the producing run) and post-hoc on
/// a fully recorded stream.
pub fn watch_file(path: &str, log: &mut dyn Write) -> std::io::Result<WatchStats> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut stats = WatchStats::default();
    let mut buf = String::new();
    let mut quiet_since = Instant::now();
    loop {
        buf.clear();
        // Accumulate one full line. A producer mid-write can expose a
        // fragment without its newline; keep appending until the
        // terminator lands or the producer goes quiet for good.
        loop {
            let n = r.read_line(&mut buf)?;
            if buf.ends_with('\n') {
                break;
            }
            if n == 0 {
                if quiet_since.elapsed() > FILE_IDLE {
                    // Stream over (producer finished, or died mid-line:
                    // the fragment then counts as one corrupt line).
                    if !buf.is_empty() {
                        let _ = consume_line(&buf, &mut stats, log);
                    }
                    return Ok(stats);
                }
                std::thread::sleep(Duration::from_millis(50));
            } else {
                quiet_since = Instant::now();
            }
        }
        quiet_since = Instant::now();
        if consume_line(&buf, &mut stats, log) {
            break;
        }
    }
    Ok(stats)
}

/// Serves one `tcp:host:port` stream: binds the address, accepts the
/// single connection the producing run opens, and drains it. The watch
/// side is the listener by design — the simulation connects out, so a
/// missing watcher fails the run fast instead of blocking it.
pub fn watch_tcp(addr: &str, log: &mut dyn Write) -> std::io::Result<WatchStats> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let deadline = Instant::now() + TCP_WAIT;
    let stream = loop {
        match listener.accept() {
            Ok((s, _)) => break s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() > deadline {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "no producer connected",
                    ));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(e),
        }
    };
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(TCP_WAIT))?;
    let _ = writeln!(log, "producer connected from {:?}", stream.peer_addr());
    Ok(watch_reader(BufReader::new(stream), log))
}

/// Dispatches on the target syntax shared with the writer: a `tcp:`
/// prefix listens, anything else tails a file.
pub fn watch(target: &str, log: &mut dyn Write) -> std::io::Result<WatchStats> {
    match target.strip_prefix("tcp:") {
        Some(addr) => watch_tcp(addr, log),
        None => watch_file(target, log),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample(cycle: u64) -> String {
        Json::obj()
            .with("schema", "obs.sample/v1")
            .with("cycle", cycle as f64)
            .with("throughput_flits_per_cycle", 1.5)
            .with("packets_in_flight", 7.0)
            .with(
                "stall",
                Json::obj().with("inj_queue", 30.0).with("vc_alloc", 10.0),
            )
            .to_compact()
    }

    fn summary(cycle: u64) -> String {
        Json::obj()
            .with("schema", "obs.summary/v1")
            .with("cycle", cycle as f64)
            .with("req_delivered", 100.0)
            .with("rep_delivered", 100.0)
            .with(
                "per_class",
                Json::obj().with(
                    "request",
                    Json::obj()
                        .with("delivered", 100.0)
                        .with("e2e_cycles", 5000.0)
                        .with("inj_queue", 1000.0)
                        .with("serialization", 4000.0),
                ),
            )
            .to_compact()
    }

    #[test]
    fn clean_stream_is_fully_accounted() {
        let text = format!("{}\n{}\n{}\n", sample(100), sample(200), summary(250));
        let mut log = Vec::new();
        let s = watch_reader(Cursor::new(text), &mut log);
        assert_eq!((s.frames, s.samples, s.corrupt), (3, 2, 0));
        assert_eq!(s.last_cycle, 250);
        assert!(s.summary.is_some());
        let rendered = String::from_utf8(log).unwrap();
        assert!(rendered.contains("run summary"));
        assert!(rendered.contains("inj_queue 20.0%"), "breakdown shares rendered:\n{rendered}");
    }

    #[test]
    fn corrupt_and_truncated_lines_are_skipped_not_fatal() {
        // Garbage, a clipped frame, an unknown schema, and an empty
        // line, interleaved with good frames — the good ones all land.
        let good = sample(100);
        let clipped = &good[..good.len() / 2];
        let text = format!(
            "not json at all\n{clipped}\n{}\n\n{{\"schema\":\"other/v9\"}}\n{}\n",
            sample(300),
            summary(400)
        );
        let mut log = Vec::new();
        let s = watch_reader(Cursor::new(text), &mut log);
        assert_eq!((s.frames, s.samples), (2, 1));
        assert_eq!(s.corrupt, 3, "garbage + clipped + unknown schema");
        assert_eq!(s.last_cycle, 400);
        assert!(s.summary.is_some());
    }

    #[test]
    fn stream_stops_at_summary_even_with_trailing_data() {
        let text = format!("{}\n{}\n{}\n", sample(1), summary(2), sample(99));
        let s = watch_reader(Cursor::new(text), &mut Vec::new());
        assert_eq!(s.frames, 2, "nothing consumed past the summary");
        assert_eq!(s.last_cycle, 2);
    }

    #[test]
    fn tcp_watch_accepts_one_producer_and_drains_it() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener); // free the probed port for watch_tcp
        let addr_s = addr.to_string();
        let payload = format!("{}\n{}\n", sample(10), summary(20));
        let producer = std::thread::spawn(move || {
            // Retry until the watcher's listener is up.
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                match std::net::TcpStream::connect(&addr_s) {
                    Ok(mut s) => {
                        s.write_all(payload.as_bytes()).unwrap();
                        break;
                    }
                    Err(_) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(20))
                    }
                    Err(e) => panic!("producer never connected: {e}"),
                }
            }
        });
        let mut log = Vec::new();
        let s = watch_tcp(&addr.to_string(), &mut log).unwrap();
        producer.join().unwrap();
        assert_eq!((s.frames, s.samples, s.corrupt), (2, 1, 0));
        assert!(s.summary.is_some());
    }

    #[test]
    fn file_watch_follows_appends_to_the_summary() {
        let dir = std::env::temp_dir().join(format!("eqw_tail_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.jsonl");
        std::fs::write(&path, format!("{}\n", sample(5))).unwrap();
        let p = path.clone();
        let writer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
            writeln!(f, "{}", summary(9)).unwrap();
        });
        let mut log = Vec::new();
        let s = watch_file(path.to_str().unwrap(), &mut log).unwrap();
        writer.join().unwrap();
        assert_eq!(s.frames, 2, "caught the appended summary");
        assert!(s.summary.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
