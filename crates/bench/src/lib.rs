//! `equinox-bench` — the harness that regenerates every table and figure
//! of the EquiNox paper.
//!
//! The library half holds shared experiment runners (scheme sweeps,
//! normalization, table formatting, a cached strong EquiNox design); the
//! `repro` binary drives them per figure; the Criterion benches measure
//! the performance of the substrate itself (simulator cycle rate, search
//! throughput) on the same code paths.
//!
//! Figure/table map (§6 of the paper):
//!
//! | command  | reproduces |
//! |----------|------------|
//! | `table1` | Table 1 (simulation parameters) |
//! | `fig4`   | placement heat maps + variances |
//! | `fig5`   | N-Queen scoring policy |
//! | `fig7`   | the MCTS-selected EIR design |
//! | `fig9`   | execution time / energy / EDP across 7 schemes × 29 benchmarks |
//! | `fig10`  | packet-latency split (request/reply × queue/network) |
//! | `fig11`  | NoC area |
//! | `fig12`  | scalability (8×8 / 12×12 / 16×16) |
//! | `ubumps` | §6.6 µbump accounting |
//! | `ablation` | §4 design-choice studies (search method, hop budget, group size, placement) |

use equinox_config::ExperimentSpec;
use equinox_core::{EquiNoxDesign, RunMetrics, SchemeKind, System, SystemConfig};
use equinox_traffic::{profile::all_benchmarks, Workload};
use std::sync::OnceLock;

pub mod artifact;
pub mod cache;
pub mod scenarios;
pub mod watch;

/// Iterations used for the "strong" (publication-quality) design search.
pub const STRONG_ITERS: usize = 4_000;
/// Seed for the strong design (any fixed value; determinism is the point).
pub const STRONG_SEED: u64 = 7;

/// The 8×8 flagship design, searched once and shared by all experiments.
pub fn strong_design_8x8() -> &'static EquiNoxDesign {
    static DESIGN: OnceLock<EquiNoxDesign> = OnceLock::new();
    DESIGN.get_or_init(|| EquiNoxDesign::search(8, 8, STRONG_ITERS, STRONG_SEED))
}

/// Builds a design for an arbitrary mesh size (cached only for 8×8).
pub fn design_for(n: u16) -> EquiNoxDesign {
    if n == 8 {
        strong_design_8x8().clone()
    } else {
        EquiNoxDesign::search(n, 8, STRONG_ITERS, STRONG_SEED)
    }
}

/// One full-system run of `scheme` on benchmark `bench` under the
/// resolved spec (mesh `n × n`, workload scale and capacities from the
/// spec; `seed` passed separately because seed-averaging runners sweep
/// it).
pub fn run_one_spec(
    scheme: SchemeKind,
    n: u16,
    bench: &str,
    seed: u64,
    spec: &ExperimentSpec,
) -> RunMetrics {
    let profile = equinox_traffic::profile::benchmark(bench)
        .unwrap_or_else(|| panic!("unknown benchmark {bench}"));
    let workload = Workload::new(profile, spec.scale, seed);
    let mut cfg = SystemConfig::from_spec(scheme, n, workload, spec);
    if scheme == SchemeKind::EquiNox {
        cfg.design = Some(design_for(n));
    }
    System::build(cfg).run()
}

/// One full-system run of `scheme` on benchmark `bench` at the given
/// scale and seed (mesh `n × n`), with every other knob at its default.
pub fn run_one(scheme: SchemeKind, n: u16, bench: &str, scale: f64, seed: u64) -> RunMetrics {
    let mut spec = ExperimentSpec::default();
    spec.scale = scale;
    run_one_spec(scheme, n, bench, seed, &spec)
}

/// Like [`run_one_spec`], but times only the simulation loop: the
/// system is built (and the EquiNox design resolved) outside the timer,
/// so the returned `(cycles, seconds)` measure stepping cost alone.
/// Short runs make `run_one`-based rates build-dominated; perf figures
/// use this instead.
pub fn timed_run_spec(
    scheme: SchemeKind,
    n: u16,
    bench: &str,
    seed: u64,
    spec: &ExperimentSpec,
) -> (u64, f64) {
    let profile = equinox_traffic::profile::benchmark(bench)
        .unwrap_or_else(|| panic!("unknown benchmark {bench}"));
    let workload = Workload::new(profile, spec.scale, seed);
    let mut cfg = SystemConfig::from_spec(scheme, n, workload, spec);
    if scheme == SchemeKind::EquiNox {
        cfg.design = Some(design_for(n));
    }
    let mut sys = System::build(cfg);
    let t0 = std::time::Instant::now();
    let m = sys.run();
    (m.cycles, t0.elapsed().as_secs_f64())
}

/// [`timed_run_spec`] with defaults for everything but the scale.
pub fn timed_run(scheme: SchemeKind, n: u16, bench: &str, scale: f64, seed: u64) -> (u64, f64) {
    let mut spec = ExperimentSpec::default();
    spec.scale = scale;
    timed_run_spec(scheme, n, bench, seed, &spec)
}

/// Runs `scheme` over the spec's seed list and returns the metrics of
/// the median-cycles run rescaled to the seed-geomean cycle count
/// (pinning dynamics make single runs noisy; the paper averages full
/// benchmarks).
pub fn run_seeds_spec(scheme: SchemeKind, n: u16, bench: &str, spec: &ExperimentSpec) -> RunMetrics {
    assert!(!spec.seeds.is_empty(), "need at least one seed");
    // With a checkpoint dir armed, finished cells are content-addressed
    // on disk: a hit replays the bit-exact metrics, a miss computes and
    // stores them. Corrupt or colliding entries fall through to a
    // recompute (see the `cache` module's soundness notes).
    if let Some(c) = cache::cache_for(spec) {
        let key = cache::run_key(scheme, n, bench, spec);
        if let Ok(Some(bytes)) = c.load("run", key) {
            if let Ok(m) = cache::decode_metrics(&bytes) {
                if m.scheme == scheme && m.benchmark == bench {
                    return m;
                }
            }
        }
        let m = run_seeds_uncached(scheme, n, bench, spec);
        let _ = c.store("run", key, &cache::encode_metrics(&m));
        return m;
    }
    run_seeds_uncached(scheme, n, bench, spec)
}

fn run_seeds_uncached(scheme: SchemeKind, n: u16, bench: &str, spec: &ExperimentSpec) -> RunMetrics {
    let mut runs: Vec<RunMetrics> = spec
        .seeds
        .iter()
        .map(|&s| run_one_spec(scheme, n, bench, s, spec))
        .collect();
    runs.sort_by_key(|m| m.cycles);
    let geo_cycles = equinox_core::metrics::geomean(
        &runs.iter().map(|m| m.cycles as f64).collect::<Vec<_>>(),
    );
    let mut rep = runs.swap_remove(runs.len() / 2);
    let ratio = geo_cycles / rep.cycles as f64;
    rep.cycles = geo_cycles.round() as u64;
    rep.exec_ns *= ratio;
    rep.ipc /= ratio;
    rep.edp = rep.energy_j() * rep.exec_ns * 1e-9;
    rep
}

/// [`run_seeds_spec`] with an explicit scale and seed list.
pub fn run_seeds(scheme: SchemeKind, n: u16, bench: &str, scale: f64, seeds: &[u64]) -> RunMetrics {
    let mut spec = ExperimentSpec::default();
    spec.scale = scale;
    spec.seeds = seeds.to_vec();
    run_seeds_spec(scheme, n, bench, &spec)
}

/// Runs the full `benches × schemes` sweep matrix on the
/// [`equinox_exec`] worker pool and returns it bench-major
/// (`result[bi][si]` = benchmark `bi` under scheme `si`).
///
/// Every cell is an independent, seed-deterministic job, and
/// [`equinox_exec::par_map`] returns results in input order, so the
/// output is identical for any worker count — the determinism
/// regression tests in `tests/determinism.rs` pin this down.
pub fn run_matrix_spec(
    schemes: &[SchemeKind],
    n: u16,
    benches: &[&str],
    spec: &ExperimentSpec,
) -> Vec<Vec<RunMetrics>> {
    // The EquiNox design is searched once behind a OnceLock; force it
    // before the fan-out so one worker doesn't hold the rest hostage.
    if schemes.contains(&SchemeKind::EquiNox) {
        let _ = design_for(n);
    }
    let jobs: Vec<(usize, usize)> = (0..benches.len())
        .flat_map(|bi| (0..schemes.len()).map(move |si| (bi, si)))
        .collect();
    let cells = equinox_exec::par_map(jobs, |_, (bi, si)| {
        run_seeds_spec(schemes[si], n, benches[bi], spec)
    });
    let mut rows: Vec<Vec<RunMetrics>> = Vec::with_capacity(benches.len());
    let mut it = cells.into_iter();
    for _ in 0..benches.len() {
        rows.push(it.by_ref().take(schemes.len()).collect());
    }
    rows
}

/// [`run_matrix_spec`] with an explicit scale and seed list.
pub fn run_matrix(
    schemes: &[SchemeKind],
    n: u16,
    benches: &[&str],
    scale: f64,
    seeds: &[u64],
) -> Vec<Vec<RunMetrics>> {
    let mut spec = ExperimentSpec::default();
    spec.scale = scale;
    spec.seeds = seeds.to_vec();
    run_matrix_spec(schemes, n, benches, &spec)
}

/// The benchmark set a spec selects: all 29 with `--full`, else the
/// quick subset.
pub fn bench_set(spec: &ExperimentSpec) -> Vec<&'static str> {
    if spec.full {
        all_bench_names()
    } else {
        QUICK_BENCHES.to_vec()
    }
}

/// The benchmark subset used by quick modes (network-heavy + light).
pub const QUICK_BENCHES: [&str; 6] = [
    "kmeans",
    "heartwall",
    "fastWalshTrans",
    "gaussian",
    "bfs",
    "hotspot",
];

/// All 29 benchmark names.
pub fn all_bench_names() -> Vec<&'static str> {
    all_benchmarks().iter().map(|b| b.name).collect()
}

/// Normalizes each value by the first element.
pub fn normalize_to_first(values: &[f64]) -> Vec<f64> {
    let base = values.first().copied().unwrap_or(1.0);
    values
        .iter()
        .map(|v| if base != 0.0 { v / base } else { 0.0 })
        .collect()
}

/// All seven schemes in paper order (re-exported for binaries/benches).
pub fn all_schemes() -> [SchemeKind; 7] {
    SchemeKind::ALL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_subset_is_known() {
        let all = all_bench_names();
        for b in QUICK_BENCHES {
            assert!(all.contains(&b), "{b} missing from suite");
        }
        assert_eq!(all.len(), 29);
    }

    #[test]
    fn normalize_to_first_basics() {
        assert_eq!(normalize_to_first(&[2.0, 4.0, 1.0]), vec![1.0, 2.0, 0.5]);
        assert!(normalize_to_first(&[]).is_empty());
    }

    #[test]
    fn run_one_produces_complete_metrics() {
        let m = run_one(SchemeKind::SeparateBase, 8, "gaussian", 0.05, 1);
        assert!(m.completed);
        assert!(m.cycles > 0 && m.energy_j() > 0.0);
    }

    #[test]
    fn run_seeds_within_seed_range() {
        let m = run_seeds(SchemeKind::SeparateBase, 8, "gaussian", 0.05, &[1, 2]);
        let a = run_one(SchemeKind::SeparateBase, 8, "gaussian", 0.05, 1).cycles;
        let b = run_one(SchemeKind::SeparateBase, 8, "gaussian", 0.05, 2).cycles;
        assert!(m.cycles >= a.min(b) && m.cycles <= a.max(b));
    }
}
