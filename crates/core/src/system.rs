//! Full-system assembly and simulation: PEs + NIs + networks + CBs + HBM.
//!
//! [`System::build`] wires one of the seven schemes (§5); [`System::run`]
//! advances the whole machine cycle-by-cycle until every PE retires its
//! instruction quota and receives all replies, then derives the metrics
//! of §6 (execution time, energy, EDP, latency split, area, µbumps).

use crate::cb::CacheBank;
use crate::design::EquiNoxDesign;
use crate::metrics::RunMetrics;
use crate::msg::{MemOpKind, PacketTracker};
use crate::ni::{InjectPolicy, InjectionQueue};
use crate::obs::{Phase, SystemObs};
use crate::scheme::SchemeKind;
use equinox_hbm::HbmConfig;
use equinox_noc::config::{NocConfig, VcPartition};
use equinox_noc::flit::MessageClass;
use equinox_noc::link::LinkKind;
use equinox_noc::network::Network;
use equinox_phys::{BumpModel, Coord, WireModel};
use equinox_placement::Placement;
use equinox_power::{EnergyModel, EventCounts, NiGeometry, RouterGeometry};
use equinox_exec::StepTeam;
use equinox_traffic::{Pe, Workload};

/// Build-time parameters of a run.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Which of the seven schemes to build.
    pub scheme: SchemeKind,
    /// Grid size (8, 12 or 16; the paper evaluates 8×8).
    pub n: u16,
    /// Fabric for the dedicated reply subnet of the two-network schemes
    /// (SeparateBase / MultiPort / EquiNox). Request networks and the
    /// structurally different schemes (single-net, CMesh, DA2Mesh's
    /// single-VC subnets) always stay a mesh, so this is ignored there.
    pub reply_topology: equinox_noc::TopologyKind,
    /// Number of cache banks (Table 1: 8).
    pub n_cbs: u16,
    /// The benchmark workload.
    pub workload: Workload,
    /// Safety cap on simulated cycles.
    pub max_cycles: u64,
    /// Pre-computed EquiNox design (searched on demand if absent).
    pub design: Option<EquiNoxDesign>,
    /// Overrides the scheme's default CB placement (Diamond for the six
    /// baselines) — used by the placement ablation studies.
    pub placement_override: Option<Placement>,
    /// NI message-queue capacity.
    pub ni_queue_cap: usize,
    /// Maximum requests concurrently inside one CB.
    pub cb_inflight_cap: usize,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// HBM stack configuration (one stack per CB).
    pub hbm: HbmConfig,
    /// Extra router pipeline stages for every network (0 = the paper's
    /// aggressive single-cycle router).
    pub pipeline_extra: u32,
    /// Probability a read reply travels compressed (the §7 coalescing
    /// extension; 0 disables it).
    pub reply_compression: f64,
    /// Invariant-auditor configuration. `None` (the default) disables all
    /// audit work; the drivers fill it in from the resolved
    /// [`ExperimentSpec`](equinox_config::ExperimentSpec) (the spec's
    /// environment layer is what gives `EQUINOX_AUDIT` its effect).
    pub audit: Option<equinox_noc::AuditConfig>,
    /// Activity-driven stepping: gate each network's sweep to its active
    /// routers/links, and fast-forward the whole machine across
    /// quiescent stretches (PEs blocked on MSHRs while HBM timing runs
    /// down). Bit-identical to exhaustive stepping by construction, so it
    /// defaults on; the spec's `--no-activity-gate` /
    /// `EQUINOX_NO_ACTIVITY_GATE` escape hatch turns it off.
    pub activity_gate: bool,
    /// Observability configuration. `None` (the default) keeps the hot
    /// loop on the allocation-free fast path — one `Option` branch per
    /// event; `Some` arms the metrics registry, the interval time-series
    /// sampler and the step-phase span profiler (all preallocated at
    /// build time). Drivers fill it in from the resolved spec's `--obs`.
    pub obs: Option<crate::obs::ObsConfig>,
    /// Per-network flit-trace ring capacity; 0 (the default) disables
    /// tracing. Drivers fill it in from `--trace` / `--trace-capacity`.
    pub trace_capacity: usize,
    /// Intra-run subnet-stepping lanes: 1 (the default) steps every
    /// network serially on the caller; `k > 1` fans the per-subnet NoC
    /// phase over a persistent [`equinox_exec::StepTeam`] spawned once
    /// at build time; 0 picks `available cores / outer worker-pool
    /// threads` so outer × inner stays within the machine. Subnets own
    /// all their mutable state and the task→lane assignment is a fixed
    /// stride, so artifacts are byte-identical for every value. Drivers
    /// fill it in from `--sim-threads` / `EQUINOX_SIM_THREADS`.
    pub sim_threads: usize,
}

impl SystemConfig {
    /// Defaults from Table 1. No environment variables are consulted:
    /// auditing is off and activity gating on until a resolved spec (or
    /// the caller) says otherwise.
    pub fn new(scheme: SchemeKind, n: u16, workload: Workload) -> Self {
        SystemConfig {
            scheme,
            n,
            reply_topology: equinox_noc::TopologyKind::Mesh,
            n_cbs: 8,
            workload,
            max_cycles: 2_000_000,
            design: None,
            placement_override: None,
            ni_queue_cap: 8,
            cb_inflight_cap: 128,
            l2_latency: 20,
            hbm: HbmConfig::hbm2(),
            pipeline_extra: 0,
            reply_compression: 0.0,
            audit: None,
            activity_gate: true,
            obs: None,
            trace_capacity: 0,
            sim_threads: 1,
        }
    }

    /// Table 1 defaults overlaid with everything a resolved
    /// [`ExperimentSpec`](equinox_config::ExperimentSpec) dictates.
    ///
    /// The spec's `n` is *not* applied here — scenarios sweep mesh sizes
    /// explicitly — which is why the mesh size stays a parameter.
    pub fn from_spec(
        scheme: SchemeKind,
        n: u16,
        workload: Workload,
        spec: &equinox_config::ExperimentSpec,
    ) -> Self {
        let mut cfg = Self::new(scheme, n, workload);
        cfg.apply_spec(spec);
        cfg
    }

    /// Overwrites every field the spec covers (capacities, latencies,
    /// auditing, activity gating); structural choices (`scheme`, `n`,
    /// `workload`, `design`, `placement_override`, `hbm`) are untouched.
    pub fn apply_spec(&mut self, spec: &equinox_config::ExperimentSpec) {
        // The spec setter already validated the name, so a parse failure
        // here means the registries drifted apart — fail loudly.
        self.reply_topology = equinox_noc::TopologyKind::parse(&spec.topology)
            .unwrap_or_else(|e| panic!("spec topology: {e}"));
        self.n_cbs = spec.n_cbs;
        self.max_cycles = spec.max_cycles;
        self.ni_queue_cap = spec.ni_queue_cap;
        self.cb_inflight_cap = spec.cb_inflight_cap;
        self.l2_latency = spec.l2_latency;
        self.pipeline_extra = spec.pipeline_extra;
        self.reply_compression = spec.reply_compression;
        self.activity_gate = spec.activity_gate;
        self.audit = spec.audit.then_some(equinox_noc::AuditConfig {
            check_interval: spec.audit_check_interval,
            watchdog_window: spec.audit_watchdog_window,
            panic_on_violation: spec.audit_panic,
        });
        // A live stream implies observability: the frames are produced
        // by the sampling path, so `--obs-stream` alone arms it.
        self.obs = (spec.obs || !spec.obs_stream.is_empty()).then_some(crate::obs::ObsConfig {
            interval: spec.obs_interval.max(1),
            stream: spec.obs_stream.clone(),
            ..Default::default()
        });
        self.trace_capacity = if spec.trace { spec.trace_capacity } else { 0 };
        self.sim_threads = spec.sim_threads;
    }
}

/// An ejection point to drain: `(net, router, port)`.
type Sink = (usize, usize, usize);

/// Section tags of the [`System::snapshot`] container.
mod snap_tags {
    pub const SYS: u32 = 1;
    pub const NETS: u32 = 2;
    pub const PES: u32 = 3;
    pub const NIS: u32 = 4;
    pub const CBS: u32 = 5;
    pub const TRACKER: u32 = 6;
    pub const OBS: u32 = 7;
}

/// The assembled machine.
pub struct System {
    cfg: SystemConfig,
    /// CB placement in use.
    pub placement: Placement,
    nets: Vec<Network>,
    /// Steps per two core cycles (2 = same clock, 5 = DA2Mesh's 2.5×).
    steps_per_two: Vec<u32>,
    step_accum: Vec<u32>,
    /// Nets whose *mesh* links physically live in the interposer (CMesh).
    mesh_links_in_rdl: Vec<bool>,
    /// Average interposer-link length per net, mm (for energy).
    rdl_link_mm: Vec<f64>,
    pes: Vec<Option<Pe>>,
    /// `retired[idx]` mirrors `pes[idx].done()`; with `done_pes` it turns
    /// the per-cycle O(n_PEs) done-scan into an O(1) counter check
    /// (`Pe::done()` is absorbing, so a flag never needs clearing).
    retired: Vec<bool>,
    done_pes: usize,
    live_pes: usize,
    req_nis: Vec<Option<InjectionQueue>>,
    cbs: Vec<CacheBank>,
    /// Earliest cycle each cache bank must actually be ticked (activity
    /// gating): while a bank is [`CacheBank::skippable`] its tick is a
    /// pure no-op until the next timed event, so the tick is skipped
    /// entirely. Reset to "now + 1" whenever the bank accepts a request
    /// or reports itself non-skippable.
    cb_tick_due: Vec<u64>,
    rep_nis: Vec<InjectionQueue>,
    /// Reply sinks per PE node: (sinks, node index).
    pe_sinks: Vec<(Sink, usize)>,
    /// Request sinks per CB: (sink, cb index).
    cb_sinks: Vec<(Sink, usize)>,
    /// End-to-end packet registry.
    pub tracker: PacketTracker,
    cycle: u64,
    area_mm2: f64,
    ubumps: usize,
    total_instrs: u64,
    /// System-level progress counter at its last observed change
    /// (auditing only).
    sys_last_progress: u64,
    /// Cycle of that change.
    sys_last_progress_cycle: u64,
    /// System-level audit findings retained when the auditor is
    /// configured not to panic.
    audit_findings: Vec<String>,
    /// Observability state; `None` keeps the hot loop on the
    /// one-branch-per-event fast path.
    obs: Option<Box<SystemObs>>,
    /// Persistent subnet-stepping team, armed when the resolved
    /// `sim_threads` and the subnet count both exceed 1; `None` keeps
    /// the per-subnet NoC phase serial on the caller.
    team: Option<StepTeam>,
    /// Per-subnet `(start_ns, end_ns)` wall-clock scratch for the
    /// parallel NoC phase: each lane stamps only its own subnets'
    /// slots, the leader folds them into the span profiler in
    /// subnet-index order after the barrier. Preallocated at build so
    /// the parallel step path stays allocation-free.
    noc_span_scratch: Vec<(u64, u64)>,
}

/// Raw-pointer wrapper for `&mut`-disjoint element access from
/// [`StepTeam`] tasks: task `i` may touch only element `i`, so the
/// aliasing is index-disjoint even though the pointer is shared.
struct DisjointMut<T>(*mut T);

impl<T> DisjointMut<T> {
    /// Pointer to element `i`. Going through a method (rather than the
    /// `.0` field) keeps closure capture on the whole wrapper, so the
    /// `Sync` impl below applies.
    fn at(&self, i: usize) -> *mut T {
        self.0.wrapping_add(i)
    }
}

// SAFETY: sharing the wrapper across lanes is sound because every task
// dereferences a distinct element (enforced by the single caller
// below), and the team's barrier orders all writes before the leader
// resumes.
unsafe impl<T: Send> Sync for DisjointMut<T> {}

impl System {
    /// Builds the machine for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (zero sizes etc.).
    pub fn build(cfg: SystemConfig) -> Self {
        let n = cfg.n;
        let scheme = cfg.scheme;
        let placement = match (&cfg.placement_override, scheme) {
            (Some(p), _) => p.clone(),
            (None, SchemeKind::EquiNox) => {
                let design = cfg
                    .design
                    .clone()
                    .unwrap_or_else(|| EquiNoxDesign::quick(n, cfg.n_cbs));
                design.placement.clone()
            }
            _ => Placement::diamond(n, n, cfg.n_cbs),
        };
        let design = match scheme {
            SchemeKind::EquiNox => Some(
                cfg.design
                    .clone()
                    .unwrap_or_else(|| EquiNoxDesign::quick(n, cfg.n_cbs)),
            ),
            _ => None,
        };

        let pipe = |mut c: NocConfig| {
            c.pipeline_extra = cfg.pipeline_extra;
            c.activity_gate = cfg.activity_gate;
            c
        };
        let mut nets: Vec<Network> = Vec::new();
        let mut steps_per_two: Vec<u32> = Vec::new();
        let mut mesh_links_in_rdl: Vec<bool> = Vec::new();
        let mut rdl_link_mm: Vec<f64> = Vec::new();
        let mut ubumps = 0usize;

        // --- network construction ---
        match scheme {
            SchemeKind::SingleBase | SchemeKind::VcMono => {
                let mono = scheme == SchemeKind::VcMono;
                nets.push(Network::mesh(pipe(NocConfig::single_net(n, mono))));
                steps_per_two.push(2);
                mesh_links_in_rdl.push(false);
                rdl_link_mm.push(0.0);
            }
            SchemeKind::InterposerCMesh => {
                nets.push(Network::mesh(pipe(NocConfig::single_net(n, false))));
                let mut ccfg = NocConfig::mesh(n / 2);
                ccfg.freq_ghz = 1.126 / 2.0;
                ccfg.link_bits = 256;
                ccfg.vcs_per_port = 4;
                ccfg.vc_buf_flits = 3;
                ccfg.partition = VcPartition::ByClass {
                    request: 0..2,
                    reply: 2..4,
                    mono: false,
                };
                nets.push(Network::mesh(pipe(ccfg)));
                // The CMesh's 10-port 256-bit routers cannot close timing
                // at the tile clock; the concentrated network runs at half
                // frequency (same bits/s per link as the base mesh).
                steps_per_two.extend([2, 1]);
                mesh_links_in_rdl.extend([false, true]);
                rdl_link_mm.extend([0.0, 3.0]);
                // Neutralize the CMesh's own local ejection tags so only
                // the per-node tagged ports (added below) match.
                let cn = (n / 2) as usize * (n / 2) as usize;
                for r in 0..cn {
                    nets[1].set_ejection_sink(r, 4, Some(u32::MAX));
                }
                // 2·n² node↔CMesh uni-directional 256-bit links, one bump
                // per wire (§6.6's 32,768 for 8×8).
                ubumps = BumpModel::default().bump_count(2 * n as usize * n as usize, 256, 1);
            }
            SchemeKind::SeparateBase | SchemeKind::MultiPort | SchemeKind::EquiNox => {
                nets.push(Network::mesh(pipe(NocConfig::mesh(n)))); // request
                // Reply subnet: mesh by default, or the spec-selected
                // ring / hierarchical-ring fabric (same node set, so
                // NIs, sinks and placement are untouched).
                nets.push(Network::new(pipe(NocConfig::fabric(cfg.reply_topology, n))));
                steps_per_two.extend([2, 2]);
                mesh_links_in_rdl.extend([false, false]);
                rdl_link_mm.extend([0.0, 0.0]);
            }
            SchemeKind::Da2Mesh => {
                nets.push(Network::mesh(pipe(NocConfig::mesh(n)))); // request
                steps_per_two.push(2);
                mesh_links_in_rdl.push(false);
                rdl_link_mm.push(0.0);
                for _ in 0..8 {
                    let mut scfg = NocConfig::mesh(n);
                    scfg.link_bits = 16;
                    scfg.vc_buf_flits = 40;
                    // One VC per port: the subnets' routers are "narrower
                    // and simpler" (the source design's area advantage);
                    // with a single VC routing degrades to XY.
                    scfg.vcs_per_port = 1;
                    scfg.freq_ghz = 1.126 * 2.5;
                    nets.push(Network::mesh(pipe(scfg)));
                    steps_per_two.push(5);
                    mesh_links_in_rdl.push(false);
                    rdl_link_mm.push(0.0);
                }
            }
        }

        // --- NIs, sinks, per-scheme extras ---
        let mut pes: Vec<Option<Pe>> = Vec::new();
        let mut req_nis: Vec<Option<InjectionQueue>> = Vec::new();
        let mut pe_sinks: Vec<(Sink, usize)> = Vec::new();
        let mut cb_sinks: Vec<(Sink, usize)> = Vec::new();
        let mut rep_nis: Vec<InjectionQueue> = Vec::new();
        let mut cbs: Vec<CacheBank> = Vec::new();

        let req_net = 0usize;
        let reply_nets: Vec<usize> = match scheme {
            SchemeKind::SingleBase | SchemeKind::VcMono => vec![0],
            SchemeKind::InterposerCMesh => vec![0, 1],
            SchemeKind::SeparateBase | SchemeKind::MultiPort | SchemeKind::EquiNox => vec![1],
            SchemeKind::Da2Mesh => (1..9).collect(),
        };
        let request_nets: Vec<usize> = match scheme {
            SchemeKind::InterposerCMesh => vec![0, 1],
            _ => vec![req_net],
        };

        // Per-node CMesh handles (Interposer-CMesh only).
        let conc = 2u16;
        let mut cmesh_inj = Vec::new();
        let mut cmesh_ej = Vec::new();
        if scheme == SchemeKind::InterposerCMesh {
            for idx in 0..(n as usize * n as usize) {
                let node = Coord::from_index(idx, n);
                let cnode = Coord::new(node.x / conc, node.y / conc);
                cmesh_inj.push(nets[1].add_injection_port(cnode, 1, LinkKind::Interposer));
                cmesh_ej.push(nets[1].add_ejection_port(cnode, Some(idx as u32)));
            }
        }

        // PEs and their request NIs.
        let mut pe_count = 0usize;
        for idx in 0..(n as usize * n as usize) {
            let node = Coord::from_index(idx, n);
            if placement.is_cb(node) {
                pes.push(None);
                req_nis.push(None);
                continue;
            }
            let pe = Pe::new(
                cfg.workload.profile,
                pe_count,
                cfg.workload.scale,
                cfg.workload.mshrs,
                cfg.workload.seed,
            );
            let pe = match cfg.workload.phase_len {
                Some(len) => pe.with_phases(len),
                None => pe,
            };
            pe_count += 1;
            pes.push(Some(pe));
            let policy = match scheme {
                SchemeKind::InterposerCMesh => InjectPolicy::CmeshSplit {
                    base: 0,
                    cmesh: 1,
                    cmesh_injector: cmesh_inj[idx],
                    concentration: conc,
                    threshold: 2,
                },
                _ => InjectPolicy::Local { net: req_net },
            };
            req_nis.push(Some(InjectionQueue::new(node, cfg.ni_queue_cap, policy)));
            // Reply sinks for this PE.
            for &rn in &reply_nets {
                if scheme == SchemeKind::InterposerCMesh && rn == 1 {
                    let (r, p) = cmesh_ej[idx];
                    pe_sinks.push(((1, r, p), idx));
                } else {
                    pe_sinks.push(((rn, idx, 4), idx));
                }
            }
        }

        // CBs, their reply NIs, and request sinks.
        let mut eir_groups: Vec<Vec<equinox_noc::InjectorId>> = Vec::new();
        for (ci, &cb_node) in placement.cbs.iter().enumerate() {
            let idx = cb_node.to_index(n);
            let policy = match scheme {
                SchemeKind::SingleBase | SchemeKind::VcMono => InjectPolicy::Local { net: 0 },
                SchemeKind::InterposerCMesh => InjectPolicy::CmeshSplit {
                    base: 0,
                    cmesh: 1,
                    cmesh_injector: cmesh_inj[idx],
                    concentration: conc,
                    threshold: 2,
                },
                SchemeKind::SeparateBase => InjectPolicy::Local { net: 1 },
                SchemeKind::Da2Mesh => InjectPolicy::SubnetRoundRobin {
                    nets: (1..9).collect(),
                    rr: ci,
                },
                SchemeKind::MultiPort => {
                    let mut injectors = vec![nets[1].local_injector(cb_node)];
                    for _ in 0..3 {
                        injectors.push(nets[1].add_injection_port(cb_node, 1, LinkKind::NiLocal));
                    }
                    InjectPolicy::MultiInjector {
                        net: 1,
                        injectors,
                        rr: 0,
                    }
                }
                SchemeKind::EquiNox => {
                    let d = design.as_ref().expect("EquiNox has a design");
                    let eirs: Vec<_> = d.selection.groups[ci]
                        .iter()
                        .map(|&e| (e, nets[1].add_injection_port(e, 1, LinkKind::Interposer)))
                        .collect();
                    // Keep the injector handles so the observability layer
                    // can report per-CB-group EIR load.
                    eir_groups.push(eirs.iter().map(|&(_, id)| id).collect());
                    InjectPolicy::Equinox {
                        net: 1,
                        local: nets[1].local_injector(cb_node),
                        eirs,
                        rr: 0,
                    }
                }
            };
            rep_nis.push(InjectionQueue::new(cb_node, cfg.ni_queue_cap, policy));
            let mut bank = CacheBank::new(
                cb_node,
                placement.cbs.len() as u64,
                cfg.workload.profile.l2_hit,
                cfg.l2_latency,
                cfg.hbm,
                cfg.cb_inflight_cap,
                cfg.workload.seed.wrapping_add(ci as u64),
            );
            if cfg.reply_compression > 0.0 {
                bank.set_compression(cfg.reply_compression);
            }
            cbs.push(bank);
            // Request sinks at the CB.
            for &rn in &request_nets {
                if scheme == SchemeKind::InterposerCMesh && rn == 1 {
                    let (r, p) = cmesh_ej[idx];
                    cb_sinks.push(((1, r, p), ci));
                } else {
                    cb_sinks.push(((rn, idx, 4), ci));
                }
            }
            // MultiPort's extra ports target "the reply injection
            // bottleneck" (§5): the scheme modifies only the reply
            // network's CB routers, so its request path is SeparateBase's.
        }

        // EquiNox physical accounting.
        if let Some(d) = &design {
            ubumps = d.ubump_count(128);
            let segs = d.segments();
            let wire = WireModel::default();
            let avg = if segs.is_empty() {
                0.0
            } else {
                wire.total_length_mm(&segs) / segs.len() as f64
            };
            rdl_link_mm[1] = avg;
        }

        // --- area model ---
        let mut area = 0.0;
        for (ni, net) in nets.iter().enumerate() {
            let c = net.config();
            for idx in 0..c.num_nodes() {
                let node = Coord::from_index(idx, c.width);
                // Injection-only ports are input-side only; counting the
                // paired (dead) output sides would double-charge the
                // crossbar. CMesh routers are the paper's stated "2x more
                // ports than a basic router" (§6.5) = 10; elsewhere the
                // simulator's port count matches the physical router.
                let ports = if mesh_links_in_rdl[ni] {
                    10
                } else {
                    net.router_ports(node)
                };
                area += RouterGeometry {
                    ports,
                    vcs: c.vcs_per_port as usize,
                    buf_flits: c.vc_buf_flits,
                    flit_bits: c.link_bits as usize,
                }
                .area_mm2();
            }
        }
        // Request NIs (one per PE) + scheme-specific CB reply NIs.
        area += pe_count as f64 * NiGeometry::baseline().area_mm2();
        let cb_ni = match scheme {
            SchemeKind::EquiNox => NiGeometry {
                buffers: 5,
                buf_flits: 5,
                flit_bits: 128,
            },
            SchemeKind::MultiPort => NiGeometry {
                buffers: 4,
                buf_flits: 5,
                flit_bits: 128,
            },
            SchemeKind::Da2Mesh => NiGeometry {
                buffers: 8,
                buf_flits: 40,
                flit_bits: 16,
            },
            _ => NiGeometry::baseline(),
        };
        area += cfg.n_cbs as f64 * cb_ni.area_mm2();

        if let Some(acfg) = &cfg.audit {
            for net in &mut nets {
                net.enable_audit(acfg.clone());
            }
        }
        if cfg.trace_capacity > 0 {
            for net in &mut nets {
                net.enable_trace(cfg.trace_capacity);
            }
        }
        if cfg.obs.is_some() {
            // Stall-cause attribution rides with observability: the
            // router pipelines charge per-router × per-cause counters
            // that the obs/v2 block and stream frames aggregate.
            for net in &mut nets {
                net.enable_stalls();
            }
        }
        let obs = cfg
            .obs
            .as_ref()
            .map(|o| Box::new(SystemObs::new(o, &nets, eir_groups, cfg.max_cycles, cfg.n)));

        let total_instrs = cfg.workload.total_instrs(pe_count);
        let lanes = resolved_sim_threads(cfg.sim_threads, nets.len());
        let team = (lanes > 1).then(|| StepTeam::new(lanes));
        let steps = steps_per_two.clone();
        let n_nets = steps.len();
        let retired: Vec<bool> = pes
            .iter()
            .map(|p| p.as_ref().is_some_and(|pe| pe.done()))
            .collect();
        let done_pes = retired.iter().filter(|&&r| r).count();
        let live_pes = pes.iter().flatten().count();
        System {
            placement,
            nets,
            retired,
            done_pes,
            live_pes,
            step_accum: vec![0; steps.len()],
            steps_per_two: steps,
            mesh_links_in_rdl,
            rdl_link_mm,
            pes,
            req_nis,
            cb_tick_due: vec![0; cbs.len()],
            cbs,
            rep_nis,
            pe_sinks,
            cb_sinks,
            tracker: PacketTracker::new(),
            cycle: 0,
            area_mm2: area,
            ubumps,
            total_instrs,
            sys_last_progress: 0,
            sys_last_progress_cycle: 0,
            audit_findings: Vec::new(),
            obs,
            noc_span_scratch: vec![(0, 0); n_nets],
            team,
            cfg,
        }
    }

    /// Lanes the per-subnet NoC phase actually runs on (1 = serial).
    pub fn sim_lanes(&self) -> usize {
        self.team.as_ref().map_or(1, StepTeam::lanes)
    }

    /// Pre-reserves packet-tracker capacity for `n` more packets, so a
    /// measured (allocation-free) window can move the record-table
    /// growth out of its timing.
    pub fn reserve_packets(&mut self, n: usize) {
        self.tracker.reserve(n);
    }

    /// Index of the cache bank serving `addr` (line-interleaved).
    pub fn cb_for_addr(&self, addr: u64) -> usize {
        ((addr / 64) % self.cbs.len() as u64) as usize
    }

    /// Advances the machine one core cycle. When the activity gate is on
    /// and the machine is provably inert, the clock first jumps across
    /// the quiescent stretch (see [`System::try_fast_forward`]) and the
    /// real cycle is then simulated at the landing time.
    pub fn step(&mut self) {
        if self.cfg.activity_gate {
            let s = self.span_start();
            self.try_fast_forward();
            self.span_end(Phase::Quiescence, 0, s);
        }
        let t = self.cycle;
        let s = self.span_start();
        // Cache banks: memory + reply generation. Under the activity
        // gate a bank whose next tick is provably a no-op (see
        // `CacheBank::skippable` / `CacheBank::next_event`) is skipped
        // until its next timed event comes due — the dominant per-cycle
        // saving at low load, where the HBM channel scan would otherwise
        // run every cycle for every bank.
        for ci in 0..self.cbs.len() {
            if self.cfg.activity_gate {
                if t < self.cb_tick_due[ci] {
                    continue;
                }
                self.cbs[ci].tick(t, &mut self.tracker, &mut self.rep_nis[ci]);
                self.cb_tick_due[ci] = if self.cbs[ci].skippable() {
                    match self.cbs[ci].next_event() {
                        Some(e) => e.max(t + 1),
                        None => u64::MAX, // woken by the accept hook below
                    }
                } else {
                    t + 1
                };
            } else {
                self.cbs[ci].tick(t, &mut self.tracker, &mut self.rep_nis[ci]);
            }
        }
        self.span_end(Phase::CbTick, 0, s);
        // PEs: execute and emit requests.
        let s = self.span_start();
        let n_cbs = self.cbs.len() as u64;
        for idx in 0..self.pes.len() {
            let Some(pe) = self.pes[idx].as_mut() else {
                continue;
            };
            let ni = self.req_nis[idx].as_mut().expect("PE has a request NI");
            if let Some(op) = pe.tick(ni.can_accept()) {
                let src = Coord::from_index(idx, self.cfg.n);
                let ci = ((op.addr / 64) % n_cbs) as usize;
                let dst = self.cbs[ci].node;
                let kind = if op.write {
                    MemOpKind::Write
                } else {
                    MemOpKind::Read
                };
                let msg = self
                    .tracker
                    .create(src, dst, MessageClass::Request, kind, op.addr, t);
                // `pe.tick(ni.can_accept())` only emits when the NI has
                // room, so this cannot overflow; a rejection here would
                // mean a lost (tracker-registered) request.
                let pushed = ni.try_push(msg);
                assert!(pushed.is_ok(), "request NI refused a gated message");
            }
            // A compute-only quota can retire to completion inside tick().
            if !self.retired[idx] && self.pes[idx].as_ref().is_some_and(|pe| pe.done()) {
                self.retired[idx] = true;
                self.done_pes += 1;
            }
        }
        self.span_end(Phase::PeTick, 0, s);
        // NIs stream flits into the networks. An idle NI's tick is a
        // pure no-op (nothing queued, nothing in flight), so the gate
        // skips the call.
        let s = self.span_start();
        let gate = self.cfg.activity_gate;
        for ni in self.req_nis.iter_mut().flatten() {
            if gate && ni.is_idle() {
                continue;
            }
            ni.tick(&mut self.nets, &mut self.tracker, t);
        }
        for ni in self.rep_nis.iter_mut() {
            if gate && ni.is_idle() {
                continue;
            }
            ni.tick(&mut self.nets, &mut self.tracker, t);
        }
        self.span_end(Phase::NiTick, 0, s);
        // Networks advance (subnets may step more than once). Each
        // network owns every piece of state its `step` touches (VC
        // buffers, stats, audit, trace ring, worklists), so with a
        // team armed the per-subnet phase fans out between two
        // barriers; the phases before and after stay serial at the
        // boundaries. Task i = subnet i always, so results are
        // byte-identical to the serial loop below.
        match &self.team {
            Some(team) => {
                let epoch = self.obs.as_ref().map(|o| o.spans.epoch());
                let nets = DisjointMut(self.nets.as_mut_ptr());
                let accum = DisjointMut(self.step_accum.as_mut_ptr());
                let scratch = DisjointMut(self.noc_span_scratch.as_mut_ptr());
                let steps_per_two = &self.steps_per_two;
                team.run(steps_per_two.len(), &|i| {
                    let t0 = epoch.map_or(0, |e| e.elapsed().as_nanos() as u64);
                    // SAFETY: task i touches only element i of each
                    // vector (all sized to the subnet count), and the
                    // team runs each task exactly once per round.
                    unsafe {
                        let acc = &mut *accum.at(i);
                        let net = &mut *nets.at(i);
                        *acc += *steps_per_two.get_unchecked(i);
                        while *acc >= 2 {
                            net.step();
                            *acc -= 2;
                        }
                        if let Some(e) = epoch {
                            *scratch.at(i) = (t0, e.elapsed().as_nanos() as u64);
                        }
                    }
                });
                if self.obs.is_some() {
                    let cycle = self.cycle;
                    for i in 0..self.noc_span_scratch.len() {
                        let (s_ns, e_ns) = self.noc_span_scratch[i];
                        if let Some(o) = self.obs.as_deref_mut() {
                            o.end_noc_span_closed(i, s_ns, e_ns, cycle);
                        }
                    }
                }
            }
            None => {
                for i in 0..self.nets.len() {
                    let s = self.span_start();
                    self.step_accum[i] += self.steps_per_two[i];
                    while self.step_accum[i] >= 2 {
                        self.nets[i].step();
                        self.step_accum[i] -= 2;
                    }
                    let cycle = self.cycle;
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.end_noc_span(i, s, cycle);
                    }
                }
            }
        }
        // Drain replies at PEs. A network with nothing in any eject
        // queue (O(1) check) cannot satisfy a pop, so its sinks are
        // skipped wholesale.
        let s = self.span_start();
        for &((net, r, p), node) in &self.pe_sinks {
            if !self.nets[net].has_ejected() {
                continue;
            }
            while let Some(f) = self.nets[net].pop_ejected(r, p) {
                if f.is_tail() {
                    self.tracker.mark_ejected(f.pkt.0, t);
                    if let Some(o) = self.obs.as_deref_mut() {
                        let rec = self.tracker.record(f.pkt.0);
                        let created = rec.created;
                        o.record_latency(true, t.saturating_sub(created));
                        let wait = rec.injected.map_or(0, |i| i.saturating_sub(created));
                        o.record_inj_wait(true, wait, rec.src);
                    }
                    let pe = self.pes[node]
                        .as_mut()
                        .expect("reply sink belongs to a PE");
                    pe.complete();
                    if !self.retired[node] && pe.done() {
                        self.retired[node] = true;
                        self.done_pes += 1;
                    }
                }
            }
        }
        // Drain requests at CBs, gated by bank capacity.
        for &((net, r, p), ci) in &self.cb_sinks {
            if !self.nets[net].has_ejected() {
                continue;
            }
            while self.cbs[ci].can_accept() {
                match self.nets[net].pop_ejected(r, p) {
                    Some(f) => {
                        if f.is_tail() {
                            self.tracker.mark_ejected(f.pkt.0, t);
                            if let Some(o) = self.obs.as_deref_mut() {
                                let rec = self.tracker.record(f.pkt.0);
                                let created = rec.created;
                                o.record_latency(false, t.saturating_sub(created));
                                let wait = rec.injected.map_or(0, |i| i.saturating_sub(created));
                                o.record_inj_wait(false, wait, rec.src);
                            }
                            self.cbs[ci].accept(f.pkt.0, &self.tracker, t);
                            // The accepted request re-arms the bank's
                            // tick schedule (its next event changed).
                            self.cb_tick_due[ci] = t + 1;
                        }
                    }
                    None => break,
                }
            }
        }
        self.span_end(Phase::SinkDrain, 0, s);
        self.cycle += 1;
        if self.cfg.audit.is_some() {
            self.audit_step();
        }
        // Sampling is keyed to the simulated clock, never wall time, so
        // the recorded series is deterministic. A fast-forward can jump
        // past several due points; the next row then spans the gap.
        if let Some(o) = self.obs.as_deref_mut() {
            if self.cycle >= o.next_sample() {
                o.sample(self.cycle, &self.nets, &self.tracker);
            }
        }
    }

    /// Opens a wall-clock span (no-op returning 0 when obs is off).
    #[inline]
    fn span_start(&self) -> u64 {
        match &self.obs {
            Some(o) => o.spans.start(),
            None => 0,
        }
    }

    /// Closes a wall-clock span opened by [`System::span_start`].
    #[inline]
    fn span_end(&mut self, phase: Phase, track: u64, start_ns: u64) {
        let cycle = self.cycle;
        if let Some(o) = self.obs.as_deref_mut() {
            o.end_span(phase, track, start_ns, cycle);
        }
    }

    /// Jumps the clock across a quiescent stretch, bit-identically.
    ///
    /// The machine is *quiescent* when simulating the next cycle would
    /// change nothing except timed countdowns: every network is empty
    /// (no buffered, in-flight or ejected flits, no credits in flight),
    /// every NI is idle, every cache bank is parked on timed events only
    /// (no ready/retrying/parked replies), and every PE is either done
    /// or stalled on outstanding MSHR replies. In that state the only
    /// future source of progress is a cache-bank timed event (an L2 hit
    /// coming due or a DRAM bank/bus becoming ready), so the clock can
    /// jump straight to the earliest such event.
    ///
    /// The jump length is capped so that every *observable* action lands
    /// on exactly the cycle it would in an exhaustive run:
    /// * never past `max_cycles` (the run loop must exit at the same
    ///   cycle count),
    /// * never across a system-audit sweep or watchdog expiry (audit
    ///   checks evaluate at `t+1..=t+k` after the increment; both
    ///   boundaries would fire mid-jump),
    /// * never across a per-network audit boundary, translated through
    ///   each subnet's clock ratio: over `k` core cycles a net with
    ///   accumulator `a0` and rate `spt` half-steps takes
    ///   `(a0 + k*spt)/2` steps, so `k` is capped at the largest value
    ///   keeping that within the net's own [`Network::max_idle_skip`].
    ///
    /// Skipped PE cycles are charged to stall statistics via
    /// [`Pe::note_skipped_stall`] so counters match the exhaustive run.
    fn try_fast_forward(&mut self) {
        let t = self.cycle;
        if !self.nets.iter().all(Network::idle) {
            return;
        }
        if !self
            .req_nis
            .iter()
            .flatten()
            .chain(self.rep_nis.iter())
            .all(InjectionQueue::is_idle)
        {
            return;
        }
        if !self.cbs.iter().all(CacheBank::skippable) {
            return;
        }
        if !self
            .pes
            .iter()
            .flatten()
            .all(|pe| pe.done() || pe.blocked_on_replies())
        {
            return;
        }
        let event = self.cbs.iter().filter_map(CacheBank::next_event).min();
        // Resume real stepping AT the event cycle (events fire when
        // `tick(now)` runs with `now >= due`).
        let mut k = match event {
            Some(e) => e.saturating_sub(t),
            None => u64::MAX, // wedged; bounded below by max_cycles/audit
        };
        k = k.min(self.cfg.max_cycles.saturating_sub(t + 1));
        if let Some(acfg) = &self.cfg.audit {
            let interval = acfg.check_interval.max(1);
            let next_sweep = (t / interval + 1) * interval;
            k = k.min(next_sweep - 1 - t);
            if acfg.watchdog_window > 0 {
                let expiry = self.sys_last_progress_cycle + acfg.watchdog_window;
                k = k.min(expiry.saturating_sub(t + 1));
            }
        }
        for i in 0..self.nets.len() {
            let s_max = self.nets[i].max_idle_skip();
            if s_max > u64::MAX / 4 {
                continue; // unaudited net: no boundary to respect
            }
            let spt = u64::from(self.steps_per_two[i]);
            let a0 = u64::from(self.step_accum[i]);
            // steps(k) = (a0 + k*spt) / 2 <= s_max  <=>  k <= budget/spt.
            let budget = (2 * s_max + 1).saturating_sub(a0);
            k = k.min(budget / spt);
        }
        if k == 0 {
            return;
        }
        self.cycle += k;
        if let Some(o) = self.obs.as_deref_mut() {
            o.note_fast_forward(k);
        }
        for i in 0..self.nets.len() {
            let total = u64::from(self.step_accum[i]) + k * u64::from(self.steps_per_two[i]);
            self.nets[i].skip_idle(total / 2);
            self.step_accum[i] = (total % 2) as u32;
        }
        for pe in self.pes.iter_mut().flatten() {
            if !pe.done() {
                pe.note_skipped_stall(k);
            }
        }
    }

    /// System-level audit pass, run at the end of every core cycle when
    /// auditing is enabled (the per-network checks run inside each
    /// network's own `step`).
    ///
    /// * **Packet accounting** (every `check_interval` cycles): packets
    ///   injected-but-undelivered per the tracker must equal the tail
    ///   flits resident in the networks plus the packets still streaming
    ///   out of NIs — a leaked or double-counted packet breaks the
    ///   equality immediately.
    /// * **Protocol watchdog**: if no message is created, injected,
    ///   delivered or moved for `watchdog_window` core cycles while work
    ///   is pending, the run is wedged above the NoC level (e.g. a
    ///   request/reply dependence cycle); dump occupancy instead of
    ///   spinning to `max_cycles`.
    fn audit_step(&mut self) {
        let acfg = self.cfg.audit.as_ref().expect("audit enabled");
        let (interval, window, panic_on) = (
            acfg.check_interval.max(1),
            acfg.watchdog_window,
            acfg.panic_on_violation,
        );
        let progress = self.tracker.len() as u64
            + self.tracker.delivered()
            + self.done_pes as u64
            + self
                .nets
                .iter()
                .map(|n| {
                    let s = n.stats();
                    s.injected_flits + s.ejected_flits + s.xbar_traversals
                })
                .sum::<u64>();
        if progress != self.sys_last_progress {
            self.sys_last_progress = progress;
            self.sys_last_progress_cycle = self.cycle;
        }
        let stalled = self.cycle - self.sys_last_progress_cycle;
        if window > 0 && stalled >= window && !self.done() {
            let pending = self.occupancy() != (0, 0, 0, 0)
                || self.nets.iter().any(|n| !n.quiescent());
            self.sys_last_progress_cycle = self.cycle;
            if pending {
                let (pe_out, req_backlog, cb_inflight, rep_backlog) = self.occupancy();
                let msg = format!(
                    "system deadlock: no protocol progress for {stalled} cycles at cycle {} \
                     with work pending: {} of {} PEs retired, occupancy \
                     (pe_outstanding {pe_out}, req_ni_backlog {req_backlog}, \
                     cb_inflight {cb_inflight}, rep_ni_backlog {rep_backlog}), \
                     {} CBs at capacity, packets in flight {}",
                    self.cycle,
                    self.done_pes,
                    self.live_pes,
                    self.cbs_at_capacity(),
                    self.tracker.in_flight(),
                );
                if panic_on {
                    panic!("{msg}");
                }
                self.audit_findings.push(msg);
            }
        }
        if self.cycle.is_multiple_of(interval) {
            let resident: u64 = self.nets.iter().map(|n| n.resident_tail_flits()).sum();
            let streaming: u64 = self
                .req_nis
                .iter()
                .flatten()
                .chain(self.rep_nis.iter())
                .map(|ni| ni.streaming_packets() as u64)
                .sum();
            let in_flight = self.tracker.in_flight();
            if in_flight != resident + streaming {
                let msg = format!(
                    "packet accounting broken at cycle {}: tracker reports {in_flight} \
                     packets in flight but networks hold {resident} tail flits and NIs \
                     are streaming {streaming} packets",
                    self.cycle
                );
                if panic_on {
                    panic!("{msg}");
                }
                self.audit_findings.push(msg);
            }
        }
        const MAX_FINDINGS: usize = 256;
        self.audit_findings.truncate(MAX_FINDINGS);
    }

    /// System-level audit findings retained so far (always empty while
    /// the auditor panics on violation, or when auditing is off).
    pub fn audit_findings(&self) -> &[String] {
        &self.audit_findings
    }

    /// `true` when every PE has retired its quota and received every
    /// reply. O(1): maintained as a retired-PE counter by [`System::step`].
    pub fn done(&self) -> bool {
        debug_assert_eq!(
            self.done_pes == self.live_pes,
            self.pes.iter().flatten().all(|pe| pe.done()),
            "retired-PE counter out of sync with PE state"
        );
        self.done_pes == self.live_pes
    }

    /// Runs to completion (or the cycle cap) and reports metrics.
    pub fn run(&mut self) -> RunMetrics {
        while !self.done() && self.cycle < self.cfg.max_cycles {
            self.step();
        }
        // Terminal time-series row: runs shorter than one sampling
        // interval still get a data point, and longer runs close their
        // series at the final cycle (cycle-derived, so deterministic).
        if let Some(o) = self.obs.as_deref_mut() {
            if o.needs_final_sample(self.cycle) {
                o.sample(self.cycle, &self.nets, &self.tracker);
            }
            // Close a live stream with the terminal breakdown frame
            // (no-op without `--obs-stream`).
            o.emit_summary_frame(self.cycle, &self.nets);
        }
        self.metrics()
    }

    /// Serializes the machine's complete dynamic state into one
    /// [`equinox_snap`] container. Build-derived state (topology,
    /// placement, area, sinks, clock ratios, the step team) is not
    /// written: a snapshot restores only into a [`System::build`] of the
    /// *same* [`SystemConfig`] (up to snapshot-neutral knobs like
    /// `sim_threads`, which changes lane assignment but not state).
    ///
    /// Because every component of the simulation is bit-deterministic,
    /// `build + restore + run` produces byte-identical artifacts to the
    /// straight-through run that took the snapshot — the contract
    /// `tests/determinism.rs` enforces.
    pub fn snapshot(&self) -> Vec<u8> {
        use equinox_snap::{Enc, Snap};
        let mut sys = Enc::new();
        sys.put_u64(self.cycle);
        self.step_accum.snap(&mut sys);
        self.cb_tick_due.snap(&mut sys);
        self.retired.snap(&mut sys);
        sys.put_usize(self.done_pes);
        sys.put_u64(self.sys_last_progress);
        sys.put_u64(self.sys_last_progress_cycle);
        self.audit_findings.snap(&mut sys);

        let mut nets = Enc::new();
        nets.put_usize(self.nets.len());
        for n in &self.nets {
            n.snapshot_state(&mut nets);
        }

        let mut pes = Enc::new();
        pes.put_usize(self.pes.len());
        for p in &self.pes {
            match p {
                Some(pe) => {
                    pes.put_u8(1);
                    pe.snap_state(&mut pes);
                }
                None => pes.put_u8(0),
            }
        }

        let mut nis = Enc::new();
        nis.put_usize(self.req_nis.len());
        for ni in &self.req_nis {
            match ni {
                Some(q) => {
                    nis.put_u8(1);
                    q.snap_state(&mut nis);
                }
                None => nis.put_u8(0),
            }
        }
        nis.put_usize(self.rep_nis.len());
        for q in &self.rep_nis {
            q.snap_state(&mut nis);
        }

        let mut cbs = Enc::new();
        cbs.put_usize(self.cbs.len());
        for cb in &self.cbs {
            cb.snap_state(&mut cbs);
        }

        let mut tracker = Enc::new();
        self.tracker.snap(&mut tracker);

        let mut obs = Enc::new();
        match &self.obs {
            Some(o) => {
                obs.put_bool(true);
                o.snap_state(&mut obs);
            }
            None => obs.put_bool(false),
        }

        equinox_snap::write_snapshot(&[
            (snap_tags::SYS, sys.into_bytes()),
            (snap_tags::NETS, nets.into_bytes()),
            (snap_tags::PES, pes.into_bytes()),
            (snap_tags::NIS, nis.into_bytes()),
            (snap_tags::CBS, cbs.into_bytes()),
            (snap_tags::TRACKER, tracker.into_bytes()),
            (snap_tags::OBS, obs.into_bytes()),
        ])
    }

    /// Restores a [`System::snapshot`] into this machine, which must
    /// have been built from the same configuration. Every section is
    /// shape-validated against the built topology (counts, capacities,
    /// audit/obs arming); any mismatch, truncation or corruption
    /// returns a structured [`equinox_snap::SnapError`]. On error the
    /// machine may be partially overwritten and must be discarded.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), equinox_snap::SnapError> {
        use equinox_snap::{read_snapshot, section, Dec, Snap, SnapError};
        let sections = read_snapshot(bytes)?;

        let mut d = Dec::new(section(&sections, snap_tags::SYS)?);
        let cycle = d.u64()?;
        let step_accum: Vec<u32> = Vec::restore(&mut d)?;
        let cb_tick_due: Vec<u64> = Vec::restore(&mut d)?;
        let retired: Vec<bool> = Vec::restore(&mut d)?;
        let done_pes = d.usize()?;
        let sys_last_progress = d.u64()?;
        let sys_last_progress_cycle = d.u64()?;
        let audit_findings: Vec<String> = Vec::restore(&mut d)?;
        d.finish()?;
        if step_accum.len() != self.steps_per_two.len() || step_accum.iter().any(|&a| a >= 2) {
            return Err(SnapError::BadValue("system step accumulators"));
        }
        if cb_tick_due.len() != self.cbs.len() {
            return Err(SnapError::BadValue("cb tick schedule length"));
        }
        if retired.len() != self.pes.len()
            || done_pes != retired.iter().filter(|&&r| r).count()
            || retired
                .iter()
                .zip(&self.pes)
                .any(|(&r, pe)| r && pe.is_none())
        {
            return Err(SnapError::BadValue("retired-PE flags"));
        }

        let mut d = Dec::new(section(&sections, snap_tags::NETS)?);
        if d.usize()? != self.nets.len() {
            return Err(SnapError::BadValue("network count"));
        }
        for n in &mut self.nets {
            n.restore_state(&mut d)?;
        }
        d.finish()?;

        let mut d = Dec::new(section(&sections, snap_tags::PES)?);
        if d.usize()? != self.pes.len() {
            return Err(SnapError::BadValue("pe count"));
        }
        for p in &mut self.pes {
            let present = d.u8()?;
            match (p.as_mut(), present) {
                (Some(pe), 1) => pe.restore_state(&mut d)?,
                (None, 0) => {}
                _ => return Err(SnapError::BadValue("pe placement mismatch")),
            }
        }
        d.finish()?;

        let mut d = Dec::new(section(&sections, snap_tags::NIS)?);
        if d.usize()? != self.req_nis.len() {
            return Err(SnapError::BadValue("request NI count"));
        }
        for i in 0..self.req_nis.len() {
            let present = d.u8()?;
            match (self.req_nis[i].is_some(), present) {
                (true, 1) => {
                    let q = self.req_nis[i].as_mut().expect("checked present");
                    q.restore_state(&mut d, &self.nets)?;
                }
                (false, 0) => {}
                _ => return Err(SnapError::BadValue("request NI placement mismatch")),
            }
        }
        if d.usize()? != self.rep_nis.len() {
            return Err(SnapError::BadValue("reply NI count"));
        }
        for i in 0..self.rep_nis.len() {
            self.rep_nis[i].restore_state(&mut d, &self.nets)?;
        }
        d.finish()?;

        let mut d = Dec::new(section(&sections, snap_tags::CBS)?);
        if d.usize()? != self.cbs.len() {
            return Err(SnapError::BadValue("cache bank count"));
        }
        for cb in &mut self.cbs {
            cb.restore_state(&mut d)?;
        }
        d.finish()?;

        let mut d = Dec::new(section(&sections, snap_tags::TRACKER)?);
        let tracker = PacketTracker::restore(&mut d)?;
        d.finish()?;

        let mut d = Dec::new(section(&sections, snap_tags::OBS)?);
        let obs_armed = d.bool()?;
        match (self.obs.as_deref_mut(), obs_armed) {
            (Some(o), true) => o.restore_state(&mut d)?,
            (None, false) => {}
            _ => return Err(SnapError::BadValue("obs arming mismatch")),
        }
        d.finish()?;

        self.cycle = cycle;
        self.step_accum = step_accum;
        self.cb_tick_due = cb_tick_due;
        self.retired = retired;
        self.done_pes = done_pes;
        self.sys_last_progress = sys_last_progress;
        self.sys_last_progress_cycle = sys_last_progress_cycle;
        self.audit_findings = audit_findings;
        self.tracker = tracker;
        Ok(())
    }

    /// Assembles the metrics of the run so far.
    pub fn metrics(&self) -> RunMetrics {
        let freq = 1.126; // core clock, GHz (Table 1)
        let exec_ns = self.cycle as f64 / freq;
        let model = EnergyModel::default();
        let mut dynamic = 0.0;
        for (i, net) in self.nets.iter().enumerate() {
            let s = net.stats();
            let c = net.config();
            let tile = 1.5; // mm between adjacent routers
            let (mesh_mm, mut rdl_mm) = if self.mesh_links_in_rdl[i] {
                (0.0, s.link_flits_mesh as f64 * self.rdl_link_mm[i])
            } else {
                (s.link_flits_mesh as f64 * tile, 0.0)
            };
            rdl_mm += s.link_flits_interposer as f64 * self.rdl_link_mm[i].max(3.0);
            let ev = EventCounts {
                buffer_writes: s.buffer_writes,
                buffer_reads: s.buffer_reads,
                xbar_traversals: s.xbar_traversals,
                allocs: s.vc_allocs,
                mesh_flit_mm: mesh_mm + s.link_flits_ni as f64 * 0.3,
                rdl_flit_mm: rdl_mm,
                flit_bits: c.link_bits,
                avg_ports: net.avg_ports(),
            };
            dynamic += model.dynamic_joules(&ev);
        }
        let leakage = model.leakage_joules(self.area_mm2, exec_ns * 1e-9);
        let energy = dynamic + leakage;
        RunMetrics {
            scheme: self.cfg.scheme,
            benchmark: self.cfg.workload.profile.name.to_string(),
            cycles: self.cycle,
            exec_ns,
            ipc: self.total_instrs as f64 / self.cycle.max(1) as f64,
            completed: self.done(),
            latency: self.tracker.latency_breakdown(freq),
            dynamic_j: dynamic,
            leakage_j: leakage,
            edp: energy * exec_ns * 1e-9,
            area_mm2: self.area_mm2,
            ubumps: self.ubumps,
            reply_bit_fraction: self.tracker.reply_bit_fraction(),
        }
    }

    /// Current core cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total NoC area (Figure 11's quantity).
    pub fn area_mm2(&self) -> f64 {
        self.area_mm2
    }

    /// µbumps consumed by interposer links (§6.6).
    pub fn ubumps(&self) -> usize {
        self.ubumps
    }

    /// Access to the underlying networks (read-only, for inspection).
    pub fn networks(&self) -> &[Network] {
        &self.nets
    }

    /// Occupancy snapshot for congestion diagnosis:
    /// `(pe_outstanding, req_ni_backlog, cb_inflight, rep_ni_backlog)`
    /// summed over the machine.
    pub fn occupancy(&self) -> (u64, u64, u64, u64) {
        let outstanding: u64 = self
            .pes
            .iter()
            .flatten()
            .map(|p| p.outstanding() as u64)
            .sum();
        let req_backlog: u64 = self
            .req_nis
            .iter()
            .flatten()
            .map(|ni| ni.backlog() as u64)
            .sum();
        let cb_inflight: u64 = self.cbs.iter().map(|c| c.inflight() as u64).sum();
        let rep_backlog: u64 = self.rep_nis.iter().map(|ni| ni.backlog() as u64).sum();
        (outstanding, req_backlog, cb_inflight, rep_backlog)
    }

    /// Number of CBs currently refusing new requests (at capacity).
    pub fn cbs_at_capacity(&self) -> usize {
        self.cbs.iter().filter(|c| !c.can_accept()).count()
    }

    /// Per-CB inflight request counts.
    pub fn cb_inflights(&self) -> Vec<usize> {
        self.cbs.iter().map(|c| c.inflight()).collect()
    }

    /// Drains the per-network flit-trace ring buffers, returning
    /// `(net index, events)` for every network that recorded anything.
    /// Always empty unless the config armed tracing
    /// ([`SystemConfig::trace_capacity`] > 0).
    pub fn drain_traces(&mut self) -> Vec<(usize, Vec<equinox_noc::TraceEvent>)> {
        self.nets
            .iter_mut()
            .enumerate()
            .map(|(i, n)| (i, n.drain_trace()))
            .filter(|(_, evs)| !evs.is_empty())
            .collect()
    }

    /// The `equinox.obs/v1` artifact block, when observability is armed.
    /// Contains only cycle-derived data (counters, histograms with
    /// interpolated percentiles, the time series, per-router heat grids
    /// and per-link flit counts) — bit-identical across worker counts.
    pub fn obs_json(&self) -> Option<equinox_config::Json> {
        self.obs.as_ref().map(|o| o.to_json(&self.nets))
    }

    /// The `equinox.obs/v2` artifact block (stall-cause attribution):
    /// per-class latency breakdowns summing to end-to-end latency,
    /// per-router × per-cause stall heat grids, and injection-wait
    /// distributions. Cycle-derived, bit-identical across worker counts.
    pub fn obs_json_v2(&self) -> Option<equinox_config::Json> {
        self.obs.as_ref().map(|o| o.to_json_v2(&self.nets))
    }

    /// `(frames_written, write_errors)` of the `--obs-stream` sink when
    /// one is armed; `None` otherwise.
    pub fn obs_stream_stats(&self) -> Option<(u64, u64)> {
        self.obs.as_ref().and_then(|o| o.stream_stats())
    }

    /// Chrome trace-event JSON for Perfetto / `chrome://tracing`:
    /// wall-clock `System::step` phase spans (when obs is armed) plus
    /// the drained flit traces as instant events with `ts` = the
    /// simulated cycle (when tracing is armed). Draining consumes the
    /// flit rings, so call this once, at the end of a run.
    pub fn export_chrome_trace(&mut self) -> String {
        let traces = self.drain_traces();
        crate::obs::chrome_trace(self.obs.as_ref().map(|o| &o.spans), &traces)
    }

    /// Per-network live-run heat maps (the Figure 4 quantity, taken from
    /// the run's own router counters rather than a synthetic workload).
    pub fn heat_maps(&self) -> Vec<crate::heatmap::HeatMap> {
        self.nets
            .iter()
            .map(|n| crate::heatmap::HeatMap {
                width: n.width(),
                height: n.height(),
                heat: n.stats().heat_map(),
                variance: n.stats().heat_variance(),
            })
            .collect()
    }

    /// One-screen observability summary for stderr reports (empty when
    /// obs is off).
    pub fn obs_summary(&self) -> String {
        self.obs.as_ref().map(|o| o.summary()).unwrap_or_default()
    }
}

/// Resolves the configured `sim_threads` into a lane count for this
/// machine. `0` = auto: `available_parallelism / outer worker-pool
/// threads` (at least 1), the documented heuristic keeping
/// outer × inner within the machine when sweeps fan whole simulations
/// out via [`equinox_exec::par_map`]. The result is clamped to the
/// subnet count — extra lanes would only idle at the barrier.
fn resolved_sim_threads(requested: usize, n_nets: usize) -> usize {
    let k = if requested == 0 {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        (cores / equinox_exec::thread_count().max(1)).max(1)
    } else {
        requested
    };
    k.min(n_nets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use equinox_traffic::profile::benchmark;

    fn tiny_workload(name: &str) -> Workload {
        Workload::new(benchmark(name).unwrap(), 0.05, 42)
    }

    fn run_scheme(scheme: SchemeKind) -> RunMetrics {
        let mut cfg = SystemConfig::new(scheme, 8, tiny_workload("hotspot"));
        cfg.max_cycles = 200_000;
        let mut sys = System::build(cfg);
        sys.run()
    }

    #[test]
    fn single_base_completes() {
        let m = run_scheme(SchemeKind::SingleBase);
        assert!(m.completed, "stalled at cycle {}", m.cycles);
        assert!(m.ipc > 0.0);
        assert!(m.energy_j() > 0.0);
    }

    #[test]
    fn separate_base_completes() {
        let m = run_scheme(SchemeKind::SeparateBase);
        assert!(m.completed, "stalled at cycle {}", m.cycles);
    }

    #[test]
    fn vc_mono_completes() {
        let m = run_scheme(SchemeKind::VcMono);
        assert!(m.completed, "stalled at cycle {}", m.cycles);
    }

    #[test]
    fn cmesh_completes() {
        let m = run_scheme(SchemeKind::InterposerCMesh);
        assert!(m.completed, "stalled at cycle {}", m.cycles);
        assert!(m.ubumps == 32_768, "paper's §6.6 CMesh bump count");
    }

    #[test]
    fn da2mesh_completes() {
        let m = run_scheme(SchemeKind::Da2Mesh);
        assert!(m.completed, "stalled at cycle {}", m.cycles);
    }

    #[test]
    fn multiport_completes() {
        let m = run_scheme(SchemeKind::MultiPort);
        assert!(m.completed, "stalled at cycle {}", m.cycles);
    }

    #[test]
    fn equinox_completes_with_interposer_traffic() {
        let m = run_scheme(SchemeKind::EquiNox);
        assert!(m.completed, "stalled at cycle {}", m.cycles);
        assert!(m.ubumps > 0 && m.ubumps < 32_768, "far fewer bumps than CMesh");
    }

    #[test]
    fn reply_bits_dominate() {
        let m = run_scheme(SchemeKind::SeparateBase);
        assert!(
            m.reply_bit_fraction > 0.55 && m.reply_bit_fraction < 0.9,
            "reply share = {}",
            m.reply_bit_fraction
        );
    }

    #[test]
    fn separate_beats_single_on_memory_bound_load() {
        let single = run_scheme(SchemeKind::SingleBase);
        let separate = run_scheme(SchemeKind::SeparateBase);
        assert!(
            separate.cycles < single.cycles * 11 / 10,
            "separate {} vs single {}",
            separate.cycles,
            single.cycles
        );
    }

    #[test]
    fn reply_compression_shortens_reply_bound_runs() {
        let mut base = SystemConfig::new(SchemeKind::SeparateBase, 8, tiny_workload("kmeans"));
        base.max_cycles = 400_000;
        let plain = System::build(base.clone()).run();
        base.reply_compression = 0.8;
        let zipped = System::build(base).run();
        assert!(zipped.completed && plain.completed);
        assert!(
            zipped.cycles < plain.cycles,
            "compressed {} !< plain {}",
            zipped.cycles,
            plain.cycles
        );
    }

    #[test]
    fn deeper_pipelines_never_speed_things_up() {
        let mut cfg = SystemConfig::new(SchemeKind::SeparateBase, 8, tiny_workload("gaussian"));
        cfg.max_cycles = 400_000;
        let fast = System::build(cfg.clone()).run();
        cfg.pipeline_extra = 3;
        let slow = System::build(cfg).run();
        assert!(slow.completed && fast.completed);
        assert!(
            slow.cycles >= fast.cycles,
            "pipeline +3 {} !>= +0 {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn every_request_gets_exactly_one_reply() {
        let mut cfg = SystemConfig::new(SchemeKind::EquiNox, 8, tiny_workload("bfs"));
        cfg.max_cycles = 400_000;
        let mut sys = System::build(cfg);
        let m = sys.run();
        assert!(m.completed);
        let tracker = &sys.tracker;
        let (mut req, mut rep, mut undelivered) = (0u64, 0u64, 0u64);
        for id in 0..tracker.len() as u64 {
            let r = tracker.record(id);
            if r.class.is_reply() {
                rep += 1;
            } else {
                req += 1;
            }
            if r.ejected.is_none() {
                undelivered += 1;
            }
        }
        assert_eq!(req, rep, "one reply per request");
        assert_eq!(undelivered, 0, "everything delivered at completion");
    }

    #[test]
    fn sim_thread_resolution_clamps_and_autosizes() {
        assert_eq!(resolved_sim_threads(1, 9), 1, "explicit serial stays serial");
        assert_eq!(resolved_sim_threads(4, 9), 4);
        assert_eq!(resolved_sim_threads(16, 9), 9, "clamped to the subnet count");
        assert_eq!(resolved_sim_threads(4, 1), 1, "single-net schemes stay serial");
        assert!(resolved_sim_threads(0, 9) >= 1, "auto is always at least 1");
    }

    #[test]
    fn parallel_subnet_stepping_is_bit_identical() {
        // The acceptance contract of intra-run parallelism: the nine
        // DA2Mesh networks (2.5:1 subnet clocks exercise the accumulator
        // math) produce the same cycles/energy/latency for any lane
        // count, including lane counts above the subnet count.
        let go = |sim_threads: usize| {
            let mut cfg = SystemConfig::new(SchemeKind::Da2Mesh, 8, tiny_workload("hotspot"));
            cfg.max_cycles = 200_000;
            cfg.sim_threads = sim_threads;
            let mut sys = System::build(cfg);
            let m = sys.run();
            assert!(m.completed, "stalled at cycle {}", m.cycles);
            let stats: Vec<_> = sys.networks().iter().map(|n| n.stats().clone()).collect();
            (m.cycles, m.energy_j(), m.latency.total_ns(), stats)
        };
        let serial = go(1);
        for k in [2, 4, 16] {
            let par = go(k);
            assert_eq!(serial.0, par.0, "cycles diverged at {k} lanes");
            assert_eq!(
                serial.1.to_bits(),
                par.1.to_bits(),
                "energy diverged at {k} lanes"
            );
            assert_eq!(
                serial.2.to_bits(),
                par.2.to_bits(),
                "latency diverged at {k} lanes"
            );
            assert_eq!(serial.3, par.3, "per-network counters diverged at {k} lanes");
        }
    }

    #[test]
    fn parallel_stepping_composes_with_gate_audit_and_obs() {
        let dir = std::env::temp_dir().join(format!("eqsn_obs_stream_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let go = |sim_threads: usize| {
            let path = dir.join(format!("frames_{sim_threads}.jsonl"));
            let _ = std::fs::remove_file(&path);
            let mut cfg = SystemConfig::new(SchemeKind::Da2Mesh, 8, tiny_workload("bfs"));
            cfg.max_cycles = 200_000;
            cfg.audit = Some(equinox_noc::AuditConfig::default());
            cfg.obs = Some(crate::obs::ObsConfig {
                interval: 500,
                stream: path.display().to_string(),
                ..Default::default()
            });
            cfg.sim_threads = sim_threads;
            let mut sys = System::build(cfg);
            let m = sys.run();
            assert!(m.completed);
            let sweeps: Vec<u64> = sys.networks().iter().map(|n| n.audit_sweeps()).collect();
            let frames = std::fs::read_to_string(&path).unwrap();
            (
                m.cycles,
                sweeps,
                sys.obs_json().expect("obs armed").pretty(),
                sys.obs_json_v2().expect("obs armed").pretty(),
                frames,
            )
        };
        let serial = go(1);
        assert!(
            serial.4.contains("obs.sample/v1") && serial.4.contains("obs.summary/v1"),
            "stream must carry sample and summary frames"
        );
        for k in [2, 8] {
            let par = go(k);
            assert_eq!(serial.0, par.0, "cycles diverged at {k} lanes");
            assert_eq!(serial.1, par.1, "audit sweep schedules diverged at {k} lanes");
            assert_eq!(serial.2, par.2, "obs/v1 block must be byte-identical");
            assert_eq!(serial.3, par.3, "obs/v2 block must be byte-identical");
            assert_eq!(serial.4, par.4, "stream frames must be byte-identical");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stall_attribution_sums_to_measured_latency() {
        // The head-front-only charging invariant, pinned end-to-end: on
        // same-clock schemes (core and net step 1:1) every per-class
        // cause total plus the serialization residual reconstructs the
        // class's measured end-to-end latency sum exactly. Saturation in
        // the residual means over-charging also breaks the equality.
        for scheme in [SchemeKind::SeparateBase, SchemeKind::EquiNox] {
            let mut cfg = SystemConfig::new(scheme, 8, tiny_workload("hotspot"));
            cfg.max_cycles = 400_000;
            cfg.obs = Some(crate::obs::ObsConfig::default());
            let mut sys = System::build(cfg);
            let m = sys.run();
            assert!(m.completed, "{scheme:?} stalled at {}", m.cycles);
            let v2 = sys.obs_json_v2().expect("obs armed");
            assert_eq!(
                v2.get("schema").and_then(|s| s.as_str()),
                Some("equinox.obs/v2")
            );
            let pc = v2.get("per_class").unwrap();
            let mut queueing = 0u64;
            for class in ["request", "reply"] {
                let row = pc.get(class).unwrap();
                let get = |k: &str| {
                    row.get(k)
                        .and_then(|v| v.as_u64())
                        .unwrap_or_else(|| panic!("{class}.{k} missing"))
                };
                assert!(get("delivered") > 0, "{scheme:?} {class}: nothing delivered");
                let sum: u64 = [
                    "inj_queue",
                    "vc_alloc",
                    "switch_loss",
                    "credit_starve",
                    "eject_wait",
                    "serialization",
                ]
                .iter()
                .map(|&c| get(c))
                .sum();
                assert_eq!(
                    sum,
                    get("e2e_cycles"),
                    "{scheme:?} {class}: causes must reconstruct e2e exactly"
                );
                queueing +=
                    get("inj_queue") + get("vc_alloc") + get("switch_loss") + get("credit_starve");
            }
            assert!(queueing > 0, "{scheme:?}: hotspot traffic must contend somewhere");
        }
    }

    #[test]
    fn snapshot_mid_run_restores_to_identical_completion() {
        // For every scheme shape: run C cycles, snapshot, finish both the
        // original and a restored fresh build, and require bit-identical
        // metrics and per-network counters.
        for scheme in [SchemeKind::SingleBase, SchemeKind::EquiNox, SchemeKind::Da2Mesh] {
            let mut cfg = SystemConfig::new(scheme, 8, tiny_workload("bfs"));
            cfg.max_cycles = 400_000;
            cfg.obs = Some(crate::obs::ObsConfig {
                interval: 500,
                ..Default::default()
            });
            let mut a = System::build(cfg.clone());
            for _ in 0..3_000 {
                a.step();
            }
            let snap = a.snapshot();
            let snap_cycle = a.cycle();
            let ma = a.run();

            let mut b = System::build(cfg);
            b.restore(&snap).unwrap();
            assert_eq!(b.cycle(), snap_cycle, "restore resumes at the snapshot cycle");
            let mb = b.run();
            assert_eq!(ma.cycles, mb.cycles, "{scheme:?} diverged after restore");
            assert_eq!(ma.ipc.to_bits(), mb.ipc.to_bits());
            assert_eq!(ma.edp.to_bits(), mb.edp.to_bits());
            assert_eq!(
                ma.latency.total_ns().to_bits(),
                mb.latency.total_ns().to_bits()
            );
            let sa: Vec<_> = a.networks().iter().map(|n| n.stats().clone()).collect();
            let sb: Vec<_> = b.networks().iter().map(|n| n.stats().clone()).collect();
            assert_eq!(sa, sb, "{scheme:?} network counters diverged");
            assert_eq!(
                a.obs_json().unwrap().pretty(),
                b.obs_json().unwrap().pretty(),
                "{scheme:?} obs/v1 block diverged"
            );
        }
    }

    #[test]
    fn snapshot_restore_rejects_mismatched_build_and_corruption() {
        let mut cfg = SystemConfig::new(SchemeKind::SeparateBase, 8, tiny_workload("bfs"));
        cfg.max_cycles = 100_000;
        let mut a = System::build(cfg.clone());
        for _ in 0..500 {
            a.step();
        }
        let snap = a.snapshot();

        // A different scheme's build must refuse the snapshot.
        let other = SystemConfig::new(SchemeKind::Da2Mesh, 8, tiny_workload("bfs"));
        assert!(System::build(other).restore(&snap).is_err());

        // An obs-armed build must refuse an obs-less snapshot. Arming obs
        // also arms per-network stall attribution, and the networks restore
        // first, so the stall section is where the mismatch surfaces.
        let mut armed = cfg.clone();
        armed.obs = Some(crate::obs::ObsConfig::default());
        assert!(matches!(
            System::build(armed).restore(&snap),
            Err(equinox_snap::SnapError::BadValue(
                "stall arming mismatch" | "obs arming mismatch"
            ))
        ));

        // Truncations and header corruption are structural errors.
        for cut in [0, 1, 5, snap.len() / 2, snap.len() - 1] {
            assert!(System::build(cfg.clone()).restore(&snap[..cut]).is_err());
        }
        let mut bad = snap.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            System::build(cfg.clone()).restore(&bad),
            Err(equinox_snap::SnapError::BadMagic)
        ));
    }

    #[test]
    fn area_ordering_matches_figure_11() {
        let single = run_scheme(SchemeKind::SingleBase);
        let separate = run_scheme(SchemeKind::SeparateBase);
        let cmesh = run_scheme(SchemeKind::InterposerCMesh);
        let equinox = run_scheme(SchemeKind::EquiNox);
        assert!(single.area_mm2 < separate.area_mm2);
        assert!(cmesh.area_mm2 > single.area_mm2, "CMesh routers are huge");
        assert!(equinox.area_mm2 > separate.area_mm2);
        let overhead = equinox.area_mm2 / separate.area_mm2 - 1.0;
        assert!(overhead < 0.20, "EquiNox overhead {overhead:.3} should be modest");
    }
}
