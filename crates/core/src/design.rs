//! The end-to-end EquiNox design pipeline (§4): N-Queen placement →
//! scoring → MCTS EIR selection → physical checks.

use equinox_mcts::problem::{EirProblem, EirSelection};
use equinox_mcts::tree::{search, MctsConfig};
use equinox_phys::rdl::rdl_layers_required;
use equinox_phys::segment::Segment;
use equinox_phys::BumpModel;
use equinox_placement::nqueen::{solutions_limited, to_placement};
use equinox_placement::select::best_nqueen_placement;
use equinox_placement::{Placement, PlacementScorer};

/// A complete EquiNox design: where the CBs sit and which routers serve
/// as their EIRs.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiNoxDesign {
    /// The N-Queen-scored CB placement.
    pub placement: Placement,
    /// MCTS-selected EIR groups (one per CB).
    pub selection: EirSelection,
}

impl EquiNoxDesign {
    /// Runs the full §4 pipeline for an `n × n` mesh with `n_cbs` cache
    /// banks. Per §4.2 the scoring policy both "minimizes network
    /// congestion and maximizes EIR potential": the hot-zone score ranks
    /// the N-Queen solutions, and the MCTS then runs on each of the
    /// `top_k` best-ranked placements, keeping the placement whose EIR
    /// selection evaluates best — placement/EIR co-optimization.
    /// Deterministic in `seed`.
    pub fn search_k(n: u16, n_cbs: u16, iterations: usize, seed: u64, top_k: usize) -> Self {
        let max_solutions = if n <= 12 { usize::MAX } else { 2_000 };
        let candidates: Vec<Placement> = if n_cbs == n {
            let scorer = PlacementScorer::new(n, n);
            let mut scored: Vec<(u64, Placement)> = solutions_limited(n, max_solutions)
                .iter()
                .map(|sol| {
                    let p = to_placement(n, sol, None);
                    (scorer.penalty(&p.cbs), p)
                })
                .collect();
            scored.sort_by_key(|(s, _)| *s);
            scored.into_iter().take(top_k.max(1)).map(|(_, p)| p).collect()
        } else {
            vec![best_nqueen_placement(n, n_cbs, max_solutions, seed)]
        };
        // One MCTS per candidate placement, fanned out on the worker
        // pool. Each search is a pure function of (placement, seed) and
        // `par_map` preserves input order, so the best-cost scan below
        // (first-wins tie-break) picks the same design for any worker
        // count — matching the old sequential loop exactly.
        let searched = equinox_exec::par_map(candidates, |_, placement| {
            let problem = EirProblem::new(placement.clone());
            let result = search(
                &problem,
                &MctsConfig {
                    iterations,
                    seed,
                    ..Default::default()
                },
            );
            (
                result.eval.cost,
                EquiNoxDesign {
                    placement,
                    selection: result.selection,
                },
            )
        });
        let mut best: Option<(f64, EquiNoxDesign)> = None;
        for (cost, design) in searched {
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((cost, design));
            }
        }
        best.expect("at least one placement searched").1
    }

    /// [`EquiNoxDesign::search_k`] over the 8 best-scored placements.
    pub fn search(n: u16, n_cbs: u16, iterations: usize, seed: u64) -> Self {
        Self::search_k(n, n_cbs, iterations, seed, 8)
    }

    /// A quick design for tests and examples (small MCTS budget — the
    /// refinement pass still drives crossings to ~zero).
    pub fn quick(n: u16, n_cbs: u16) -> Self {
        Self::search_k(n, n_cbs, 300, 0xEC0, 2)
    }

    /// The interposer wires of this design.
    pub fn segments(&self) -> Vec<Segment> {
        self.selection.segments(&self.placement)
    }

    /// Total EIRs = number of uni-directional CB→EIR interposer links.
    pub fn num_links(&self) -> usize {
        self.selection.total_eirs()
    }

    /// µbumps needed: every wire of every 128-bit link dives into the
    /// interposer and resurfaces, so two bumps per wire (§6.6).
    pub fn ubump_count(&self, bits: usize) -> usize {
        BumpModel::default().bump_count(self.num_links(), bits, 2)
    }

    /// RDL metal layers required by the wiring plan.
    pub fn rdl_layers(&self) -> usize {
        rdl_layers_required(&self.segments())
    }

    /// Serializes the design to a small plain-text format:
    ///
    /// ```text
    /// equinox-design v1
    /// mesh 8
    /// cb 2,0 eirs 0,2 4,0 4,1
    /// ...
    /// ```
    ///
    /// The format is stable and diff-friendly; parse it back with
    /// [`EquiNoxDesign::from_text`].
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("equinox-design v1
");
        let _ = writeln!(out, "mesh {}", self.placement.width);
        for (i, &cb) in self.placement.cbs.iter().enumerate() {
            let _ = write!(out, "cb {},{} eirs", cb.x, cb.y);
            for e in &self.selection.groups[i] {
                let _ = write!(out, " {},{}", e.x, e.y);
            }
            out.push('\n');
        }
        out
    }

    /// Parses a design produced by [`EquiNoxDesign::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line, unknown header,
    /// or constraint violation (off-grid tile, duplicate CB/EIR).
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("equinox-design v1") => {}
            other => return Err(format!("unknown header {other:?}")),
        }
        let n: u16 = lines
            .next()
            .and_then(|l| l.strip_prefix("mesh "))
            .ok_or("missing mesh line")?
            .trim()
            .parse()
            .map_err(|e| format!("bad mesh size: {e}"))?;
        let parse_coord = |tok: &str| -> Result<equinox_phys::Coord, String> {
            let (x, y) = tok
                .split_once(',')
                .ok_or_else(|| format!("bad coordinate {tok:?}"))?;
            Ok(equinox_phys::Coord::new(
                x.trim().parse().map_err(|e| format!("bad x in {tok:?}: {e}"))?,
                y.trim().parse().map_err(|e| format!("bad y in {tok:?}: {e}"))?,
            ))
        };
        let mut cbs = Vec::new();
        let mut groups = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let rest = line
                .strip_prefix("cb ")
                .ok_or_else(|| format!("unexpected line {line:?}"))?;
            let (cb_tok, eirs) = rest
                .split_once(" eirs")
                .ok_or_else(|| format!("missing ' eirs' in {line:?}"))?;
            cbs.push(parse_coord(cb_tok.trim())?);
            let group: Result<Vec<_>, _> =
                eirs.split_whitespace().map(parse_coord).collect();
            groups.push(group?);
        }
        if cbs.is_empty() {
            return Err("design has no cache banks".into());
        }
        for c in cbs.iter().chain(groups.iter().flatten()) {
            if c.x >= n || c.y >= n {
                return Err(format!("tile {c} outside the {n}x{n} mesh"));
            }
        }
        let placement = Placement::new(
            n,
            n,
            cbs,
            equinox_placement::PlacementKind::NQueen,
        );
        let selection = EirSelection { groups };
        if !selection.is_exclusive(&placement) {
            return Err("EIRs are shared between CBs or collide with a CB".into());
        }
        Ok(EquiNoxDesign {
            placement,
            selection,
        })
    }

    /// ASCII rendering of the design: `Ci` marks cache bank `i`, `ei` an
    /// EIR belonging to CB `i`, `.` a plain PE tile.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let n = self.placement.width;
        let mut out = String::new();
        for y in 0..n {
            for x in 0..n {
                let t = equinox_phys::Coord::new(x, y);
                if let Some(ci) = self.placement.cb_index(t) {
                    let _ = write!(out, "C{ci} ");
                } else if let Some(ci) =
                    self.selection.groups.iter().position(|g| g.contains(&t))
                {
                    let _ = write!(out, "e{ci} ");
                } else {
                    out.push_str(" . ");
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_design_is_well_formed() {
        let d = EquiNoxDesign::quick(8, 8);
        assert_eq!(d.placement.cbs.len(), 8);
        assert!(d.placement.is_queen_safe());
        assert_eq!(d.selection.groups.len(), 8);
        assert!(d.selection.is_exclusive(&d.placement));
        assert!(d.num_links() >= 8, "every CB should get EIRs");
    }

    #[test]
    fn design_needs_few_rdl_layers() {
        // The paper's design fits one RDL; ours must stay close.
        let d = EquiNoxDesign::quick(8, 8);
        assert!(d.rdl_layers() <= 2, "layers = {}", d.rdl_layers());
    }

    #[test]
    fn ubumps_scale_with_links() {
        let d = EquiNoxDesign::quick(8, 8);
        assert_eq!(d.ubump_count(128), d.num_links() * 128 * 2);
    }

    #[test]
    fn render_marks_all_cbs_and_eirs() {
        let d = EquiNoxDesign::quick(8, 8);
        let r = d.render();
        assert_eq!(r.lines().count(), 8);
        for i in 0..8 {
            assert!(r.contains(&format!("C{i}")), "CB {i} missing");
        }
        assert_eq!(
            r.matches('e').count(),
            d.num_links(),
            "every EIR rendered once"
        );
    }

    #[test]
    fn text_roundtrip() {
        let d = EquiNoxDesign::quick(8, 8);
        let text = d.to_text();
        let back = EquiNoxDesign::from_text(&text).expect("parses");
        assert_eq!(back.placement.cbs, d.placement.cbs);
        assert_eq!(back.selection, d.selection);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(EquiNoxDesign::from_text("nonsense").is_err());
        assert!(EquiNoxDesign::from_text("equinox-design v1\nmesh 8\n").is_err());
        assert!(
            EquiNoxDesign::from_text("equinox-design v1\nmesh 8\ncb 9,0 eirs 1,1\n").is_err(),
            "off-grid CB"
        );
        assert!(
            EquiNoxDesign::from_text(
                "equinox-design v1\nmesh 8\ncb 1,0 eirs 3,3\ncb 5,5 eirs 3,3\n"
            )
            .is_err(),
            "shared EIR"
        );
    }

    #[test]
    fn deterministic() {
        let a = EquiNoxDesign::search(8, 8, 200, 7);
        let b = EquiNoxDesign::search(8, 8, 200, 7);
        assert_eq!(a, b);
    }
}
