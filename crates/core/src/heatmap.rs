//! The Figure 4 experiment: per-router congestion heat maps under the
//! five CB placements.
//!
//! Runs the reply network alone under the few-to-many pattern (each CB
//! streams reply packets to uniformly random PEs) and reports the average
//! number of cycles a flit spends in each router plus the across-router
//! variance — the paper's placement-quality signal (Top ≫ Diamond >
//! N-Queen, whose variance is 0.54 in Figure 4).

use equinox_noc::config::NocConfig;
use equinox_noc::flit::{Flit, MessageClass, PacketDesc};
use equinox_noc::network::Network;
use equinox_phys::Coord;
use equinox_placement::Placement;
use equinox_exec::Rng;

/// Result of a heat-map run.
#[derive(Debug, Clone)]
pub struct HeatMap {
    /// Grid width (the map is row-major `width × height`).
    pub width: u16,
    /// Grid height. [`HeatMap::square`] builds the common square case.
    pub height: u16,
    /// Average cycles a flit spends in each router.
    pub heat: Vec<f64>,
    /// Population variance across routers.
    pub variance: f64,
}

impl HeatMap {
    /// A `width × width` map (every paper scenario; rectangular grids
    /// come from the topology-generalized fabrics).
    pub fn square(width: u16, heat: Vec<f64>, variance: f64) -> Self {
        HeatMap { width, height: width, heat, variance }
    }

    /// The map as structured JSON for the `obs/v1` artifact block:
    /// `{"width": W, "variance": V, "heat": [W*H values, row-major]}`.
    /// A `"height"` key is emitted only for non-square grids, keeping
    /// the block byte-identical for every historical (square) run.
    /// The ASCII [`HeatMap::render`] stays for stderr reports.
    pub fn to_json(&self) -> equinox_config::Json {
        use equinox_config::Json;
        let mut j = Json::obj().with("width", self.width);
        if self.height != self.width {
            j = j.with("height", self.height);
        }
        j.with("variance", self.variance)
            .with(
                "heat",
                self.heat.iter().map(|&v| Json::Num(v)).collect::<Vec<_>>(),
            )
    }

    /// Renders the map as an ASCII grid (one row per grid row).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for y in 0..self.height {
            for x in 0..self.width {
                let v = self.heat[(y * self.width + x) as usize];
                out.push_str(&format!("{v:5.1} "));
            }
            out.push('\n');
        }
        out
    }
}

/// Simulates the reply network under `placement` with every CB injecting
/// 5-flit reply packets to uniform-random PEs at `offered` packets per CB
/// per cycle, for `cycles` cycles after a 10% warm-up. Deterministic in
/// `seed`.
pub fn placement_heatmap(placement: &Placement, offered: f64, cycles: u64, seed: u64) -> HeatMap {
    assert_eq!(placement.width, placement.height, "square meshes only");
    let n = placement.width;
    let mut net = Network::mesh(NocConfig::mesh(n));
    let mut rng = Rng::seed_from_u64(seed);
    let pes: Vec<Coord> = placement.pe_tiles().collect();
    let mut pkt_id = 0u64;
    // Per-CB injection state: queued flits of the packet being streamed.
    let mut pending: Vec<Vec<Flit>> = vec![Vec::new(); placement.cbs.len()];
    let warmup = cycles / 10;

    for t in 0..(cycles + warmup) {
        for (ci, &cb) in placement.cbs.iter().enumerate() {
            if pending[ci].is_empty() && rng.random::<f64>() < offered {
                let dst = pes[rng.random_range(0..pes.len())];
                let desc = PacketDesc::new(pkt_id, cb, dst, MessageClass::Reply, 5);
                pkt_id += 1;
                let mut flits = desc.flits(n);
                flits.reverse(); // pop from the back
                pending[ci] = flits;
            }
            if let Some(&flit) = pending[ci].last() {
                let inj = net.local_injector(cb);
                if net.try_inject_flit(inj, flit) {
                    pending[ci].pop();
                }
            }
        }
        net.step();
        // PEs drain instantly.
        for &pe in &pes {
            while net.pop_ejected_node(pe).is_some() {}
        }
        let _ = t;
    }
    let stats = net.stats();
    HeatMap::square(n, stats.heat_map(), stats.heat_variance())
}

#[cfg(test)]
mod tests {
    use super::*;
    use equinox_placement::select::best_nqueen_placement;

    #[test]
    fn heat_is_positive_under_load() {
        let p = Placement::diamond(8, 8, 8);
        let h = placement_heatmap(&p, 0.3, 3_000, 1);
        assert_eq!(h.heat.len(), 64);
        assert!(h.heat.iter().any(|&v| v > 0.0));
        assert!(h.variance > 0.0);
    }

    #[test]
    fn top_placement_is_most_unbalanced() {
        // Figure 4's qualitative ordering: Top has far higher variance
        // than Diamond, and N-Queen is the most balanced.
        // 0.8 packets/CB/cycle offered: deep enough into congestion that
        // the hot zones show (the paper's Figure 4 is captured under full
        // benchmark load).
        let top = placement_heatmap(&Placement::top(8, 8, 8), 0.8, 4_000, 2);
        let diamond = placement_heatmap(&Placement::diamond(8, 8, 8), 0.8, 4_000, 2);
        let nqueen = placement_heatmap(&best_nqueen_placement(8, 8, usize::MAX, 0), 0.8, 4_000, 2);
        assert!(
            top.variance > diamond.variance,
            "Top {} !> Diamond {}",
            top.variance,
            diamond.variance
        );
        assert!(
            nqueen.variance <= diamond.variance * 1.05,
            "N-Queen {} should not exceed Diamond {}",
            nqueen.variance,
            diamond.variance
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let p = Placement::diagonal(8, 8, 8);
        let a = placement_heatmap(&p, 0.2, 1_000, 9);
        let b = placement_heatmap(&p, 0.2, 1_000, 9);
        assert_eq!(a.heat, b.heat);
    }

    #[test]
    fn json_shape_matches_grid() {
        let p = Placement::diamond(8, 8, 8);
        let h = placement_heatmap(&p, 0.1, 500, 3);
        let j = h.to_json();
        assert_eq!(j.get("width").and_then(|v| v.as_u64()), Some(8));
        let heat = j.get("heat").and_then(|v| v.as_arr()).expect("heat array");
        assert_eq!(heat.len(), 64, "row-major width*width grid");
        assert!(heat.iter().all(|v| v.as_f64().is_some()));
        let var = j.get("variance").and_then(|v| v.as_f64()).expect("variance");
        assert!((var - h.variance).abs() < 1e-12);
        // The JSON block must round-trip through the artifact parser.
        let parsed = equinox_config::parse_json(&j.pretty()).expect("valid JSON");
        assert_eq!(parsed, j);
    }

    #[test]
    fn non_square_maps_carry_height() {
        let h = HeatMap {
            width: 3,
            height: 2,
            heat: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            variance: 0.0,
        };
        assert_eq!(h.render().lines().count(), 2, "one line per grid row");
        let j = h.to_json();
        assert_eq!(j.get("height").and_then(|v| v.as_u64()), Some(2));
        // Square maps keep the historical shape: no "height" key.
        let sq = HeatMap::square(2, vec![0.0; 4], 0.0);
        assert!(sq.to_json().get("height").is_none());
    }

    #[test]
    fn render_has_eight_rows() {
        let p = Placement::diamond(8, 8, 8);
        let h = placement_heatmap(&p, 0.1, 500, 3);
        assert_eq!(h.render().lines().count(), 8);
    }
}
