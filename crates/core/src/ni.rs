//! Network interfaces and injection policies.
//!
//! Every traffic source (a PE's request side, a CB's reply side) owns an
//! [`InjectionQueue`]: a bounded message queue plus the in-flight packet
//! being serialized one flit per cycle. What distinguishes the seven
//! schemes is the [`InjectPolicy`] that picks *which network and which
//! injector* a new packet claims:
//!
//! * [`InjectPolicy::Local`] — the node's local injector (baselines);
//! * [`InjectPolicy::CmeshSplit`] — far packets detour through the
//!   concentrated interposer mesh (Interposer-CMesh);
//! * [`InjectPolicy::SubnetRoundRobin`] — reply subnets chosen round-robin
//!   (DA2Mesh);
//! * [`InjectPolicy::MultiInjector`] — any free port of the CB router
//!   (MultiPort);
//! * [`InjectPolicy::Equinox`] — the Buffer Selector of Figure 8,
//!   implementing the paper's *Buffer Selection 1* policy: shortest-path
//!   EIRs only, round-robin between the up-to-two quadrant candidates,
//!   local-router fallback, retry otherwise.

use crate::msg::{Message, PacketTracker};
use equinox_noc::flit::PacketDesc;
use equinox_noc::network::{InjectorId, Network};
use equinox_phys::Coord;
use std::collections::VecDeque;

/// Scheme-specific choice of network + injector for each new packet.
#[derive(Debug)]
pub enum InjectPolicy {
    /// Inject at the node's local router of network `net`.
    Local {
        /// Index into the system's network list.
        net: usize,
    },
    /// Interposer-CMesh: use the concentrated mesh when the base-mesh
    /// distance exceeds `threshold` hops and the endpoints sit under
    /// different CMesh routers; otherwise the base mesh.
    CmeshSplit {
        /// Base network index.
        base: usize,
        /// CMesh network index.
        cmesh: usize,
        /// This node's injector on its CMesh router.
        cmesh_injector: InjectorId,
        /// Concentration factor (2 = 2×2 tiles per CMesh router).
        concentration: u16,
        /// Minimum base-mesh hop distance to prefer the CMesh.
        threshold: u32,
    },
    /// DA2Mesh: each packet fully travels one narrow subnet, chosen
    /// round-robin.
    SubnetRoundRobin {
        /// Subnet network indices.
        nets: Vec<usize>,
        /// Round-robin cursor.
        rr: usize,
    },
    /// MultiPort: several injectors on the same (CB) router.
    MultiInjector {
        /// Network index.
        net: usize,
        /// The CB router's injection ports.
        injectors: Vec<InjectorId>,
        /// Round-robin cursor.
        rr: usize,
    },
    /// EquiNox CB NI: local buffer + one buffer per EIR (Figure 8).
    Equinox {
        /// Reply network index.
        net: usize,
        /// The local router's injector.
        local: InjectorId,
        /// The EIRs of this CB with their interposer injectors.
        eirs: Vec<(Coord, InjectorId)>,
        /// Round-robin cursor for two-candidate quadrant cases.
        rr: usize,
    },
}

/// A packet being pushed into a network, one flit per cycle. Holds only
/// the packet *description*; each flit is rebuilt on demand, so streaming
/// a packet never allocates.
#[derive(Debug)]
struct Inflight {
    desc: PacketDesc,
    /// Ejection sink tag stamped on every flit (may differ from the
    /// row-major default on concentrated meshes).
    sink: u32,
    /// Next flit index to inject.
    next: u16,
    net: usize,
    injector: InjectorId,
}

impl Inflight {
    /// The next flit to inject into network `net` (of mesh width `width`).
    fn next_flit(&self, width: u16) -> equinox_noc::flit::Flit {
        self.desc.flit_at(self.next, width).with_sink(self.sink)
    }
}

/// A bounded source queue feeding one injection policy.
///
/// The queue streams **one packet per injection buffer concurrently**:
/// a baseline NI has a single buffer, but EquiNox's CB NI drains its five
/// single-packet buffers in parallel (Figure 8) and MultiPort its four —
/// that parallel drain is precisely the injection-bandwidth multiplication
/// these schemes buy.
#[derive(Debug)]
pub struct InjectionQueue {
    node: Coord,
    queue: VecDeque<Message>,
    cap: usize,
    inflight: Vec<Inflight>,
    policy: InjectPolicy,
}

impl InjectionQueue {
    /// Creates a queue holding up to `cap` waiting messages.
    pub fn new(node: Coord, cap: usize, policy: InjectPolicy) -> Self {
        assert!(cap > 0, "queues need capacity");
        InjectionQueue {
            node,
            queue: VecDeque::new(),
            cap,
            inflight: Vec::new(),
            policy,
        }
    }

    /// `true` if another message fits.
    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.cap
    }

    /// Enqueues a message, handing it back when the queue is full so the
    /// caller can apply backpressure instead of crashing.
    pub fn try_push(&mut self, msg: Message) -> Result<(), Message> {
        if self.can_accept() {
            self.queue.push_back(msg);
            Ok(())
        } else {
            Err(msg)
        }
    }

    /// Enqueues a message.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full; check [`InjectionQueue::can_accept`]
    /// or use [`InjectionQueue::try_push`] where backpressure is possible.
    pub fn push(&mut self, msg: Message) {
        assert!(
            self.try_push(msg).is_ok(),
            "injection queue overflow at {}",
            self.node
        );
    }

    /// Messages waiting plus packets in flight.
    pub fn backlog(&self) -> usize {
        self.queue.len() + self.inflight.len()
    }

    /// `true` when nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.inflight.is_empty()
    }

    /// Packets whose head flit is already in a network but whose tail is
    /// not — the NI-side residency term of system-level packet accounting
    /// (packets with the head still pending count with the queue, packets
    /// fully streamed leave `inflight`).
    pub fn streaming_packets(&self) -> usize {
        self.inflight.iter().filter(|fl| fl.next >= 1).count()
    }

    /// One cycle: advance every in-flight packet by one flit (each claims
    /// its own injection buffer, so they stream in parallel), then claim
    /// free injectors for queued messages per the policy.
    pub fn tick(&mut self, nets: &mut [Network], tracker: &mut PacketTracker, now: u64) {
        for fl in &mut self.inflight {
            if fl.next < fl.desc.len {
                let flit = fl.next_flit(nets[fl.net].width());
                if nets[fl.net].try_inject_flit(fl.injector, flit) {
                    if fl.next == 0 {
                        tracker.mark_injected(flit.pkt.0, now);
                    }
                    fl.next += 1;
                }
            }
        }
        self.inflight.retain(|fl| fl.next < fl.desc.len);
        // Start as many new packets as the policy finds free buffers for.
        while let Some(&msg) = self.queue.front() {
            let Some((net, injector, src, dst, sink)) = self.choose(nets, &msg) else {
                break;
            };
            let bits = nets[net].config().link_bits;
            let desc = msg.to_desc(bits, src, dst);
            self.queue.pop_front();
            let mut fl = Inflight {
                desc,
                sink,
                next: 0,
                net,
                injector,
            };
            // Push the head flit immediately: the injector reserves its
            // VC, so a second message cannot claim the same buffer.
            let head = fl.next_flit(nets[net].width());
            if nets[net].try_inject_flit(injector, head) {
                tracker.mark_injected(head.pkt.0, now);
                fl.next = 1;
            }
            if fl.next < fl.desc.len {
                self.inflight.push(fl);
            }
        }
    }

    /// Serializes the queue contents, the in-flight packet streams and
    /// the policy's round-robin cursor (if any). Node, capacity and the
    /// policy's wiring (networks, injectors, thresholds) are build-time
    /// configuration and are skipped.
    pub fn snap_state(&self, e: &mut equinox_snap::Enc) {
        use equinox_snap::Snap;
        self.queue.snap(e);
        e.put_usize(self.inflight.len());
        for fl in &self.inflight {
            fl.desc.snap(e);
            e.put_u32(fl.sink);
            e.put_u16(fl.next);
            e.put_usize(fl.net);
            fl.injector.snap(e);
        }
        let (tag, rr) = match &self.policy {
            InjectPolicy::Local { .. } => (0u8, 0usize),
            InjectPolicy::CmeshSplit { .. } => (1, 0),
            InjectPolicy::SubnetRoundRobin { rr, .. } => (2, *rr),
            InjectPolicy::MultiInjector { rr, .. } => (3, *rr),
            InjectPolicy::Equinox { rr, .. } => (4, *rr),
        };
        e.put_u8(tag);
        e.put_usize(rr);
    }

    /// Restores state written by [`InjectionQueue::snap_state`] into a
    /// queue built with the same capacity and policy wiring. `nets` is
    /// the system's network list, used to bound-check restored injector
    /// handles and network indices.
    pub fn restore_state(
        &mut self,
        d: &mut equinox_snap::Dec,
        nets: &[Network],
    ) -> Result<(), equinox_snap::SnapError> {
        use equinox_snap::{Snap, SnapError};
        let queue: VecDeque<Message> = VecDeque::restore(d)?;
        if queue.len() > self.cap {
            return Err(SnapError::BadValue("ni queue over capacity"));
        }
        let n_inflight = d.usize()?;
        if n_inflight > d.remaining() {
            return Err(SnapError::Truncated);
        }
        let mut inflight = Vec::with_capacity(n_inflight);
        for _ in 0..n_inflight {
            let desc = PacketDesc::restore(d)?;
            let sink = d.u32()?;
            let next = d.u16()?;
            let net = d.usize()?;
            let injector = InjectorId::restore(d)?;
            if net >= nets.len() {
                return Err(SnapError::BadValue("ni inflight network index"));
            }
            if !nets[net].injector_valid(injector) {
                return Err(SnapError::BadValue("ni inflight injector"));
            }
            if next > desc.len {
                return Err(SnapError::BadValue("ni inflight flit cursor"));
            }
            inflight.push(Inflight {
                desc,
                sink,
                next,
                net,
                injector,
            });
        }
        let tag = d.u8()?;
        let rr = d.usize()?;
        match (&mut self.policy, tag) {
            (InjectPolicy::Local { .. }, 0) | (InjectPolicy::CmeshSplit { .. }, 1) => {}
            (InjectPolicy::SubnetRoundRobin { nets: subnets, rr: cur }, 2) => {
                if rr >= subnets.len() {
                    return Err(SnapError::BadValue("subnet rr cursor"));
                }
                *cur = rr;
            }
            (InjectPolicy::MultiInjector { injectors, rr: cur, .. }, 3) => {
                if rr >= injectors.len() {
                    return Err(SnapError::BadValue("multi-injector rr cursor"));
                }
                *cur = rr;
            }
            (InjectPolicy::Equinox { eirs, rr: cur, .. }, 4) => {
                if rr >= eirs.len().max(1) {
                    return Err(SnapError::BadValue("equinox rr cursor"));
                }
                *cur = rr;
            }
            _ => return Err(SnapError::BadValue("injection policy tag mismatch")),
        }
        self.queue = queue;
        self.inflight = inflight;
        Ok(())
    }

    /// Applies the policy: returns `(net, injector, src, dst, sink)` for
    /// the message, or `None` to retry next cycle.
    fn choose(
        &mut self,
        nets: &[Network],
        msg: &Message,
    ) -> Option<(usize, InjectorId, Coord, Coord, u32)> {
        let node = self.node;
        match &mut self.policy {
            InjectPolicy::Local { net } => {
                let n = *net;
                let inj = nets[n].local_injector(node);
                nets[n]
                    .injector_ready(inj, msg.class)
                    .then(|| (n, inj, msg.src, msg.dst, msg.dst.to_index(nets[n].width()) as u32))
            }
            InjectPolicy::CmeshSplit {
                base,
                cmesh,
                cmesh_injector,
                concentration,
                threshold,
            } => {
                let c = *concentration;
                let csrc = Coord::new(msg.src.x / c, msg.src.y / c);
                let cdst = Coord::new(msg.dst.x / c, msg.dst.y / c);
                let far = msg.src.manhattan(msg.dst) > *threshold && csrc != cdst;
                if far && nets[*cmesh].injector_ready(*cmesh_injector, msg.class) {
                    // Sink = base-mesh node index, matched by the tagged
                    // ejection port on the destination's CMesh router.
                    let sink = msg.dst.to_index(nets[*base].width()) as u32;
                    Some((*cmesh, *cmesh_injector, csrc, cdst, sink))
                } else {
                    let n = *base;
                    let inj = nets[n].local_injector(node);
                    nets[n].injector_ready(inj, msg.class).then(|| {
                        (n, inj, msg.src, msg.dst, msg.dst.to_index(nets[n].width()) as u32)
                    })
                }
            }
            InjectPolicy::SubnetRoundRobin { nets: subnets, rr } => {
                for k in 0..subnets.len() {
                    let n = subnets[(*rr + k) % subnets.len()];
                    let inj = nets[n].local_injector(node);
                    if nets[n].injector_ready(inj, msg.class) {
                        *rr = (*rr + k + 1) % subnets.len();
                        let sink = msg.dst.to_index(nets[n].width()) as u32;
                        return Some((n, inj, msg.src, msg.dst, sink));
                    }
                }
                None
            }
            InjectPolicy::MultiInjector { net, injectors, rr } => {
                let n = *net;
                for k in 0..injectors.len() {
                    let inj = injectors[(*rr + k) % injectors.len()];
                    if nets[n].injector_ready(inj, msg.class) {
                        *rr = (*rr + k + 1) % injectors.len();
                        let sink = msg.dst.to_index(nets[n].width()) as u32;
                        return Some((n, inj, msg.src, msg.dst, sink));
                    }
                }
                None
            }
            InjectPolicy::Equinox {
                net,
                local,
                eirs,
                rr,
            } => {
                let n = *net;
                let sink = msg.dst.to_index(nets[n].width()) as u32;
                // Buffer Selection 1: only EIRs on a shortest path. The
                // candidates live in an inline bitmask over the full EIR
                // list (a CB has 4 EIRs; 32 is ample), so the per-message
                // hot path never allocates — and the round-robin cursor
                // indexes the *full* list, keeping its meaning stable
                // across messages with different shortest-path sets (a
                // cursor modulo the per-message candidate count drifts
                // and can starve one quadrant EIR).
                debug_assert!(eirs.len() <= 32, "EIR bitmask limited to 32 entries");
                let direct = msg.src.manhattan(msg.dst);
                let mut sp_mask = 0u32;
                for (i, (e, _)) in eirs.iter().enumerate() {
                    if msg.src.manhattan(*e) + e.manhattan(msg.dst) == direct {
                        sp_mask |= 1 << i;
                    }
                }
                let dx = msg.dst.x as i32 - msg.src.x as i32;
                let dy = msg.dst.y as i32 - msg.src.y as i32;
                debug_assert!(dx != 0 || dy != 0, "CB does not message itself");
                if dx == 0 || dy == 0 {
                    // On-axis: at most one shortest-path EIR exists.
                    if sp_mask != 0 {
                        let (_, inj) = eirs[sp_mask.trailing_zeros() as usize];
                        if nets[n].injector_ready(inj, msg.class) {
                            return Some((n, inj, msg.src, msg.dst, sink));
                        }
                    }
                } else if sp_mask != 0 {
                    // Quadrant: up to two candidates, round-robin.
                    let m = eirs.len();
                    for k in 0..m {
                        let i = (*rr + k) % m;
                        if sp_mask & (1 << i) == 0 {
                            continue;
                        }
                        let (_, inj) = eirs[i];
                        if nets[n].injector_ready(inj, msg.class) {
                            *rr = (i + 1) % m;
                            return Some((n, inj, msg.src, msg.dst, sink));
                        }
                    }
                }
                // Fall back to the local buffer; otherwise retry.
                nets[n]
                    .injector_ready(*local, msg.class)
                    .then_some((n, *local, msg.src, msg.dst, sink))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MemOpKind;
    use equinox_noc::config::NocConfig;
    use equinox_noc::flit::MessageClass;
    use equinox_noc::link::LinkKind;

    fn setup() -> (Vec<Network>, PacketTracker) {
        (vec![Network::mesh(NocConfig::mesh_8x8())], PacketTracker::new())
    }

    #[test]
    fn local_policy_delivers() {
        let (mut nets, mut tracker) = setup();
        let src = Coord::new(0, 0);
        let dst = Coord::new(3, 3);
        let msg = tracker.create(src, dst, MessageClass::Reply, MemOpKind::Read, 0, 0);
        let mut ni = InjectionQueue::new(src, 4, InjectPolicy::Local { net: 0 });
        ni.push(msg);
        let mut tail = false;
        for t in 0..200 {
            ni.tick(&mut nets, &mut tracker, t);
            nets[0].step();
            while let Some(f) = nets[0].pop_ejected_node(dst) {
                if f.is_tail() {
                    tail = true;
                }
            }
        }
        assert!(tail, "5-flit reply must arrive");
        assert!(ni.is_idle());
        assert!(tracker.record(msg.id).injected.is_some());
    }

    #[test]
    fn queue_capacity_respected() {
        let (_, mut tracker) = setup();
        let src = Coord::new(0, 0);
        let mut ni = InjectionQueue::new(src, 2, InjectPolicy::Local { net: 0 });
        for _ in 0..2 {
            let m = tracker.create(src, Coord::new(1, 1), MessageClass::Request, MemOpKind::Read, 0, 0);
            assert!(ni.can_accept());
            ni.push(m);
        }
        assert!(!ni.can_accept());
        assert_eq!(ni.backlog(), 2);
    }

    #[test]
    fn equinox_policy_prefers_shortest_path_eir() {
        let mut nets = vec![Network::mesh(NocConfig::mesh_8x8())];
        let mut tracker = PacketTracker::new();
        let cb = Coord::new(2, 2);
        // EIR east at (4,2), EIR west at (0,2).
        let east = nets[0].add_injection_port(Coord::new(4, 2), 1, LinkKind::Interposer);
        let west = nets[0].add_injection_port(Coord::new(0, 2), 1, LinkKind::Interposer);
        let local = nets[0].local_injector(cb);
        let mut ni = InjectionQueue::new(
            cb,
            4,
            InjectPolicy::Equinox {
                net: 0,
                local,
                eirs: vec![(Coord::new(4, 2), east), (Coord::new(0, 2), west)],
                rr: 0,
            },
        );
        // Destination due east: the east EIR is on the shortest path.
        let msg = tracker.create(cb, Coord::new(7, 2), MessageClass::Reply, MemOpKind::Read, 0, 0);
        ni.push(msg);
        for t in 0..100 {
            ni.tick(&mut nets, &mut tracker, t);
            nets[0].step();
            while nets[0].pop_ejected_node(Coord::new(7, 2)).is_some() {}
        }
        assert!(
            nets[0].stats().link_flits_interposer >= 5,
            "packet must ride the east EIR interposer link"
        );
    }

    #[test]
    fn equinox_policy_falls_back_to_local_when_no_sp_eir() {
        let mut nets = vec![Network::mesh(NocConfig::mesh_8x8())];
        let mut tracker = PacketTracker::new();
        let cb = Coord::new(2, 2);
        let east = nets[0].add_injection_port(Coord::new(4, 2), 1, LinkKind::Interposer);
        let local = nets[0].local_injector(cb);
        let mut ni = InjectionQueue::new(
            cb,
            4,
            InjectPolicy::Equinox {
                net: 0,
                local,
                eirs: vec![(Coord::new(4, 2), east)],
                rr: 0,
            },
        );
        // Destination due WEST: the east EIR is not on a shortest path.
        let msg = tracker.create(cb, Coord::new(0, 2), MessageClass::Reply, MemOpKind::Read, 0, 0);
        ni.push(msg);
        let mut tail = false;
        for t in 0..100 {
            ni.tick(&mut nets, &mut tracker, t);
            nets[0].step();
            while let Some(f) = nets[0].pop_ejected_node(Coord::new(0, 2)) {
                if f.is_tail() {
                    tail = true;
                }
            }
        }
        assert!(tail);
        assert_eq!(
            nets[0].stats().link_flits_interposer, 0,
            "no detour through the east EIR"
        );
    }

    #[test]
    fn subnet_round_robin_spreads_packets() {
        let mut cfg = NocConfig::mesh(4);
        cfg.link_bits = 16;
        cfg.vc_buf_flits = 40;
        let mut nets = vec![Network::mesh(cfg.clone()), Network::mesh(cfg)];
        let mut tracker = PacketTracker::new();
        let src = Coord::new(0, 0);
        let mut ni = InjectionQueue::new(
            src,
            8,
            InjectPolicy::SubnetRoundRobin {
                nets: vec![0, 1],
                rr: 0,
            },
        );
        for _ in 0..2 {
            let m = tracker.create(src, Coord::new(3, 3), MessageClass::Reply, MemOpKind::Read, 0, 0);
            ni.push(m);
        }
        for t in 0..400 {
            ni.tick(&mut nets, &mut tracker, t);
            for n in nets.iter_mut() {
                n.step();
                while n.pop_ejected_node(Coord::new(3, 3)).is_some() {}
            }
        }
        assert!(nets[0].stats().injected_flits > 0);
        assert!(nets[1].stats().injected_flits > 0, "round-robin must use both subnets");
    }

    #[test]
    fn multi_injector_streams_packets_in_parallel() {
        let mut nets = vec![Network::mesh(NocConfig::mesh_8x8())];
        let mut tracker = PacketTracker::new();
        let cb = Coord::new(3, 3);
        let mut injectors = vec![nets[0].local_injector(cb)];
        for _ in 0..3 {
            injectors.push(nets[0].add_injection_port(cb, 1, LinkKind::NiLocal));
        }
        let mut ni = InjectionQueue::new(
            cb,
            8,
            InjectPolicy::MultiInjector {
                net: 0,
                injectors,
                rr: 0,
            },
        );
        for k in 0..4 {
            let dst = Coord::new(7, k);
            let m = tracker.create(cb, dst, MessageClass::Reply, MemOpKind::Read, 0, 0);
            ni.push(m);
        }
        // One tick claims all four buffers at once.
        ni.tick(&mut nets, &mut tracker, 0);
        assert_eq!(ni.backlog(), 4, "all four packets in flight");
        let mut got = 0;
        for t in 1..400 {
            ni.tick(&mut nets, &mut tracker, t);
            nets[0].step();
            for k in 0..4 {
                while let Some(f) = nets[0].pop_ejected_node(Coord::new(7, k)) {
                    if f.is_tail() {
                        got += 1;
                    }
                }
            }
        }
        assert_eq!(got, 4);
        assert!(ni.is_idle());
    }

    #[test]
    fn cmesh_split_routes_far_packets_through_the_cmesh() {
        // Base 8x8 + a 4x4 concentrated net; a far packet must use the
        // CMesh, a near one the base mesh.
        let base = Network::mesh(NocConfig::mesh_8x8());
        let mut ccfg = NocConfig::mesh(4);
        ccfg.link_bits = 256;
        ccfg.vc_buf_flits = 3;
        let mut cmesh = Network::mesh(ccfg);
        // Tag ejection for the far destination (7,7) = node 63 on its
        // cmesh router (3,3); neutralize the default tag.
        for r in 0..16 {
            cmesh.set_ejection_sink(r, 4, Some(u32::MAX));
        }
        let (er, ep) = cmesh.add_ejection_port(Coord::new(3, 3), Some(63));
        let src = Coord::new(0, 0);
        let inj = cmesh.add_injection_port(Coord::new(0, 0), 1, LinkKind::Interposer);
        let mut nets = vec![base, cmesh];
        let mut tracker = PacketTracker::new();
        let mut ni = InjectionQueue::new(
            src,
            4,
            InjectPolicy::CmeshSplit {
                base: 0,
                cmesh: 1,
                cmesh_injector: inj,
                concentration: 2,
                threshold: 2,
            },
        );
        let far = tracker.create(src, Coord::new(7, 7), MessageClass::Reply, MemOpKind::Read, 0, 0);
        let near = tracker.create(src, Coord::new(1, 0), MessageClass::Request, MemOpKind::Read, 0, 0);
        ni.push(far);
        ni.push(near);
        let mut far_via_cmesh = false;
        let mut near_via_base = false;
        for t in 0..300 {
            ni.tick(&mut nets, &mut tracker, t);
            nets[0].step();
            nets[1].step();
            while let Some(f) = nets[1].pop_ejected(er, ep) {
                if f.is_tail() {
                    far_via_cmesh = true;
                }
            }
            while let Some(f) = nets[0].pop_ejected_node(Coord::new(1, 0)) {
                if f.is_tail() {
                    near_via_base = true;
                }
            }
        }
        assert!(far_via_cmesh, "far packet must ride the concentrated mesh");
        assert!(near_via_base, "near packet must stay on the base mesh");
        let _ = &mut nets;
    }

    /// Runs tick/step/drain until the NI is idle and the net quiescent.
    fn drain(ni: &mut InjectionQueue, nets: &mut [Network], tracker: &mut PacketTracker, dsts: &[Coord]) {
        for t in 0..2_000 {
            ni.tick(nets, tracker, t);
            for n in nets.iter_mut() {
                n.step();
                for &d in dsts {
                    while n.pop_ejected_node(d).is_some() {}
                }
            }
            if ni.is_idle() && nets.iter().all(|n| n.quiescent()) {
                return;
            }
        }
        panic!("network failed to drain");
    }

    #[test]
    fn equinox_two_equal_candidates_alternate() {
        // Two shortest-path EIRs for every message: round-robin must split
        // the packets exactly evenly between them.
        let mut nets = vec![Network::mesh(NocConfig::mesh_8x8())];
        let mut tracker = PacketTracker::new();
        let cb = Coord::new(2, 2);
        let e1 = Coord::new(4, 2); // shortest-path for (5,5)
        let off = Coord::new(0, 2); // never on a shortest path to (5,5)
        let e2 = Coord::new(2, 4); // shortest-path for (5,5)
        let eirs: Vec<(Coord, InjectorId)> = [e1, off, e2]
            .iter()
            .map(|&e| (e, nets[0].add_injection_port(e, 1, LinkKind::Interposer)))
            .collect();
        let local = nets[0].local_injector(cb);
        let mut ni = InjectionQueue::new(cb, 8, InjectPolicy::Equinox { net: 0, local, eirs, rr: 0 });
        let dst = Coord::new(5, 5);
        for _ in 0..4 {
            let m = tracker.create(cb, dst, MessageClass::Reply, MemOpKind::Read, 0, 0);
            ni.push(m);
            drain(&mut ni, &mut nets, &mut tracker, &[dst]);
        }
        // Flits from e1 traverse only routers in the (4,2)..(5,5) rectangle
        // and flits from e2 only (2,4)..(5,5), so the EIR routers' own flit
        // counters isolate the per-EIR packet split.
        let s = nets[0].stats();
        let f1 = s.router_flits[e1.to_index(8)];
        let f2 = s.router_flits[e2.to_index(8)];
        assert_eq!(f1, f2, "equal candidates must alternate ({f1} vs {f2})");
        assert!(f1 > 0);
        assert_eq!(s.router_flits[off.to_index(8)], 0, "off-path EIR unused");
    }

    #[test]
    fn equinox_rr_cursor_covers_all_eirs_across_mixed_destinations() {
        // Regression for the stale-cursor bug: with the cursor taken
        // modulo the per-message shortest-path count, an alternating
        // destination pattern keeps selecting the same EIRs and starves
        // another that is eligible every other message. The cursor must
        // range over the full EIR list.
        let mut nets = vec![Network::mesh(NocConfig::mesh_8x8())];
        let mut tracker = PacketTracker::new();
        let cb = Coord::new(2, 2);
        let e1 = Coord::new(4, 2);
        let e2 = Coord::new(3, 3);
        let e3 = Coord::new(2, 4);
        let eirs: Vec<(Coord, InjectorId)> = [e1, e2, e3]
            .iter()
            .map(|&e| (e, nets[0].add_injection_port(e, 1, LinkKind::Interposer)))
            .collect();
        let local = nets[0].local_injector(cb);
        let mut ni = InjectionQueue::new(cb, 8, InjectPolicy::Equinox { net: 0, local, eirs, rr: 0 });
        let dst_a = Coord::new(5, 5); // all three EIRs on a shortest path
        let dst_b = Coord::new(4, 3); // only e1 and e2 on a shortest path
        for i in 0..6 {
            let dst = if i % 2 == 0 { dst_a } else { dst_b };
            let m = tracker.create(cb, dst, MessageClass::Reply, MemOpKind::Read, 0, 0);
            ni.push(m);
            drain(&mut ni, &mut nets, &mut tracker, &[dst]);
        }
        // No traffic for these destinations passes through another EIR's
        // router, so each counter is nonzero iff that EIR injected.
        let s = nets[0].stats();
        for e in [e1, e2, e3] {
            assert!(
                s.router_flits[e.to_index(8)] > 0,
                "EIR at {e:?} was starved by the round-robin cursor"
            );
        }
    }

    #[test]
    fn try_push_reports_overflow_without_losing_the_message() {
        let (_, mut tracker) = setup();
        let src = Coord::new(0, 0);
        let mut ni = InjectionQueue::new(src, 1, InjectPolicy::Local { net: 0 });
        let m1 = tracker.create(src, Coord::new(1, 1), MessageClass::Request, MemOpKind::Read, 0, 0);
        let m2 = tracker.create(src, Coord::new(2, 2), MessageClass::Request, MemOpKind::Read, 1, 0);
        assert!(ni.try_push(m1).is_ok());
        let back = ni.try_push(m2).expect_err("queue is full");
        assert_eq!(back.id, m2.id, "rejected message is returned intact");
        assert_eq!(ni.backlog(), 1);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn push_beyond_capacity_panics() {
        let (_, mut tracker) = setup();
        let src = Coord::new(0, 0);
        let mut ni = InjectionQueue::new(src, 1, InjectPolicy::Local { net: 0 });
        for _ in 0..2 {
            let m = tracker.create(src, Coord::new(1, 1), MessageClass::Request, MemOpKind::Read, 0, 0);
            ni.push(m);
        }
    }
}
