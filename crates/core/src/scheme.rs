//! The seven evaluated schemes (§5).

use std::fmt;

/// One of the paper's seven compared NoC organizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Single shared physical network, Diamond placement, minimal
    /// adaptive routing (baseline 1).
    SingleBase,
    /// SingleBase + VC monopolization (Jang et al., DAC'15).
    VcMono,
    /// SingleBase + a 4×-concentrated mesh in the interposer (Jerger et
    /// al., MICRO'14).
    InterposerCMesh,
    /// Separate request/reply physical networks, Diamond placement
    /// (baseline 2).
    SeparateBase,
    /// Separate networks; reply split into eight 1/8-width subnets at
    /// 2.5× clock (Kim et al., ICCD'12).
    Da2Mesh,
    /// Separate networks; CB routers get 4 injection and ejection ports
    /// (Bakhoda et al., MICRO'10).
    MultiPort,
    /// The proposed scheme: N-Queen placement + MCTS-selected EIRs +
    /// modified NI.
    EquiNox,
}

impl SchemeKind {
    /// All seven schemes in the paper's figure order.
    pub const ALL: [SchemeKind; 7] = [
        SchemeKind::SingleBase,
        SchemeKind::VcMono,
        SchemeKind::InterposerCMesh,
        SchemeKind::SeparateBase,
        SchemeKind::Da2Mesh,
        SchemeKind::MultiPort,
        SchemeKind::EquiNox,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::SingleBase => "SingleBase",
            SchemeKind::VcMono => "VC-Mono",
            SchemeKind::InterposerCMesh => "Interposer-CMesh",
            SchemeKind::SeparateBase => "SeparateBase",
            SchemeKind::Da2Mesh => "DA2Mesh",
            SchemeKind::MultiPort => "MultiPort",
            SchemeKind::EquiNox => "EquiNox",
        }
    }

    /// `true` for the separate-network family (schemes 4–7).
    pub fn is_separate(self) -> bool {
        matches!(
            self,
            SchemeKind::SeparateBase
                | SchemeKind::Da2Mesh
                | SchemeKind::MultiPort
                | SchemeKind::EquiNox
        )
    }

    /// `true` for schemes exploiting interposer wiring.
    pub fn uses_interposer_links(self) -> bool {
        matches!(self, SchemeKind::InterposerCMesh | SchemeKind::EquiNox)
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_schemes_in_paper_order() {
        assert_eq!(SchemeKind::ALL.len(), 7);
        assert_eq!(SchemeKind::ALL[0].name(), "SingleBase");
        assert_eq!(SchemeKind::ALL[6].name(), "EquiNox");
    }

    #[test]
    fn family_classification() {
        assert!(!SchemeKind::SingleBase.is_separate());
        assert!(!SchemeKind::VcMono.is_separate());
        assert!(!SchemeKind::InterposerCMesh.is_separate());
        assert!(SchemeKind::SeparateBase.is_separate());
        assert!(SchemeKind::EquiNox.is_separate());
        assert!(SchemeKind::EquiNox.uses_interposer_links());
        assert!(SchemeKind::InterposerCMesh.uses_interposer_links());
        assert!(!SchemeKind::MultiPort.uses_interposer_links());
    }
}
