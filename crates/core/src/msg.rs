//! Messages and end-to-end packet tracking.
//!
//! A [`Message`] is the protocol-level unit (read/write request or reply);
//! it serializes into a network-specific number of flits depending on the
//! link width it travels over (a 64 B read reply is 5 flits on a 128-bit
//! mesh but 36 flits on a DA2Mesh 16-bit subnet — that serialization
//! latency is exactly why DA2Mesh underwhelms in Figure 10).
//!
//! The [`PacketTracker`] records create/inject/eject timestamps per packet
//! and produces the queuing / non-queuing, request / reply latency split
//! of Figure 10: *queuing* is time spent waiting in the source NI before
//! the first flit enters a router (where the injection bottleneck bites),
//! *network* is first-flit-in to tail-flit-out.

use equinox_noc::flit::{MessageClass, PacketDesc};
use equinox_phys::Coord;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOpKind {
    /// Load: short request, long reply.
    Read,
    /// Store: long request, short ack.
    Write,
}

/// Packet header size in bytes.
pub const HEADER_BYTES: u32 = 8;
/// Cache-line size in bytes.
pub const LINE_BYTES: u32 = 64;

/// A protocol message between a PE and a cache bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Tracker-issued packet id.
    pub id: u64,
    /// Source tile.
    pub src: Coord,
    /// Destination tile.
    pub dst: Coord,
    /// Request or reply.
    pub class: MessageClass,
    /// Read or write.
    pub op: MemOpKind,
    /// The memory address involved.
    pub addr: u64,
    /// Compressed payload (the packet-coalescing extension, §7 \[47\]):
    /// the cache line travels at half size.
    pub compressed: bool,
}

impl Message {
    /// Payload + header size in bytes.
    pub fn bytes(&self) -> u32 {
        let line = if self.compressed {
            LINE_BYTES / 2
        } else {
            LINE_BYTES
        };
        match (self.op, self.class) {
            (MemOpKind::Read, MessageClass::Request) => HEADER_BYTES,
            (MemOpKind::Read, MessageClass::Reply) => HEADER_BYTES + line,
            (MemOpKind::Write, MessageClass::Request) => HEADER_BYTES + line,
            (MemOpKind::Write, MessageClass::Reply) => HEADER_BYTES,
        }
    }

    /// Number of flits on a link of `link_bits` bits.
    ///
    /// ```
    /// # use equinox_core::msg::{MemOpKind, Message};
    /// # use equinox_noc::flit::MessageClass;
    /// # use equinox_phys::Coord;
    /// let reply = Message { id: 0, src: Coord::new(0, 0), dst: Coord::new(1, 1),
    ///     class: MessageClass::Reply, op: MemOpKind::Read, addr: 0, compressed: false };
    /// assert_eq!(reply.flit_len(128), 5);
    /// assert_eq!(reply.flit_len(256), 3);
    /// assert_eq!(reply.flit_len(16), 36);
    /// ```
    pub fn flit_len(&self, link_bits: u32) -> u16 {
        let bits = self.bytes() * 8;
        bits.div_ceil(link_bits).max(1) as u16
    }

    /// Builds the packet descriptor for a network with the given link
    /// width and coordinate space (`src`/`dst` may be remapped for
    /// concentrated networks).
    pub fn to_desc(&self, link_bits: u32, src: Coord, dst: Coord) -> PacketDesc {
        PacketDesc::new(self.id, src, dst, self.class, self.flit_len(link_bits))
    }
}

/// Lifecycle timestamps and metadata of one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRecord {
    /// Source tile (original mesh coordinates).
    pub src: Coord,
    /// Destination tile.
    pub dst: Coord,
    /// Class.
    pub class: MessageClass,
    /// Operation.
    pub op: MemOpKind,
    /// Address (used by the CB to access HBM).
    pub addr: u64,
    /// Core cycle the message was handed to its NI.
    pub created: u64,
    /// Core cycle the first flit entered a router (None while queued).
    pub injected: Option<u64>,
    /// Core cycle the tail flit reached the destination NI.
    pub ejected: Option<u64>,
    /// Whether the payload travelled compressed.
    pub compressed: bool,
}

impl equinox_snap::Snap for MemOpKind {
    fn snap(&self, e: &mut equinox_snap::Enc) {
        e.put_u8(match self {
            MemOpKind::Read => 0,
            MemOpKind::Write => 1,
        });
    }

    fn restore(d: &mut equinox_snap::Dec) -> Result<Self, equinox_snap::SnapError> {
        match d.u8()? {
            0 => Ok(MemOpKind::Read),
            1 => Ok(MemOpKind::Write),
            _ => Err(equinox_snap::SnapError::BadValue("mem op tag")),
        }
    }
}

impl equinox_snap::Snap for Message {
    fn snap(&self, e: &mut equinox_snap::Enc) {
        e.put_u64(self.id);
        e.put_u16(self.src.x);
        e.put_u16(self.src.y);
        e.put_u16(self.dst.x);
        e.put_u16(self.dst.y);
        self.class.snap(e);
        self.op.snap(e);
        e.put_u64(self.addr);
        e.put_bool(self.compressed);
    }

    fn restore(d: &mut equinox_snap::Dec) -> Result<Self, equinox_snap::SnapError> {
        Ok(Message {
            id: d.u64()?,
            src: Coord::new(d.u16()?, d.u16()?),
            dst: Coord::new(d.u16()?, d.u16()?),
            class: MessageClass::restore(d)?,
            op: MemOpKind::restore(d)?,
            addr: d.u64()?,
            compressed: d.bool()?,
        })
    }
}

/// Per-class latency split in nanoseconds (Figure 10's four bars).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyBreakdown {
    /// Request source-queuing latency.
    pub req_queue_ns: f64,
    /// Request in-network latency.
    pub req_net_ns: f64,
    /// Reply source-queuing latency.
    pub rep_queue_ns: f64,
    /// Reply in-network latency.
    pub rep_net_ns: f64,
}

impl LatencyBreakdown {
    /// Mean total packet latency (request + reply halves averaged by
    /// packet counts is already folded in; this sums the four bars).
    pub fn total_ns(&self) -> f64 {
        self.req_queue_ns + self.req_net_ns + self.rep_queue_ns + self.rep_net_ns
    }

    /// Request latency (queue + network).
    pub fn request_ns(&self) -> f64 {
        self.req_queue_ns + self.req_net_ns
    }

    /// Reply latency (queue + network).
    pub fn reply_ns(&self) -> f64 {
        self.rep_queue_ns + self.rep_net_ns
    }
}

impl equinox_snap::Snap for PacketRecord {
    fn snap(&self, e: &mut equinox_snap::Enc) {
        e.put_u16(self.src.x);
        e.put_u16(self.src.y);
        e.put_u16(self.dst.x);
        e.put_u16(self.dst.y);
        self.class.snap(e);
        self.op.snap(e);
        e.put_u64(self.addr);
        e.put_u64(self.created);
        self.injected.snap(e);
        self.ejected.snap(e);
        e.put_bool(self.compressed);
    }

    fn restore(d: &mut equinox_snap::Dec) -> Result<Self, equinox_snap::SnapError> {
        Ok(PacketRecord {
            src: Coord::new(d.u16()?, d.u16()?),
            dst: Coord::new(d.u16()?, d.u16()?),
            class: MessageClass::restore(d)?,
            op: MemOpKind::restore(d)?,
            addr: d.u64()?,
            created: d.u64()?,
            injected: Option::restore(d)?,
            ejected: Option::restore(d)?,
            compressed: d.bool()?,
        })
    }
}

/// Central registry of every packet in a run.
#[derive(Debug, Default)]
pub struct PacketTracker {
    records: Vec<PacketRecord>,
    /// Packets whose head flit entered a network (first transitions only).
    injected_count: u64,
    /// Packets whose tail flit left a network (first transitions only).
    ejected_count: u64,
}

impl PacketTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves room for at least `additional` more packet records, so a
    /// measured run can move the record-table growth out of its timed
    /// (allocation-free) window.
    pub fn reserve(&mut self, additional: usize) {
        self.records.reserve(additional);
    }

    /// Registers a new message and returns it, with its id assigned.
    pub fn create(
        &mut self,
        src: Coord,
        dst: Coord,
        class: MessageClass,
        op: MemOpKind,
        addr: u64,
        now: u64,
    ) -> Message {
        let id = self.records.len() as u64;
        self.records.push(PacketRecord {
            src,
            dst,
            class,
            op,
            addr,
            created: now,
            injected: None,
            ejected: None,
            compressed: false,
        });
        Message {
            id,
            src,
            dst,
            class,
            op,
            addr,
            compressed: false,
        }
    }

    /// Flags packet `id` (and returns the updated message) as carrying a
    /// compressed payload.
    pub fn set_compressed(&mut self, msg: Message) -> Message {
        self.records[msg.id as usize].compressed = true;
        Message {
            compressed: true,
            ..msg
        }
    }

    /// The record of packet `id`.
    pub fn record(&self, id: u64) -> &PacketRecord {
        &self.records[id as usize]
    }

    /// Marks the first-flit injection time (idempotent).
    pub fn mark_injected(&mut self, id: u64, now: u64) {
        let r = &mut self.records[id as usize];
        if r.injected.is_none() {
            r.injected = Some(now);
            self.injected_count += 1;
        }
    }

    /// Marks tail-flit arrival (idempotent, like
    /// [`PacketTracker::mark_injected`]).
    pub fn mark_ejected(&mut self, id: u64, now: u64) {
        let r = &mut self.records[id as usize];
        if r.ejected.is_none() {
            r.ejected = Some(now);
            self.ejected_count += 1;
        }
    }

    /// Packets injected but not yet delivered — the tracker side of the
    /// system-level packet-accounting invariant (it must equal the tail
    /// flits resident in the networks plus the packets streaming out of
    /// NIs).
    pub fn in_flight(&self) -> u64 {
        self.injected_count - self.ejected_count
    }

    /// Packets fully delivered.
    pub fn delivered(&self) -> u64 {
        self.ejected_count
    }

    /// Number of packets created.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no packet was created.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Fraction of transferred bits that were replies (§2.2 check).
    pub fn reply_bit_fraction(&self) -> f64 {
        let (mut rep, mut total) = (0u64, 0u64);
        for r in &self.records {
            let msg = Message {
                id: 0,
                src: r.src,
                dst: r.dst,
                class: r.class,
                op: r.op,
                addr: r.addr,
                compressed: r.compressed,
            };
            let bits = msg.bytes() as u64 * 8;
            total += bits;
            if r.class.is_reply() {
                rep += bits;
            }
        }
        if total == 0 {
            0.0
        } else {
            rep as f64 / total as f64
        }
    }

    /// Mean latencies over all *delivered* packets, in nanoseconds at
    /// `freq_ghz`.
    pub fn latency_breakdown(&self, freq_ghz: f64) -> LatencyBreakdown {
        let ns = 1.0 / freq_ghz;
        let mut out = LatencyBreakdown::default();
        let (mut n_req, mut n_rep) = (0u64, 0u64);
        for r in &self.records {
            let (Some(inj), Some(ej)) = (r.injected, r.ejected) else {
                continue;
            };
            let queue = (inj - r.created) as f64 * ns;
            let net = (ej - inj) as f64 * ns;
            if r.class.is_reply() {
                out.rep_queue_ns += queue;
                out.rep_net_ns += net;
                n_rep += 1;
            } else {
                out.req_queue_ns += queue;
                out.req_net_ns += net;
                n_req += 1;
            }
        }
        if n_req > 0 {
            out.req_queue_ns /= n_req as f64;
            out.req_net_ns /= n_req as f64;
        }
        if n_rep > 0 {
            out.rep_queue_ns /= n_rep as f64;
            out.rep_net_ns /= n_rep as f64;
        }
        out
    }
}

impl equinox_snap::Snap for PacketTracker {
    fn snap(&self, e: &mut equinox_snap::Enc) {
        self.records.snap(e);
        e.put_u64(self.injected_count);
        e.put_u64(self.ejected_count);
    }

    fn restore(d: &mut equinox_snap::Dec) -> Result<Self, equinox_snap::SnapError> {
        use equinox_snap::SnapError;
        let records: Vec<PacketRecord> = Vec::restore(d)?;
        let injected_count = d.u64()?;
        let ejected_count = d.u64()?;
        // The counters increment exactly once per record's None→Some
        // transition, so they must agree with the record table.
        if injected_count != records.iter().filter(|r| r.injected.is_some()).count() as u64
            || ejected_count != records.iter().filter(|r| r.ejected.is_some()).count() as u64
        {
            return Err(SnapError::BadValue("tracker counters disagree with records"));
        }
        Ok(PacketTracker {
            records,
            injected_count,
            ejected_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(class: MessageClass, op: MemOpKind) -> Message {
        Message {
            id: 0,
            src: Coord::new(0, 0),
            dst: Coord::new(1, 1),
            class,
            op,
            addr: 0,
            compressed: false,
        }
    }

    #[test]
    fn sizes_match_protocol() {
        assert_eq!(msg(MessageClass::Request, MemOpKind::Read).bytes(), 8);
        assert_eq!(msg(MessageClass::Reply, MemOpKind::Read).bytes(), 72);
        assert_eq!(msg(MessageClass::Request, MemOpKind::Write).bytes(), 72);
        assert_eq!(msg(MessageClass::Reply, MemOpKind::Write).bytes(), 8);
    }

    #[test]
    fn flit_lengths_by_width() {
        let rep = msg(MessageClass::Reply, MemOpKind::Read);
        assert_eq!(rep.flit_len(128), 5);
        assert_eq!(rep.flit_len(256), 3);
        assert_eq!(rep.flit_len(16), 36);
        let req = msg(MessageClass::Request, MemOpKind::Read);
        assert_eq!(req.flit_len(128), 1);
        assert_eq!(req.flit_len(16), 4);
    }

    #[test]
    fn tracker_lifecycle_and_breakdown() {
        let mut t = PacketTracker::new();
        let m = t.create(
            Coord::new(0, 0),
            Coord::new(3, 3),
            MessageClass::Reply,
            MemOpKind::Read,
            64,
            10,
        );
        t.mark_injected(m.id, 14);
        t.mark_injected(m.id, 99); // idempotent: first wins
        t.mark_ejected(m.id, 30);
        let b = t.latency_breakdown(1.0); // 1 GHz -> cycles == ns
        assert!((b.rep_queue_ns - 4.0).abs() < 1e-9);
        assert!((b.rep_net_ns - 16.0).abs() < 1e-9);
        assert_eq!(b.req_queue_ns, 0.0);
        assert!((b.reply_ns() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn undelivered_packets_excluded() {
        let mut t = PacketTracker::new();
        let m = t.create(
            Coord::new(0, 0),
            Coord::new(1, 0),
            MessageClass::Request,
            MemOpKind::Read,
            0,
            0,
        );
        t.mark_injected(m.id, 2);
        // never ejected
        let b = t.latency_breakdown(1.0);
        assert_eq!(b.total_ns(), 0.0);
    }

    #[test]
    fn tracker_snapshot_round_trips_and_validates() {
        use equinox_snap::{Dec, Enc, Snap, SnapError};
        let mut t = PacketTracker::new();
        for i in 0..6u64 {
            let m = t.create(
                Coord::new(0, 0),
                Coord::new(3, 2),
                if i % 2 == 0 { MessageClass::Request } else { MessageClass::Reply },
                if i % 3 == 0 { MemOpKind::Write } else { MemOpKind::Read },
                i * 64,
                i,
            );
            if i < 4 {
                t.mark_injected(m.id, i + 2);
            }
            if i < 2 {
                t.mark_ejected(m.id, i + 9);
            }
        }
        let mut e = Enc::new();
        t.snap(&mut e);
        let bytes = e.into_bytes();

        let mut d = Dec::new(&bytes);
        let back = PacketTracker::restore(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.in_flight(), t.in_flight());
        assert_eq!(back.delivered(), t.delivered());
        for i in 0..t.len() as u64 {
            assert_eq!(back.record(i), t.record(i));
        }
        assert_eq!(back.latency_breakdown(2.0), t.latency_breakdown(2.0));

        // A corrupted injected-counter must be caught, not restored.
        let mut bad = bytes.clone();
        let cut = bad.len() - 16; // injected_count is the 2nd-to-last u64
        bad[cut] ^= 0xff;
        assert!(matches!(
            PacketTracker::restore(&mut Dec::new(&bad)),
            Err(SnapError::BadValue(_))
        ));
        // Truncation anywhere is structural, never a panic.
        for cut in 0..bytes.len() {
            assert!(PacketTracker::restore(&mut Dec::new(&bytes[..cut])).is_err());
        }
    }

    #[test]
    fn reply_bit_fraction_read_heavy() {
        let mut t = PacketTracker::new();
        // 3 reads (req 8B + rep 72B each) and 1 write (req 72B + rep 8B).
        for _ in 0..3 {
            t.create(Coord::new(0, 0), Coord::new(1, 0), MessageClass::Request, MemOpKind::Read, 0, 0);
            t.create(Coord::new(1, 0), Coord::new(0, 0), MessageClass::Reply, MemOpKind::Read, 0, 0);
        }
        t.create(Coord::new(0, 0), Coord::new(1, 0), MessageClass::Request, MemOpKind::Write, 0, 0);
        t.create(Coord::new(1, 0), Coord::new(0, 0), MessageClass::Reply, MemOpKind::Write, 0, 0);
        let f = t.reply_bit_fraction();
        let expect = (3.0 * 72.0 + 8.0) / (3.0 * 72.0 + 8.0 + 3.0 * 8.0 + 72.0);
        assert!((f - expect).abs() < 1e-9);
    }
}
