//! Run metrics and aggregation helpers.

use crate::msg::LatencyBreakdown;
use crate::scheme::SchemeKind;

/// Everything one full-system run produces — the raw material for every
/// figure in §6.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// The scheme simulated.
    pub scheme: SchemeKind,
    /// Benchmark name.
    pub benchmark: String,
    /// Core cycles until every PE retired its quota and got its replies.
    pub cycles: u64,
    /// Execution time in nanoseconds.
    pub exec_ns: f64,
    /// Instructions per cycle over all PEs.
    pub ipc: f64,
    /// `false` if the run hit the cycle cap before finishing.
    pub completed: bool,
    /// Figure 10's latency split (nanoseconds).
    pub latency: LatencyBreakdown,
    /// Dynamic NoC energy in joules.
    pub dynamic_j: f64,
    /// Leakage NoC energy in joules.
    pub leakage_j: f64,
    /// Energy-delay product in joule·seconds.
    pub edp: f64,
    /// Total NoC area in mm².
    pub area_mm2: f64,
    /// µbumps consumed by interposer links.
    pub ubumps: usize,
    /// Measured reply share of NoC bits (§2.2 reports 0.727).
    pub reply_bit_fraction: f64,
}

impl RunMetrics {
    /// Total NoC energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.dynamic_j + self.leakage_j
    }
}

/// Geometric mean of positive values — the paper's cross-benchmark
/// average for normalized metrics.
///
/// Edge cases (pinned by unit tests, do not change silently):
/// * an empty slice yields `0.0` (a missing benchmark set reads as "no
///   result", not a crash or a misleading `1.0`);
/// * any `0.0` element collapses the mean to `0.0` (`ln(0) = -inf`,
///   `exp(-inf) = 0`), matching the limit of the product form;
/// * negative elements yield `NaN` (`ln` of a negative is `NaN`) — the
///   caller fed in something that is not a ratio, and a loud `NaN`
///   beats a silently wrong average.
///
/// ```
/// # use equinox_core::metrics::geomean;
/// assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let ln_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    (ln_sum / xs.len() as f64).exp()
}

/// Normalizes `value` against `baseline` (baseline = 1.0).
///
/// A zero baseline yields `0.0` rather than `inf`/`NaN` — a scheme with
/// no baseline measurement plots as absent, not off-scale. A *negative*
/// baseline is passed through arithmetically (the sign flips); metrics
/// here are all non-negative, so that only happens on caller error and
/// is pinned by a test rather than guarded.
pub fn normalize(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        value / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 8.0]) - 8.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn normalize_guards_zero() {
        assert_eq!(normalize(5.0, 0.0), 0.0);
        assert!((normalize(5.0, 10.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn geomean_zero_element_collapses_to_zero() {
        assert_eq!(geomean(&[0.0, 2.0, 4.0]), 0.0);
        assert_eq!(geomean(&[0.0]), 0.0);
    }

    #[test]
    fn geomean_negative_element_is_nan() {
        assert!(geomean(&[-1.0]).is_nan());
        assert!(geomean(&[2.0, -3.0]).is_nan());
    }

    #[test]
    fn normalize_zero_value_and_negative_baseline() {
        assert_eq!(normalize(0.0, 0.0), 0.0, "both zero reads as absent");
        assert_eq!(normalize(0.0, 7.0), 0.0);
        // Negative baselines are caller error; the sign passes through.
        assert!((normalize(5.0, -2.0) - (-2.5)).abs() < 1e-12);
        // -0.0 == 0.0 in IEEE comparison, so it takes the guard too.
        assert_eq!(normalize(5.0, -0.0), 0.0);
    }
}
