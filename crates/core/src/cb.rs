//! The cache-bank (CB) model.
//!
//! Each CB tile pairs a last-level cache bank with a memory controller and
//! its HBM stack (Figure 1). Incoming request packets either hit in the
//! bank (probabilistic per benchmark profile, replying after the L2
//! latency) or miss and queue into the FR-FCFS controller of the local
//! HBM stack; either way a reply message is eventually handed to the CB's
//! reply-side NI. A bounded in-flight window plus the NI's bounded queue
//! provide the backpressure that lets reply congestion throttle request
//! ejection — the parking-lot effect of §6.4.

use crate::msg::{MemOpKind, PacketTracker};
use crate::ni::InjectionQueue;
use equinox_hbm::{HbmConfig, HbmStack, MemAccess};
use equinox_noc::flit::MessageClass;
use equinox_phys::Coord;
use equinox_exec::Rng;
use std::collections::VecDeque;

/// One cache bank with its memory controller and HBM stack.
#[derive(Debug)]
pub struct CacheBank {
    /// Tile this bank occupies.
    pub node: Coord,
    /// Number of CBs the global address space is striped over; used to
    /// delete the CB-select bits before addressing the local stack (so
    /// all of the stack's channels and banks are exercised).
    n_cbs: u64,
    hit_rate: f64,
    l2_latency: u64,
    /// Probability a read reply's line compresses to half size (0 = the
    /// base EquiNox system; >0 enables the §7 coalescing extension).
    compression: f64,
    rng: Rng,
    /// Requests that hit, due to reply at the stored cycle (sorted FIFO —
    /// latency is constant so push order is due order).
    hits_due: VecDeque<(u64, u64)>,
    /// Requests waiting to enter a full HBM channel queue.
    hbm_retry: VecDeque<u64>,
    hbm: HbmStack,
    /// Replies ready to be handed to the NI once it has room.
    ready: VecDeque<u64>,
    /// A reply already created in the tracker but refused by the NI
    /// (backpressure); retried before anything else next tick.
    pending_reply: Option<crate::msg::Message>,
    /// Requests accepted but not yet replied.
    inflight: usize,
    max_inflight: usize,
    /// Total requests served (for statistics).
    pub served: u64,
}

impl CacheBank {
    /// Creates a bank with the given hit rate, L2 hit latency (cycles) and
    /// HBM configuration.
    pub fn new(
        node: Coord,
        n_cbs: u64,
        hit_rate: f64,
        l2_latency: u64,
        hbm_cfg: HbmConfig,
        max_inflight: usize,
        seed: u64,
    ) -> Self {
        assert!(n_cbs > 0, "at least one cache bank");
        CacheBank {
            node,
            n_cbs,
            hit_rate,
            compression: 0.0,
            l2_latency,
            rng: Rng::seed_from_u64(seed ^ 0xCB),
            hits_due: VecDeque::new(),
            hbm_retry: VecDeque::new(),
            hbm: HbmStack::new(hbm_cfg),
            ready: VecDeque::new(),
            pending_reply: None,
            inflight: 0,
            max_inflight,
            served: 0,
        }
    }

    /// Enables the reply-compression extension: each read reply's line
    /// compresses to half size with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn set_compression(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.compression = p;
    }

    /// `true` if the bank can take another request this cycle.
    pub fn can_accept(&self) -> bool {
        self.inflight < self.max_inflight
    }

    /// Accepts a fully-received request packet.
    ///
    /// # Panics
    ///
    /// Panics if called while [`CacheBank::can_accept`] is false.
    pub fn accept(&mut self, pkt_id: u64, tracker: &PacketTracker, now: u64) {
        assert!(self.can_accept(), "CB over capacity");
        self.inflight += 1;
        let rec = tracker.record(pkt_id);
        debug_assert!(!rec.class.is_reply(), "CBs receive requests");
        if self.rng.random::<f64>() < self.hit_rate {
            self.hits_due.push_back((now + self.l2_latency, pkt_id));
        } else if self
            .hbm
            .enqueue(
                MemAccess {
                    id: pkt_id,
                    addr: self.local_addr(rec.addr),
                    write: rec.op == MemOpKind::Write,
                },
                now,
            )
            .is_err()
        {
            self.hbm_retry.push_back(pkt_id);
        }
    }

    /// Strips the CB-select bits from a global address: consecutive lines
    /// of this bank become consecutive local lines, so the stack's channel
    /// and row interleavings see the full stream.
    fn local_addr(&self, addr: u64) -> u64 {
        let line = addr / 64;
        (line / self.n_cbs) * 64 + addr % 64
    }

    /// One cycle: advance HBM, collect finished accesses and due hits,
    /// and hand ready replies to the reply NI while it has room.
    pub fn tick(
        &mut self,
        now: u64,
        tracker: &mut PacketTracker,
        reply_ni: &mut InjectionQueue,
    ) {
        // Retry queued-out misses.
        while let Some(&pkt) = self.hbm_retry.front() {
            let rec = tracker.record(pkt);
            let acc = MemAccess {
                id: pkt,
                addr: self.local_addr(rec.addr),
                write: rec.op == MemOpKind::Write,
            };
            if self.hbm.enqueue(acc, now).is_ok() {
                self.hbm_retry.pop_front();
            } else {
                break;
            }
        }
        self.hbm.step(now);
        while let Some(c) = self.hbm.pop_completed() {
            self.ready.push_back(c.id);
        }
        while self.hits_due.front().is_some_and(|&(t, _)| t <= now) {
            let (_, pkt) = self.hits_due.pop_front().expect("checked front");
            self.ready.push_back(pkt);
        }
        // Emit replies while the NI accepts them. A refused reply keeps
        // its tracker record and parks in `pending_reply` (re-creating it
        // later would duplicate the record), so backpressure defers
        // rather than drops.
        if let Some(reply) = self.pending_reply.take() {
            match reply_ni.try_push(reply) {
                Ok(()) => {
                    self.inflight -= 1;
                    self.served += 1;
                }
                Err(reply) => self.pending_reply = Some(reply),
            }
        }
        while self.pending_reply.is_none() && !self.ready.is_empty() {
            let req = self.ready.pop_front().expect("nonempty");
            let rec = *tracker.record(req);
            let mut reply = tracker.create(
                self.node,
                rec.src,
                MessageClass::Reply,
                rec.op,
                rec.addr,
                now,
            );
            if self.compression > 0.0
                && rec.op == MemOpKind::Read
                && self.rng.random::<f64>() < self.compression
            {
                reply = tracker.set_compressed(reply);
            }
            match reply_ni.try_push(reply) {
                Ok(()) => {
                    self.inflight -= 1;
                    self.served += 1;
                }
                Err(reply) => self.pending_reply = Some(reply),
            }
        }
    }

    /// Requests inside the bank (accepted, not yet replied).
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Serializes the bank's dynamic state: RNG, due hits, HBM retry
    /// queue, the HBM stack itself, ready/parked replies and the
    /// in-flight window. Node, striping, rates and latencies are
    /// build-time configuration and are skipped.
    pub fn snap_state(&self, e: &mut equinox_snap::Enc) {
        use equinox_snap::Snap;
        self.rng.snap(e);
        self.hits_due.snap(e);
        self.hbm_retry.snap(e);
        self.hbm.snap_state(e);
        self.ready.snap(e);
        self.pending_reply.snap(e);
        e.put_usize(self.inflight);
        e.put_u64(self.served);
    }

    /// Restores state written by [`CacheBank::snap_state`] into a bank
    /// built with the same configuration.
    pub fn restore_state(
        &mut self,
        d: &mut equinox_snap::Dec,
    ) -> Result<(), equinox_snap::SnapError> {
        use equinox_snap::{Snap, SnapError};
        self.rng = Rng::restore(d)?;
        self.hits_due = VecDeque::restore(d)?;
        self.hbm_retry = VecDeque::restore(d)?;
        self.hbm.restore_state(d)?;
        self.ready = VecDeque::restore(d)?;
        self.pending_reply = Option::restore(d)?;
        self.inflight = d.usize()?;
        self.served = d.u64()?;
        if self.inflight > self.max_inflight {
            return Err(SnapError::BadValue("cb inflight over window"));
        }
        Ok(())
    }

    /// `true` when the next [`CacheBank::tick`] is guaranteed to change
    /// no state other than the HBM clock: no reply is ready for the NI,
    /// none is parked on NI backpressure, and nothing is waiting to
    /// retry into a full channel queue. A skippable bank may still hold
    /// in-flight requests — they are all parked on *timed* events (L2
    /// hit latency, DRAM timing) whose due cycles
    /// [`CacheBank::next_event`] reports, and ticking before the first
    /// of those draws no RNG and touches no queue.
    pub fn skippable(&self) -> bool {
        self.pending_reply.is_none() && self.ready.is_empty() && self.hbm_retry.is_empty()
    }

    /// Earliest cycle at which [`CacheBank::tick`] could make progress —
    /// the next L2 hit coming due or the HBM's next scheduling event —
    /// or `None` when the bank holds no timed work.
    pub fn next_event(&self) -> Option<u64> {
        let hit = self.hits_due.front().map(|&(t, _)| t);
        match (hit, self.hbm.next_event()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// `true` when no request is anywhere inside the bank or its HBM.
    pub fn is_idle(&self) -> bool {
        self.inflight == 0
            && self.hits_due.is_empty()
            && self.hbm_retry.is_empty()
            && self.ready.is_empty()
            && self.pending_reply.is_none()
            && self.hbm.outstanding() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ni::InjectPolicy;
    use equinox_noc::config::NocConfig;
    use equinox_noc::network::Network;

    fn setup(hit_rate: f64) -> (CacheBank, InjectionQueue, Vec<Network>, PacketTracker) {
        let node = Coord::new(0, 0);
        let cb = CacheBank::new(node, 8, hit_rate, 20, HbmConfig::tiny(), 8, 1);
        let ni = InjectionQueue::new(node, 4, InjectPolicy::Local { net: 0 });
        let nets = vec![Network::mesh(NocConfig::mesh(4))];
        (cb, ni, nets, PacketTracker::new())
    }

    fn request(tracker: &mut PacketTracker, addr: u64) -> u64 {
        tracker
            .create(
                Coord::new(3, 3),
                Coord::new(0, 0),
                MessageClass::Request,
                MemOpKind::Read,
                addr,
                0,
            )
            .id
    }

    #[test]
    fn hit_replies_after_l2_latency() {
        let (mut cb, mut ni, _nets, mut tracker) = setup(1.0);
        let req = request(&mut tracker, 64);
        cb.accept(req, &tracker, 0);
        for t in 0..19 {
            cb.tick(t, &mut tracker, &mut ni);
        }
        assert_eq!(ni.backlog(), 0, "not due yet");
        cb.tick(20, &mut tracker, &mut ni);
        assert_eq!(ni.backlog(), 1, "hit reply after 20 cycles");
        assert!(cb.is_idle());
    }

    #[test]
    fn miss_goes_through_hbm() {
        let (mut cb, mut ni, _nets, mut tracker) = setup(0.0);
        let req = request(&mut tracker, 128);
        cb.accept(req, &tracker, 0);
        let mut replied_at = None;
        for t in 0..300 {
            cb.tick(t, &mut tracker, &mut ni);
            if ni.backlog() > 0 && replied_at.is_none() {
                replied_at = Some(t);
            }
        }
        let t = replied_at.expect("miss must eventually reply");
        assert!(t > 20, "DRAM slower than L2 hit: {t}");
        assert!(cb.is_idle());
    }

    #[test]
    fn reply_message_addressed_to_requester() {
        let (mut cb, mut ni, mut nets, mut tracker) = setup(1.0);
        let req = request(&mut tracker, 0);
        cb.accept(req, &tracker, 0);
        for t in 0..25 {
            cb.tick(t, &mut tracker, &mut ni);
        }
        // The reply is the second record.
        let rep = tracker.record(1);
        assert_eq!(rep.dst, Coord::new(3, 3));
        assert_eq!(rep.src, Coord::new(0, 0));
        assert!(rep.class.is_reply());
        // And it can actually be injected.
        for t in 0..10 {
            ni.tick(&mut nets, &mut tracker, t);
            nets[0].step();
        }
        assert!(tracker.record(1).injected.is_some());
    }

    #[test]
    fn capacity_gates_acceptance() {
        let (mut cb, _ni, _nets, mut tracker) = setup(0.0);
        for i in 0..8 {
            assert!(cb.can_accept());
            let req = request(&mut tracker, i * 64);
            cb.accept(req, &tracker, 0);
        }
        assert!(!cb.can_accept(), "8 in flight = full");
    }

    #[test]
    fn snapshot_round_trip_resumes_identically() {
        use equinox_snap::{Dec, Enc};
        // Mixed hits and misses, mid-flight snapshot, then identical
        // reply streams from the original and the restored bank.
        let (mut cb, mut ni, _nets, mut tracker) = setup(0.5);
        for i in 0..8 {
            let req = request(&mut tracker, i * 64);
            cb.accept(req, &tracker, 0);
        }
        for t in 0..30 {
            cb.tick(t, &mut tracker, &mut ni);
        }
        let mut e = Enc::new();
        cb.snap_state(&mut e);
        let bytes = e.into_bytes();

        let node = Coord::new(0, 0);
        let mut cb2 = CacheBank::new(node, 8, 0.5, 20, HbmConfig::tiny(), 8, 1);
        let mut d = Dec::new(&bytes);
        cb2.restore_state(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(cb2.inflight(), cb.inflight());
        assert_eq!(cb2.served, cb.served);
        assert_eq!(cb2.is_idle(), cb.is_idle());

        // Drive both against cloned trackers/NIs and compare the exact
        // reply emission order.
        let mut e = Enc::new();
        use equinox_snap::Snap;
        tracker.snap(&mut e);
        let tbytes = e.into_bytes();
        let mut tracker2 = PacketTracker::restore(&mut Dec::new(&tbytes)).unwrap();
        let mut ni2 = InjectionQueue::new(node, 64, InjectPolicy::Local { net: 0 });
        let mut ni1 = InjectionQueue::new(node, 64, InjectPolicy::Local { net: 0 });
        for t in 30..600 {
            cb.tick(t, &mut tracker, &mut ni1);
            cb2.tick(t, &mut tracker2, &mut ni2);
            assert_eq!(ni1.backlog(), ni2.backlog(), "diverged at cycle {t}");
        }
        assert_eq!(cb.served, cb2.served);
        assert!(cb.is_idle() && cb2.is_idle());

        // Corrupting the in-flight window count past the cap must be
        // refused, and truncation anywhere must be structural.
        let mut cb3 = CacheBank::new(node, 8, 0.5, 20, HbmConfig::tiny(), 8, 1);
        for cut in 0..bytes.len() {
            assert!(cb3.restore_state(&mut Dec::new(&bytes[..cut])).is_err());
        }
    }

    #[test]
    fn backpressured_ni_defers_replies() {
        let (mut cb, mut ni, _nets, mut tracker) = setup(1.0);
        // Fill the NI queue (cap 4) and never drain it.
        for i in 0..6 {
            let req = request(&mut tracker, i * 64);
            cb.accept(req, &tracker, 0);
        }
        for t in 0..100 {
            cb.tick(t, &mut tracker, &mut ni);
        }
        assert_eq!(ni.backlog(), 4, "NI holds its cap");
        assert_eq!(cb.inflight(), 2, "remaining replies deferred in the CB");
    }
}
