#![warn(missing_docs)]
//! `equinox-core` — the EquiNox system: Equivalent Injection Routers for
//! silicon-interposer throughput processors.
//!
//! This crate is the reproduction's centrepiece. It glues the substrates
//! (`equinox-noc`, `equinox-traffic`, `equinox-hbm`, `equinox-power`,
//! `equinox-placement`, `equinox-mcts`, `equinox-phys`) into the full
//! machine the paper evaluates, and implements everything specific to
//! EquiNox itself:
//!
//! * [`design`] — the §4 pipeline: scored N-Queen CB placement feeding an
//!   MCTS search for EIR groups, with µbump and RDL-layer accounting;
//! * [`ni`] — the modified CB network interface of Figure 8 (five
//!   single-packet injection buffers and the Buffer Selector implementing
//!   the paper's *Buffer Selection 1* policy), plus the injection policies
//!   of all six baselines;
//! * [`cb`] — cache banks with hit/miss behaviour and FR-FCFS HBM behind
//!   each memory controller;
//! * [`system`] — scheme assembly and the cycle-level simulation loop;
//! * [`metrics`], [`msg`] — execution/energy/EDP/latency metrics and
//!   packet tracking;
//! * [`obs`] — the system-side observability layer (metric registry,
//!   time series, step-phase spans, Chrome trace assembly);
//! * [`heatmap`] — the Figure 4 placement-congestion experiment;
//! * [`loadlat`] — reply-network load–latency curves (where the
//!   injection bottleneck saturates, and how far EIRs push the knee);
//! * [`svg`] — dependency-free SVG renderers for the design diagram and
//!   heat maps.
//!
//! # Quickstart
//!
//! ```no_run
//! use equinox_core::scheme::SchemeKind;
//! use equinox_core::system::{System, SystemConfig};
//! use equinox_traffic::{profile::benchmark, Workload};
//!
//! let workload = Workload::new(benchmark("kmeans").unwrap(), 0.1, 42);
//! let cfg = SystemConfig::new(SchemeKind::EquiNox, 8, workload);
//! let metrics = System::build(cfg).run();
//! println!("{} cycles, EDP {:.3e}", metrics.cycles, metrics.edp);
//! ```

pub mod cb;
pub mod design;
pub mod heatmap;
pub mod loadlat;
pub mod metrics;
pub mod msg;
pub mod ni;
pub mod obs;
pub mod scheme;
pub mod svg;
pub mod system;

pub use design::EquiNoxDesign;
pub use metrics::RunMetrics;
pub use msg::{LatencyBreakdown, MemOpKind, Message, PacketTracker};
pub use obs::ObsConfig;
pub use scheme::SchemeKind;
pub use system::{System, SystemConfig};
