//! Load–latency curves for the reply network.
//!
//! The classic NoC characterization: sweep the offered injection rate at
//! the CBs and measure average packet latency. The curve's knee is the
//! saturation point of the few-to-many injection path — the quantity
//! EquiNox's EIRs push to the right. Used by the `load_latency` example
//! and the saturation validation tests.

use equinox_noc::config::NocConfig;
use equinox_noc::flit::{Flit, MessageClass};
use equinox_noc::link::LinkKind;
use equinox_noc::network::{InjectorId, Network};
use equinox_phys::Coord;
use equinox_placement::Placement;
use equinox_exec::Rng;
use std::collections::HashMap;

use crate::design::EquiNoxDesign;
use crate::msg::{MemOpKind, PacketTracker};
use crate::ni::{InjectPolicy, InjectionQueue};

/// One measured point of the curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Offered load, reply packets per CB per cycle.
    pub offered: f64,
    /// Accepted throughput, reply flits per cycle (whole network).
    pub throughput: f64,
    /// Mean packet latency in cycles (creation to tail ejection).
    pub latency: f64,
}

/// The CB-side injection structure to sweep.
#[derive(Debug, Clone)]
pub enum ReplySide {
    /// One local injection buffer per CB (the separate-network baseline).
    Local,
    /// An EquiNox design: local buffer + one buffer per EIR with the
    /// Buffer Selection 1 policy.
    Equinox(EquiNoxDesign),
}

/// Sweeps `offered` reply loads (packets per CB per cycle) on the reply
/// network alone and returns one [`LoadPoint`] per rate. Each rate is an
/// independent simulation, so the sweep fans out on the
/// [`equinox_exec`] worker pool; results come back in input order and
/// every point is a pure function of `(rate, seed)`, so the curve is
/// identical for any worker count. Deterministic in `seed`.
///
/// Legacy entry point: auditing and activity gating come from the
/// `EQUINOX_AUDIT` / `EQUINOX_NO_ACTIVITY_GATE` environment shims. The
/// drivers call [`load_latency_curve_cfg`] with values from the resolved
/// experiment spec instead.
///
/// # Panics
///
/// Panics if `placement` is not square or an offered rate is not in
/// `(0, 1]`.
pub fn load_latency_curve(
    placement: &Placement,
    side: &ReplySide,
    offered: &[f64],
    cycles: u64,
    seed: u64,
) -> Vec<LoadPoint> {
    load_latency_curve_cfg(
        placement,
        side,
        offered,
        cycles,
        seed,
        equinox_noc::audit_from_env(),
        equinox_noc::config::activity_gate_from_env(),
    )
}

/// [`load_latency_curve`] with auditing and activity gating passed
/// explicitly instead of read from the process environment. The chosen
/// values ride into every fanned-out worker by value, so the curve is
/// independent of worker-thread environment state.
///
/// # Panics
///
/// Panics if `placement` is not square or an offered rate is not in
/// `(0, 1]`.
#[allow(clippy::too_many_arguments)]
pub fn load_latency_curve_cfg(
    placement: &Placement,
    side: &ReplySide,
    offered: &[f64],
    cycles: u64,
    seed: u64,
    audit: Option<equinox_noc::AuditConfig>,
    activity_gate: bool,
) -> Vec<LoadPoint> {
    assert_eq!(placement.width, placement.height, "square meshes only");
    for &rate in offered {
        assert!(rate > 0.0 && rate <= 1.0, "offered rate {rate} out of (0,1]");
    }
    equinox_exec::par_map(offered.to_vec(), |_, rate| {
        measure(placement, side, rate, cycles, seed, audit.clone(), activity_gate)
    })
}

fn measure(
    placement: &Placement,
    side: &ReplySide,
    offered: f64,
    cycles: u64,
    seed: u64,
    audit: Option<equinox_noc::AuditConfig>,
    activity_gate: bool,
) -> LoadPoint {
    let n = placement.width;
    let mut cfg = NocConfig::mesh(n);
    cfg.activity_gate = activity_gate;
    let mut net = Network::mesh(cfg);
    if let Some(acfg) = audit {
        net.enable_audit(acfg);
    }
    let mut tracker = PacketTracker::new();
    let mut rng = Rng::seed_from_u64(seed);
    let pes: Vec<Coord> = placement.pe_tiles().collect();

    // Build the CB-side NIs.
    let mut nis: Vec<InjectionQueue> = placement
        .cbs
        .iter()
        .enumerate()
        .map(|(ci, &cb)| {
            let policy = match side {
                ReplySide::Local => InjectPolicy::Local { net: 0 },
                ReplySide::Equinox(design) => {
                    let eirs: Vec<(Coord, InjectorId)> = design.selection.groups[ci]
                        .iter()
                        .map(|&e| (e, net.add_injection_port(e, 1, LinkKind::Interposer)))
                        .collect();
                    InjectPolicy::Equinox {
                        net: 0,
                        local: net.local_injector(cb),
                        eirs,
                        rr: 0,
                    }
                }
            };
            InjectionQueue::new(cb, 16, policy)
        })
        .collect();

    let warmup = cycles / 5;
    let mut done_lat: Vec<u64> = Vec::new();
    let mut ejected_flits = 0u64;
    let mut created: HashMap<u64, u64> = HashMap::new();
    let mut nets = vec![net];
    for t in 0..(cycles + warmup) {
        for (ci, &cb) in placement.cbs.iter().enumerate() {
            if nis[ci].can_accept() && rng.random::<f64>() < offered {
                let dst = pes[rng.random_range(0..pes.len())];
                let msg = tracker.create(cb, dst, MessageClass::Reply, MemOpKind::Read, 0, t);
                created.insert(msg.id, t);
                nis[ci].push(msg);
            }
            nis[ci].tick(&mut nets, &mut tracker, t);
        }
        nets[0].step();
        for &pe in &pes {
            while let Some(f) = sink(&mut nets[0], pe) {
                if t >= warmup {
                    ejected_flits += 1;
                }
                if f.is_tail() {
                    if let Some(&c) = created.get(&f.pkt.0) {
                        if c >= warmup {
                            done_lat.push(t - c);
                        }
                    }
                }
            }
        }
    }
    let latency = if done_lat.is_empty() {
        f64::INFINITY
    } else {
        done_lat.iter().sum::<u64>() as f64 / done_lat.len() as f64
    };
    LoadPoint {
        offered,
        throughput: ejected_flits as f64 / cycles as f64,
        latency,
    }
}

fn sink(net: &mut Network, pe: Coord) -> Option<Flit> {
    net.pop_ejected_node(pe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use equinox_placement::Placement;

    #[test]
    fn latency_grows_with_load() {
        let p = Placement::diamond(8, 8, 8);
        let pts = load_latency_curve(&p, &ReplySide::Local, &[0.05, 0.5], 3_000, 1);
        assert!(pts[0].latency < pts[1].latency, "{pts:?}");
        assert!(pts[1].throughput > pts[0].throughput);
    }

    #[test]
    fn equinox_extends_saturation_throughput() {
        let design = EquiNoxDesign::quick(8, 8);
        let base = load_latency_curve(
            &design.placement,
            &ReplySide::Local,
            &[1.0],
            4_000,
            2,
        );
        let eq = load_latency_curve(
            &design.placement,
            &ReplySide::Equinox(design.clone()),
            &[1.0],
            4_000,
            2,
        );
        assert!(
            eq[0].throughput > 1.4 * base[0].throughput,
            "EquiNox {} vs local {} flits/cycle",
            eq[0].throughput,
            base[0].throughput
        );
    }

    #[test]
    #[should_panic(expected = "out of (0,1]")]
    fn rejects_bad_rates() {
        let p = Placement::diamond(8, 8, 8);
        let _ = load_latency_curve(&p, &ReplySide::Local, &[1.5], 100, 1);
    }
}
