//! Load–latency curves for the reply network.
//!
//! The classic NoC characterization: sweep the offered injection rate at
//! the CBs and measure average packet latency. The curve's knee is the
//! saturation point of the few-to-many injection path — the quantity
//! EquiNox's EIRs push to the right. Used by the `load_latency` example
//! and the saturation validation tests.

use equinox_noc::config::NocConfig;
use equinox_noc::flit::{Flit, MessageClass};
use equinox_noc::link::LinkKind;
use equinox_noc::network::{InjectorId, Network};
use equinox_phys::Coord;
use equinox_placement::Placement;
use equinox_exec::Rng;
use std::collections::HashMap;

use crate::design::EquiNoxDesign;
use crate::msg::{MemOpKind, PacketTracker};
use crate::ni::{InjectPolicy, InjectionQueue};

/// One measured point of the curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Offered load, reply packets per CB per cycle.
    pub offered: f64,
    /// Accepted throughput, reply flits per cycle (whole network).
    pub throughput: f64,
    /// Mean packet latency in cycles (creation to tail ejection).
    pub latency: f64,
}

/// The CB-side injection structure to sweep.
#[derive(Debug, Clone)]
pub enum ReplySide {
    /// One local injection buffer per CB (the separate-network baseline).
    Local,
    /// An EquiNox design: local buffer + one buffer per EIR with the
    /// Buffer Selection 1 policy.
    Equinox(EquiNoxDesign),
}

/// Sweeps `offered` reply loads (packets per CB per cycle) on the reply
/// network alone and returns one [`LoadPoint`] per rate. Each rate is an
/// independent simulation, so the sweep fans out on the
/// [`equinox_exec`] worker pool; results come back in input order and
/// every point is a pure function of `(rate, seed)`, so the curve is
/// identical for any worker count. Deterministic in `seed`.
///
/// Legacy entry point: auditing and activity gating come from the
/// `EQUINOX_AUDIT` / `EQUINOX_NO_ACTIVITY_GATE` environment shims. The
/// drivers call [`load_latency_curve_cfg`] with values from the resolved
/// experiment spec instead.
///
/// # Panics
///
/// Panics if `placement` is not square or an offered rate is not in
/// `(0, 1]`.
pub fn load_latency_curve(
    placement: &Placement,
    side: &ReplySide,
    offered: &[f64],
    cycles: u64,
    seed: u64,
) -> Vec<LoadPoint> {
    load_latency_curve_cfg(
        placement,
        side,
        offered,
        cycles,
        seed,
        equinox_noc::audit_from_env(),
        equinox_noc::config::activity_gate_from_env(),
    )
}

/// [`load_latency_curve`] with auditing and activity gating passed
/// explicitly instead of read from the process environment. The chosen
/// values ride into every fanned-out worker by value, so the curve is
/// independent of worker-thread environment state.
///
/// # Panics
///
/// Panics if `placement` is not square or an offered rate is not in
/// `(0, 1]`.
#[allow(clippy::too_many_arguments)]
pub fn load_latency_curve_cfg(
    placement: &Placement,
    side: &ReplySide,
    offered: &[f64],
    cycles: u64,
    seed: u64,
    audit: Option<equinox_noc::AuditConfig>,
    activity_gate: bool,
) -> Vec<LoadPoint> {
    assert_eq!(placement.width, placement.height, "square meshes only");
    for &rate in offered {
        assert!(rate > 0.0 && rate <= 1.0, "offered rate {rate} out of (0,1]");
    }
    equinox_exec::par_map(offered.to_vec(), |_, rate| {
        measure(placement, side, rate, cycles, seed, audit.clone(), activity_gate, None)
    })
}

/// [`load_latency_curve_cfg`] with a content-addressed warm-state cache:
/// each point's warm-up phase is snapshotted into `checkpoint_dir` (keyed
/// by placement, reply side, rate, seed, cycle budget and knobs) and
/// restored on later invocations, skipping the warm-up simulation
/// entirely. Sound because the simulation is bit-deterministic: the
/// restored state is byte-identical to the state a straight-through run
/// reaches at the warm-up boundary, so the measured phase — and the
/// returned curve — is bit-identical to [`load_latency_curve_cfg`]'s. A
/// corrupt or mismatched cache entry is ignored (the point runs cold and
/// rewrites it).
///
/// # Panics
///
/// Panics if `placement` is not square or an offered rate is not in
/// `(0, 1]`.
#[allow(clippy::too_many_arguments)]
pub fn load_latency_curve_checkpointed(
    placement: &Placement,
    side: &ReplySide,
    offered: &[f64],
    cycles: u64,
    seed: u64,
    audit: Option<equinox_noc::AuditConfig>,
    activity_gate: bool,
    checkpoint_dir: &str,
) -> Vec<LoadPoint> {
    assert_eq!(placement.width, placement.height, "square meshes only");
    for &rate in offered {
        assert!(rate > 0.0 && rate <= 1.0, "offered rate {rate} out of (0,1]");
    }
    let cache = equinox_snap::CheckpointCache::new(checkpoint_dir);
    equinox_exec::par_map(offered.to_vec(), |_, rate| {
        measure(
            placement,
            side,
            rate,
            cycles,
            seed,
            audit.clone(),
            activity_gate,
            Some(&cache),
        )
    })
}

/// Section tags of a load-latency warm checkpoint.
mod warm_tags {
    pub const NET: u32 = 1;
    pub const NIS: u32 = 2;
    pub const TRACKER: u32 = 3;
    pub const RNG: u32 = 4;
    pub const CREATED: u32 = 5;
}

/// Cache key for one measured point's warm state. Everything the warm
/// phase's evolution depends on goes in: the placement, the reply-side
/// structure (EIR groups for EquiNox), the offered rate (injection draws
/// compare against it every cycle, so warm state is rate-dependent), the
/// seed, the warm-up length and the audit/gating knobs.
fn warm_key(
    placement: &Placement,
    side: &ReplySide,
    offered: f64,
    cycles: u64,
    seed: u64,
    audit: &Option<equinox_noc::AuditConfig>,
    activity_gate: bool,
) -> u64 {
    let mut e = equinox_snap::Enc::new();
    e.put_u16(placement.width);
    e.put_u16(placement.height);
    e.put_usize(placement.cbs.len());
    for &cb in &placement.cbs {
        e.put_u16(cb.x);
        e.put_u16(cb.y);
    }
    match side {
        ReplySide::Local => e.put_u8(0),
        ReplySide::Equinox(design) => {
            e.put_u8(1);
            e.put_usize(design.selection.groups.len());
            for g in &design.selection.groups {
                e.put_usize(g.len());
                for &eir in g {
                    e.put_u16(eir.x);
                    e.put_u16(eir.y);
                }
            }
        }
    }
    e.put_f64(offered);
    e.put_u64(cycles);
    e.put_u64(seed);
    match audit {
        Some(a) => {
            e.put_u8(1);
            e.put_u64(a.check_interval);
            e.put_u64(a.watchdog_window);
            e.put_bool(a.panic_on_violation);
        }
        None => e.put_u8(0),
    }
    e.put_bool(activity_gate);
    equinox_snap::fnv1a(&e.into_bytes())
}

/// Serializes the warm-boundary state of one measured point.
fn warm_snapshot(
    net: &Network,
    nis: &[InjectionQueue],
    tracker: &PacketTracker,
    rng: &Rng,
    created: &HashMap<u64, u64>,
) -> Vec<u8> {
    use equinox_snap::{Enc, Snap};
    let mut ne = Enc::new();
    net.snapshot_state(&mut ne);
    let mut qe = Enc::new();
    qe.put_usize(nis.len());
    for ni in nis {
        ni.snap_state(&mut qe);
    }
    let mut te = Enc::new();
    tracker.snap(&mut te);
    let mut re = Enc::new();
    rng.snap(&mut re);
    let mut ce = Enc::new();
    let mut pairs: Vec<(u64, u64)> = created.iter().map(|(&k, &v)| (k, v)).collect();
    pairs.sort_unstable();
    pairs.snap(&mut ce);
    equinox_snap::write_snapshot(&[
        (warm_tags::NET, ne.into_bytes()),
        (warm_tags::NIS, qe.into_bytes()),
        (warm_tags::TRACKER, te.into_bytes()),
        (warm_tags::RNG, re.into_bytes()),
        (warm_tags::CREATED, ce.into_bytes()),
    ])
}

/// Restores a [`warm_snapshot`] into a freshly-built point simulation.
fn warm_restore(
    bytes: &[u8],
    nets: &mut [Network],
    nis: &mut [InjectionQueue],
) -> Result<(PacketTracker, Rng, HashMap<u64, u64>), equinox_snap::SnapError> {
    use equinox_snap::{read_snapshot, section, Dec, Snap, SnapError};
    let sections = read_snapshot(bytes)?;
    let mut d = Dec::new(section(&sections, warm_tags::NET)?);
    nets[0].restore_state(&mut d)?;
    d.finish()?;
    let mut d = Dec::new(section(&sections, warm_tags::NIS)?);
    if d.usize()? != nis.len() {
        return Err(SnapError::BadValue("warm checkpoint NI count"));
    }
    for ni in nis.iter_mut() {
        ni.restore_state(&mut d, nets)?;
    }
    d.finish()?;
    let mut d = Dec::new(section(&sections, warm_tags::TRACKER)?);
    let tracker = PacketTracker::restore(&mut d)?;
    d.finish()?;
    let mut d = Dec::new(section(&sections, warm_tags::RNG)?);
    let rng = Rng::restore(&mut d)?;
    d.finish()?;
    let mut d = Dec::new(section(&sections, warm_tags::CREATED)?);
    let pairs: Vec<(u64, u64)> = Vec::restore(&mut d)?;
    d.finish()?;
    Ok((tracker, rng, pairs.into_iter().collect()))
}

#[allow(clippy::too_many_arguments)]
fn measure(
    placement: &Placement,
    side: &ReplySide,
    offered: f64,
    cycles: u64,
    seed: u64,
    audit: Option<equinox_noc::AuditConfig>,
    activity_gate: bool,
    cache: Option<&equinox_snap::CheckpointCache>,
) -> LoadPoint {
    let n = placement.width;
    let mut cfg = NocConfig::mesh(n);
    cfg.activity_gate = activity_gate;
    let mut net = Network::mesh(cfg);
    if let Some(acfg) = audit.clone() {
        net.enable_audit(acfg);
    }
    let mut tracker = PacketTracker::new();
    let mut rng = Rng::seed_from_u64(seed);
    let pes: Vec<Coord> = placement.pe_tiles().collect();

    // Build the CB-side NIs.
    let mut nis: Vec<InjectionQueue> = placement
        .cbs
        .iter()
        .enumerate()
        .map(|(ci, &cb)| {
            let policy = match side {
                ReplySide::Local => InjectPolicy::Local { net: 0 },
                ReplySide::Equinox(design) => {
                    let eirs: Vec<(Coord, InjectorId)> = design.selection.groups[ci]
                        .iter()
                        .map(|&e| (e, net.add_injection_port(e, 1, LinkKind::Interposer)))
                        .collect();
                    InjectPolicy::Equinox {
                        net: 0,
                        local: net.local_injector(cb),
                        eirs,
                        rr: 0,
                    }
                }
            };
            InjectionQueue::new(cb, 16, policy)
        })
        .collect();

    let warmup = cycles / 5;
    let mut done_lat: Vec<u64> = Vec::new();
    let mut ejected_flits = 0u64;
    let mut created: HashMap<u64, u64> = HashMap::new();
    let mut nets = vec![net];

    // Resume from a cached warm checkpoint when one matches; otherwise
    // run the warm-up cold and leave a checkpoint behind for next time.
    let key = cache.map(|_| warm_key(placement, side, offered, cycles, seed, &audit, activity_gate));
    let mut start = 0u64;
    if let (Some(c), Some(k)) = (cache, key) {
        if let Ok(Some(bytes)) = c.load("warm", k) {
            if let Ok((t, r, m)) = warm_restore(&bytes, &mut nets, &mut nis) {
                tracker = t;
                rng = r;
                created = m;
                start = warmup;
            }
        }
    }

    for t in start..(cycles + warmup) {
        if t == warmup && start == 0 {
            if let (Some(c), Some(k)) = (cache, key) {
                let _ = c.store("warm", k, &warm_snapshot(&nets[0], &nis, &tracker, &rng, &created));
            }
        }
        for (ci, &cb) in placement.cbs.iter().enumerate() {
            if nis[ci].can_accept() && rng.random::<f64>() < offered {
                let dst = pes[rng.random_range(0..pes.len())];
                let msg = tracker.create(cb, dst, MessageClass::Reply, MemOpKind::Read, 0, t);
                created.insert(msg.id, t);
                nis[ci].push(msg);
            }
            nis[ci].tick(&mut nets, &mut tracker, t);
        }
        nets[0].step();
        for &pe in &pes {
            while let Some(f) = sink(&mut nets[0], pe) {
                if t >= warmup {
                    ejected_flits += 1;
                }
                if f.is_tail() {
                    // Dropping the entry here bounds the map at the number
                    // of packets in flight instead of growing one entry
                    // per packet ever created.
                    if let Some(c) = created.remove(&f.pkt.0) {
                        if c >= warmup {
                            done_lat.push(t - c);
                        }
                    }
                }
            }
        }
    }
    let latency = if done_lat.is_empty() {
        f64::INFINITY
    } else {
        done_lat.iter().sum::<u64>() as f64 / done_lat.len() as f64
    };
    LoadPoint {
        offered,
        throughput: ejected_flits as f64 / cycles as f64,
        latency,
    }
}

fn sink(net: &mut Network, pe: Coord) -> Option<Flit> {
    net.pop_ejected_node(pe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use equinox_placement::Placement;

    #[test]
    fn latency_grows_with_load() {
        let p = Placement::diamond(8, 8, 8);
        let pts = load_latency_curve(&p, &ReplySide::Local, &[0.05, 0.5], 3_000, 1);
        assert!(pts[0].latency < pts[1].latency, "{pts:?}");
        assert!(pts[1].throughput > pts[0].throughput);
    }

    #[test]
    fn equinox_extends_saturation_throughput() {
        let design = EquiNoxDesign::quick(8, 8);
        let base = load_latency_curve(
            &design.placement,
            &ReplySide::Local,
            &[1.0],
            4_000,
            2,
        );
        let eq = load_latency_curve(
            &design.placement,
            &ReplySide::Equinox(design.clone()),
            &[1.0],
            4_000,
            2,
        );
        assert!(
            eq[0].throughput > 1.4 * base[0].throughput,
            "EquiNox {} vs local {} flits/cycle",
            eq[0].throughput,
            base[0].throughput
        );
    }

    #[test]
    fn checkpointed_curve_is_bit_identical_to_straight_through() {
        let dir = std::env::temp_dir().join(format!("eqsn_loadlat_{}", std::process::id()));
        let dir_s = dir.to_str().unwrap().to_string();
        let design = EquiNoxDesign::quick(8, 8);
        let rates = [0.1, 0.9];
        for side in [ReplySide::Local, ReplySide::Equinox(design.clone())] {
            let straight =
                load_latency_curve_cfg(&design.placement, &side, &rates, 2_500, 7, None, true);
            // Cold pass populates the warm cache; warm pass resumes from it.
            let cold = load_latency_curve_checkpointed(
                &design.placement, &side, &rates, 2_500, 7, None, true, &dir_s,
            );
            let warm = load_latency_curve_checkpointed(
                &design.placement, &side, &rates, 2_500, 7, None, true, &dir_s,
            );
            assert_eq!(straight, cold);
            assert_eq!(straight, warm);
        }
        let n_ckpts = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(n_ckpts, 4, "one warm checkpoint per (side, rate)");
        // Corrupt every checkpoint: points must fall back to cold runs
        // (rewriting the entries) and still produce the exact curve.
        for entry in std::fs::read_dir(&dir).unwrap() {
            std::fs::write(entry.unwrap().path(), b"garbage").unwrap();
        }
        let straight =
            load_latency_curve_cfg(&design.placement, &ReplySide::Local, &rates, 2_500, 7, None, true);
        let recovered = load_latency_curve_checkpointed(
            &design.placement, &ReplySide::Local, &rates, 2_500, 7, None, true, &dir_s,
        );
        assert_eq!(straight, recovered);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "out of (0,1]")]
    fn rejects_bad_rates() {
        let p = Placement::diamond(8, 8, 8);
        let _ = load_latency_curve(&p, &ReplySide::Local, &[1.5], 100, 1);
    }
}
