//! SVG rendering of designs and heat maps — dependency-free generators
//! for the paper's visual artifacts (Figure 4's heat maps and Figure 7's
//! EIR wiring diagram).

use crate::design::EquiNoxDesign;
use crate::heatmap::HeatMap;
use equinox_phys::Coord;
use std::fmt::Write;

/// Pixel size of one tile in the rendered grid.
const TILE: f64 = 48.0;
/// Margin around the grid.
const MARGIN: f64 = 24.0;

fn tile_center(c: Coord) -> (f64, f64) {
    (
        MARGIN + c.x as f64 * TILE + TILE / 2.0,
        MARGIN + c.y as f64 * TILE + TILE / 2.0,
    )
}

/// Colour wheel for CB groups (8 distinguishable hues).
fn group_color(i: usize) -> &'static str {
    const COLORS: [&str; 8] = [
        "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2", "#17becf",
    ];
    COLORS[i % COLORS.len()]
}

/// Renders the EIR wiring diagram (Figure 7): the mesh grid, CBs and EIRs
/// coloured by group, and the straight RDL wires between them.
///
/// The output is a self-contained SVG document.
pub fn design_svg(design: &EquiNoxDesign) -> String {
    let n = design.placement.width;
    let size = MARGIN * 2.0 + n as f64 * TILE;
    let mut s = String::new();
    let _ = write!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{size}" viewBox="0 0 {size} {size}">"#
    );
    let _ = write!(s, r#"<rect width="{size}" height="{size}" fill="white"/>"#);
    // Grid tiles.
    for y in 0..n {
        for x in 0..n {
            let (cx, cy) = tile_center(Coord::new(x, y));
            let _ = write!(
                s,
                r##"<rect x="{:.1}" y="{:.1}" width="{t}" height="{t}" fill="none" stroke="#ddd"/>"##,
                cx - TILE / 2.0,
                cy - TILE / 2.0,
                t = TILE
            );
        }
    }
    // RDL wires underneath the markers.
    for (i, group) in design.selection.groups.iter().enumerate() {
        let cb = design.placement.cbs[i];
        let (x1, y1) = tile_center(cb);
        for &e in group {
            let (x2, y2) = tile_center(e);
            let _ = write!(
                s,
                r#"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="{c}" stroke-width="2.5" stroke-opacity="0.75"/>"#,
                c = group_color(i)
            );
        }
    }
    // EIR markers.
    for (i, group) in design.selection.groups.iter().enumerate() {
        for &e in group {
            let (cx, cy) = tile_center(e);
            let _ = write!(
                s,
                r#"<circle cx="{cx:.1}" cy="{cy:.1}" r="9" fill="{c}" fill-opacity="0.85"/>"#,
                c = group_color(i)
            );
        }
    }
    // CB markers on top.
    for (i, &cb) in design.placement.cbs.iter().enumerate() {
        let (cx, cy) = tile_center(cb);
        let _ = write!(
            s,
            r#"<rect x="{:.1}" y="{:.1}" width="22" height="22" fill="{c}" stroke="black"/><text x="{cx:.1}" y="{:.1}" font-size="11" text-anchor="middle" fill="white">C{i}</text>"#,
            cx - 11.0,
            cy - 11.0,
            cy + 4.0,
            c = group_color(i)
        );
    }
    s.push_str("</svg>");
    s
}

/// Renders a heat map (Figure 4) as an SVG grid shaded by per-router
/// average traversal cycles, with CB tiles outlined.
pub fn heatmap_svg(map: &HeatMap, cbs: &[Coord]) -> String {
    let n = map.width;
    let size = MARGIN * 2.0 + n as f64 * TILE;
    let vsize = MARGIN * 2.0 + map.height as f64 * TILE;
    let max = map.heat.iter().cloned().fold(1.0_f64, f64::max);
    let mut s = String::new();
    let _ = write!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{vsize}" viewBox="0 0 {size} {vsize}">"#
    );
    let _ = write!(s, r#"<rect width="{size}" height="{vsize}" fill="white"/>"#);
    for y in 0..map.height {
        for x in 0..n {
            let c = Coord::new(x, y);
            let v = map.heat[c.to_index(n)];
            let heat = (v / max).clamp(0.0, 1.0);
            // Cold = dark blue, hot = bright yellow.
            let r = (255.0 * heat) as u8;
            let g = (220.0 * heat) as u8;
            let b = (96.0 + 64.0 * (1.0 - heat)) as u8;
            let (cx, cy) = tile_center(c);
            let _ = write!(
                s,
                r##"<rect x="{:.1}" y="{:.1}" width="{t}" height="{t}" fill="rgb({r},{g},{b})" stroke="#333" stroke-width="0.5"/>"##,
                cx - TILE / 2.0,
                cy - TILE / 2.0,
                t = TILE
            );
            let _ = write!(
                s,
                r#"<text x="{cx:.1}" y="{:.1}" font-size="10" text-anchor="middle" fill="{tc}">{v:.1}</text>"#,
                cy + 3.0,
                tc = if heat > 0.5 { "black" } else { "white" }
            );
        }
    }
    for &cb in cbs {
        let (cx, cy) = tile_center(cb);
        let _ = write!(
            s,
            r#"<rect x="{:.1}" y="{:.1}" width="{t}" height="{t}" fill="none" stroke="red" stroke-width="2.5"/>"#,
            cx - TILE / 2.0,
            cy - TILE / 2.0,
            t = TILE
        );
    }
    s.push_str("</svg>");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heatmap::placement_heatmap;
    use equinox_placement::Placement;

    #[test]
    fn design_svg_is_well_formed() {
        let d = EquiNoxDesign::quick(8, 8);
        let svg = design_svg(&d);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // One <line> per interposer link, one CB box per bank.
        assert_eq!(svg.matches("<line ").count(), d.num_links());
        assert_eq!(svg.matches(">C").count(), 8);
    }

    #[test]
    fn heatmap_svg_covers_every_tile() {
        let p = Placement::diamond(8, 8, 8);
        let h = placement_heatmap(&p, 0.5, 500, 1);
        let svg = heatmap_svg(&h, &p.cbs);
        assert!(svg.starts_with("<svg"));
        // 64 shaded tiles + 8 CB outlines + background.
        assert_eq!(svg.matches("<rect ").count(), 64 + 8 + 1);
        assert_eq!(svg.matches("<text ").count(), 64);
    }
}
