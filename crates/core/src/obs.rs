//! System-level observability: the glue between [`equinox_obs`]'s
//! generic building blocks and the full-system simulator.
//!
//! When [`crate::system::SystemConfig::obs`] is set, [`SystemObs`]
//! rides inside the [`System`](crate::system::System) as one
//! `Option<Box<_>>` (the audit pattern: one branch per event when off,
//! preallocated buffers when on) and records:
//!
//! * **Counters/histograms** — quiescence fast-forward jumps and cycles
//!   skipped, delivered request/reply packets, and end-to-end packet
//!   latency histograms (cycles, request vs reply) with
//!   p50/p95/p99 from bucket interpolation.
//! * **Time series** — every `interval` cycles: delivered-flit
//!   throughput, packets in flight, per-subnet link utilization, and
//!   per-CB-group EIR injection load.
//! * **Spans** — wall-clock timings of the phases of `System::step`
//!   (quiescence scan, CB+HBM tick, PE tick, NI tick, sink drain) plus
//!   one labeled row per subnet (`noc_step_net{i}`) for the NoC
//!   stepping phase — kept out of the deterministic artifact and
//!   exported only to the Chrome trace file. Per-subnet rows are
//!   recorded through a scratch-and-fold path when subnets step on
//!   parallel lanes, so the profiler stays single-writer.
//!
//! The `obs/v1` artifact block ([`SystemObs::to_json`]) contains only
//! cycle-derived data, so it is bit-identical across worker counts and
//! repeated runs; wall-clock span data goes only to the Perfetto
//! export ([`chrome_trace`]).

use crate::heatmap::HeatMap;
use crate::msg::PacketTracker;
use equinox_config::Json;
use equinox_noc::network::{InjectorId, Network};
use equinox_noc::trace::{TraceEvent, TraceKind};
use equinox_obs::{
    ChromeTrace, CounterId, HistogramId, Registry, SpanId, SpanProfiler, TimeSeries,
};

/// Observability configuration carried by
/// [`SystemConfig`](crate::system::SystemConfig).
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Cycles between time-series samples.
    pub interval: u64,
    /// Span-event ring capacity (wall-clock phase events retained for
    /// the Chrome trace export; aggregates are always kept).
    pub span_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            interval: 1_000,
            span_capacity: 32_768,
        }
    }
}

/// The serial instrumented phases of `System::step`, in registration
/// order. The per-subnet NoC stepping phase is *not* here: each subnet
/// gets its own labeled span row (`noc_step_net{i}`, see
/// [`SystemObs::end_noc_span`]) so the rows stay meaningful — and
/// race-free — when subnets step on parallel lanes.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Phase {
    /// Quiescence scan + fast-forward attempt.
    Quiescence = 0,
    /// Cache-bank ticks (includes the HBM stacks).
    CbTick,
    /// PE execution + request creation.
    PeTick,
    /// NI flit streaming into the networks.
    NiTick,
    /// Ejection-queue drains at PEs and CBs.
    SinkDrain,
}

const PHASE_NAMES: [&str; 5] = [
    "quiescence_scan",
    "cb_tick",
    "pe_tick",
    "ni_tick",
    "sink_drain",
];

/// Latency histogram bucket upper edges, in core cycles.
const LAT_BOUNDS: [u64; 11] = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384];

/// Cap on time-series rows regardless of `max_cycles / interval` (a
/// 2M-cycle run at interval 1 must not preallocate gigabytes).
const MAX_SAMPLES: usize = 65_536;

/// Per-run observability state owned by the `System`.
pub(crate) struct SystemObs {
    registry: Registry,
    series: TimeSeries,
    pub(crate) spans: SpanProfiler,
    phases: [SpanId; 5],
    /// One span row per network (`noc_step_net{i}`).
    noc_spans: Vec<SpanId>,
    c_ff_jumps: CounterId,
    c_ff_cycles: CounterId,
    c_req_pkts: CounterId,
    c_rep_pkts: CounterId,
    h_req_lat: HistogramId,
    h_rep_lat: HistogramId,
    /// EIR injector handles per CB group (EquiNox reply net only).
    eir_groups: Vec<Vec<InjectorId>>,
    next_sample: u64,
    last_cycle: u64,
    last_ejected: Vec<u64>,
    last_links: Vec<u64>,
    last_eir: Vec<u64>,
    last_ff: u64,
    /// Scratch row reused by every sample (allocation-free sampling).
    scratch: Vec<f64>,
}

impl SystemObs {
    /// Builds the observability state for a machine with the given
    /// networks and (possibly empty) per-CB EIR groups. Every buffer is
    /// sized here; recording allocates nothing.
    pub(crate) fn new(
        cfg: &ObsConfig,
        nets: &[Network],
        eir_groups: Vec<Vec<InjectorId>>,
        max_cycles: u64,
    ) -> Self {
        let interval = cfg.interval.max(1);
        let rows = ((max_cycles / interval) as usize).saturating_add(2).min(MAX_SAMPLES);
        let mut registry = Registry::new();
        let c_ff_jumps = registry.counter("ff_jumps");
        let c_ff_cycles = registry.counter("ff_cycles_skipped");
        let c_req_pkts = registry.counter("req_packets_delivered");
        let c_rep_pkts = registry.counter("rep_packets_delivered");
        let h_req_lat = registry.histogram("req_latency_cycles", &LAT_BOUNDS);
        let h_rep_lat = registry.histogram("rep_latency_cycles", &LAT_BOUNDS);

        // Column registration order is the row layout `sample` fills:
        // throughput, in-flight, ff, one per net, one per EIR group.
        let mut series = TimeSeries::new(interval, rows);
        let _ = series.add("throughput_flits_per_cycle");
        let _ = series.add("packets_in_flight");
        let _ = series.add("ff_cycles_skipped");
        for i in 0..nets.len() {
            let _ = series.add(&format!("link_utilization_net{i}"));
        }
        for g in 0..eir_groups.len() {
            let _ = series.add(&format!("eir_load_cb{g}"));
        }

        let mut spans = SpanProfiler::new(cfg.span_capacity);
        let phases: Vec<SpanId> = PHASE_NAMES.iter().map(|n| spans.register(n)).collect();
        let noc_spans: Vec<SpanId> = (0..nets.len())
            .map(|i| spans.register(&format!("noc_step_net{i}")))
            .collect();
        let width = nets.len() + eir_groups.len() + 3;
        let n_eir = eir_groups.len();
        SystemObs {
            registry,
            series,
            spans,
            phases: phases.try_into().expect("five phases"),
            noc_spans,
            c_ff_jumps,
            c_ff_cycles,
            c_req_pkts,
            c_rep_pkts,
            h_req_lat,
            h_rep_lat,
            eir_groups,
            next_sample: interval,
            last_cycle: 0,
            last_ejected: vec![0; nets.len()],
            last_links: vec![0; nets.len()],
            last_eir: vec![0; n_eir],
            last_ff: 0,
            scratch: Vec::with_capacity(width),
        }
    }

    /// The next cycle at which [`SystemObs::sample`] is due.
    #[inline]
    pub(crate) fn next_sample(&self) -> u64 {
        self.next_sample
    }

    /// `true` when the run's final cycle has data not yet captured in a
    /// time-series row (the terminal flush in `System::run`).
    #[inline]
    pub(crate) fn needs_final_sample(&self, cycle: u64) -> bool {
        self.series.is_empty() || cycle > self.last_cycle
    }

    /// Closes one `System::step` phase span opened at `start_ns`.
    #[inline]
    pub(crate) fn end_span(&mut self, phase: Phase, track: u64, start_ns: u64, cycle: u64) {
        let id = self.phases[phase as usize];
        self.spans.record(id, track, start_ns, cycle);
    }

    /// Closes subnet `net`'s NoC-step span opened at `start_ns`
    /// (serial stepping path).
    #[inline]
    pub(crate) fn end_noc_span(&mut self, net: usize, start_ns: u64, cycle: u64) {
        let id = self.noc_spans[net];
        self.spans.record(id, net as u64, start_ns, cycle);
    }

    /// Records subnet `net`'s NoC-step span from endpoints stamped on a
    /// worker lane (both relative to the profiler's epoch). The caller
    /// folds these in subnet-index order after the barrier, so the span
    /// profile stays single-writer no matter how many lanes stepped.
    #[inline]
    pub(crate) fn end_noc_span_closed(&mut self, net: usize, start_ns: u64, end_ns: u64, cycle: u64) {
        let id = self.noc_spans[net];
        self.spans.record_closed(id, net as u64, start_ns, end_ns, cycle);
    }

    /// Notes a quiescence fast-forward of `k` cycles.
    #[inline]
    pub(crate) fn note_fast_forward(&mut self, k: u64) {
        self.registry.inc(self.c_ff_jumps, 1);
        self.registry.inc(self.c_ff_cycles, k);
    }

    /// Records one delivered packet's end-to-end latency.
    #[inline]
    pub(crate) fn record_latency(&mut self, reply: bool, lat_cycles: u64) {
        if reply {
            self.registry.inc(self.c_rep_pkts, 1);
            self.registry.observe(self.h_rep_lat, lat_cycles);
        } else {
            self.registry.inc(self.c_req_pkts, 1);
            self.registry.observe(self.h_req_lat, lat_cycles);
        }
    }

    /// Records one time-series row at `cycle` and re-arms the sampling
    /// threshold. Deltas are measured against the previous sample, so
    /// quiescence fast-forwards simply stretch the row's cycle span
    /// (cycle-based sampling keeps the series deterministic).
    pub(crate) fn sample(&mut self, cycle: u64, nets: &[Network], tracker: &PacketTracker) {
        let dt = cycle.saturating_sub(self.last_cycle).max(1) as f64;
        self.scratch.clear();

        let mut ejected = 0u64;
        for (i, net) in nets.iter().enumerate() {
            let e = net.stats().ejected_flits;
            ejected += e - self.last_ejected[i];
            self.last_ejected[i] = e;
        }
        self.scratch.push(ejected as f64 / dt);
        self.scratch.push(tracker.in_flight() as f64);
        let ff = self.registry.counter_value(self.c_ff_cycles);
        self.scratch.push((ff - self.last_ff) as f64);
        self.last_ff = ff;
        for (i, net) in nets.iter().enumerate() {
            let total = net.stats().total_link_flits();
            let delta = total - self.last_links[i];
            self.last_links[i] = total;
            self.scratch
                .push(delta as f64 / (net.num_links().max(1) as f64 * dt));
        }
        for (g, group) in self.eir_groups.iter().enumerate() {
            let total: u64 = group.iter().map(|&id| nets[1].injector_flits(id)).sum();
            let delta = total - self.last_eir[g];
            self.last_eir[g] = total;
            self.scratch.push(delta as f64 / dt);
        }
        self.series.sample(cycle, &self.scratch);
        self.last_cycle = cycle;
        self.next_sample = cycle + self.series.interval();
    }

    /// Serializes the cycle-derived observability state: registry
    /// values, time-series rows and the sampling/delta cursors. Span
    /// (wall-clock) data is intentionally excluded — it never enters
    /// the deterministic artifact, so a restored run reproduces the
    /// `obs/v1` block bit-for-bit without it.
    pub(crate) fn snap_state(&self, e: &mut equinox_snap::Enc) {
        use equinox_snap::Snap;
        self.registry.snap_state(e);
        self.series.snap_state(e);
        e.put_u64(self.next_sample);
        e.put_u64(self.last_cycle);
        self.last_ejected.snap(e);
        self.last_links.snap(e);
        self.last_eir.snap(e);
        e.put_u64(self.last_ff);
    }

    /// Restores state written by [`SystemObs::snap_state`] into an
    /// identically-configured instance.
    pub(crate) fn restore_state(
        &mut self,
        d: &mut equinox_snap::Dec,
    ) -> Result<(), equinox_snap::SnapError> {
        use equinox_snap::{Snap, SnapError};
        self.registry.restore_state(d)?;
        self.series.restore_state(d)?;
        self.next_sample = d.u64()?;
        self.last_cycle = d.u64()?;
        let last_ejected: Vec<u64> = Vec::restore(d)?;
        let last_links: Vec<u64> = Vec::restore(d)?;
        let last_eir: Vec<u64> = Vec::restore(d)?;
        if last_ejected.len() != self.last_ejected.len()
            || last_links.len() != self.last_links.len()
            || last_eir.len() != self.last_eir.len()
        {
            return Err(SnapError::BadValue("obs delta cursor lengths"));
        }
        self.last_ejected = last_ejected;
        self.last_links = last_links;
        self.last_eir = last_eir;
        self.last_ff = d.u64()?;
        Ok(())
    }

    /// The `equinox.obs/v1` artifact block: counters, histograms with
    /// interpolated percentiles, the time series, and per-router heat
    /// grids — cycle-derived data only, bit-identical across worker
    /// counts.
    pub(crate) fn to_json(&self, nets: &[Network]) -> Json {
        let mut counters = Json::obj();
        for (name, v) in self.registry.counters() {
            counters = counters.with(name, v as f64);
        }
        let mut gauges = Json::obj();
        for (name, v) in self.registry.gauges() {
            gauges = gauges.with(name, v);
        }
        let mut hists = Json::obj();
        for (name, h) in self.registry.histograms() {
            hists = hists.with(
                name,
                Json::obj()
                    .with("bounds", h.bounds().iter().map(|&b| Json::Num(b as f64)).collect::<Vec<_>>())
                    .with("counts", h.counts().iter().map(|&c| Json::Num(c as f64)).collect::<Vec<_>>())
                    .with("count", h.count() as f64)
                    .with("min", h.min().unwrap_or(0) as f64)
                    .with("max", h.max().unwrap_or(0) as f64)
                    .with("mean", h.mean())
                    .with("p50", h.quantile(0.50))
                    .with("p95", h.quantile(0.95))
                    .with("p99", h.quantile(0.99)),
            );
        }
        let mut series = Json::obj().with(
            "cycle",
            self.series.cycles().iter().map(|&c| Json::Num(c as f64)).collect::<Vec<_>>(),
        );
        for (name, vals) in self.series.columns() {
            series = series.with(name, vals.iter().map(|&v| Json::Num(v)).collect::<Vec<_>>());
        }
        let heat: Vec<Json> = nets
            .iter()
            .enumerate()
            .map(|(i, net)| {
                let hm = HeatMap {
                    width: net.width(),
                    height: net.height(),
                    heat: net.stats().heat_map(),
                    variance: net.stats().heat_variance(),
                };
                hm.to_json().with("net", i as f64)
            })
            .collect();
        let mut link_scratch = Vec::new();
        let links: Vec<Json> = nets
            .iter()
            .enumerate()
            .map(|(i, net)| {
                net.link_flit_counts(&mut link_scratch);
                Json::obj()
                    .with("net", i as f64)
                    .with(
                        "flits",
                        link_scratch.iter().map(|&f| Json::Num(f as f64)).collect::<Vec<_>>(),
                    )
            })
            .collect();
        Json::obj()
            .with("schema", "equinox.obs/v1")
            .with("interval", self.series.interval() as f64)
            .with("samples", self.series.len() as f64)
            .with("samples_dropped", self.series.dropped() as f64)
            .with("counters", counters)
            .with("gauges", gauges)
            .with("histograms", hists)
            .with("series", series)
            .with("heat", heat)
            .with("links", links)
    }

    /// A one-screen human summary for stderr reports.
    pub(crate) fn summary(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.registry.counters() {
            out.push_str(&format!("  {name:24} {v}\n"));
        }
        for (name, h) in self.registry.histograms() {
            out.push_str(&format!(
                "  {name:24} n={} p50={:.0} p95={:.0} p99={:.0}\n",
                h.count(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99)
            ));
        }
        for (name, calls, total_ns) in self.spans.summary() {
            out.push_str(&format!(
                "  span {name:19} calls={calls} total={:.1}ms\n",
                total_ns as f64 / 1e6
            ));
        }
        out
    }
}

/// Assembles the Chrome trace-event JSON for one run: wall-clock phase
/// spans (when observability is armed) on pid 1, and per-flit NoC trace
/// events on pid 2 with `ts` = the simulated cycle (one "microsecond"
/// per cycle) and one thread per subnet.
pub(crate) fn chrome_trace(
    spans: Option<&SpanProfiler>,
    flit_traces: &[(usize, Vec<TraceEvent>)],
) -> String {
    let mut t = ChromeTrace::new();
    if let Some(sp) = spans {
        t.process_name(1, "System::step phases (wall clock)");
        for ev in sp.events() {
            t.complete(
                sp.name(ev.span),
                1,
                ev.track + 1,
                ev.start_ns as f64 / 1_000.0,
                ev.dur_ns as f64 / 1_000.0,
                &[("cycle", ev.cycle as f64)],
            );
        }
    }
    t.process_name(2, "NoC flit trace (ts = simulated cycle)");
    for &(net, ref events) in flit_traces {
        t.thread_name(2, net as u64 + 1, &format!("net{net}"));
        for ev in events {
            let name = match ev.kind {
                TraceKind::Inject => "inject",
                TraceKind::Hop => "hop",
                TraceKind::Eject => "eject",
            };
            t.instant(
                name,
                2,
                net as u64 + 1,
                ev.cycle as f64,
                &[
                    ("pkt", ev.pkt.0 as f64),
                    ("seq", ev.seq as f64),
                    ("router", ev.router as f64),
                ],
            );
        }
    }
    t.finish()
}
