//! System-level observability: the glue between [`equinox_obs`]'s
//! generic building blocks and the full-system simulator.
//!
//! When [`crate::system::SystemConfig::obs`] is set, [`SystemObs`]
//! rides inside the [`System`](crate::system::System) as one
//! `Option<Box<_>>` (the audit pattern: one branch per event when off,
//! preallocated buffers when on) and records:
//!
//! * **Counters/histograms** — quiescence fast-forward jumps and cycles
//!   skipped, delivered request/reply packets, and end-to-end packet
//!   latency histograms (cycles, request vs reply) with
//!   p50/p95/p99 from bucket interpolation.
//! * **Time series** — every `interval` cycles: delivered-flit
//!   throughput, packets in flight, per-subnet link utilization, and
//!   per-CB-group EIR injection load.
//! * **Spans** — wall-clock timings of the phases of `System::step`
//!   (quiescence scan, CB+HBM tick, PE tick, NI tick, sink drain) plus
//!   one labeled row per subnet (`noc_step_net{i}`) for the NoC
//!   stepping phase — kept out of the deterministic artifact and
//!   exported only to the Chrome trace file. Per-subnet rows are
//!   recorded through a scratch-and-fold path when subnets step on
//!   parallel lanes, so the profiler stays single-writer.
//!
//! The `obs/v1` artifact block ([`SystemObs::to_json`]) contains only
//! cycle-derived data, so it is bit-identical across worker counts and
//! repeated runs; wall-clock span data goes only to the Perfetto
//! export ([`chrome_trace`]).

use crate::heatmap::HeatMap;
use crate::msg::PacketTracker;
use equinox_config::Json;
use equinox_noc::network::{InjectorId, Network};
use equinox_noc::trace::{TraceEvent, TraceKind};
use equinox_obs::{
    ChromeTrace, CounterId, Histogram, HistogramId, NetCause, Registry, SpanId, SpanProfiler,
    StreamWriter, TimeSeries, CAUSE_NAMES, NET_CAUSE_NAMES, STALL_CLASSES,
};
use equinox_phys::Coord;

/// Observability configuration carried by
/// [`SystemConfig`](crate::system::SystemConfig).
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Cycles between time-series samples.
    pub interval: u64,
    /// Span-event ring capacity (wall-clock phase events retained for
    /// the Chrome trace export; aggregates are always kept).
    pub span_capacity: usize,
    /// Live-telemetry sink (`path` or `tcp:host:port`); empty = off.
    /// When set, one `obs.sample/v1` line-JSON frame goes out per
    /// sampling interval plus a terminal `obs.summary/v1` frame.
    pub stream: String,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            interval: 1_000,
            span_capacity: 32_768,
            stream: String::new(),
        }
    }
}

/// The serial instrumented phases of `System::step`, in registration
/// order. The per-subnet NoC stepping phase is *not* here: each subnet
/// gets its own labeled span row (`noc_step_net{i}`, see
/// [`SystemObs::end_noc_span`]) so the rows stay meaningful — and
/// race-free — when subnets step on parallel lanes.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Phase {
    /// Quiescence scan + fast-forward attempt.
    Quiescence = 0,
    /// Cache-bank ticks (includes the HBM stacks).
    CbTick,
    /// PE execution + request creation.
    PeTick,
    /// NI flit streaming into the networks.
    NiTick,
    /// Ejection-queue drains at PEs and CBs.
    SinkDrain,
}

const PHASE_NAMES: [&str; 5] = [
    "quiescence_scan",
    "cb_tick",
    "pe_tick",
    "ni_tick",
    "sink_drain",
];

/// Latency histogram bucket upper edges, in core cycles.
const LAT_BOUNDS: [u64; 11] = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384];

/// In-network stall causes in emission order (matches
/// [`equinox_obs::NET_CAUSE_NAMES`] indexing).
const NET_CAUSE_LIST: [NetCause; 4] = [
    NetCause::VcAlloc,
    NetCause::SwitchLoss,
    NetCause::CreditStarve,
    NetCause::EjectWait,
];

/// Cap on time-series rows regardless of `max_cycles / interval` (a
/// 2M-cycle run at interval 1 must not preallocate gigabytes).
const MAX_SAMPLES: usize = 65_536;

/// Per-run observability state owned by the `System`.
pub(crate) struct SystemObs {
    registry: Registry,
    series: TimeSeries,
    pub(crate) spans: SpanProfiler,
    phases: [SpanId; 5],
    /// One span row per network (`noc_step_net{i}`).
    noc_spans: Vec<SpanId>,
    c_ff_jumps: CounterId,
    c_ff_cycles: CounterId,
    c_req_pkts: CounterId,
    c_rep_pkts: CounterId,
    h_req_lat: HistogramId,
    h_rep_lat: HistogramId,
    /// EIR injector handles per CB group (EquiNox reply net only).
    eir_groups: Vec<Vec<InjectorId>>,
    next_sample: u64,
    last_cycle: u64,
    last_ejected: Vec<u64>,
    last_links: Vec<u64>,
    last_eir: Vec<u64>,
    last_ff: u64,
    /// Scratch row reused by every sample (allocation-free sampling).
    scratch: Vec<f64>,
    /// Original mesh side length (the coordinate space of
    /// `PacketRecord::src`), for the injection-wait heat grids.
    mesh_n: u16,
    /// Attribution (`obs/v2`): NI/EIR injection-queue wait, charged at
    /// delivery. Kept outside the registry so the `obs/v1` block stays
    /// byte-identical to pre-attribution builds. `[class]` = cycles.
    inj_wait_total: [u64; STALL_CLASSES],
    /// Per-class injection-wait distributions.
    h_inj_wait: [Histogram; STALL_CLASSES],
    /// Per-class injection-wait heat over source tiles (row-major
    /// `mesh_n × mesh_n`).
    inj_heat: [Vec<u64>; STALL_CLASSES],
    /// Live frame sink (wall-clock side effects only — never part of
    /// snapshots or deterministic artifacts; frame *contents* are
    /// cycle-derived).
    stream: Option<StreamWriter>,
    /// Frames emitted so far (the `seq` field of each frame).
    stream_seq: u64,
}

/// Sums one in-network cause over every armed subnet grid for `class`.
fn net_cause_total(nets: &[Network], class: usize, cause: NetCause) -> u64 {
    nets.iter()
        .filter_map(|n| n.stall_grid())
        .map(|g| g.class_total(class, cause))
        .sum()
}

impl SystemObs {
    /// Builds the observability state for a machine with the given
    /// networks and (possibly empty) per-CB EIR groups. Every buffer is
    /// sized here; recording allocates nothing.
    pub(crate) fn new(
        cfg: &ObsConfig,
        nets: &[Network],
        eir_groups: Vec<Vec<InjectorId>>,
        max_cycles: u64,
        mesh_n: u16,
    ) -> Self {
        let interval = cfg.interval.max(1);
        let rows = ((max_cycles / interval) as usize).saturating_add(2).min(MAX_SAMPLES);
        let mut registry = Registry::new();
        let c_ff_jumps = registry.counter("ff_jumps");
        let c_ff_cycles = registry.counter("ff_cycles_skipped");
        let c_req_pkts = registry.counter("req_packets_delivered");
        let c_rep_pkts = registry.counter("rep_packets_delivered");
        let h_req_lat = registry.histogram("req_latency_cycles", &LAT_BOUNDS);
        let h_rep_lat = registry.histogram("rep_latency_cycles", &LAT_BOUNDS);

        // Column registration order is the row layout `sample` fills:
        // throughput, in-flight, ff, one per net, one per EIR group.
        let mut series = TimeSeries::new(interval, rows);
        let _ = series.add("throughput_flits_per_cycle");
        let _ = series.add("packets_in_flight");
        let _ = series.add("ff_cycles_skipped");
        for i in 0..nets.len() {
            let _ = series.add(&format!("link_utilization_net{i}"));
        }
        for g in 0..eir_groups.len() {
            let _ = series.add(&format!("eir_load_cb{g}"));
        }

        let mut spans = SpanProfiler::new(cfg.span_capacity);
        let phases: Vec<SpanId> = PHASE_NAMES.iter().map(|n| spans.register(n)).collect();
        let noc_spans: Vec<SpanId> = (0..nets.len())
            .map(|i| spans.register(&format!("noc_step_net{i}")))
            .collect();
        let width = nets.len() + eir_groups.len() + 3;
        let n_eir = eir_groups.len();
        SystemObs {
            registry,
            series,
            spans,
            phases: phases.try_into().expect("five phases"),
            noc_spans,
            c_ff_jumps,
            c_ff_cycles,
            c_req_pkts,
            c_rep_pkts,
            h_req_lat,
            h_rep_lat,
            eir_groups,
            next_sample: interval,
            last_cycle: 0,
            last_ejected: vec![0; nets.len()],
            last_links: vec![0; nets.len()],
            last_eir: vec![0; n_eir],
            last_ff: 0,
            scratch: Vec::with_capacity(width),
            mesh_n,
            inj_wait_total: [0; STALL_CLASSES],
            h_inj_wait: [Histogram::new(&LAT_BOUNDS), Histogram::new(&LAT_BOUNDS)],
            inj_heat: [
                vec![0; mesh_n as usize * mesh_n as usize],
                vec![0; mesh_n as usize * mesh_n as usize],
            ],
            stream: (!cfg.stream.is_empty()).then(|| {
                StreamWriter::open(&cfg.stream).unwrap_or_else(|e| {
                    panic!("--obs-stream {}: cannot open sink: {e}", cfg.stream)
                })
            }),
            stream_seq: 0,
        }
    }

    /// The next cycle at which [`SystemObs::sample`] is due.
    #[inline]
    pub(crate) fn next_sample(&self) -> u64 {
        self.next_sample
    }

    /// `true` when the run's final cycle has data not yet captured in a
    /// time-series row (the terminal flush in `System::run`).
    #[inline]
    pub(crate) fn needs_final_sample(&self, cycle: u64) -> bool {
        self.series.is_empty() || cycle > self.last_cycle
    }

    /// Closes one `System::step` phase span opened at `start_ns`.
    #[inline]
    pub(crate) fn end_span(&mut self, phase: Phase, track: u64, start_ns: u64, cycle: u64) {
        let id = self.phases[phase as usize];
        self.spans.record(id, track, start_ns, cycle);
    }

    /// Closes subnet `net`'s NoC-step span opened at `start_ns`
    /// (serial stepping path).
    #[inline]
    pub(crate) fn end_noc_span(&mut self, net: usize, start_ns: u64, cycle: u64) {
        let id = self.noc_spans[net];
        self.spans.record(id, net as u64, start_ns, cycle);
    }

    /// Records subnet `net`'s NoC-step span from endpoints stamped on a
    /// worker lane (both relative to the profiler's epoch). The caller
    /// folds these in subnet-index order after the barrier, so the span
    /// profile stays single-writer no matter how many lanes stepped.
    #[inline]
    pub(crate) fn end_noc_span_closed(&mut self, net: usize, start_ns: u64, end_ns: u64, cycle: u64) {
        let id = self.noc_spans[net];
        self.spans.record_closed(id, net as u64, start_ns, end_ns, cycle);
    }

    /// Notes a quiescence fast-forward of `k` cycles.
    #[inline]
    pub(crate) fn note_fast_forward(&mut self, k: u64) {
        self.registry.inc(self.c_ff_jumps, 1);
        self.registry.inc(self.c_ff_cycles, k);
    }

    /// Records one delivered packet's end-to-end latency.
    #[inline]
    pub(crate) fn record_latency(&mut self, reply: bool, lat_cycles: u64) {
        if reply {
            self.registry.inc(self.c_rep_pkts, 1);
            self.registry.observe(self.h_rep_lat, lat_cycles);
        } else {
            self.registry.inc(self.c_req_pkts, 1);
            self.registry.observe(self.h_req_lat, lat_cycles);
        }
    }

    /// Charges one delivered packet's NI/EIR injection-queue wait
    /// (cycles from creation to its head flit entering a router) to the
    /// `inj_queue` cause: per-class total, distribution, and the source
    /// tile's heat cell.
    #[inline]
    pub(crate) fn record_inj_wait(&mut self, reply: bool, wait_cycles: u64, src: Coord) {
        let c = reply as usize;
        self.inj_wait_total[c] += wait_cycles;
        self.h_inj_wait[c].record(wait_cycles);
        // Sources live in original mesh coordinates; anything outside
        // (impossible today) would scramble the grid, so guard.
        if let Some(cell) = self.inj_heat[c].get_mut(src.to_index(self.mesh_n)) {
            *cell += wait_cycles;
        }
    }

    /// Records one time-series row at `cycle` and re-arms the sampling
    /// threshold. Deltas are measured against the previous sample, so
    /// quiescence fast-forwards simply stretch the row's cycle span
    /// (cycle-based sampling keeps the series deterministic).
    pub(crate) fn sample(&mut self, cycle: u64, nets: &[Network], tracker: &PacketTracker) {
        let dt = cycle.saturating_sub(self.last_cycle).max(1) as f64;
        self.scratch.clear();

        let mut ejected = 0u64;
        for (i, net) in nets.iter().enumerate() {
            let e = net.stats().ejected_flits;
            ejected += e - self.last_ejected[i];
            self.last_ejected[i] = e;
        }
        self.scratch.push(ejected as f64 / dt);
        self.scratch.push(tracker.in_flight() as f64);
        let ff = self.registry.counter_value(self.c_ff_cycles);
        self.scratch.push((ff - self.last_ff) as f64);
        self.last_ff = ff;
        for (i, net) in nets.iter().enumerate() {
            let total = net.stats().total_link_flits();
            let delta = total - self.last_links[i];
            self.last_links[i] = total;
            self.scratch
                .push(delta as f64 / (net.num_links().max(1) as f64 * dt));
        }
        for (g, group) in self.eir_groups.iter().enumerate() {
            let total: u64 = group.iter().map(|&id| nets[1].injector_flits(id)).sum();
            let delta = total - self.last_eir[g];
            self.last_eir[g] = total;
            self.scratch.push(delta as f64 / dt);
        }
        self.series.sample(cycle, &self.scratch);
        self.last_cycle = cycle;
        self.next_sample = cycle + self.series.interval();
        if self.stream.is_some() {
            self.emit_sample_frame(cycle, nets, tracker);
        }
    }

    /// Emits one `obs.sample/v1` line-JSON frame: the row just sampled
    /// plus cumulative delivery counts and aggregate stall-cause totals
    /// (cycle-derived only, so frames are byte-identical across
    /// `--sim-threads`).
    fn emit_sample_frame(&mut self, cycle: u64, nets: &[Network], tracker: &PacketTracker) {
        let frame = Json::obj()
            .with("schema", "obs.sample/v1")
            .with("seq", self.stream_seq as f64)
            .with("cycle", cycle as f64)
            .with("throughput_flits_per_cycle", self.scratch.first().copied().unwrap_or(0.0))
            .with("packets_in_flight", tracker.in_flight() as f64)
            .with("ff_cycles_skipped", self.registry.counter_value(self.c_ff_cycles) as f64)
            .with("req_delivered", self.registry.counter_value(self.c_req_pkts) as f64)
            .with("rep_delivered", self.registry.counter_value(self.c_rep_pkts) as f64)
            .with("stall", self.stall_totals_json(nets));
        self.stream_seq += 1;
        self.stream.as_mut().expect("stream armed").write_line(&frame.to_compact());
    }

    /// Emits the terminal `obs.summary/v1` frame (per-class latency
    /// breakdown) and flushes the sink. No-op without a stream.
    pub(crate) fn emit_summary_frame(&mut self, cycle: u64, nets: &[Network]) {
        if self.stream.is_none() {
            return;
        }
        let frame = Json::obj()
            .with("schema", "obs.summary/v1")
            .with("seq", self.stream_seq as f64)
            .with("cycle", cycle as f64)
            .with("req_delivered", self.registry.counter_value(self.c_req_pkts) as f64)
            .with("rep_delivered", self.registry.counter_value(self.c_rep_pkts) as f64)
            .with(
                "per_class",
                Json::obj()
                    .with("request", self.class_breakdown(0, nets))
                    .with("reply", self.class_breakdown(1, nets)),
            );
        self.stream_seq += 1;
        let w = self.stream.as_mut().expect("stream armed");
        w.write_line(&frame.to_compact());
        w.flush();
    }

    /// Cumulative stall-cycle totals, per cause, summed over classes and
    /// subnets (the aggregate view a live dashboard renders).
    fn stall_totals_json(&self, nets: &[Network]) -> Json {
        let mut out = Json::obj().with(
            "inj_queue",
            (self.inj_wait_total[0] + self.inj_wait_total[1]) as f64,
        );
        for cause in NET_CAUSE_LIST {
            let total: u64 = (0..STALL_CLASSES)
                .map(|c| net_cause_total(nets, c, cause))
                .sum();
            out = out.with(NET_CAUSE_NAMES[cause as usize], total as f64);
        }
        out
    }

    /// The per-class latency-breakdown row: every cause's cumulative
    /// cycles plus the serialization residual, which by construction
    /// makes the row sum to the class's measured end-to-end latency
    /// (exact on completed runs of same-clock schemes; see DESIGN.md).
    fn class_breakdown(&self, class: usize, nets: &[Network]) -> Json {
        let (delivered, e2e) = if class == 0 {
            (
                self.registry.counter_value(self.c_req_pkts),
                self.registry.histogram_ref(self.h_req_lat).sum(),
            )
        } else {
            (
                self.registry.counter_value(self.c_rep_pkts),
                self.registry.histogram_ref(self.h_rep_lat).sum(),
            )
        };
        let inj = self.inj_wait_total[class];
        let mut charged = inj;
        let mut out = Json::obj()
            .with("delivered", delivered as f64)
            .with("e2e_cycles", e2e as f64)
            .with("inj_queue", inj as f64);
        for cause in NET_CAUSE_LIST {
            let t = net_cause_total(nets, class, cause);
            charged += t;
            out = out.with(NET_CAUSE_NAMES[cause as usize], t as f64);
        }
        out.with("serialization", e2e.saturating_sub(charged) as f64)
    }

    /// Serializes the cycle-derived observability state: registry
    /// values, time-series rows and the sampling/delta cursors. Span
    /// (wall-clock) data is intentionally excluded — it never enters
    /// the deterministic artifact, so a restored run reproduces the
    /// `obs/v1` block bit-for-bit without it.
    pub(crate) fn snap_state(&self, e: &mut equinox_snap::Enc) {
        use equinox_snap::Snap;
        self.registry.snap_state(e);
        self.series.snap_state(e);
        e.put_u64(self.next_sample);
        e.put_u64(self.last_cycle);
        self.last_ejected.snap(e);
        self.last_links.snap(e);
        self.last_eir.snap(e);
        e.put_u64(self.last_ff);
        // Attribution state (the stream writer itself is wall-clock I/O
        // and stays out, like the spans; `stream_seq` is cycle-derived).
        for &v in &self.inj_wait_total {
            e.put_u64(v);
        }
        for h in &self.h_inj_wait {
            h.snap_state(e);
        }
        for grid in &self.inj_heat {
            grid.snap(e);
        }
        e.put_u64(self.stream_seq);
    }

    /// Restores state written by [`SystemObs::snap_state`] into an
    /// identically-configured instance.
    pub(crate) fn restore_state(
        &mut self,
        d: &mut equinox_snap::Dec,
    ) -> Result<(), equinox_snap::SnapError> {
        use equinox_snap::{Snap, SnapError};
        self.registry.restore_state(d)?;
        self.series.restore_state(d)?;
        self.next_sample = d.u64()?;
        self.last_cycle = d.u64()?;
        let last_ejected: Vec<u64> = Vec::restore(d)?;
        let last_links: Vec<u64> = Vec::restore(d)?;
        let last_eir: Vec<u64> = Vec::restore(d)?;
        if last_ejected.len() != self.last_ejected.len()
            || last_links.len() != self.last_links.len()
            || last_eir.len() != self.last_eir.len()
        {
            return Err(SnapError::BadValue("obs delta cursor lengths"));
        }
        self.last_ejected = last_ejected;
        self.last_links = last_links;
        self.last_eir = last_eir;
        self.last_ff = d.u64()?;
        for v in &mut self.inj_wait_total {
            *v = d.u64()?;
        }
        for h in &mut self.h_inj_wait {
            h.restore_state(d)?;
        }
        for grid in &mut self.inj_heat {
            let g: Vec<u64> = Vec::restore(d)?;
            if g.len() != grid.len() {
                return Err(SnapError::BadValue("inj heat grid shape"));
            }
            *grid = g;
        }
        self.stream_seq = d.u64()?;
        Ok(())
    }

    /// The `equinox.obs/v1` artifact block: counters, histograms with
    /// interpolated percentiles, the time series, and per-router heat
    /// grids — cycle-derived data only, bit-identical across worker
    /// counts.
    pub(crate) fn to_json(&self, nets: &[Network]) -> Json {
        let mut counters = Json::obj();
        for (name, v) in self.registry.counters() {
            counters = counters.with(name, v as f64);
        }
        let mut gauges = Json::obj();
        for (name, v) in self.registry.gauges() {
            gauges = gauges.with(name, v);
        }
        let mut hists = Json::obj();
        for (name, h) in self.registry.histograms() {
            hists = hists.with(name, hist_json(h));
        }
        let mut series = Json::obj().with(
            "cycle",
            self.series.cycles().iter().map(|&c| Json::Num(c as f64)).collect::<Vec<_>>(),
        );
        for (name, vals) in self.series.columns() {
            series = series.with(name, vals.iter().map(|&v| Json::Num(v)).collect::<Vec<_>>());
        }
        let heat: Vec<Json> = nets
            .iter()
            .enumerate()
            .map(|(i, net)| {
                let hm = HeatMap {
                    width: net.width(),
                    height: net.height(),
                    heat: net.stats().heat_map(),
                    variance: net.stats().heat_variance(),
                };
                hm.to_json().with("net", i as f64)
            })
            .collect();
        let mut link_scratch = Vec::new();
        let links: Vec<Json> = nets
            .iter()
            .enumerate()
            .map(|(i, net)| {
                net.link_flit_counts(&mut link_scratch);
                Json::obj()
                    .with("net", i as f64)
                    .with(
                        "flits",
                        link_scratch.iter().map(|&f| Json::Num(f as f64)).collect::<Vec<_>>(),
                    )
            })
            .collect();
        Json::obj()
            .with("schema", "equinox.obs/v1")
            .with("interval", self.series.interval() as f64)
            .with("samples", self.series.len() as f64)
            .with("samples_dropped", self.series.dropped() as f64)
            .with("counters", counters)
            .with("gauges", gauges)
            .with("histograms", hists)
            .with("series", series)
            .with("heat", heat)
            .with("links", links)
    }

    /// The `equinox.obs/v2` artifact block: the stall-cause attribution
    /// layer. Per-class latency-breakdown rows (each summing to the
    /// class's measured end-to-end latency), per-router × per-cause
    /// stall heat grids for every subnet, injection-wait distributions
    /// and per-source-tile injection-wait heat. Cycle-derived only —
    /// bit-identical across worker counts. Emitted *next to* the v1
    /// block, which stays byte-for-byte unchanged.
    pub(crate) fn to_json_v2(&self, nets: &[Network]) -> Json {
        let causes: Vec<Json> = CAUSE_NAMES.iter().map(|&c| Json::Str(c.into())).collect();
        let per_class = Json::obj()
            .with("request", self.class_breakdown(0, nets))
            .with("reply", self.class_breakdown(1, nets));
        let mut stall_heat = Vec::new();
        for (i, net) in nets.iter().enumerate() {
            let Some(g) = net.stall_grid() else { continue };
            for cause in NET_CAUSE_LIST {
                stall_heat.push(
                    Json::obj()
                        .with("net", i as f64)
                        .with("cause", NET_CAUSE_NAMES[cause as usize])
                        .with("width", net.width() as f64)
                        .with("height", net.height() as f64)
                        .with(
                            "heat",
                            g.heat(cause).map(|v| Json::Num(v as f64)).collect::<Vec<_>>(),
                        ),
                );
            }
        }
        let inj_hists = Json::obj()
            .with("request", hist_json(&self.h_inj_wait[0]))
            .with("reply", hist_json(&self.h_inj_wait[1]));
        let inj_heat: Vec<Json> = ["request", "reply"]
            .iter()
            .zip(&self.inj_heat)
            .map(|(&name, grid)| {
                Json::obj()
                    .with("class", name)
                    .with("width", self.mesh_n as f64)
                    .with("height", self.mesh_n as f64)
                    .with("heat", grid.iter().map(|&v| Json::Num(v as f64)).collect::<Vec<_>>())
            })
            .collect();
        Json::obj()
            .with("schema", "equinox.obs/v2")
            .with("causes", causes)
            .with("per_class", per_class)
            .with("stall_heat", stall_heat)
            .with("inj_wait_histograms", inj_hists)
            .with("inj_heat", inj_heat)
    }

    /// `(frames_written, write_errors)` of the live sink, when armed.
    pub(crate) fn stream_stats(&self) -> Option<(u64, u64)> {
        self.stream.as_ref().map(|s| (s.lines_written(), s.errors()))
    }

    /// A one-screen human summary for stderr reports.
    pub(crate) fn summary(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.registry.counters() {
            out.push_str(&format!("  {name:24} {v}\n"));
        }
        for (name, h) in self.registry.histograms() {
            out.push_str(&format!(
                "  {name:24} n={} p50={:.0} p95={:.0} p99={:.0}\n",
                h.count(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99)
            ));
        }
        for (name, calls, total_ns) in self.spans.summary() {
            out.push_str(&format!(
                "  span {name:19} calls={calls} total={:.1}ms\n",
                total_ns as f64 / 1e6
            ));
        }
        out
    }
}

/// One histogram's artifact emission (shared by the `obs/v1` and
/// `obs/v2` blocks — field order is part of the byte-identity contract).
fn hist_json(h: &Histogram) -> Json {
    Json::obj()
        .with("bounds", h.bounds().iter().map(|&b| Json::Num(b as f64)).collect::<Vec<_>>())
        .with("counts", h.counts().iter().map(|&c| Json::Num(c as f64)).collect::<Vec<_>>())
        .with("count", h.count() as f64)
        .with("min", h.min().unwrap_or(0) as f64)
        .with("max", h.max().unwrap_or(0) as f64)
        .with("mean", h.mean())
        .with("p50", h.quantile(0.50))
        .with("p95", h.quantile(0.95))
        .with("p99", h.quantile(0.99))
}

/// Assembles the Chrome trace-event JSON for one run: wall-clock phase
/// spans (when observability is armed) on pid 1, and per-flit NoC trace
/// events on pid 2 with `ts` = the simulated cycle (one "microsecond"
/// per cycle) and one thread per subnet.
pub(crate) fn chrome_trace(
    spans: Option<&SpanProfiler>,
    flit_traces: &[(usize, Vec<TraceEvent>)],
) -> String {
    let mut t = ChromeTrace::new();
    if let Some(sp) = spans {
        t.process_name(1, "System::step phases (wall clock)");
        for ev in sp.events() {
            t.complete(
                sp.name(ev.span),
                1,
                ev.track + 1,
                ev.start_ns as f64 / 1_000.0,
                ev.dur_ns as f64 / 1_000.0,
                &[("cycle", ev.cycle as f64)],
            );
        }
    }
    t.process_name(2, "NoC flit trace (ts = simulated cycle)");
    for &(net, ref events) in flit_traces {
        t.thread_name(2, net as u64 + 1, &format!("net{net}"));
        for ev in events {
            let name = match ev.kind {
                TraceKind::Inject => "inject",
                TraceKind::Hop => "hop",
                TraceKind::Eject => "eject",
            };
            t.instant(
                name,
                2,
                net as u64 + 1,
                ev.cycle as f64,
                &[
                    ("pkt", ev.pkt.0 as f64),
                    ("seq", ev.seq as f64),
                    ("router", ev.router as f64),
                ],
            );
        }
    }
    t.finish()
}
