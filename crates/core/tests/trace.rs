//! Regression tests for the flit-trace plumbing through the full
//! system: `SystemConfig::trace_capacity` must arm every network's ring
//! buffer, and a delivered packet must show the Inject → Hop* → Eject
//! lifecycle in the drained events.

use equinox_core::scheme::SchemeKind;
use equinox_core::system::{System, SystemConfig};
use equinox_noc::TraceKind;
use equinox_traffic::{profile::benchmark, Workload};

fn traced_system(trace_capacity: usize) -> System {
    let workload = Workload::new(benchmark("hotspot").unwrap(), 0.05, 42);
    let mut cfg = SystemConfig::new(SchemeKind::SeparateBase, 8, workload);
    cfg.max_cycles = 200_000;
    cfg.trace_capacity = trace_capacity;
    System::build(cfg)
}

#[test]
fn traced_run_shows_full_packet_lifecycles() {
    let mut sys = traced_system(1 << 20);
    let m = sys.run();
    assert!(m.completed, "stalled at cycle {}", m.cycles);
    let traces = sys.drain_traces();
    assert!(!traces.is_empty(), "tracing was armed but recorded nothing");

    // Pick a packet that survived ring eviction end-to-end: it must show
    // Inject, then at least one Hop, then Eject, in cycle order.
    let mut verified = 0usize;
    for (net, events) in &traces {
        let mut pkts: Vec<u64> = events
            .iter()
            .filter(|e| e.kind == TraceKind::Eject)
            .map(|e| e.pkt.0)
            .collect();
        pkts.dedup();
        for pkt in pkts.into_iter().take(8) {
            let life: Vec<_> = events.iter().filter(|e| e.pkt.0 == pkt).collect();
            let Some(first) = life.first() else { continue };
            if first.kind != TraceKind::Inject {
                continue; // head of this packet's life was evicted
            }
            let last = life.last().unwrap();
            assert_eq!(
                last.kind,
                TraceKind::Eject,
                "packet {pkt} on net {net} ends mid-flight"
            );
            assert!(
                life.iter().any(|e| e.kind == TraceKind::Hop),
                "packet {pkt} on net {net} never hopped"
            );
            assert!(
                life.windows(2).all(|w| w[0].cycle <= w[1].cycle),
                "packet {pkt} events out of cycle order"
            );
            assert!(first.cycle <= last.cycle);
            verified += 1;
        }
    }
    assert!(verified > 0, "no packet had a complete retained lifecycle");

    // Draining consumes the rings.
    assert!(sys.drain_traces().is_empty(), "second drain must be empty");
}

#[test]
fn untraced_run_records_nothing() {
    let mut sys = traced_system(0);
    let m = sys.run();
    assert!(m.completed);
    assert!(sys.drain_traces().is_empty(), "tracing was never armed");
    assert!(sys.obs_json().is_none(), "obs was never armed");
}

#[test]
fn chrome_export_is_valid_json_with_flit_events() {
    let mut sys = traced_system(1 << 16);
    let m = sys.run();
    assert!(m.completed);
    let doc = sys.export_chrome_trace();
    let parsed = equinox_config::parse_json(&doc).expect("valid Chrome trace JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(
        events.iter().any(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("i")
                && e.get("args").and_then(|a| a.get("pkt")).is_some()
        }),
        "no instant flit events in the export"
    );
}
