//! Steady-state allocation check for the whole machine.
//!
//! The noc crate proves `Network::step()` is allocation-free and the
//! sibling test in this crate covers `InjectionQueue::tick`; this file
//! extends the guarantee to a full `System::step()` at saturation — PEs
//! emitting requests, trackers recording packets, cache banks and HBM
//! channels scheduling, NIs streaming flits, and the activity-gated
//! stepping maintaining its active-set worklists (whose sorted-insert
//! lists are capacity-reserved at construction, so activation edges
//! never allocate).
//!
//! This file deliberately contains a single test: the counter is
//! process-global, and a concurrently running test would pollute it.

use equinox_core::{SchemeKind, System, SystemConfig};
use equinox_traffic::{profile::benchmark, Workload};
use std::alloc::{GlobalAlloc, Layout, System as SysAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SysAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SysAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SysAlloc.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn full_system_step_is_allocation_free_at_saturation() {
    // A memory-heavy profile with a large quota keeps every layer busy
    // for the whole test: request NIs backlogged, networks loaded,
    // CB/HBM queues full.
    let workload = Workload::new(benchmark("bfs").unwrap(), 2.0, 7);
    let mut cfg = SystemConfig::new(SchemeKind::EquiNox, 8, workload);
    cfg.audit = None;
    cfg.activity_gate = true;
    let mut sys = System::build(cfg);
    // The packet-record table grows for the lifetime of the run; reserve
    // it past any packet count this test can reach so its doubling never
    // lands inside the measured window.
    sys.reserve_packets(1 << 20);

    // Warm-up: queues, in-flight tables and eject buffers reach their
    // steady-state capacities here. The warm-up must span the profile's
    // phase changes — each shift in the traffic mix can set a new
    // high-water mark in a different queue, and the last one lands
    // around cycle 18k with this seed and scale.
    for _ in 0..19_000 {
        sys.step();
    }
    let flits_before: u64 = sys.networks().iter().map(|n| n.stats().ejected_flits).sum();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..2_000 {
        sys.step();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "System::step allocated {} times in the steady-state window",
        after - before
    );
    let flits_after: u64 = sys.networks().iter().map(|n| n.stats().ejected_flits).sum();
    assert!(
        flits_after - flits_before > 1_000,
        "window must carry real traffic (got {} flits)",
        flits_after - flits_before
    );
    let (outstanding, req_backlog, cb_inflight, rep_backlog) = sys.occupancy();
    assert!(
        outstanding + req_backlog + cb_inflight + rep_backlog > 0,
        "machine must still be loaded after the window"
    );
    drop(sys);

    // Same guarantee with the per-subnet phase fanned over the step
    // team (DA2Mesh: one request mesh + eight reply subnets on 4
    // lanes). The team's threads spawn inside `System::build`, task
    // dispatch reuses the preallocated epoch/condvar machinery, and
    // the per-subnet span scratch is sized at build — so the counter,
    // which sees *every* thread in the process, must stay flat across
    // the measured window here too.
    let workload = Workload::new(benchmark("bfs").unwrap(), 2.0, 7);
    let mut cfg = SystemConfig::new(SchemeKind::Da2Mesh, 8, workload);
    cfg.sim_threads = 4;
    let mut sys = System::build(cfg);
    assert_eq!(sys.sim_lanes(), 4, "team must actually be armed");
    sys.reserve_packets(1 << 20);
    for _ in 0..19_000 {
        sys.step();
    }
    let flits_before: u64 = sys.networks().iter().map(|n| n.stats().ejected_flits).sum();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..2_000 {
        sys.step();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "parallel System::step allocated {} times in the steady-state window",
        after - before
    );
    let flits_after: u64 = sys.networks().iter().map(|n| n.stats().ejected_flits).sum();
    assert!(
        flits_after - flits_before > 1_000,
        "parallel window must carry real traffic (got {} flits)",
        flits_after - flits_before
    );
}
