//! Steady-state allocation check for the NI injection hot path.
//!
//! The noc crate proves `Network::step()` is allocation-free; this file
//! extends the guarantee one layer up, through
//! `InjectionQueue::tick` with the EquiNox buffer-selection policy (whose
//! `choose` previously built a `Vec` of shortest-path EIRs per message)
//! and the flit streaming of in-flight packets (previously a
//! pre-materialized `Vec<Flit>` per message).
//!
//! This file deliberately contains a single test: the counter is
//! process-global, and a concurrently running test would pollute it.

use equinox_core::msg::{MemOpKind, Message, PacketTracker};
use equinox_core::ni::{InjectPolicy, InjectionQueue};
use equinox_noc::config::NocConfig;
use equinox_noc::flit::MessageClass;
use equinox_noc::link::LinkKind;
use equinox_noc::network::Network;
use equinox_phys::Coord;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn equinox_ni_tick_is_allocation_free_in_steady_state() {
    let n = 8u16;
    let mut nets = vec![Network::mesh(NocConfig::mesh(n))];
    let cb = Coord::new(3, 3);
    let eirs: Vec<(Coord, equinox_noc::InjectorId)> = [
        Coord::new(5, 3),
        Coord::new(3, 5),
        Coord::new(1, 3),
        Coord::new(3, 1),
    ]
    .into_iter()
    .map(|e| (e, nets[0].add_injection_port(e, 1, LinkKind::Interposer)))
    .collect();
    let local = nets[0].local_injector(cb);
    let mut ni = InjectionQueue::new(
        cb,
        1_024,
        InjectPolicy::Equinox {
            net: 0,
            local,
            eirs,
            rr: 0,
        },
    );

    // Pre-create every message (the tracker's record table grows on
    // `create`, which must stay outside the measured window) and park the
    // whole workload in the queue up front.
    let mut tracker = PacketTracker::new();
    let dests: Vec<Coord> = (0..(n as usize * n as usize))
        .map(|i| Coord::from_index(i, n))
        .filter(|&c| c != cb)
        .collect();
    let msgs: Vec<Message> = (0..800)
        .map(|i| {
            tracker.create(
                cb,
                dests[i % dests.len()],
                MessageClass::Reply,
                MemOpKind::Read,
                i as u64 * 64,
                0,
            )
        })
        .collect();
    for &m in &msgs {
        ni.push(m);
    }

    let mut drive = |ni: &mut InjectionQueue, nets: &mut Vec<Network>, from: u64, cycles: u64| {
        for t in from..from + cycles {
            ni.tick(nets, &mut tracker, t);
            nets[0].step();
            for &d in &dests {
                while nets[0].pop_ejected_node(d).is_some() {}
            }
        }
    };

    // Warm-up: the in-flight table, link queues and eject queues reach
    // their steady-state capacities here.
    drive(&mut ni, &mut nets, 0, 400);
    assert!(ni.backlog() > 0, "workload exhausted during warm-up");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    drive(&mut ni, &mut nets, 400, 400);
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "NI tick + network step allocated {} times in the steady-state window",
        after - before
    );
    assert!(ni.backlog() > 0, "window must not drain the workload");
    assert!(
        nets[0].stats().ejected_flits > 500,
        "window must carry real traffic (got {} flits)",
        nets[0].stats().ejected_flits
    );
}
