//! Energy breakdowns and derived figures of merit.


/// Energy of one scheme run, split as the paper plots it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Dynamic energy, joules.
    pub dynamic_j: f64,
    /// Leakage energy, joules.
    pub leakage_j: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.dynamic_j + self.leakage_j
    }

    /// Accumulates another breakdown (e.g. the request network's on top of
    /// the reply network's).
    pub fn add(&mut self, other: &EnergyBreakdown) {
        self.dynamic_j += other.dynamic_j;
        self.leakage_j += other.leakage_j;
    }
}

/// Energy-delay product in joule·seconds — the paper's headline combined
/// metric (Figure 9(c)).
///
/// ```
/// # use equinox_power::report::edp;
/// assert_eq!(edp(2.0, 3.0), 6.0);
/// ```
pub fn edp(energy_j: f64, delay_s: f64) -> f64 {
    energy_j * delay_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_accumulation() {
        let mut a = EnergyBreakdown {
            dynamic_j: 1.0,
            leakage_j: 0.5,
        };
        let b = EnergyBreakdown {
            dynamic_j: 2.0,
            leakage_j: 0.25,
        };
        a.add(&b);
        assert_eq!(a.total_j(), 3.75);
    }

    #[test]
    fn edp_combines_energy_and_delay() {
        // A scheme that halves delay at equal energy halves EDP.
        assert_eq!(edp(4.0, 1.0), 2.0 * edp(4.0, 0.5));
    }
}
