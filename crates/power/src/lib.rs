#![warn(missing_docs)]
//! `equinox-power` — NoC energy and area modelling in the style of DSENT.
//!
//! The paper feeds BookSim event counts into DSENT (extended with
//! interposer links, §5) and synthesizes new RTL for area. This crate
//! reproduces that flow with 28 nm-class coefficients:
//!
//! * [`energy`] — dynamic energy per event (buffer write/read, crossbar
//!   traversal, allocation, link flit × millimetre) scaled by flit width,
//!   plus area-proportional leakage;
//! * [`area`] — router area from port count, VC count, buffer depth and
//!   flit width (matrix-crossbar wiring scales with `(ports × bits)²`,
//!   which is why Interposer-CMesh's wide 10-port routers dominate
//!   Figure 11 and DA2Mesh's narrow subnets are cheap), plus NI buffers;
//! * [`report`] — energy breakdowns and energy-delay product.
//!
//! Absolute joules are not the point (our substrate is a simulator, not
//! the authors' synthesis flow); the *relative* energy and area between
//! schemes is what Figures 9(b), 9(c) and 11 need, and those ratios are
//! driven by event counts and structural parameters that we model exactly.

pub mod area;
pub mod energy;
pub mod report;

pub use area::{NiGeometry, RouterGeometry};
pub use energy::{ComponentEnergy, EnergyCoeffs, EnergyModel, EventCounts};
pub use report::{edp, EnergyBreakdown};
