//! Area model.
//!
//! Calibrated to 28 nm standard-cell synthesis (the paper's Design
//! Compiler flow, §5). The dominant term is the matrix crossbar, whose
//! wiring plane scales with `(ports × flit_bits)²` — both dimensions of
//! the wiring matrix grow with total port width. Buffers contribute
//! linearly in bits; allocators are small.


/// Structural description of one router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterGeometry {
    /// Paired ports (mesh 5; +1 per EIR input port; CMesh routers 10).
    pub ports: usize,
    /// Virtual channels per port.
    pub vcs: usize,
    /// Buffer depth per VC, in flits.
    pub buf_flits: usize,
    /// Flit width in bits.
    pub flit_bits: usize,
}

/// SRAM-equivalent area per buffer bit, µm².
const BUF_UM2_PER_BIT: f64 = 0.6;
/// Crossbar wiring pitch per bit-track, µm (area = (ports·bits·pitch)²).
const XBAR_PITCH_UM: f64 = 0.4;
/// Allocator/arbiter area per port·VC, µm².
const ALLOC_UM2_PER_PORT_VC: f64 = 600.0;
/// Fixed control overhead per router, µm².
const CONTROL_UM2: f64 = 2_000.0;

impl RouterGeometry {
    /// The paper's baseline reply-network router: 5 ports, 2 VCs,
    /// 5-flit (one packet) buffers, 128-bit flits.
    pub fn baseline() -> Self {
        RouterGeometry {
            ports: 5,
            vcs: 2,
            buf_flits: 5,
            flit_bits: 128,
        }
    }

    /// Total input buffering in bits.
    pub fn buffer_bits(&self) -> usize {
        self.ports * self.vcs * self.buf_flits * self.flit_bits
    }

    /// Router area in mm².
    ///
    /// ```
    /// # use equinox_power::area::RouterGeometry;
    /// let base = RouterGeometry::baseline().area_mm2();
    /// // A 6-port EIR router is bigger; a 16-bit subnet router is far
    /// // smaller (crossbar shrinks quadratically with width).
    /// let eir = RouterGeometry { ports: 6, ..RouterGeometry::baseline() };
    /// let narrow = RouterGeometry { flit_bits: 16, buf_flits: 40, vcs: 2, ports: 5 };
    /// assert!(eir.area_mm2() > base);
    /// assert!(narrow.area_mm2() < base / 2.0);
    /// ```
    pub fn area_mm2(&self) -> f64 {
        let buf = self.buffer_bits() as f64 * BUF_UM2_PER_BIT;
        // Matrix crossbar: both wiring dimensions grow with ports × width,
        // but datapaths wider than 128 bits are built as parallel 128-bit
        // bit slices (each slice its own wiring matrix), as real wide
        // routers are — otherwise a 256-bit 10-port CMesh router would be
        // charged a full square millimetre of monolithic matrix.
        let slice_bits = self.flit_bits.min(128);
        let slices = self.flit_bits.div_ceil(128).max(1);
        let side = self.ports as f64 * slice_bits as f64 * XBAR_PITCH_UM;
        let xbar = slices as f64 * side * side;
        let alloc = self.ports as f64 * self.vcs as f64 * ALLOC_UM2_PER_PORT_VC;
        (buf + xbar + alloc + CONTROL_UM2) * 1e-6
    }
}

/// Structural description of one network interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NiGeometry {
    /// Number of packet injection buffers (baseline NI: 1; EquiNox CB NI:
    /// 5 single-packet buffers, §4.4; MultiPort CB NI: 4).
    pub buffers: usize,
    /// Capacity of each buffer in flits.
    pub buf_flits: usize,
    /// Flit width in bits.
    pub flit_bits: usize,
}

impl NiGeometry {
    /// Baseline single-buffer NI for 5-flit packets at 128 bits.
    pub fn baseline() -> Self {
        NiGeometry {
            buffers: 1,
            buf_flits: 5,
            flit_bits: 128,
        }
    }

    /// NI area in mm² (buffers plus a demultiplexer/selector that grows
    /// with the buffer count — the Buffer Selector of Figure 8).
    pub fn area_mm2(&self) -> f64 {
        let bits = (self.buffers * self.buf_flits * self.flit_bits) as f64;
        let buf = bits * BUF_UM2_PER_BIT;
        let selector = if self.buffers > 1 {
            500.0 + 150.0 * self.buffers as f64
        } else {
            0.0
        };
        (buf + selector + 800.0) * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_router_area_in_sane_band() {
        let a = RouterGeometry::baseline().area_mm2();
        assert!(a > 0.02 && a < 0.3, "5-port 128b router = {a} mm²");
    }

    #[test]
    fn crossbar_quadratic_within_slice_linear_across() {
        let narrow = RouterGeometry {
            flit_bits: 64,
            ..RouterGeometry::baseline()
        };
        let base = RouterGeometry::baseline();
        // 64 -> 128 bits: same slice, quadratic growth (>2x).
        assert!(base.area_mm2() / narrow.area_mm2() > 2.0);
        // 128 -> 256 bits: two slices, ~2x growth, not 4x.
        let wide = RouterGeometry {
            flit_bits: 256,
            ..RouterGeometry::baseline()
        };
        let ratio = wide.area_mm2() / base.area_mm2();
        assert!(ratio > 1.6 && ratio < 2.6, "ratio {ratio}");
    }

    #[test]
    fn cmesh_router_is_much_larger() {
        // Interposer-CMesh routers: 2x ports of a basic router and 256-bit
        // links (§6.5) — they dwarf the baseline (2x slices x 4x matrix).
        let cmesh = RouterGeometry {
            ports: 10,
            vcs: 2,
            buf_flits: 3,
            flit_bits: 256,
        };
        assert!(cmesh.area_mm2() > 4.0 * RouterGeometry::baseline().area_mm2());
    }

    #[test]
    fn extra_port_costs_a_few_percent_at_network_scale() {
        // EquiNox adds 1 port to 24 of 64 routers: the network-level area
        // increase must be modest (the paper reports +4.6% vs
        // SeparateBase including NI changes).
        let base = RouterGeometry::baseline().area_mm2() * 64.0;
        let eir = RouterGeometry {
            ports: 6,
            ..RouterGeometry::baseline()
        };
        let equinox = RouterGeometry::baseline().area_mm2() * 40.0 + eir.area_mm2() * 24.0;
        let overhead = equinox / base - 1.0;
        assert!(overhead > 0.02 && overhead < 0.25, "overhead {overhead}");
    }

    #[test]
    fn ni_with_five_buffers_is_bigger_but_small() {
        let base = NiGeometry::baseline().area_mm2();
        let equinox = NiGeometry {
            buffers: 5,
            ..NiGeometry::baseline()
        };
        assert!(equinox.area_mm2() > base);
        assert!(equinox.area_mm2() < 10.0 * base);
    }

    #[test]
    fn buffer_bits_counts() {
        assert_eq!(RouterGeometry::baseline().buffer_bits(), 5 * 2 * 5 * 128);
    }
}
