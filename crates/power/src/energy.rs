//! Dynamic and leakage energy.
//!
//! Events are charged per flit, scaled linearly by flit width (charging
//! and discharging proportionally more bit-lines/wires), except the
//! crossbar whose traversal energy grows with `width × ports` (longer
//! wires in a wider matrix). Link energy is per flit per millimetre;
//! interposer (RDL) wires are slightly cheaper per millimetre than on-die
//! global wires thanks to their thick, low-resistance copper (§2.3 \[18\]).
//! Leakage is proportional to area and simulated time.


/// Per-event energy coefficients (pJ at 128-bit reference width, 28 nm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyCoeffs {
    /// Buffer write, pJ per 128-bit flit.
    pub buf_write_pj: f64,
    /// Buffer read, pJ per 128-bit flit.
    pub buf_read_pj: f64,
    /// Crossbar traversal, pJ per 128-bit flit through a 5-port switch.
    pub xbar_pj: f64,
    /// VC / switch allocation, pJ per grant.
    pub alloc_pj: f64,
    /// On-die link, pJ per 128-bit flit per millimetre.
    pub link_pj_per_mm: f64,
    /// Interposer RDL link, pJ per 128-bit flit per millimetre.
    pub rdl_pj_per_mm: f64,
    /// Leakage power density, W per mm² of NoC area.
    pub leak_w_per_mm2: f64,
}

impl Default for EnergyCoeffs {
    fn default() -> Self {
        EnergyCoeffs {
            buf_write_pj: 1.2,
            buf_read_pj: 0.9,
            xbar_pj: 1.5,
            alloc_pj: 0.15,
            link_pj_per_mm: 1.3,
            rdl_pj_per_mm: 1.05,
            leak_w_per_mm2: 0.05,
        }
    }
}

/// Event totals for one physical network, as extracted from the
/// simulator's `NetStats` by the system layer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EventCounts {
    /// Flits written to input buffers.
    pub buffer_writes: u64,
    /// Flits read from input buffers.
    pub buffer_reads: u64,
    /// Crossbar traversals.
    pub xbar_traversals: u64,
    /// Allocation grants.
    pub allocs: u64,
    /// Flit·millimetres over on-die links (mesh + NI).
    pub mesh_flit_mm: f64,
    /// Flit·millimetres over interposer links.
    pub rdl_flit_mm: f64,
    /// Flit width of this network, bits.
    pub flit_bits: u32,
    /// Average port count of traversed routers (for crossbar scaling).
    pub avg_ports: f64,
}

/// Computes energies from event counts, widths and areas.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyModel {
    /// The coefficient set in use.
    pub coeffs: EnergyCoeffs,
}

/// Dynamic energy split by component, joules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ComponentEnergy {
    /// Input-buffer writes + reads.
    pub buffers_j: f64,
    /// Crossbar traversals.
    pub xbar_j: f64,
    /// VC / switch allocation.
    pub alloc_j: f64,
    /// On-die wires (mesh + NI links).
    pub die_links_j: f64,
    /// Interposer RDL wires.
    pub rdl_links_j: f64,
}

impl ComponentEnergy {
    /// Sum of all components.
    pub fn total_j(&self) -> f64 {
        self.buffers_j + self.xbar_j + self.alloc_j + self.die_links_j + self.rdl_links_j
    }
}

impl EnergyModel {
    /// Dynamic energy split by component (sums to
    /// [`EnergyModel::dynamic_joules`]).
    pub fn dynamic_breakdown(&self, ev: &EventCounts) -> ComponentEnergy {
        let w = ev.flit_bits as f64 / 128.0;
        let p = if ev.avg_ports > 0.0 { ev.avg_ports / 5.0 } else { 1.0 };
        let c = &self.coeffs;
        ComponentEnergy {
            buffers_j: (ev.buffer_writes as f64 * c.buf_write_pj
                + ev.buffer_reads as f64 * c.buf_read_pj)
                * w
                * 1e-12,
            xbar_j: ev.xbar_traversals as f64 * c.xbar_pj * w * p * 1e-12,
            alloc_j: ev.allocs as f64 * c.alloc_pj * 1e-12,
            die_links_j: ev.mesh_flit_mm * c.link_pj_per_mm * w * 1e-12,
            rdl_links_j: ev.rdl_flit_mm * c.rdl_pj_per_mm * w * 1e-12,
        }
    }

    /// Dynamic energy of one network in joules.
    ///
    /// ```
    /// # use equinox_power::energy::{EnergyModel, EventCounts};
    /// let m = EnergyModel::default();
    /// let mut ev = EventCounts { buffer_writes: 1000, flit_bits: 128, avg_ports: 5.0, ..Default::default() };
    /// let narrow = EventCounts { flit_bits: 16, ..ev };
    /// assert!(m.dynamic_joules(&ev) > m.dynamic_joules(&narrow));
    /// ```
    pub fn dynamic_joules(&self, ev: &EventCounts) -> f64 {
        let w = ev.flit_bits as f64 / 128.0;
        let p = if ev.avg_ports > 0.0 { ev.avg_ports / 5.0 } else { 1.0 };
        let c = &self.coeffs;
        let pj = ev.buffer_writes as f64 * c.buf_write_pj * w
            + ev.buffer_reads as f64 * c.buf_read_pj * w
            + ev.xbar_traversals as f64 * c.xbar_pj * w * p
            + ev.allocs as f64 * c.alloc_pj
            + ev.mesh_flit_mm * c.link_pj_per_mm * w
            + ev.rdl_flit_mm * c.rdl_pj_per_mm * w;
        pj * 1e-12
    }

    /// Leakage energy in joules for `area_mm2` of NoC over `seconds`.
    pub fn leakage_joules(&self, area_mm2: f64, seconds: f64) -> f64 {
        self.coeffs.leak_w_per_mm2 * area_mm2 * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_events() -> EventCounts {
        EventCounts {
            buffer_writes: 10_000,
            buffer_reads: 10_000,
            xbar_traversals: 10_000,
            allocs: 2_500,
            mesh_flit_mm: 15_000.0,
            rdl_flit_mm: 0.0,
            flit_bits: 128,
            avg_ports: 5.0,
        }
    }

    #[test]
    fn energy_positive_and_width_scaled() {
        let m = EnergyModel::default();
        let e128 = m.dynamic_joules(&base_events());
        let mut ev = base_events();
        ev.flit_bits = 256;
        let e256 = m.dynamic_joules(&ev);
        assert!(e128 > 0.0);
        assert!(e256 > 1.8 * e128 && e256 < 2.2 * e128, "roughly linear in width");
    }

    #[test]
    fn rdl_cheaper_than_die_wire_per_mm() {
        let m = EnergyModel::default();
        let mut die = base_events();
        die.mesh_flit_mm = 1000.0;
        die.rdl_flit_mm = 0.0;
        let mut rdl = base_events();
        rdl.mesh_flit_mm = 0.0;
        rdl.rdl_flit_mm = 1000.0;
        assert!(m.dynamic_joules(&rdl) < m.dynamic_joules(&die));
    }

    #[test]
    fn leakage_proportional_to_area_and_time() {
        let m = EnergyModel::default();
        let a = m.leakage_joules(10.0, 1e-6);
        assert!((m.leakage_joules(20.0, 1e-6) / a - 2.0).abs() < 1e-9);
        assert!((m.leakage_joules(10.0, 2e-6) / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = EnergyModel::default();
        let ev = base_events();
        let b = m.dynamic_breakdown(&ev);
        assert!((b.total_j() - m.dynamic_joules(&ev)).abs() < 1e-18);
        assert!(b.buffers_j > 0.0 && b.xbar_j > 0.0 && b.die_links_j > 0.0);
    }

    #[test]
    fn zero_events_zero_energy() {
        let m = EnergyModel::default();
        assert_eq!(
            m.dynamic_joules(&EventCounts {
                flit_bits: 128,
                avg_ports: 5.0,
                ..Default::default()
            }),
            0.0
        );
    }

    #[test]
    fn more_ports_cost_more_crossbar_energy() {
        let m = EnergyModel::default();
        let mut ev = base_events();
        ev.buffer_writes = 0;
        ev.buffer_reads = 0;
        ev.allocs = 0;
        ev.mesh_flit_mm = 0.0;
        let e5 = m.dynamic_joules(&ev);
        ev.avg_ports = 10.0;
        assert!((m.dynamic_joules(&ev) / e5 - 2.0).abs() < 1e-9);
    }
}
