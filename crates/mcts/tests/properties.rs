//! Randomized (seeded, deterministic) tests for the EIR search: every
//! selection any search method produces satisfies the §3.2 constraints,
//! and the evaluation function behaves like a cost.

use equinox_mcts::eval::{evaluate, EvalWeights};
use equinox_mcts::problem::{octant, EirProblem};
use equinox_mcts::{ga, sa, tree};
use equinox_placement::select::best_nqueen_placement;

fn problem() -> EirProblem {
    EirProblem::new(best_nqueen_placement(8, 8, usize::MAX, 0))
}

fn check_selection(p: &EirProblem, sel: &equinox_mcts::problem::EirSelection) {
    assert_eq!(sel.groups.len(), p.placement.cbs.len());
    assert!(sel.is_exclusive(&p.placement));
    for (i, g) in sel.groups.iter().enumerate() {
        let cb = p.placement.cbs[i];
        let mut octs: Vec<_> = g.iter().map(|&e| octant(cb, e)).collect();
        octs.sort_by_key(|o| *o as u8);
        let before = octs.len();
        octs.dedup();
        assert_eq!(octs.len(), before, "octant reuse in group {i}");
        for &e in g {
            let d = cb.manhattan(e);
            assert!(d >= 2 && d <= p.max_hops, "EIR at {d} hops");
            assert!(cb.chebyshev(e) >= 2, "EIR inside own hot zone");
        }
    }
}

#[test]
fn random_completions_are_valid() {
    let p = problem();
    for seed in (0u64..5000).step_by(419) {
        let mut rng = EirProblem::rng(seed);
        let sel = p.random_completion(&[], &mut rng);
        check_selection(&p, &sel);
    }
}

#[test]
fn mcts_results_are_valid() {
    let p = problem();
    for seed in (0u64..100).step_by(9) {
        let r = tree::search(
            &p,
            &tree::MctsConfig {
                iterations: 60,
                seed,
                ..Default::default()
            },
        );
        check_selection(&p, &r.selection);
        assert!(r.eval.cost.is_finite());
    }
}

#[test]
fn parallel_mcts_results_are_valid() {
    let p = problem();
    for seed in (0u64..100).step_by(24) {
        let r = tree::search_parallel(
            &p,
            &tree::MctsConfig {
                iterations: 60,
                seed,
                ..Default::default()
            },
            4,
        );
        check_selection(&p, &r.selection);
        assert!(r.eval.cost.is_finite());
    }
}

#[test]
fn ga_results_are_valid() {
    let p = problem();
    for seed in (0u64..100).step_by(9) {
        let r = ga::search(
            &p,
            &ga::GaConfig {
                population: 8,
                generations: 4,
                seed,
                ..Default::default()
            },
        );
        check_selection(&p, &r.selection);
    }
}

#[test]
fn sa_results_are_valid() {
    let p = problem();
    for seed in (0u64..100).step_by(9) {
        let r = sa::search(
            &p,
            &sa::SaConfig {
                steps: 60,
                seed,
                ..Default::default()
            },
        );
        check_selection(&p, &r.selection);
    }
}

#[test]
fn eval_cost_is_sum_of_weighted_terms() {
    let p = problem();
    for seed in (0u64..500).step_by(41) {
        let mut rng = EirProblem::rng(seed);
        let sel = p.random_completion(&[], &mut rng);
        let zero = EvalWeights {
            load: 0.0,
            hops: 0.0,
            crossings: 0.0,
            length: 0.0,
        };
        assert_eq!(evaluate(&p, &sel, &zero).cost, 0.0);
        let full = evaluate(&p, &sel, &EvalWeights::default());
        assert!(full.cost > 0.0);
        // Doubling every weight doubles the cost.
        let double = EvalWeights {
            load: 6.0,
            hops: 2.0,
            crossings: 1.0,
            length: 2.0,
        };
        let d = evaluate(&p, &sel, &double);
        assert!((d.cost - 2.0 * full.cost).abs() < 1e-9);
    }
}
