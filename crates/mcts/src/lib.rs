#![warn(missing_docs)]
//! `equinox-mcts` — design-space search for Equivalent Injection Routers.
//!
//! Selecting the EIR groups is a combinatorial problem (≈1.7 × 10¹⁰
//! combinations for 8×8 even when EIRs are limited to 3 hops, §4.3). This
//! crate implements the paper's search stack:
//!
//! * [`problem`] — the EIR selection problem: per-CB candidate tiles
//!   (outside every hot zone, within a hop budget, one per relative
//!   direction, never shared between CBs) and the selection type;
//! * [`eval`] — the four-metric evaluation function (max EIR load, average
//!   hop count, RDL wire crossings, total link length), normalized and
//!   summed, lower-is-better;
//! * [`tree`] — Monte Carlo Tree Search with UCB1 selection and
//!   group-by-group expansion (one tree level per CB, the paper's depth
//!   optimization);
//! * [`ga`], [`sa`] — the genetic-algorithm and simulated-annealing
//!   baselines the paper argues are less effective (§4.3), used by the
//!   ablation benches.
//!
//! # Example
//!
//! ```
//! use equinox_mcts::{problem::EirProblem, tree::MctsConfig};
//! use equinox_placement::select::best_nqueen_placement;
//!
//! let placement = best_nqueen_placement(8, 8, usize::MAX, 0);
//! let problem = EirProblem::new(placement);
//! let result = equinox_mcts::tree::search(&problem, &MctsConfig { iterations: 300, ..Default::default() });
//! assert_eq!(result.selection.groups.len(), 8);
//! ```

pub mod eval;
pub mod ga;
pub mod problem;
pub mod sa;
pub mod tree;

pub use eval::{EvalWeights, Evaluation};
pub use problem::{EirProblem, EirSelection};
pub use tree::{search, MctsConfig, SearchResult};
