//! Simulated-annealing baseline for EIR selection (§4.3).
//!
//! State = one complete selection; a move re-samples one CB's group (with
//! exclusivity repair); geometric cooling. Like the GA, this exists for
//! the search-method ablation bench.

use crate::eval::{evaluate, EvalWeights};
use crate::problem::EirProblem;
use crate::tree::SearchResult;

/// SA parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaConfig {
    /// Total proposed moves.
    pub steps: usize,
    /// Initial temperature.
    pub t0: f64,
    /// Geometric cooling factor per step.
    pub cooling: f64,
    /// Metric weights.
    pub weights: EvalWeights,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            steps: 1_200,
            t0: 0.5,
            cooling: 0.995,
            weights: EvalWeights::default(),
            seed: 0x5A,
        }
    }
}

/// Runs simulated annealing and returns the best selection visited.
pub fn search(problem: &EirProblem, cfg: &SaConfig) -> SearchResult {
    let mut rng = EirProblem::rng(cfg.seed);
    let mut cur = problem.random_completion(&[], &mut rng);
    let mut cur_eval = evaluate(problem, &cur, &cfg.weights);
    let mut best = cur.clone();
    let mut best_eval = cur_eval;
    let mut evaluations = 1usize;
    let mut temp = cfg.t0;

    for _ in 0..cfg.steps {
        // Move: re-sample one CB's group.
        let i = rng.random_range(0..cur.groups.len());
        let mut cand = cur.clone();
        let used: Vec<_> = cand
            .groups
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != i)
            .flat_map(|(_, g)| g.iter().copied())
            .collect();
        cand.groups[i] = problem.sample_group(i, &used, &mut rng);
        let cand_eval = evaluate(problem, &cand, &cfg.weights);
        evaluations += 1;
        let delta = cand_eval.cost - cur_eval.cost;
        let accept = delta <= 0.0 || rng.random::<f64>() < (-delta / temp.max(1e-9)).exp();
        if accept {
            cur = cand;
            cur_eval = cand_eval;
            if cur_eval.cost < best_eval.cost {
                best = cur.clone();
                best_eval = cur_eval;
            }
        }
        temp *= cfg.cooling;
    }

    SearchResult {
        selection: best,
        eval: best_eval,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use equinox_placement::select::best_nqueen_placement;

    fn problem() -> EirProblem {
        EirProblem::new(best_nqueen_placement(8, 8, usize::MAX, 0))
    }

    #[test]
    fn sa_returns_valid_selection() {
        let p = problem();
        let cfg = SaConfig {
            steps: 200,
            ..Default::default()
        };
        let r = search(&p, &cfg);
        assert_eq!(r.selection.groups.len(), 8);
        assert!(r.selection.is_exclusive(&p.placement));
        assert_eq!(r.evaluations, 201);
    }

    #[test]
    fn sa_improves_over_start() {
        let p = problem();
        let start = {
            let mut rng = EirProblem::rng(0x5A);
            let sel = p.random_completion(&[], &mut rng);
            evaluate(&p, &sel, &EvalWeights::default()).cost
        };
        let r = search(&p, &SaConfig::default());
        assert!(r.eval.cost <= start);
    }

    #[test]
    fn deterministic_for_seed() {
        let p = problem();
        let cfg = SaConfig {
            steps: 100,
            ..Default::default()
        };
        assert_eq!(search(&p, &cfg).eval.cost, search(&p, &cfg).eval.cost);
    }
}
