//! The EIR selection problem (§3.2, §4.3).
//!
//! For every cache bank we must choose a group of equivalent injection
//! routers subject to the paper's constraints:
//!
//! * **hop budget** — EIRs lie within `max_hops` mesh hops of their CB
//!   (long RDL wires would need repeaters, §3.2.3);
//! * **outside hot zones** — the 8 tiles around any CB carry that CB's
//!   first/second-hop traffic and make poor EIRs (§3.2.4);
//! * **direction diversity** — at most one EIR per relative direction
//!   (two EIRs in the same direction contend on the same mesh links,
//!   §4.3);
//! * **exclusivity** — an EIR serves exactly one CB (the paper's MCTS
//!   forbids sharing).

use equinox_phys::{Coord, WireModel};
use equinox_phys::segment::Segment;
use equinox_placement::Placement;
use equinox_exec::Rng;

/// The eight relative directions an EIR can sit in w.r.t. its CB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Octant {
    /// Directly north (Δx = 0, Δy < 0).
    N,
    /// North-east quadrant.
    Ne,
    /// Directly east.
    E,
    /// South-east quadrant.
    Se,
    /// Directly south.
    S,
    /// South-west quadrant.
    Sw,
    /// Directly west.
    W,
    /// North-west quadrant.
    Nw,
}

/// Relative direction of `to` as seen from `from`.
///
/// # Panics
///
/// Panics if the tiles coincide (a CB is never its own EIR).
pub fn octant(from: Coord, to: Coord) -> Octant {
    let dx = to.x as i32 - from.x as i32;
    let dy = to.y as i32 - from.y as i32;
    assert!(dx != 0 || dy != 0, "octant of identical tiles");
    match (dx.signum(), dy.signum()) {
        (0, -1) => Octant::N,
        (1, -1) => Octant::Ne,
        (1, 0) => Octant::E,
        (1, 1) => Octant::Se,
        (0, 1) => Octant::S,
        (-1, 1) => Octant::Sw,
        (-1, 0) => Octant::W,
        (-1, -1) => Octant::Nw,
        _ => unreachable!("signum covered"),
    }
}

/// A complete EIR assignment: `groups[i]` are the EIRs of CB `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EirSelection {
    /// One EIR group per cache bank, in CB order.
    pub groups: Vec<Vec<Coord>>,
}

impl EirSelection {
    /// All CB→EIR interposer wires as straight segments.
    pub fn segments(&self, placement: &Placement) -> Vec<Segment> {
        self.groups
            .iter()
            .enumerate()
            .flat_map(|(i, group)| {
                let cb = placement.cbs[i];
                group.iter().map(move |&e| Segment::new(cb, e))
            })
            .collect()
    }

    /// Total number of EIRs (= interposer links).
    pub fn total_eirs(&self) -> usize {
        self.groups.iter().map(|g| g.len()).sum()
    }

    /// `true` if no EIR is assigned to two CBs and no EIR is itself a CB.
    pub fn is_exclusive(&self, placement: &Placement) -> bool {
        let mut seen = Vec::new();
        for g in &self.groups {
            for &e in g {
                if seen.contains(&e) || placement.is_cb(e) {
                    return false;
                }
                seen.push(e);
            }
        }
        true
    }
}

/// The search problem: placement plus physical constraints.
#[derive(Debug, Clone)]
pub struct EirProblem {
    /// The CB placement EIRs are selected for.
    pub placement: Placement,
    /// Maximum CB→EIR distance in mesh hops (§4.3 uses 3).
    pub max_hops: u32,
    /// Target EIRs per group (the NI has 4 interposer ports, §4.4).
    pub group_size: usize,
    /// Wire model for link-length limits and costs.
    pub wire: WireModel,
}

impl EirProblem {
    /// Problem with the paper's defaults: ≤3 hops, 4 EIRs per group.
    pub fn new(placement: Placement) -> Self {
        EirProblem {
            placement,
            max_hops: 3,
            group_size: 4,
            wire: WireModel::default(),
        }
    }

    /// Candidate EIR tiles for CB `i`: on-grid, within the hop budget,
    /// outside the CB's *own* hot zone (§3.2.4 — an EIR there would draw
    /// even more traffic into the already-congested DAZ/CAZ; membership in
    /// *other* CBs' zones is discouraged by the load metric rather than
    /// forbidden, since on an 8×8 board with 8 CBs the union of all hot
    /// zones covers nearly every tile), not a CB, and reachable by a
    /// repeater-free wire.
    pub fn candidates(&self, i: usize) -> Vec<Coord> {
        let p = &self.placement;
        let cb = p.cbs[i];
        let (w, h) = (p.width, p.height);
        let mut out = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let t = Coord::new(x, y);
                let d = cb.manhattan(t);
                if d == 0 || d > self.max_hops {
                    continue;
                }
                if p.is_cb(t) {
                    continue;
                }
                // Outside the own hot zone (§3.2.4).
                if cb.chebyshev(t) <= 1 {
                    continue;
                }
                if !self.wire.fits_one_cycle(&Segment::new(cb, t)) {
                    continue;
                }
                out.push(t);
            }
        }
        out
    }

    /// Samples a legal group for CB `i`: up to `group_size` candidates in
    /// distinct octants, avoiding tiles in `used`.
    ///
    /// Sampling is *distance-biased*: a candidate at hop distance `d` is
    /// drawn with weight `1/(d-1)` (2-hop twice as likely as 3-hop), the
    /// soft analogue of the paper's observation that close-in EIRs bypass
    /// the hot zone with shorter wires and fewer crossings. Three-hop
    /// EIRs remain reachable, so the search can still disagree.
    pub fn sample_group(&self, i: usize, used: &[Coord], rng: &mut Rng) -> Vec<Coord> {
        let cb = self.placement.cbs[i];
        let mut cands: Vec<(f64, Coord)> = self
            .candidates(i)
            .into_iter()
            .filter(|c| !used.contains(c))
            .map(|c| {
                let d = cb.manhattan(c).max(2) as f64;
                let weight = 1.0 / (d - 1.0);
                // Weighted shuffle via the exponential-sort trick: key =
                // u^(1/w) sorts like sampling without replacement.
                let key = rng.random::<f64>().powf(1.0 / weight);
                (key, c)
            })
            .collect();
        cands.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("keys finite"));
        let cands: Vec<Coord> = cands.into_iter().map(|(_, c)| c).collect();
        let mut group = Vec::with_capacity(self.group_size);
        let mut taken_octants: Vec<Octant> = Vec::with_capacity(self.group_size);
        for c in cands {
            if group.len() == self.group_size {
                break;
            }
            let o = octant(cb, c);
            if !taken_octants.contains(&o) {
                taken_octants.push(o);
                group.push(c);
            }
        }
        group
    }

    /// The order in which the search assigns CB groups: scarcest
    /// candidate sets first, so corner/crowded CBs pick their EIRs before
    /// richer CBs consume the shared tiles. Without this, sequential
    /// assignment systematically starves boundary CBs — and one starved
    /// CB paces the whole machine.
    pub fn cb_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.placement.cbs.len()).collect();
        order.sort_by_key(|&i| self.candidates(i).len());
        order
    }

    /// Completes a partial selection by sampling groups for the remaining
    /// CBs (the MCTS rollout policy). `partial` lists groups for the first
    /// `partial.len()` CBs *in [`EirProblem::cb_order`]*; the returned
    /// selection is indexed by CB as usual.
    pub fn random_completion(
        &self,
        partial: &[Vec<Coord>],
        rng: &mut Rng,
    ) -> EirSelection {
        let order = self.cb_order();
        let n = self.placement.cbs.len();
        let mut groups: Vec<Vec<Coord>> = vec![Vec::new(); n];
        let mut used: Vec<Coord> = Vec::new();
        for (d, &cb) in order.iter().enumerate() {
            let g = if d < partial.len() {
                partial[d].clone()
            } else {
                self.sample_group(cb, &used, rng)
            };
            used.extend(&g);
            groups[cb] = g;
        }
        EirSelection { groups }
    }

    /// Deterministic RNG for a seed (all searches in this crate are
    /// reproducible).
    pub fn rng(seed: u64) -> Rng {
        Rng::seed_from_u64(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use equinox_placement::select::best_nqueen_placement;

    fn problem() -> EirProblem {
        EirProblem::new(best_nqueen_placement(8, 8, usize::MAX, 0))
    }

    #[test]
    fn octants_cover_all_directions() {
        let c = Coord::new(3, 3);
        assert_eq!(octant(c, Coord::new(3, 1)), Octant::N);
        assert_eq!(octant(c, Coord::new(5, 2)), Octant::Ne);
        assert_eq!(octant(c, Coord::new(6, 3)), Octant::E);
        assert_eq!(octant(c, Coord::new(4, 4)), Octant::Se);
        assert_eq!(octant(c, Coord::new(3, 7)), Octant::S);
        assert_eq!(octant(c, Coord::new(1, 5)), Octant::Sw);
        assert_eq!(octant(c, Coord::new(0, 3)), Octant::W);
        assert_eq!(octant(c, Coord::new(2, 2)), Octant::Nw);
    }

    #[test]
    fn candidates_respect_constraints() {
        let p = problem();
        for (i, &cb) in p.placement.cbs.iter().enumerate() {
            let cands = p.candidates(i);
            assert!(!cands.is_empty(), "CB {i} has no candidates");
            for c in cands {
                assert!(cb.chebyshev(c) >= 2, "{c} inside hot zone of own CB");
                assert!(cb.manhattan(c) >= 2 && cb.manhattan(c) <= 3);
                assert!(!p.placement.is_cb(c));
            }
        }
    }

    #[test]
    fn sampled_groups_are_direction_diverse_and_exclusive() {
        let p = problem();
        let mut rng = EirProblem::rng(7);
        let sel = p.random_completion(&[], &mut rng);
        assert_eq!(sel.groups.len(), 8);
        assert!(sel.is_exclusive(&p.placement));
        for (i, g) in sel.groups.iter().enumerate() {
            assert!(g.len() <= 4);
            assert!(!g.is_empty(), "group {i} empty");
            let mut octs: Vec<Octant> =
                g.iter().map(|&e| octant(p.placement.cbs[i], e)).collect();
            let n = octs.len();
            octs.dedup();
            // dedup only removes adjacent; do full unique check:
            let mut octs2: Vec<Octant> =
                g.iter().map(|&e| octant(p.placement.cbs[i], e)).collect();
            octs2.sort_by_key(|o| *o as u8);
            octs2.dedup();
            assert_eq!(octs2.len(), n, "octant reuse in group {i}");
        }
    }

    #[test]
    fn segments_match_total() {
        let p = problem();
        let mut rng = EirProblem::rng(3);
        let sel = p.random_completion(&[], &mut rng);
        assert_eq!(sel.segments(&p.placement).len(), sel.total_eirs());
    }

    #[test]
    fn completion_respects_partial_prefix() {
        let p = problem();
        let mut rng = EirProblem::rng(11);
        let order = p.cb_order();
        let first = p.sample_group(order[0], &[], &mut rng);
        let sel = p.random_completion(std::slice::from_ref(&first), &mut rng);
        assert_eq!(sel.groups[order[0]], first);
    }

    #[test]
    fn cb_order_is_scarcity_sorted_permutation() {
        let p = problem();
        let order = p.cb_order();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        for w in order.windows(2) {
            assert!(p.candidates(w[0]).len() <= p.candidates(w[1]).len());
        }
    }

    #[test]
    #[should_panic(expected = "identical tiles")]
    fn octant_of_self_panics() {
        let c = Coord::new(1, 1);
        let _ = octant(c, c);
    }
}
