//! The MCTS evaluation function (§4.3).
//!
//! Four metrics, each normalized to ~[0, 1] and summed (lower is better):
//!
//! 1. **max EIR load** — traffic each injection point must handle if every
//!    PE receives equal reply traffic and packets use shortest-path
//!    injection points (the Buffer Selector policy of §4.4), normalized by
//!    the ideal perfectly-balanced load;
//! 2. **average hop count** — mean CB→PE distance via the best injection
//!    point (interposer links count one cycle), normalized by the
//!    no-EIR baseline distance;
//! 3. **wire crossings** — properly-crossing CB→EIR segment pairs (each
//!    crossing forces extra RDL layers), normalized per wire;
//! 4. **link length** — total RDL wire length, normalized by the budget of
//!    `max_hops`-long wires.

use crate::problem::{EirProblem, EirSelection};
use equinox_phys::segment::count_crossings;
use equinox_phys::Coord;

/// Weights of the four metrics (default: equal, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalWeights {
    /// Weight of the max-EIR-load term.
    pub load: f64,
    /// Weight of the average-hop-count term.
    pub hops: f64,
    /// Weight of the crossing-count term.
    pub crossings: f64,
    /// Weight of the wire-length term.
    pub length: f64,
}

impl Default for EvalWeights {
    fn default() -> Self {
        EvalWeights {
            // Load imbalance weighs heavily: a single under-provisioned CB
            // throttles the whole machine (its region tree-saturates the
            // request mesh), so balance beats marginal wire savings.
            load: 3.0,
            hops: 1.0,
            // Per-crossing penalty: large enough that crossings are a
            // last resort, small enough that rescuing a starved CB (load
            // gain ~0.7) justifies one crossing — the paper likewise lets
            // some CBs keep fewer EIRs only when balance is preserved.
            crossings: 0.5,
            length: 1.0,
        }
    }
}

/// The evaluated metrics of one selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Highest per-injection-point load in PE-traffic units.
    pub max_load: f64,
    /// Smooth load-balance score: mean over CBs of the sum of squared
    /// per-injector traffic shares (1.0 = no EIRs; 1/(k+1) = ideal
    /// (k+1)-way split).
    pub max_load_norm: f64,
    /// Mean CB→PE hops via the best injection point.
    pub avg_hops: f64,
    /// Same, normalized by the no-EIR baseline.
    pub avg_hops_norm: f64,
    /// Crossing pairs among the interposer wires.
    pub crossings: usize,
    /// Total wire length in millimetres.
    pub length_mm: f64,
    /// The weighted scalar cost (lower is better).
    pub cost: f64,
}

/// Evaluates `sel` for `problem` under `weights`.
pub fn evaluate(problem: &EirProblem, sel: &EirSelection, weights: &EvalWeights) -> Evaluation {
    let p = &problem.placement;
    let pes: Vec<Coord> = p.pe_tiles().collect();
    let n_cbs = p.cbs.len();
    debug_assert_eq!(sel.groups.len(), n_cbs);

    // Injection points per CB: local router plus the EIRs (the local
    // router always remains usable, §4.4). Track load per injection point.
    let mut load: Vec<Vec<f64>> = sel
        .groups
        .iter()
        .map(|g| vec![0.0; g.len() + 1])
        .collect();
    let mut hop_sum = 0.0;
    let mut base_hop_sum = 0.0;
    for (i, &cb) in p.cbs.iter().enumerate() {
        let group = &sel.groups[i];
        for &pe in &pes {
            let direct = cb.manhattan(pe);
            base_hop_sum += direct as f64;
            // Distance via each injection point; EIR links cost 1 cycle.
            let mut best = direct; // via local router
            let mut shortest_eirs: Vec<usize> = Vec::new();
            for (k, &e) in group.iter().enumerate() {
                let via = cb.manhattan(e) + e.manhattan(pe);
                if via == direct {
                    shortest_eirs.push(k);
                }
                let cycles = 1 + e.manhattan(pe); // interposer hop + mesh
                best = best.min(cycles);
            }
            hop_sum += best as f64;
            // Load split: shortest-path EIRs share the PE's traffic;
            // with none, the local router takes it (index = group.len()).
            if shortest_eirs.is_empty() {
                load[i][group.len()] += 1.0;
            } else {
                let share = 1.0 / shortest_eirs.len() as f64;
                for k in shortest_eirs {
                    load[i][k] += share;
                }
            }
        }
    }
    let pairs = (n_cbs * pes.len()) as f64;
    let avg_hops = hop_sum / pairs;
    let base_avg = base_hop_sum / pairs;
    let avg_hops_norm = if base_avg > 0.0 { avg_hops / base_avg } else { 1.0 };

    // The hottest injection point is what paces the machine, but "max" is
    // a poor hill-climbing objective (most moves leave the argmax alone).
    // The cost therefore uses the *sum of squared* per-injector shares —
    // smooth, minimized by the same perfectly-balanced assignment, and
    // normalized so the no-EIR baseline (each CB's local router carrying
    // everything) scores 1.0 and an ideal (k+1)-way split scores 1/(k+1).
    // The raw max is still reported for analysis.
    let max_load = load
        .iter()
        .flatten()
        .copied()
        .fold(0.0_f64, f64::max);
    let max_load_norm = if pes.is_empty() {
        0.0
    } else {
        let n_pes = pes.len() as f64;
        let sq: f64 = load
            .iter()
            .map(|cb_loads| {
                cb_loads
                    .iter()
                    .map(|l| (l / n_pes) * (l / n_pes))
                    .sum::<f64>()
            })
            .sum();
        sq / n_cbs as f64
    };

    let segments = sel.segments(p);
    let crossings = count_crossings(&segments);
    let length_mm = problem.wire.total_length_mm(&segments);
    let budget = segments.len().max(1) as f64
        * problem.max_hops as f64
        * problem.wire.tile_pitch_mm;
    // Crossings are charged *per crossing*, not per wire: each one can
    // force an extra dual-damascene RDL layer whose yield cost compounds
    // (§3.2.3), so the term must dominate marginal hop/load trade-offs —
    // the paper's chosen design accepts smaller EIR groups to reach zero.
    let crossings_norm = crossings as f64;
    let length_norm = length_mm / budget;

    let cost = weights.load * max_load_norm
        + weights.hops * avg_hops_norm
        + weights.crossings * crossings_norm
        + weights.length * length_norm;

    Evaluation {
        max_load,
        max_load_norm,
        avg_hops,
        avg_hops_norm,
        crossings,
        length_mm,
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::EirProblem;
    use equinox_placement::select::best_nqueen_placement;

    fn problem() -> EirProblem {
        EirProblem::new(best_nqueen_placement(8, 8, usize::MAX, 0))
    }

    #[test]
    fn no_eirs_is_the_baseline() {
        let p = problem();
        let sel = EirSelection {
            groups: vec![Vec::new(); 8],
        };
        let e = evaluate(&p, &sel, &EvalWeights::default());
        assert!((e.avg_hops_norm - 1.0).abs() < 1e-12);
        assert_eq!(e.crossings, 0);
        assert_eq!(e.length_mm, 0.0);
        // All of a CB's traffic on its local router: load norm = 1.0.
        assert!((e.max_load_norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eirs_reduce_hops_and_load() {
        let p = problem();
        let mut rng = EirProblem::rng(5);
        let sel = p.random_completion(&[], &mut rng);
        let with = evaluate(&p, &sel, &EvalWeights::default());
        let without = evaluate(
            &p,
            &EirSelection {
                groups: vec![Vec::new(); 8],
            },
            &EvalWeights::default(),
        );
        assert!(with.avg_hops < without.avg_hops, "EIRs shorten paths");
        assert!(
            with.max_load < without.max_load,
            "spreading injection over EIRs must cut the hottest load: {} vs {}",
            with.max_load,
            without.max_load
        );
    }

    #[test]
    fn weights_shift_cost() {
        let p = problem();
        let mut rng = EirProblem::rng(5);
        let sel = p.random_completion(&[], &mut rng);
        let balanced = evaluate(&p, &sel, &EvalWeights::default());
        let hops_only = evaluate(
            &p,
            &sel,
            &EvalWeights {
                load: 0.0,
                hops: 1.0,
                crossings: 0.0,
                length: 0.0,
            },
        );
        assert!(hops_only.cost < balanced.cost);
        assert!((hops_only.cost - hops_only.avg_hops_norm).abs() < 1e-12);
    }

    #[test]
    fn cost_is_deterministic() {
        let p = problem();
        let mut rng = EirProblem::rng(9);
        let sel = p.random_completion(&[], &mut rng);
        let a = evaluate(&p, &sel, &EvalWeights::default());
        let b = evaluate(&p, &sel, &EvalWeights::default());
        assert_eq!(a, b);
    }
}
