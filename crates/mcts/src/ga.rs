//! Genetic-algorithm baseline for EIR selection.
//!
//! §4.3 argues a GA is a poorer fit than MCTS because the natural bit-mask
//! encoding blows the space up to 2⁶⁴ and crossover produces invalid
//! selections. We give the GA the *best possible* encoding (a group per
//! CB, with conflict repair) so the comparison in the ablation bench is
//! fair — and MCTS still wins on evaluations-to-quality.

use crate::eval::{evaluate, EvalWeights, Evaluation};
use crate::problem::{EirProblem, EirSelection};
use crate::tree::SearchResult;
use equinox_phys::Coord;
use equinox_exec::Rng;

/// GA parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    /// Population size.
    pub population: usize,
    /// Generations to run.
    pub generations: usize,
    /// Per-CB mutation probability.
    pub mutation: f64,
    /// Metric weights.
    pub weights: EvalWeights,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 32,
            generations: 40,
            mutation: 0.2,
            weights: EvalWeights::default(),
            seed: 0x6A,
        }
    }
}

/// Runs the GA and returns the best selection found.
pub fn search(problem: &EirProblem, cfg: &GaConfig) -> SearchResult {
    let mut rng = EirProblem::rng(cfg.seed);
    let mut evaluations = 0usize;

    let mut pop: Vec<(EirSelection, Evaluation)> = (0..cfg.population)
        .map(|_| {
            let sel = problem.random_completion(&[], &mut rng);
            let ev = evaluate(problem, &sel, &cfg.weights);
            evaluations += 1;
            (sel, ev)
        })
        .collect();

    for _ in 0..cfg.generations {
        let mut next = Vec::with_capacity(cfg.population);
        // Elitism: keep the best individual.
        let best_idx = argmin(&pop);
        next.push(pop[best_idx].clone());
        while next.len() < cfg.population {
            let a = tournament(&pop, &mut rng);
            let b = tournament(&pop, &mut rng);
            let child = crossover(problem, &pop[a].0, &pop[b].0, cfg.mutation, &mut rng);
            let ev = evaluate(problem, &child, &cfg.weights);
            evaluations += 1;
            next.push((child, ev));
        }
        pop = next;
    }

    let best = argmin(&pop);
    let (selection, eval) = pop.swap_remove(best);
    SearchResult {
        selection,
        eval,
        evaluations,
    }
}

fn argmin(pop: &[(EirSelection, Evaluation)]) -> usize {
    pop.iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.1.cost.partial_cmp(&b.1.cost).expect("no NaN"))
        .map(|(i, _)| i)
        .expect("population nonempty")
}

fn tournament(pop: &[(EirSelection, Evaluation)], rng: &mut Rng) -> usize {
    let a = rng.random_range(0..pop.len());
    let b = rng.random_range(0..pop.len());
    if pop[a].1.cost <= pop[b].1.cost {
        a
    } else {
        b
    }
}

/// Uniform per-CB crossover with conflict repair and mutation.
fn crossover(
    problem: &EirProblem,
    a: &EirSelection,
    b: &EirSelection,
    mutation: f64,
    rng: &mut Rng,
) -> EirSelection {
    let n = a.groups.len();
    let mut groups: Vec<Vec<Coord>> = Vec::with_capacity(n);
    let mut used: Vec<Coord> = Vec::new();
    for i in 0..n {
        let mut g = if rng.random::<f64>() < 0.5 {
            a.groups[i].clone()
        } else {
            b.groups[i].clone()
        };
        if rng.random::<f64>() < mutation {
            g = problem.sample_group(i, &used, rng);
        }
        // Repair: drop EIRs already claimed by earlier CBs, refill.
        g.retain(|e| !used.contains(e));
        if g.is_empty() {
            g = problem.sample_group(i, &used, rng);
        }
        used.extend(g.iter().copied());
        groups.push(g);
    }
    EirSelection { groups }
}

#[cfg(test)]
mod tests {
    use super::*;
    use equinox_placement::select::best_nqueen_placement;

    fn problem() -> EirProblem {
        EirProblem::new(best_nqueen_placement(8, 8, usize::MAX, 0))
    }

    #[test]
    fn ga_returns_valid_selection() {
        let p = problem();
        let cfg = GaConfig {
            population: 12,
            generations: 10,
            ..Default::default()
        };
        let r = search(&p, &cfg);
        assert_eq!(r.selection.groups.len(), 8);
        assert!(r.selection.is_exclusive(&p.placement));
        assert_eq!(r.evaluations, 12 + 10 * 11);
    }

    #[test]
    fn ga_improves_over_initial_random() {
        let p = problem();
        let init = {
            let mut rng = EirProblem::rng(0x6A);
            let sel = p.random_completion(&[], &mut rng);
            evaluate(&p, &sel, &EvalWeights::default()).cost
        };
        let r = search(&p, &GaConfig::default());
        assert!(r.eval.cost <= init);
    }

    #[test]
    fn deterministic_for_seed() {
        let p = problem();
        let cfg = GaConfig {
            population: 10,
            generations: 5,
            ..Default::default()
        };
        assert_eq!(search(&p, &cfg).eval.cost, search(&p, &cfg).eval.cost);
    }
}
