//! Monte Carlo Tree Search over EIR groups (§4.3).
//!
//! One tree level per cache bank: a node at depth `d` fixes the groups of
//! CBs `0..d` (the paper's group-by-group expansion, which keeps the tree
//! exactly `#CBs` deep instead of `ΣEIRs`). Each iteration runs the four
//! classic stages — UCB1 selection, expansion of an untried sampled group,
//! a random-completion rollout scored by the evaluation function, and
//! backpropagation of the reward along the path.

use crate::eval::{evaluate, EvalWeights, Evaluation};
use crate::problem::{EirProblem, EirSelection};
use equinox_exec::Rng;
use equinox_phys::Coord;

/// Search parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MctsConfig {
    /// Total iterations (selection→expansion→rollout→backprop).
    pub iterations: usize,
    /// UCB exploration constant `C`.
    pub exploration: f64,
    /// Sampled group options per node (lazy branching factor).
    pub branching: usize,
    /// Metric weights.
    pub weights: EvalWeights,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MctsConfig {
    fn default() -> Self {
        MctsConfig {
            iterations: 2_000,
            exploration: 0.8,
            branching: 24,
            weights: EvalWeights::default(),
            seed: 0xEC0,
        }
    }
}

/// Outcome of a search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The best selection found.
    pub selection: EirSelection,
    /// Its evaluation.
    pub eval: Evaluation,
    /// Evaluation-function invocations (the paper reports exploring
    /// 0.047% of the space; this is the comparable effort number).
    pub evaluations: usize,
}

struct Node {
    /// Group this node assigns to CB `depth-1` (empty for the root).
    group: Vec<Coord>,
    depth: usize,
    children: Vec<usize>,
    /// Sampled-but-unexpanded group options.
    untried: Vec<Vec<Coord>>,
    visits: u64,
    /// Sum of rewards (reward = -cost).
    reward_sum: f64,
}

/// Runs MCTS and returns the best complete selection seen (the best
/// rollout, which is never worse than the final tree path).
pub fn search(problem: &EirProblem, cfg: &MctsConfig) -> SearchResult {
    let (best, evaluations) = search_core(problem, cfg);
    let (_, selection, eval) = best;
    let mut rng = EirProblem::rng(cfg.seed);
    let (selection, eval, extra) = refine(problem, selection, eval, &cfg.weights, &mut rng);
    SearchResult {
        selection,
        eval,
        evaluations: evaluations + extra,
    }
}

/// Root-parallel MCTS (the classic root-parallelization of
/// Chaslot et al.): `roots` independent trees, each seeded with a
/// splitmix64-derived stream of `cfg.seed` and given
/// `ceil(iterations / roots)` of the budget, searched concurrently on
/// the [`equinox_exec`] worker pool. The best rollout across all roots
/// (ties broken by lowest root index) is then refined once.
///
/// Determinism contract: the result is a pure function of
/// `(problem, cfg, roots)` — the per-root RNG streams are derived from
/// the seed and the root index, never from thread identity, so any
/// worker count (including 1) produces the identical `SearchResult`.
pub fn search_parallel(problem: &EirProblem, cfg: &MctsConfig, roots: usize) -> SearchResult {
    if roots <= 1 {
        return search(problem, cfg);
    }
    let per_root = cfg.iterations.div_ceil(roots);
    let jobs: Vec<MctsConfig> = (0..roots)
        .map(|r| MctsConfig {
            iterations: per_root,
            seed: root_seed(cfg.seed, r as u64),
            ..*cfg
        })
        .collect();
    let outcomes = equinox_exec::par_map(jobs, |_, root_cfg| search_core(problem, &root_cfg));
    let evaluations: usize = outcomes.iter().map(|(_, e)| e).sum();
    // min_by on an in-order Vec keeps the first (= lowest root index) of
    // any cost tie, independent of which worker finished first.
    let (best, _) = outcomes
        .into_iter()
        .min_by(|(a, _), (b, _)| a.0.partial_cmp(&b.0).expect("no NaN costs"))
        .expect("roots >= 1");
    let (_, selection, eval) = best;
    let mut rng = EirProblem::rng(cfg.seed);
    let (selection, eval, extra) = refine(problem, selection, eval, &cfg.weights, &mut rng);
    SearchResult {
        selection,
        eval,
        evaluations: evaluations + extra,
    }
}

/// Seed for root stream `r`: splitmix64 over a Weyl offset so nearby
/// roots get uncorrelated tree shapes.
fn root_seed(seed: u64, r: u64) -> u64 {
    let mut st = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(r.wrapping_add(1)));
    equinox_exec::splitmix64(&mut st)
}

/// One sequential MCTS run without the final refine: returns the best
/// `(cost, selection, eval)` rollout and the evaluation count.
fn search_core(
    problem: &EirProblem,
    cfg: &MctsConfig,
) -> ((f64, EirSelection, Evaluation), usize) {
    let mut rng = EirProblem::rng(cfg.seed);
    let n_cbs = problem.placement.cbs.len();
    let order = problem.cb_order();
    let mut nodes: Vec<Node> = vec![Node {
        group: Vec::new(),
        depth: 0,
        children: Vec::new(),
        untried: sample_options(problem, order[0], &[], cfg.branching, &mut rng),
        visits: 0,
        reward_sum: 0.0,
    }];
    let mut best: Option<(f64, EirSelection, Evaluation)> = None;
    let mut evaluations = 0usize;

    for _ in 0..cfg.iterations {
        // --- Selection ---
        let mut path = vec![0usize];
        let mut used: Vec<Coord> = Vec::new();
        let mut partial: Vec<Vec<Coord>> = Vec::new();
        loop {
            let cur = *path.last().expect("path nonempty");
            if nodes[cur].depth == n_cbs || !nodes[cur].untried.is_empty() {
                break;
            }
            if nodes[cur].children.is_empty() {
                break;
            }
            let parent_visits = nodes[cur].visits.max(1) as f64;
            let &next = nodes[cur]
                .children
                .iter()
                .max_by(|&&a, &&b| {
                    ucb(&nodes[a], parent_visits, cfg.exploration)
                        .partial_cmp(&ucb(&nodes[b], parent_visits, cfg.exploration))
                        .expect("no NaN rewards")
                })
                .expect("children nonempty");
            path.push(next);
            used.extend(nodes[next].group.iter().copied());
            partial.push(nodes[next].group.clone());
        }

        // --- Expansion ---
        let cur = *path.last().expect("path nonempty");
        if nodes[cur].depth < n_cbs {
            if let Some(group) = nodes[cur].untried.pop() {
                let depth = nodes[cur].depth + 1;
                let mut child_used = used.clone();
                child_used.extend(group.iter().copied());
                let untried = if depth < n_cbs {
                    sample_options(problem, order[depth], &child_used, cfg.branching, &mut rng)
                } else {
                    Vec::new()
                };
                let id = nodes.len();
                nodes.push(Node {
                    group: group.clone(),
                    depth,
                    children: Vec::new(),
                    untried,
                    visits: 0,
                    reward_sum: 0.0,
                });
                nodes[cur].children.push(id);
                path.push(id);
                used = child_used;
                partial.push(group);
            }
        }

        // --- Rollout ---
        let sel = problem.random_completion(&partial, &mut rng);
        let eval = evaluate(problem, &sel, &cfg.weights);
        evaluations += 1;
        if best.as_ref().is_none_or(|(c, _, _)| eval.cost < *c) {
            best = Some((eval.cost, sel, eval));
        }

        // --- Backpropagation ---
        let reward = -eval.cost;
        for &n in &path {
            nodes[n].visits += 1;
            nodes[n].reward_sum += reward;
        }
    }

    (best.expect("at least one iteration"), evaluations)
}

/// Greedy hill-climbing polish: sweep the CBs, re-sampling each group a
/// few times and keeping strict improvements. This mirrors the paper's
/// final stage where only MCTS-promising selections are tuned before the
/// expensive full-system simulations (§4.3); it is what drives the last
/// crossings out of an already-good selection.
fn refine(
    problem: &EirProblem,
    mut sel: EirSelection,
    mut eval: Evaluation,
    weights: &EvalWeights,
    _rng: &mut Rng,
) -> (EirSelection, Evaluation, usize) {
    use crate::problem::octant;
    let n = sel.groups.len();
    let mut evaluations = 0usize;
    const MAX_SWEEPS: usize = 8;
    for _ in 0..MAX_SWEEPS {
        let mut improved = false;
        for i in 0..n {
            for k in 0..sel.groups[i].len() {
                let cb = problem.placement.cbs[i];
                let used: Vec<Coord> = sel
                    .groups
                    .iter()
                    .flatten()
                    .copied()
                    .filter(|&e| e != sel.groups[i][k])
                    .collect();
                let sibling_octants: Vec<_> = sel.groups[i]
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != k)
                    .map(|(_, &e)| octant(cb, e))
                    .collect();
                for c in problem.candidates(i) {
                    if c == sel.groups[i][k]
                        || used.contains(&c)
                        || sibling_octants.contains(&octant(cb, c))
                    {
                        continue;
                    }
                    let mut cand = sel.clone();
                    cand.groups[i][k] = c;
                    let cand_eval = evaluate(problem, &cand, weights);
                    evaluations += 1;
                    if cand_eval.cost < eval.cost {
                        sel = cand;
                        eval = cand_eval;
                        improved = true;
                    }
                }
                // Dropping the EIR entirely can beat any relocation when
                // its wire is what crosses — the paper notes some CBs end
                // up with fewer EIRs for exactly this reason (§4.3).
                if sel.groups[i].len() > 1 {
                    let mut cand = sel.clone();
                    cand.groups[i].remove(k);
                    let cand_eval = evaluate(problem, &cand, weights);
                    evaluations += 1;
                    if cand_eval.cost < eval.cost {
                        sel = cand;
                        eval = cand_eval;
                        improved = true;
                        break; // indices shifted; revisit on next sweep
                    }
                }
            }
            // Growth move: a CB short of the target group size tries to
            // add one more EIR in an unused octant.
            if sel.groups[i].len() < problem.group_size {
                let cb = problem.placement.cbs[i];
                let used: Vec<Coord> = sel.groups.iter().flatten().copied().collect();
                let octs: Vec<_> = sel.groups[i].iter().map(|&e| octant(cb, e)).collect();
                for c in problem.candidates(i) {
                    if used.contains(&c) || octs.contains(&octant(cb, c)) {
                        continue;
                    }
                    let mut cand = sel.clone();
                    cand.groups[i].push(c);
                    let cand_eval = evaluate(problem, &cand, weights);
                    evaluations += 1;
                    if cand_eval.cost < eval.cost {
                        sel = cand;
                        eval = cand_eval;
                        improved = true;
                        break;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    (sel, eval, evaluations)
}

fn ucb(n: &Node, parent_visits: f64, c: f64) -> f64 {
    if n.visits == 0 {
        return f64::INFINITY;
    }
    let mean = n.reward_sum / n.visits as f64;
    mean + c * (parent_visits.ln() / n.visits as f64).sqrt()
}

/// Samples up to `k` distinct group options for the given CB.
fn sample_options(
    problem: &EirProblem,
    cb: usize,
    used: &[Coord],
    k: usize,
    rng: &mut Rng,
) -> Vec<Vec<Coord>> {
    let mut opts: Vec<Vec<Coord>> = Vec::with_capacity(k);
    for _ in 0..k * 3 {
        if opts.len() == k {
            break;
        }
        let mut g = problem.sample_group(cb, used, rng);
        g.sort();
        if !opts.contains(&g) {
            opts.push(g);
        }
    }
    opts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EvalWeights;
    use equinox_placement::select::best_nqueen_placement;

    fn problem() -> EirProblem {
        EirProblem::new(best_nqueen_placement(8, 8, usize::MAX, 0))
    }

    fn quick_cfg(seed: u64) -> MctsConfig {
        MctsConfig {
            iterations: 400,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn search_returns_complete_exclusive_selection() {
        let p = problem();
        let r = search(&p, &quick_cfg(1));
        assert_eq!(r.selection.groups.len(), 8);
        assert!(r.selection.is_exclusive(&p.placement));
        assert!(r.evaluations >= 400);
    }

    #[test]
    fn search_beats_random_sampling() {
        let p = problem();
        let r = search(&p, &quick_cfg(2));
        // Single random rollout for comparison.
        let mut rng = EirProblem::rng(99);
        let random = p.random_completion(&[], &mut rng);
        let random_eval = crate::eval::evaluate(&p, &random, &EvalWeights::default());
        assert!(
            r.eval.cost <= random_eval.cost,
            "MCTS {:.4} must beat one random draw {:.4}",
            r.eval.cost,
            random_eval.cost
        );
    }

    #[test]
    fn more_iterations_rarely_hurt() {
        // Not strictly monotone (the RNG stream differs once the tree
        // shape changes), but a 10x budget must land at least as well
        // within a small tolerance.
        let p = problem();
        let small = search(
            &p,
            &MctsConfig {
                iterations: 100,
                seed: 3,
                ..Default::default()
            },
        );
        let big = search(
            &p,
            &MctsConfig {
                iterations: 1000,
                seed: 3,
                ..Default::default()
            },
        );
        assert!(big.eval.cost <= small.eval.cost * 1.05);
    }

    #[test]
    fn found_design_is_physically_viable() {
        // The paper's 8×8 design has zero crossings and ≤2-hop wires; our
        // search should land close: few crossings, mostly 2-hop EIRs.
        let p = problem();
        let r = search(
            &p,
            &MctsConfig {
                iterations: 3000,
                seed: 4,
                ..Default::default()
            },
        );
        assert!(
            r.eval.crossings <= 2,
            "found {} crossings; paper achieves 0",
            r.eval.crossings
        );
        let segments = r.selection.segments(&p.placement);
        assert!(p.wire.all_single_cycle(&segments), "repeater-free wires");
    }

    #[test]
    fn deterministic_for_seed() {
        let p = problem();
        let a = search(&p, &quick_cfg(5));
        let b = search(&p, &quick_cfg(5));
        assert_eq!(a.selection, b.selection);
        assert_eq!(a.eval.cost, b.eval.cost);
    }

    #[test]
    fn parallel_search_independent_of_worker_count() {
        // Root-parallel results depend on (seed, roots) but never on how
        // many threads execute the roots.
        let p = problem();
        let cfg = quick_cfg(6);
        // Same root partition executed on 1 worker and on 4 workers must
        // merge to the identical result (other concurrent tests also see
        // the set_threads global, but their outputs are thread-count
        // independent by the same contract, so this is safe).
        equinox_exec::set_threads(1);
        let one = search_parallel(&p, &cfg, 4);
        equinox_exec::set_threads(4);
        let many = search_parallel(&p, &cfg, 4);
        equinox_exec::set_threads(0);
        assert_eq!(one.selection, many.selection);
        assert_eq!(one.eval.cost, many.eval.cost);
        assert_eq!(one.evaluations, many.evaluations);
    }

    #[test]
    fn parallel_search_is_valid_and_competitive() {
        let p = problem();
        let cfg = quick_cfg(7);
        let r = search_parallel(&p, &cfg, 4);
        assert_eq!(r.selection.groups.len(), 8);
        assert!(r.selection.is_exclusive(&p.placement));
        // Same total budget as the sequential run (up to div_ceil).
        assert!(r.evaluations >= cfg.iterations);
    }
}
