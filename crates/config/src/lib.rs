//! `equinox-config` — the typed experiment spine.
//!
//! One configuration layer for every EquiNox binary and scenario:
//!
//! * [`json`] — a dependency-free JSON value model (ordered objects,
//!   shortest-roundtrip numbers) with a writer and a strict parser;
//!   the format of every emitted result artifact.
//! * [`spec`] — [`ExperimentSpec`], the typed description of a run
//!   (simulator knobs, auditor knobs, worker-pool threads, workload
//!   scale and seeds), with a field registry binding each field to one
//!   spec-file key, one `EQUINOX_*` environment variable and one CLI
//!   flag, and per-field provenance.
//! * [`resolve`] — layered resolution: built-in defaults → optional
//!   spec file → environment → CLI flags, last writer wins.
//! * [`cli`] — the shared strict argument parser (unknown flags and
//!   malformed values are fatal, never silently defaulted).
//!
//! The crate is a dependency-free leaf: `equinox-core` consumes the
//! resolved spec (`SystemConfig::from_spec`) and `equinox-bench`'s
//! scenario registry threads it through every runner, so configuration
//! flows by value — no `std::env::set_var` side-channels (a guard in
//! `scripts/check.sh` keeps it that way).

pub mod cli;
pub mod json;
pub mod resolve;
pub mod spec;

pub use cli::{flag_help, parse as parse_cli, CliError, Extras, Parsed};
pub use json::{parse as parse_json, Json, JsonError};
pub use resolve::{resolve, resolve_process, ResolveError};
pub use spec::{fields, ExperimentSpec, FieldDef, Layer};
