//! Layered spec resolution: defaults → spec file → environment → CLI.
//!
//! Each layer overwrites the previous one field-by-field (last writer
//! wins) and records itself as the field's provenance. The environment
//! layer is the *only* place `EQUINOX_*` variables are read — the
//! simulator constructors take values, never ambient process state —
//! and it is injectable (any `Fn(&str) -> Option<String>`) so the
//! precedence tests run hermetically without touching the process
//! environment.

use crate::json::{self, Json};
use crate::spec::{fields, ExperimentSpec, FieldDef, Layer};

/// A resolution failure, pointing at the offending layer and key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolveError {
    /// Which layer produced the bad value.
    pub layer: Layer,
    /// The spec-file key, environment variable, or CLI flag at fault.
    pub key: String,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let where_ = match self.layer {
            Layer::Default => "default",
            Layer::File => "spec file",
            Layer::Env => "environment",
            Layer::Cli => "flag",
        };
        write!(f, "bad {where_} {}: {}", self.key, self.message)
    }
}

impl std::error::Error for ResolveError {}

/// One validated CLI assignment produced by [`crate::cli::parse`]:
/// the field plus the raw value string (presence flags carry `"1"`).
pub type CliSet = (&'static FieldDef, String);

/// Resolves a spec from its four layers.
///
/// * `file`: optional `(path, contents)` of a JSON spec file. Unknown
///   keys are an error (typos must not silently resolve to defaults).
/// * `env`: environment lookup, usually `|k| std::env::var(k).ok()`.
///   Unset and *empty* variables are skipped (an exported empty string
///   behaves like unset, matching the legacy readers).
/// * `cli`: validated flag assignments, applied last.
///
/// # Errors
///
/// Returns the first malformed value with its layer and key.
pub fn resolve(
    file: Option<(&str, &str)>,
    env: &dyn Fn(&str) -> Option<String>,
    cli: &[CliSet],
) -> Result<ExperimentSpec, ResolveError> {
    let mut spec = ExperimentSpec::default();

    if let Some((path, contents)) = file {
        apply_file(&mut spec, path, contents)?;
    }

    for f in fields() {
        if let Some(v) = env(f.env) {
            if v.trim().is_empty() {
                continue;
            }
            spec.set_str(f, &v, Layer::Env).map_err(|message| ResolveError {
                layer: Layer::Env,
                key: f.env.to_string(),
                message,
            })?;
        }
    }

    for (f, v) in cli {
        spec.set_str(f, v, Layer::Cli).map_err(|message| ResolveError {
            layer: Layer::Cli,
            key: f.flag.to_string(),
            message,
        })?;
    }

    Ok(spec)
}

fn apply_file(spec: &mut ExperimentSpec, path: &str, contents: &str) -> Result<(), ResolveError> {
    let doc = json::parse(contents).map_err(|e| ResolveError {
        layer: Layer::File,
        key: path.to_string(),
        message: e.to_string(),
    })?;
    let Json::Obj(pairs) = &doc else {
        return Err(ResolveError {
            layer: Layer::File,
            key: path.to_string(),
            message: "spec file must be a JSON object".into(),
        });
    };
    for (key, value) in pairs {
        // `provenance` appears in emitted specs; tolerate feeding an
        // artifact's spec block back in as a spec file.
        if key == "provenance" {
            continue;
        }
        let field = crate::spec::field_by_name(key).ok_or_else(|| ResolveError {
            layer: Layer::File,
            key: key.clone(),
            message: format!("unknown spec key (known: {})", known_keys()),
        })?;
        spec.set_json(field, value, Layer::File)
            .map_err(|message| ResolveError {
                layer: Layer::File,
                key: key.clone(),
                message,
            })?;
    }
    Ok(())
}

fn known_keys() -> String {
    fields()
        .iter()
        .map(|f| f.name)
        .collect::<Vec<_>>()
        .join(", ")
}

/// [`resolve`] against the real process: reads the spec file from disk
/// (when given) and the process environment.
///
/// # Errors
///
/// I/O failures reading the spec file and any malformed value.
pub fn resolve_process(file_path: Option<&str>, cli: &[CliSet]) -> Result<ExperimentSpec, ResolveError> {
    let contents = match file_path {
        Some(p) => Some((
            p,
            std::fs::read_to_string(p).map_err(|e| ResolveError {
                layer: Layer::File,
                key: p.to_string(),
                message: format!("cannot read spec file: {e}"),
            })?,
        )),
        None => None,
    };
    resolve(
        contents.as_ref().map(|(p, c)| (*p, c.as_str())),
        &|k| std::env::var(k).ok(),
        cli,
    )
}
