//! The typed experiment specification and its field registry.
//!
//! [`ExperimentSpec`] is the single description of *how* an experiment
//! runs: every knob of the full-system simulator (`SystemConfig`), the
//! invariant auditor (`AuditConfig`), the worker pool, and the
//! workload scaling/seeding that the binaries used to pass around as
//! ad-hoc flags and process-global environment variables. What it does
//! **not** pick is the scenario itself — that is a positional argument
//! of the driver — or per-scenario structural choices (which mesh sizes
//! fig12 sweeps, which schemes fig9 compares), which stay in scenario
//! code.
//!
//! Every field is registered in [`fields`], which gives the resolver
//! ([`crate::resolve`]), the CLI parser ([`crate::cli`]) and the usage
//! text a single source of truth: one spec-file key, one `EQUINOX_*`
//! environment variable, and one `--flag` per field, all applied
//! through the same setter with per-field provenance recorded.

use crate::json::Json;

/// Where the winning value of a field came from (last writer wins
/// across the resolution layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Built-in default.
    Default,
    /// The optional spec file (`--spec file.json`).
    File,
    /// An `EQUINOX_*` environment variable.
    Env,
    /// A command-line flag.
    Cli,
}

impl Layer {
    /// Lower-case name used in emitted provenance JSON.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Default => "default",
            Layer::File => "file",
            Layer::Env => "env",
            Layer::Cli => "cli",
        }
    }
}

/// The resolved experiment description. Field defaults mirror the
/// paper's Table 1 (via `SystemConfig::new`) and the binaries'
/// historical flag defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Grid size (8, 12 or 16; the paper evaluates 8×8).
    pub n: u16,
    /// Reply-fabric topology for schemes with dedicated reply subnets:
    /// `mesh`, `ring` or `hring` (hierarchical ring). Request networks
    /// always stay a mesh, matching the paper's baseline.
    pub topology: String,
    /// Synthetic traffic pattern for the fabric scenario: `uniform`,
    /// `hotspot`, `transpose` or `bursty`.
    pub traffic: String,
    /// Number of cache banks (Table 1: 8).
    pub n_cbs: u16,
    /// Multiplier on the per-PE instruction quota.
    pub scale: f64,
    /// Seeds averaged over by seed-sweeping runners.
    pub seeds: Vec<u64>,
    /// Primary seed for single-seeded work (design search).
    pub seed: u64,
    /// Run all 29 benchmarks instead of the quick 6-benchmark subset.
    pub full: bool,
    /// Reduced-repetition mode for the perf scenario.
    pub quick: bool,
    /// Worker-pool threads; 0 = auto (available parallelism).
    pub threads: usize,
    /// Intra-run subnet-stepping lanes inside one `System::step`:
    /// 1 (the default) steps subnets serially on the caller, `k > 1`
    /// fans them over a persistent worker team, 0 picks
    /// `cores / outer-pool threads` so outer × inner stays within the
    /// machine. Artifacts are byte-identical for every value.
    pub sim_threads: usize,
    /// Safety cap on simulated cycles per run.
    pub max_cycles: u64,
    /// NI message-queue capacity.
    pub ni_queue_cap: usize,
    /// Maximum requests concurrently inside one CB.
    pub cb_inflight_cap: usize,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// Extra router pipeline stages (0 = single-cycle router).
    pub pipeline_extra: u32,
    /// Probability a read reply travels compressed (0 disables).
    pub reply_compression: f64,
    /// Activity-driven stepping (bit-identical fast path); the inverse
    /// of the `--no-activity-gate` escape hatch.
    pub activity_gate: bool,
    /// Arm the invariant auditor.
    pub audit: bool,
    /// Cycles between auditor conservation sweeps.
    pub audit_check_interval: u64,
    /// Auditor zero-progress window before declaring deadlock
    /// (0 disables the watchdog).
    pub audit_watchdog_window: u64,
    /// Panic on the first auditor violation (else accumulate findings).
    pub audit_panic: bool,
    /// Measured cycles per load–latency point (loadlat scenario).
    pub cycles: u64,
    /// MCTS iterations for design searches driven by the spec
    /// (designer/loadlat scenarios).
    pub iters: usize,
    /// Arm the observability layer (metrics registry + time series +
    /// span profiler) on every full-system run built from this spec.
    pub obs: bool,
    /// Cycles between observability time-series samples (must be > 0;
    /// rejected at spec resolution otherwise).
    pub obs_interval: u64,
    /// Live-telemetry sink: a file path or `tcp:host:port`. One
    /// `obs.sample/v1` line-JSON frame per sampling interval plus a
    /// terminal `obs.summary/v1` frame. Setting this arms the
    /// observability layer even without `--obs`. Empty = off.
    pub obs_stream: String,
    /// Record per-flit NoC trace events (Inject/Hop/Eject).
    pub trace: bool,
    /// Path for the Chrome trace-event JSON export (empty = don't
    /// write a file; scenarios that honor tracing discard the trace).
    pub trace_out: String,
    /// Flit-trace ring capacity per network (oldest events drop).
    pub trace_capacity: usize,
    /// Directory for the content-addressed warm-state and result cache
    /// (empty = caching off). Never part of a run's cache key: two runs
    /// that differ only here are the same experiment.
    pub checkpoint_dir: String,
    provenance: Vec<Layer>,
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        ExperimentSpec {
            n: 8,
            topology: "mesh".into(),
            traffic: "uniform".into(),
            n_cbs: 8,
            scale: 0.5,
            seeds: vec![42, 7],
            seed: 7,
            full: false,
            quick: false,
            threads: 0,
            sim_threads: 1,
            max_cycles: 2_000_000,
            ni_queue_cap: 8,
            cb_inflight_cap: 128,
            l2_latency: 20,
            pipeline_extra: 0,
            reply_compression: 0.0,
            activity_gate: true,
            audit: false,
            audit_check_interval: 64,
            audit_watchdog_window: 20_000,
            audit_panic: true,
            cycles: 6_000,
            iters: 4_000,
            obs: false,
            obs_interval: 1_000,
            obs_stream: String::new(),
            trace: false,
            trace_out: String::new(),
            trace_capacity: 65_536,
            checkpoint_dir: String::new(),
            provenance: vec![Layer::Default; fields().len()],
        }
    }
}

impl ExperimentSpec {
    /// Provenance of the field registered at `index` in [`fields`].
    pub fn provenance(&self, index: usize) -> Layer {
        self.provenance[index]
    }

    /// Provenance of the named field, if registered.
    pub fn provenance_of(&self, name: &str) -> Option<Layer> {
        fields()
            .iter()
            .position(|f| f.name == name)
            .map(|i| self.provenance[i])
    }

    /// Applies one field from a string (env var or CLI value) and
    /// records `layer` as its provenance.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed value (the caller
    /// prefixes the flag/variable name).
    pub fn set_str(&mut self, field: &FieldDef, value: &str, layer: Layer) -> Result<(), String> {
        (field.set_str)(self, value)?;
        self.note(field.name, layer);
        Ok(())
    }

    /// Applies one field from a spec-file JSON value.
    ///
    /// # Errors
    ///
    /// Returns a message describing the type/range mismatch.
    pub fn set_json(&mut self, field: &FieldDef, value: &Json, layer: Layer) -> Result<(), String> {
        (field.set_json)(self, value)?;
        self.note(field.name, layer);
        Ok(())
    }

    fn note(&mut self, name: &str, layer: Layer) {
        let i = fields()
            .iter()
            .position(|f| f.name == name)
            .expect("registered field");
        self.provenance[i] = layer;
    }

    /// The full spec as JSON: every field's resolved value plus a
    /// `provenance` object mapping field name → winning layer. This is
    /// embedded in every emitted artifact so results are
    /// self-describing.
    pub fn to_json(&self) -> Json {
        let mut spec = Json::obj();
        let mut prov = Json::obj();
        for (i, f) in fields().iter().enumerate() {
            spec = spec.with(f.name, (f.get_json)(self));
            prov = prov.with(f.name, self.provenance[i].name());
        }
        spec.with("provenance", prov)
    }

    /// Canonical cache-key material for content-addressed result
    /// caching: every registered field except `checkpoint_dir`, rendered
    /// as `name=compact-json` lines in registry order. Provenance is
    /// excluded (the resolved values define the experiment, not which
    /// layer set them), and so is the cache location itself — moving the
    /// cache directory must never change what is cached.
    pub fn cache_key_material(&self) -> String {
        let mut s = String::new();
        for f in fields() {
            if f.name == "checkpoint_dir" {
                continue;
            }
            s.push_str(f.name);
            s.push('=');
            s.push_str(&(f.get_json)(self).to_compact());
            s.push('\n');
        }
        s
    }
}

/// One registered spec field: its spec-file key (`name`), CLI flag,
/// environment variable, and typed setters/getter.
#[derive(Debug)]
pub struct FieldDef {
    /// Spec-file key and provenance name.
    pub name: &'static str,
    /// CLI flag (`--scale`).
    pub flag: &'static str,
    /// Environment variable (`EQUINOX_SCALE`).
    pub env: &'static str,
    /// `false` for presence-only boolean flags (`--audit`).
    pub takes_value: bool,
    /// One-line help for the usage text.
    pub help: &'static str,
    set_str: fn(&mut ExperimentSpec, &str) -> Result<(), String>,
    set_json: fn(&mut ExperimentSpec, &Json) -> Result<(), String>,
    get_json: fn(&ExperimentSpec) -> Json,
}

fn parse_num<T: std::str::FromStr>(kind: &str, v: &str) -> Result<T, String> {
    v.trim()
        .parse::<T>()
        .map_err(|_| format!("expected {kind}, got '{v}'"))
}

/// Truthy strings: `1`, `true`, `on`, `yes` (case-insensitive);
/// falsy: empty, `0`, `false`, `off`, `no`. Anything else is an error
/// (unlike the legacy env readers, which treated typos as "on").
fn parse_bool(v: &str) -> Result<bool, String> {
    let t = v.trim().to_ascii_lowercase();
    match t.as_str() {
        "1" | "true" | "on" | "yes" => Ok(true),
        "" | "0" | "false" | "off" | "no" => Ok(false),
        _ => Err(format!("expected a boolean (1/0/true/false/on/off), got '{v}'")),
    }
}

/// Topology names the spec accepts; must match
/// `equinox_noc::TopologyKind::parse` (cross-checked by a bench test).
pub const TOPOLOGY_CHOICES: &[&str] = &["mesh", "ring", "hring"];

/// Traffic-pattern names the spec accepts; must match
/// `equinox_traffic::SyntheticPattern::parse` (cross-checked by a
/// bench test).
pub const TRAFFIC_CHOICES: &[&str] = &["uniform", "hotspot", "transpose", "bursty"];

/// Validates a closed-choice string field (lower-cased, trimmed).
fn parse_choice(kind: &str, allowed: &[&str], v: &str) -> Result<String, String> {
    let t = v.trim().to_ascii_lowercase();
    if allowed.contains(&t.as_str()) {
        Ok(t)
    } else {
        Err(format!("expected one of {} for {kind}, got '{v}'", allowed.join("/")))
    }
}

fn json_u64(v: &Json) -> Result<u64, String> {
    v.as_u64()
        .ok_or_else(|| format!("expected a non-negative integer, got {}", v.to_compact()))
}

fn json_f64(v: &Json) -> Result<f64, String> {
    v.as_f64()
        .ok_or_else(|| format!("expected a number, got {}", v.to_compact()))
}

fn json_bool(v: &Json) -> Result<bool, String> {
    v.as_bool()
        .ok_or_else(|| format!("expected a boolean, got {}", v.to_compact()))
}

/// Shorthand for the repetitive numeric/bool field definitions.
macro_rules! field {
    // Unsigned-integer-like field.
    (uint $name:literal, $flag:literal, $env:literal, $field:ident : $ty:ty, $help:literal) => {
        FieldDef {
            name: $name,
            flag: $flag,
            env: $env,
            takes_value: true,
            help: $help,
            set_str: |s, v| {
                s.$field = parse_num::<$ty>("a non-negative integer", v)?;
                Ok(())
            },
            set_json: |s, v| {
                s.$field = <$ty>::try_from(json_u64(v)?)
                    .map_err(|_| format!("value out of range for {}", $name))?;
                Ok(())
            },
            get_json: |s| Json::Num(s.$field as f64),
        }
    };
    // Float field.
    (float $name:literal, $flag:literal, $env:literal, $field:ident, $help:literal) => {
        FieldDef {
            name: $name,
            flag: $flag,
            env: $env,
            takes_value: true,
            help: $help,
            set_str: |s, v| {
                s.$field = parse_num::<f64>("a number", v)?;
                Ok(())
            },
            set_json: |s, v| {
                s.$field = json_f64(v)?;
                Ok(())
            },
            get_json: |s| Json::Num(s.$field),
        }
    };
    // Plain boolean field set *true* by flag presence.
    (flag $name:literal, $flag:literal, $env:literal, $field:ident, $help:literal) => {
        FieldDef {
            name: $name,
            flag: $flag,
            env: $env,
            takes_value: false,
            help: $help,
            set_str: |s, v| {
                s.$field = parse_bool(v)?;
                Ok(())
            },
            set_json: |s, v| {
                s.$field = json_bool(v)?;
                Ok(())
            },
            get_json: |s| Json::Bool(s.$field),
        }
    };
}

/// The field registry: one entry per [`ExperimentSpec`] field, in
/// emission order.
pub fn fields() -> &'static [FieldDef] {
    static FIELDS: &[FieldDef] = &[
        field!(uint "n", "--n", "EQUINOX_N", n: u16, "grid size (NxN routers)"),
        FieldDef {
            name: "topology",
            flag: "--topology",
            env: "EQUINOX_TOPOLOGY",
            takes_value: true,
            help: "reply-fabric topology: mesh, ring or hring",
            set_str: |s, v| {
                s.topology = parse_choice("topology", TOPOLOGY_CHOICES, v)?;
                Ok(())
            },
            set_json: |s, v| {
                let t = v
                    .as_str()
                    .ok_or_else(|| format!("expected a topology name, got {}", v.to_compact()))?;
                s.topology = parse_choice("topology", TOPOLOGY_CHOICES, t)?;
                Ok(())
            },
            get_json: |s| Json::Str(s.topology.clone()),
        },
        FieldDef {
            name: "traffic",
            flag: "--traffic",
            env: "EQUINOX_TRAFFIC",
            takes_value: true,
            help: "synthetic traffic pattern: uniform, hotspot, transpose or bursty",
            set_str: |s, v| {
                s.traffic = parse_choice("traffic", TRAFFIC_CHOICES, v)?;
                Ok(())
            },
            set_json: |s, v| {
                let t = v
                    .as_str()
                    .ok_or_else(|| format!("expected a traffic pattern, got {}", v.to_compact()))?;
                s.traffic = parse_choice("traffic", TRAFFIC_CHOICES, t)?;
                Ok(())
            },
            get_json: |s| Json::Str(s.traffic.clone()),
        },
        field!(uint "n_cbs", "--cbs", "EQUINOX_CBS", n_cbs: u16, "number of cache banks"),
        field!(float "scale", "--scale", "EQUINOX_SCALE", scale, "per-PE instruction quota multiplier"),
        FieldDef {
            name: "seeds",
            flag: "--seeds",
            env: "EQUINOX_SEEDS",
            takes_value: true,
            help: "comma-separated seed list for seed-averaged runs",
            set_str: |s, v| {
                let seeds: Result<Vec<u64>, String> = v
                    .split(',')
                    .map(|p| parse_num::<u64>("a seed (u64)", p))
                    .collect();
                let seeds = seeds?;
                if seeds.is_empty() {
                    return Err("need at least one seed".into());
                }
                s.seeds = seeds;
                Ok(())
            },
            set_json: |s, v| {
                let arr = v
                    .as_arr()
                    .ok_or_else(|| format!("expected an array of seeds, got {}", v.to_compact()))?;
                let seeds: Result<Vec<u64>, String> = arr.iter().map(json_u64).collect();
                let seeds = seeds?;
                if seeds.is_empty() {
                    return Err("need at least one seed".into());
                }
                s.seeds = seeds;
                Ok(())
            },
            get_json: |s| Json::Arr(s.seeds.iter().map(|&x| Json::Num(x as f64)).collect()),
        },
        field!(uint "seed", "--seed", "EQUINOX_SEED", seed: u64, "primary seed (design search)"),
        field!(flag "full", "--full", "EQUINOX_FULL", full, "run all 29 benchmarks (default: quick subset)"),
        field!(flag "quick", "--quick", "EQUINOX_QUICK", quick, "single-repetition perf measurements"),
        field!(uint "threads", "--threads", "EQUINOX_THREADS", threads: usize, "worker-pool threads (0 = auto)"),
        field!(uint "sim_threads", "--sim-threads", "EQUINOX_SIM_THREADS", sim_threads: usize, "subnet-stepping lanes per run (1 = serial, 0 = cores/threads)"),
        field!(uint "max_cycles", "--max-cycles", "EQUINOX_MAX_CYCLES", max_cycles: u64, "safety cap on simulated cycles"),
        field!(uint "ni_queue_cap", "--ni-queue-cap", "EQUINOX_NI_QUEUE_CAP", ni_queue_cap: usize, "NI message-queue capacity"),
        field!(uint "cb_inflight_cap", "--cb-inflight-cap", "EQUINOX_CB_INFLIGHT_CAP", cb_inflight_cap: usize, "max requests inside one CB"),
        field!(uint "l2_latency", "--l2-latency", "EQUINOX_L2_LATENCY", l2_latency: u64, "L2 hit latency in cycles"),
        field!(uint "pipeline_extra", "--pipeline-extra", "EQUINOX_PIPELINE_EXTRA", pipeline_extra: u32, "extra router pipeline stages"),
        field!(float "reply_compression", "--reply-compression", "EQUINOX_REPLY_COMPRESSION", reply_compression, "read-reply compression probability"),
        FieldDef {
            name: "activity_gate",
            flag: "--no-activity-gate",
            env: "EQUINOX_NO_ACTIVITY_GATE",
            takes_value: false,
            help: "fall back to exhaustive every-router-every-cycle stepping",
            // Flag/env polarity is inverted for compatibility with the
            // historical escape hatch: the flag's presence (or a truthy
            // EQUINOX_NO_ACTIVITY_GATE) *disables* the gate. The spec
            // file uses the direct form: "activity_gate": false.
            set_str: |s, v| {
                s.activity_gate = !parse_bool(v)?;
                Ok(())
            },
            set_json: |s, v| {
                s.activity_gate = json_bool(v)?;
                Ok(())
            },
            get_json: |s| Json::Bool(s.activity_gate),
        },
        field!(flag "audit", "--audit", "EQUINOX_AUDIT", audit, "arm the invariant auditor"),
        field!(uint "audit_check_interval", "--audit-check-interval", "EQUINOX_AUDIT_CHECK_INTERVAL", audit_check_interval: u64, "cycles between auditor sweeps"),
        field!(uint "audit_watchdog_window", "--audit-watchdog", "EQUINOX_AUDIT_WATCHDOG", audit_watchdog_window: u64, "auditor deadlock window (0 = off)"),
        field!(flag "audit_panic", "--audit-panic", "EQUINOX_AUDIT_PANIC", audit_panic, "panic on the first auditor violation"),
        field!(uint "cycles", "--cycles", "EQUINOX_CYCLES", cycles: u64, "measured cycles per load-latency point"),
        field!(uint "iters", "--iters", "EQUINOX_ITERS", iters: usize, "MCTS iterations for spec-driven design searches"),
        field!(flag "obs", "--obs", "EQUINOX_OBS", obs, "arm the observability layer (metrics + time series)"),
        // Custom instead of `field!(uint ...)`: an interval of 0 would
        // mean "sample every cycle of nothing" — degenerate sampling
        // that silently records one row per cycle forever. Rejected at
        // spec-resolution time on every layer (CLI, env, file).
        FieldDef {
            name: "obs_interval",
            flag: "--obs-interval",
            env: "EQUINOX_OBS_INTERVAL",
            takes_value: true,
            help: "cycles between observability samples (> 0)",
            set_str: |s, v| {
                let n = parse_num::<u64>("a positive integer", v)?;
                if n == 0 {
                    return Err("must be > 0 (an interval of 0 cannot sample)".into());
                }
                s.obs_interval = n;
                Ok(())
            },
            set_json: |s, v| {
                let n = json_u64(v)?;
                if n == 0 {
                    return Err("must be > 0 (an interval of 0 cannot sample)".into());
                }
                s.obs_interval = n;
                Ok(())
            },
            get_json: |s| Json::Num(s.obs_interval as f64),
        },
        FieldDef {
            name: "obs_stream",
            flag: "--obs-stream",
            env: "EQUINOX_OBS_STREAM",
            takes_value: true,
            help: "stream line-JSON telemetry frames to a path or tcp:host:port",
            set_str: |s, v| {
                s.obs_stream = v.trim().to_string();
                Ok(())
            },
            set_json: |s, v| {
                s.obs_stream = v
                    .as_str()
                    .ok_or_else(|| format!("expected a string sink, got {}", v.to_compact()))?
                    .to_string();
                Ok(())
            },
            get_json: |s| Json::Str(s.obs_stream.clone()),
        },
        field!(flag "trace", "--trace", "EQUINOX_TRACE", trace, "record per-flit NoC trace events"),
        FieldDef {
            name: "trace_out",
            flag: "--trace-out",
            env: "EQUINOX_TRACE_OUT",
            takes_value: true,
            help: "write Chrome trace-event JSON to this path",
            set_str: |s, v| {
                s.trace_out = v.trim().to_string();
                Ok(())
            },
            set_json: |s, v| {
                s.trace_out = v
                    .as_str()
                    .ok_or_else(|| format!("expected a string path, got {}", v.to_compact()))?
                    .to_string();
                Ok(())
            },
            get_json: |s| Json::Str(s.trace_out.clone()),
        },
        field!(uint "trace_capacity", "--trace-capacity", "EQUINOX_TRACE_CAPACITY", trace_capacity: usize, "flit-trace ring capacity per network"),
        FieldDef {
            name: "checkpoint_dir",
            flag: "--checkpoint-dir",
            env: "EQUINOX_CHECKPOINT_DIR",
            takes_value: true,
            help: "content-addressed warm-state and result cache directory (empty = off)",
            set_str: |s, v| {
                s.checkpoint_dir = v.trim().to_string();
                Ok(())
            },
            set_json: |s, v| {
                s.checkpoint_dir = v
                    .as_str()
                    .ok_or_else(|| format!("expected a string path, got {}", v.to_compact()))?
                    .to_string();
                Ok(())
            },
            get_json: |s| Json::Str(s.checkpoint_dir.clone()),
        },
    ];
    FIELDS
}

/// Looks a field up by its CLI flag.
pub fn field_by_flag(flag: &str) -> Option<&'static FieldDef> {
    fields().iter().find(|f| f.flag == flag)
}

/// Looks a field up by its spec-file key.
pub fn field_by_name(name: &str) -> Option<&'static FieldDef> {
    fields().iter().find(|f| f.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        let fs = fields();
        let spec = ExperimentSpec::default();
        assert_eq!(spec.provenance.len(), fs.len());
        for f in fs {
            assert!(f.flag.starts_with("--"), "{} flag malformed", f.name);
            assert!(f.env.starts_with("EQUINOX_"), "{} env malformed", f.name);
        }
        // Names, flags and env vars are all unique.
        for key in [0usize, 1, 2] {
            let mut seen: Vec<&str> = fs
                .iter()
                .map(|f| [f.name, f.flag, f.env][key])
                .collect();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), fs.len(), "duplicate key kind {key}");
        }
    }

    #[test]
    fn set_str_and_provenance() {
        let mut s = ExperimentSpec::default();
        let f = field_by_flag("--scale").unwrap();
        s.set_str(f, "0.25", Layer::Cli).unwrap();
        assert_eq!(s.scale, 0.25);
        assert_eq!(s.provenance_of("scale"), Some(Layer::Cli));
        assert_eq!(s.provenance_of("n"), Some(Layer::Default));
        assert!(s.set_str(f, "abc", Layer::Cli).is_err());
    }

    #[test]
    fn activity_gate_polarity() {
        let mut s = ExperimentSpec::default();
        let f = field_by_name("activity_gate").unwrap();
        // Env/flag form is inverted ("no-activity-gate"):
        s.set_str(f, "1", Layer::Env).unwrap();
        assert!(!s.activity_gate);
        // Spec-file form is direct:
        s.set_json(f, &Json::Bool(true), Layer::File).unwrap();
        assert!(s.activity_gate);
    }

    #[test]
    fn seeds_parse_both_ways() {
        let mut s = ExperimentSpec::default();
        let f = field_by_name("seeds").unwrap();
        s.set_str(f, "1,2,3", Layer::Cli).unwrap();
        assert_eq!(s.seeds, vec![1, 2, 3]);
        s.set_json(
            f,
            &crate::json::parse("[9, 8]").unwrap(),
            Layer::File,
        )
        .unwrap();
        assert_eq!(s.seeds, vec![9, 8]);
        assert!(s.set_str(f, "", Layer::Cli).is_err());
        assert!(s.set_json(f, &Json::Arr(vec![]), Layer::File).is_err());
    }

    #[test]
    fn obs_and_trace_fields_parse_both_ways() {
        let mut s = ExperimentSpec::default();
        assert!(!s.obs && !s.trace && s.trace_out.is_empty());
        s.set_str(field_by_flag("--obs").unwrap(), "1", Layer::Cli).unwrap();
        s.set_str(field_by_flag("--trace").unwrap(), "1", Layer::Cli).unwrap();
        s.set_str(field_by_flag("--obs-interval").unwrap(), "250", Layer::Cli)
            .unwrap();
        s.set_str(field_by_flag("--trace-out").unwrap(), "/tmp/t.json", Layer::Cli)
            .unwrap();
        s.set_str(field_by_flag("--trace-capacity").unwrap(), "128", Layer::Cli)
            .unwrap();
        assert!(s.obs && s.trace);
        assert_eq!(s.obs_interval, 250);
        assert_eq!(s.trace_out, "/tmp/t.json");
        assert_eq!(s.trace_capacity, 128);
        // Spec-file forms.
        let f = field_by_name("trace_out").unwrap();
        s.set_json(f, &Json::Str("x.json".into()), Layer::File).unwrap();
        assert_eq!(s.trace_out, "x.json");
        assert!(s.set_json(f, &Json::Num(3.0), Layer::File).is_err());
        assert_eq!(s.provenance_of("trace_out"), Some(Layer::File));
    }

    #[test]
    fn checkpoint_dir_parses_both_ways() {
        let mut s = ExperimentSpec::default();
        assert!(s.checkpoint_dir.is_empty(), "caching off by default");
        let f = field_by_flag("--checkpoint-dir").unwrap();
        assert_eq!(f.env, "EQUINOX_CHECKPOINT_DIR");
        s.set_str(f, " /tmp/ck ", Layer::Cli).unwrap();
        assert_eq!(s.checkpoint_dir, "/tmp/ck");
        s.set_json(f, &Json::Str("/tmp/other".into()), Layer::File).unwrap();
        assert_eq!(s.checkpoint_dir, "/tmp/other");
        assert!(s.set_json(f, &Json::Num(1.0), Layer::File).is_err());
        assert_eq!(s.provenance_of("checkpoint_dir"), Some(Layer::File));
    }

    #[test]
    fn obs_stream_parses_both_ways_and_enters_the_cache_key() {
        let mut s = ExperimentSpec::default();
        assert!(s.obs_stream.is_empty(), "streaming off by default");
        let f = field_by_flag("--obs-stream").unwrap();
        assert_eq!(f.env, "EQUINOX_OBS_STREAM");
        s.set_str(f, " tcp:127.0.0.1:9000 ", Layer::Cli).unwrap();
        assert_eq!(s.obs_stream, "tcp:127.0.0.1:9000");
        s.set_json(f, &Json::Str("/tmp/frames.ndjson".into()), Layer::File).unwrap();
        assert_eq!(s.obs_stream, "/tmp/frames.ndjson");
        assert!(s.set_json(f, &Json::Num(1.0), Layer::File).is_err());
        assert_eq!(s.provenance_of("obs_stream"), Some(Layer::File));
        // Unlike checkpoint_dir, the sink arms observability and thus
        // changes what the run records: it is part of the experiment.
        assert!(s.cache_key_material().contains("obs_stream"));
    }

    #[test]
    fn obs_interval_zero_is_a_fatal_config_error() {
        let mut s = ExperimentSpec::default();
        let f = field_by_flag("--obs-interval").unwrap();
        s.set_str(f, "250", Layer::Cli).unwrap();
        assert_eq!(s.obs_interval, 250);
        for (layer, res) in [
            (Layer::Cli, s.set_str(f, "0", Layer::Cli)),
            (Layer::Env, s.set_str(f, " 0 ", Layer::Env)),
        ] {
            let err = res.unwrap_err();
            assert!(err.contains("> 0"), "{layer:?}: error must say > 0: {err}");
        }
        let err = s.set_json(f, &Json::Num(0.0), Layer::File).unwrap_err();
        assert!(err.contains("> 0"), "file layer must reject 0 too: {err}");
        assert_eq!(s.obs_interval, 250, "rejected values must not stick");
    }

    #[test]
    fn cache_key_material_ignores_cache_location_and_provenance() {
        let mut a = ExperimentSpec::default();
        let mut b = ExperimentSpec::default();
        let dir = field_by_name("checkpoint_dir").unwrap();
        b.set_str(dir, "/tmp/elsewhere", Layer::Cli).unwrap();
        // Same experiment, different cache dir and provenance → same key.
        assert_eq!(a.cache_key_material(), b.cache_key_material());
        assert!(!a.cache_key_material().contains("checkpoint_dir"));
        // Any experiment knob changes the key material.
        a.set_str(field_by_name("scale").unwrap(), "0.25", Layer::Cli).unwrap();
        assert_ne!(a.cache_key_material(), b.cache_key_material());
    }

    #[test]
    fn sim_threads_parses_through_every_layer_form() {
        let mut s = ExperimentSpec::default();
        assert_eq!(s.sim_threads, 1, "serial by default");
        let f = field_by_flag("--sim-threads").unwrap();
        assert_eq!(f.env, "EQUINOX_SIM_THREADS");
        s.set_str(f, "4", Layer::Env).unwrap();
        assert_eq!(s.sim_threads, 4);
        s.set_json(f, &Json::Num(8.0), Layer::File).unwrap();
        assert_eq!(s.sim_threads, 8);
        assert_eq!(s.provenance_of("sim_threads"), Some(Layer::File));
        assert!(s.set_str(f, "many", Layer::Cli).is_err());
    }

    #[test]
    fn topology_and_traffic_parse_and_reject() {
        let mut s = ExperimentSpec::default();
        assert_eq!(s.topology, "mesh");
        assert_eq!(s.traffic, "uniform");
        let topo = field_by_flag("--topology").unwrap();
        assert_eq!(topo.env, "EQUINOX_TOPOLOGY");
        s.set_str(topo, " Ring ", Layer::Cli).unwrap();
        assert_eq!(s.topology, "ring", "trimmed and lower-cased");
        s.set_json(topo, &Json::Str("hring".into()), Layer::File).unwrap();
        assert_eq!(s.topology, "hring");
        let err = s.set_str(topo, "torus", Layer::Cli).unwrap_err();
        assert!(err.contains("mesh/ring/hring"), "error lists choices: {err}");
        assert!(s.set_json(topo, &Json::Num(3.0), Layer::File).is_err());
        assert_eq!(s.provenance_of("topology"), Some(Layer::File));

        let traffic = field_by_flag("--traffic").unwrap();
        for p in TRAFFIC_CHOICES {
            s.set_str(traffic, p, Layer::Env).unwrap();
            assert_eq!(s.traffic, *p);
        }
        assert!(s.set_str(traffic, "tornado", Layer::Cli).is_err());
        assert_eq!(s.provenance_of("traffic"), Some(Layer::Env));
    }

    #[test]
    fn to_json_embeds_provenance() {
        let mut s = ExperimentSpec::default();
        let f = field_by_flag("--audit").unwrap();
        s.set_str(f, "1", Layer::Env).unwrap();
        let j = s.to_json();
        assert_eq!(j.get("audit"), Some(&Json::Bool(true)));
        let prov = j.get("provenance").unwrap();
        assert_eq!(prov.get("audit").and_then(Json::as_str), Some("env"));
        assert_eq!(prov.get("scale").and_then(Json::as_str), Some("default"));
    }
}
