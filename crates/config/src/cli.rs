//! The shared, strict command-line parser.
//!
//! Every binary (the unified `equinox` driver and the four legacy
//! wrappers) parses its arguments here, so they all share one flag
//! vocabulary — the spec field registry — and one failure discipline:
//! an unknown flag, a flag missing its value, or a malformed value is a
//! hard error naming the offender, never a silent fall-back to a
//! default (the historical behavior this replaces).
//!
//! Grammar:
//!
//! ```text
//! <positional>* [--spec FILE] [--out PATH] [<field flag> [VALUE]]* [--help]
//! ```
//!
//! Field flags come from [`crate::spec::fields`]; callers may register
//! extra binary-specific flags (e.g. `designer --svg PATH`) through
//! [`Extras`].

use crate::spec::{field_by_flag, FieldDef};

/// Binary-specific flags beyond the shared field registry.
#[derive(Debug, Clone, Copy, Default)]
pub struct Extras<'a> {
    /// Extra flags that take a value (`[("--svg", "write an SVG")]`).
    pub value_flags: &'a [(&'a str, &'a str)],
    /// Extra presence-only flags.
    pub bool_flags: &'a [(&'a str, &'a str)],
}

/// A successfully parsed command line.
#[derive(Debug, Default)]
pub struct Parsed {
    /// Positional arguments in order (scenario names).
    pub positionals: Vec<String>,
    /// `--spec FILE`, if given.
    pub spec_file: Option<String>,
    /// `--out PATH`, if given.
    pub out: Option<String>,
    /// Validated spec-field assignments in command-line order
    /// (presence flags carry `"1"`), ready for the resolver.
    pub sets: Vec<(&'static FieldDef, String)>,
    /// Values of the caller's extra flags: `(flag, value)`;
    /// presence-only extras carry an empty value.
    pub extras: Vec<(String, String)>,
}

impl Parsed {
    /// The value of a binary-specific extra flag, if present.
    pub fn extra(&self, flag: &str) -> Option<&str> {
        self.extras
            .iter()
            .rev()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.as_str())
    }

    /// `true` if a presence-only extra flag was given.
    pub fn has_extra(&self, flag: &str) -> bool {
        self.extras.iter().any(|(f, _)| f == flag)
    }
}

/// A parse failure; [`std::fmt::Display`] names the offending flag, and
/// the driver follows it with the usage text and a nonzero exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `--help` / `-h` was requested (not an error; print usage, exit 0).
    Help,
    /// A flag not in the registry or the extras.
    UnknownFlag(String),
    /// A value-taking flag at the end of the line, or followed by
    /// another flag.
    MissingValue(String),
    /// A value that does not parse for its field.
    BadValue {
        /// The flag at fault.
        flag: String,
        /// What was wrong with its value.
        message: String,
    },
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Help => write!(f, "help requested"),
            CliError::UnknownFlag(flag) => write!(f, "unknown flag '{flag}'"),
            CliError::MissingValue(flag) => write!(f, "flag '{flag}' is missing its value"),
            CliError::BadValue { flag, message } => {
                write!(f, "bad value for '{flag}': {message}")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// Parses `args` (without the program name) against the shared field
/// registry plus `extras`.
///
/// Values are validated eagerly (on a scratch spec) so a malformed
/// `--scale x` fails here, before any layer resolution or simulation
/// starts.
///
/// # Errors
///
/// [`CliError::Help`] on `--help`/`-h`; otherwise the first unknown
/// flag, missing value, or malformed value.
pub fn parse(args: &[String], extras: Extras<'_>) -> Result<Parsed, CliError> {
    let mut parsed = Parsed::default();
    let mut scratch = crate::spec::ExperimentSpec::default();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        let take_value = |i: &mut usize| -> Result<String, CliError> {
            match args.get(*i + 1) {
                Some(v) if !v.starts_with("--") => {
                    *i += 1;
                    Ok(v.clone())
                }
                _ => Err(CliError::MissingValue(a.to_string())),
            }
        };
        if a == "--help" || a == "-h" {
            return Err(CliError::Help);
        } else if a == "--spec" {
            parsed.spec_file = Some(take_value(&mut i)?);
        } else if a == "--out" {
            parsed.out = Some(take_value(&mut i)?);
        } else if let Some(field) = field_by_flag(a) {
            let raw = if field.takes_value {
                take_value(&mut i)?
            } else {
                "1".to_string()
            };
            scratch
                .set_str(field, &raw, crate::spec::Layer::Cli)
                .map_err(|message| CliError::BadValue {
                    flag: a.to_string(),
                    message,
                })?;
            parsed.sets.push((field, raw));
        } else if let Some((flag, _)) = extras.value_flags.iter().find(|(f, _)| *f == a) {
            let v = take_value(&mut i)?;
            parsed.extras.push(((*flag).to_string(), v));
        } else if let Some((flag, _)) = extras.bool_flags.iter().find(|(f, _)| *f == a) {
            parsed.extras.push(((*flag).to_string(), String::new()));
        } else if a.starts_with('-') && a.len() > 1 && !a[1..2].chars().all(|c| c.is_ascii_digit())
        {
            return Err(CliError::UnknownFlag(a.to_string()));
        } else {
            parsed.positionals.push(a.to_string());
        }
        i += 1;
    }
    Ok(parsed)
}

/// The shared flag section of a usage message: driver flags, then one
/// line per registered spec field, then the caller's extras.
pub fn flag_help(extras: Extras<'_>) -> String {
    let mut out = String::new();
    let mut line = |flag: &str, value: bool, help: &str| {
        let val = if value { " VALUE" } else { "" };
        out.push_str(&format!("  {:28} {help}\n", format!("{flag}{val}")));
    };
    line("--spec", true, "layer a JSON spec file under env/CLI overrides");
    line("--out", true, "write the JSON artifact to this path");
    line("--help", false, "print this message");
    for f in crate::spec::fields() {
        line(f.flag, f.takes_value, f.help);
    }
    for (flag, help) in extras.value_flags {
        line(flag, true, help);
    }
    for (flag, help) in extras.bool_flags {
        line(flag, false, help);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn positionals_flags_and_extras() {
        let extras = Extras {
            value_flags: &[("--svg", "svg path")],
            bool_flags: &[("--csv", "emit csv")],
        };
        let p = parse(
            &argv(&["fig9", "--scale", "0.3", "--audit", "--svg", "x.svg", "--csv"]),
            extras,
        )
        .unwrap();
        assert_eq!(p.positionals, vec!["fig9"]);
        assert_eq!(p.sets.len(), 2);
        assert_eq!(p.extra("--svg"), Some("x.svg"));
        assert!(p.has_extra("--csv"));
    }

    #[test]
    fn unknown_flag_is_fatal() {
        let e = parse(&argv(&["--bogus"]), Extras::default()).unwrap_err();
        assert_eq!(e, CliError::UnknownFlag("--bogus".into()));
    }

    #[test]
    fn malformed_value_names_the_flag() {
        let e = parse(&argv(&["--scale", "fast"]), Extras::default()).unwrap_err();
        match e {
            CliError::BadValue { flag, .. } => assert_eq!(flag, "--scale"),
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn missing_value_detected() {
        let e = parse(&argv(&["--threads"]), Extras::default()).unwrap_err();
        assert_eq!(e, CliError::MissingValue("--threads".into()));
        let e = parse(&argv(&["--threads", "--audit"]), Extras::default()).unwrap_err();
        assert_eq!(e, CliError::MissingValue("--threads".into()));
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        // A leading dash followed by a digit is a (possibly invalid)
        // value, reported as such rather than as an unknown flag.
        let e = parse(&argv(&["--threads", "-3"]), Extras::default()).unwrap_err();
        match e {
            CliError::BadValue { flag, .. } => assert_eq!(flag, "--threads"),
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn help_flag() {
        assert_eq!(parse(&argv(&["-h"]), Extras::default()).unwrap_err(), CliError::Help);
        assert!(flag_help(Extras::default()).contains("--no-activity-gate"));
    }
}
