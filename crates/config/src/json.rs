//! A minimal, dependency-free JSON value model.
//!
//! The build environment is fully offline, so this is a std-only
//! replacement for serde_json covering exactly what the experiment
//! spine needs: a [`Json`] tree, a writer (compact and pretty), and a
//! strict parser. Objects preserve insertion order so emitted artifacts
//! are deterministic and diffable.
//!
//! Number handling: all numbers are `f64` (like JavaScript). The writer
//! prints integral values without a decimal point (`42`, not `42.0`)
//! and everything else via Rust's shortest-roundtrip `Display`, so
//! `parse(write(x)) == x` bit-for-bit for every finite value — the
//! round-trip tests in `tests/json_roundtrip.rs` pin this down.
//! Non-finite values (NaN/inf) have no JSON representation and are
//! written as `null`.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, keys need not be unique on parse
    /// (last one wins for [`Json::get`]).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object (builder entry point).
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts `key: value` into an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            _ => panic!("Json::with on a non-object"),
        }
        self
    }

    /// Looks a key up in an object (last writer wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering (`{"k": 1, "x": [2, 3]}`).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing
    /// newline — the format of every emitted artifact file.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            out.push(' ');
                        }
                    }
                    newline(out, indent, depth + 1);
                    v.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            out.push(' ');
                        }
                    }
                    newline(out, indent, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    newline(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..(w * depth) {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    use fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) && !(n == 0.0 && n.is_sign_negative()) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}
impl From<u16> for Json {
    fn from(n: u16) -> Json {
        Json::Num(f64::from(n))
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// A parse failure: what went wrong and where (byte offset and
/// 1-based line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// 1-based line of the failure.
    pub line: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first syntax violation.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        let line = 1 + self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        JsonError {
            message: msg.into(),
            offset: self.pos,
            line,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired UTF-16 surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("unpaired UTF-16 surrogate"))?
                            };
                            s.push(c);
                            // hex4 leaves pos past the digits; continue
                            // without the shared +1 below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unharmed:
                    // take the whole next char from the source slice.
                    let rest = &self.bytes[self.pos..];
                    let s_rest = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s_rest.chars().next().expect("peeked a byte");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_shapes() {
        let v = Json::obj()
            .with("a", 1u64)
            .with("b", vec![Json::Num(2.5), Json::Null])
            .with("c", "x\"y");
        assert_eq!(v.to_compact(), r#"{"a": 1, "b": [2.5, null], "c": "x\"y"}"#);
    }

    #[test]
    fn integral_floats_print_without_point() {
        assert_eq!(Json::Num(42.0).to_compact(), "42");
        assert_eq!(Json::Num(-3.0).to_compact(), "-3");
        assert_eq!(Json::Num(0.5).to_compact(), "0.5");
    }

    #[test]
    fn parse_basics() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" [1, 2e1, -0.5] ").unwrap().as_arr().unwrap().len(), 3);
        assert!(parse("{,}").is_err());
        assert!(parse("[1, 2] garbage").is_err());
    }

    #[test]
    fn error_carries_line() {
        let e = parse("{\n  \"a\": 1,\n  oops\n}").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse(r#""😀""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired high surrogate");
    }
}
