//! Writer/parser round-trip guarantees for the JSON value model: every
//! tree survives `parse(write(tree))` exactly — floats bit-for-bit,
//! nesting, escapes, unicode — and canonical texts survive
//! `write(parse(text))`.

use equinox_config::json::{parse, Json};

fn roundtrip(v: &Json) {
    for text in [v.to_compact(), v.pretty()] {
        let back = parse(&text).unwrap_or_else(|e| panic!("reparse of {text:?}: {e}"));
        assert_eq!(&back, v, "round-trip through {text:?}");
    }
}

#[test]
fn scalars_round_trip() {
    for v in [
        Json::Null,
        Json::Bool(true),
        Json::Bool(false),
        Json::Num(0.0),
        Json::Num(-1.0),
        Json::Num(42.0),
        Json::Str(String::new()),
        Json::Str("plain".into()),
    ] {
        roundtrip(&v);
    }
}

#[test]
fn floats_round_trip_bit_for_bit() {
    for x in [
        0.1,
        1.0 / 3.0,
        f64::MIN_POSITIVE,
        f64::MAX,
        -2.2250738585072014e-308,
        1e300,
        123_456_789.123_456_79,
        (2u64.pow(53) - 1) as f64,
        -0.0,
    ] {
        let text = Json::Num(x).to_compact();
        let back = parse(&text).unwrap().as_f64().unwrap();
        assert_eq!(
            back.to_bits(),
            x.to_bits(),
            "{x:e} -> {text} -> {back:e} lost bits"
        );
    }
}

#[test]
fn escapes_round_trip() {
    let nasty = "quote:\" backslash:\\ newline:\n tab:\t cr:\r bell:\u{7} del:\u{1f} unicode:λ→😀";
    roundtrip(&Json::Str(nasty.into()));
    // And the escape syntax itself parses to the right characters.
    assert_eq!(
        parse(r#""A\t\"\\é😀""#).unwrap(),
        Json::Str("A\t\"\\é😀".into())
    );
}

#[test]
fn deep_nesting_round_trips() {
    let v = Json::obj()
        .with("meta", Json::obj().with("name", "equinox").with("version", 1u64))
        .with(
            "rows",
            vec![
                Json::Arr(vec![Json::Num(1.5), Json::Null, Json::Bool(false)]),
                Json::obj().with("empty_arr", Vec::<Json>::new()).with("empty_obj", Json::obj()),
            ],
        )
        .with("curve", vec![Json::Num(0.1), Json::Num(0.30000000000000004)]);
    roundtrip(&v);
}

#[test]
fn object_order_is_preserved() {
    let text = r#"{"z": 1, "a": 2, "m": 3}"#;
    let v = parse(text).unwrap();
    assert_eq!(v.to_compact(), text, "objects must stay insertion-ordered");
}

#[test]
fn parser_rejects_malformed_documents() {
    for bad in [
        "",
        "{",
        "[1 2]",
        "{\"a\" 1}",
        "{\"a\": 1,}",
        "tru",
        "\"unterminated",
        "\"bad \\x escape\"",
        "01e",
        "nan",
        "{\"a\": 1} {\"b\": 2}",
    ] {
        assert!(parse(bad).is_err(), "{bad:?} must not parse");
    }
}
