//! Layered resolution precedence: defaults < spec file < environment <
//! CLI, with provenance recorded per field. The environment layer is
//! injected as a closure, so these tests are hermetic — no process
//! environment is read or written.

use equinox_config::resolve::{resolve, CliSet};
use equinox_config::spec::{field_by_flag, Layer};

fn no_env(_: &str) -> Option<String> {
    None
}

fn cli(pairs: &[(&str, &str)]) -> Vec<CliSet> {
    pairs
        .iter()
        .map(|(flag, v)| (field_by_flag(flag).expect("known flag"), v.to_string()))
        .collect()
}

#[test]
fn defaults_when_nothing_is_set() {
    let s = resolve(None, &no_env, &[]).unwrap();
    assert_eq!(s.n, 8);
    assert_eq!(s.scale, 0.5);
    assert_eq!(s.seeds, vec![42, 7]);
    assert!(s.activity_gate);
    assert!(!s.audit);
    for f in equinox_config::fields() {
        assert_eq!(s.provenance_of(f.name), Some(Layer::Default), "{}", f.name);
    }
}

#[test]
fn file_overrides_defaults() {
    let file = r#"{"scale": 0.1, "audit": true, "seeds": [1, 2, 3], "activity_gate": false}"#;
    let s = resolve(Some(("t.json", file)), &no_env, &[]).unwrap();
    assert_eq!(s.scale, 0.1);
    assert!(s.audit);
    assert_eq!(s.seeds, vec![1, 2, 3]);
    assert!(!s.activity_gate);
    assert_eq!(s.provenance_of("scale"), Some(Layer::File));
    assert_eq!(s.provenance_of("n"), Some(Layer::Default));
}

#[test]
fn env_overrides_file() {
    let file = r#"{"scale": 0.1, "threads": 2}"#;
    let env = |k: &str| match k {
        "EQUINOX_SCALE" => Some("0.9".to_string()),
        _ => None,
    };
    let s = resolve(Some(("t.json", file)), &env, &[]).unwrap();
    assert_eq!(s.scale, 0.9, "env beats file");
    assert_eq!(s.threads, 2, "untouched file value survives");
    assert_eq!(s.provenance_of("scale"), Some(Layer::Env));
    assert_eq!(s.provenance_of("threads"), Some(Layer::File));
}

#[test]
fn cli_overrides_everything() {
    let file = r#"{"scale": 0.1}"#;
    let env = |k: &str| (k == "EQUINOX_SCALE").then(|| "0.9".to_string());
    let s = resolve(Some(("t.json", file)), &env, &cli(&[("--scale", "0.25")])).unwrap();
    assert_eq!(s.scale, 0.25, "cli beats env beats file");
    assert_eq!(s.provenance_of("scale"), Some(Layer::Cli));
}

#[test]
fn legacy_env_vars_keep_their_semantics() {
    // EQUINOX_AUDIT=1 arms the auditor; EQUINOX_NO_ACTIVITY_GATE=1
    // disables the gate; empty strings behave like unset.
    let env = |k: &str| match k {
        "EQUINOX_AUDIT" => Some("1".to_string()),
        "EQUINOX_NO_ACTIVITY_GATE" => Some("1".to_string()),
        "EQUINOX_THREADS" => Some(String::new()),
        _ => None,
    };
    let s = resolve(None, &env, &[]).unwrap();
    assert!(s.audit);
    assert!(!s.activity_gate);
    assert_eq!(s.threads, 0);
    assert_eq!(s.provenance_of("threads"), Some(Layer::Default));
}

#[test]
fn unknown_spec_key_is_fatal() {
    let e = resolve(Some(("t.json", r#"{"scal": 0.1}"#)), &no_env, &[]).unwrap_err();
    assert_eq!(e.key, "scal");
    assert_eq!(e.layer, Layer::File);
    assert!(e.message.contains("unknown spec key"));
}

#[test]
fn malformed_values_name_their_layer_and_key() {
    let e = resolve(Some(("t.json", r#"{"scale": "fast"}"#)), &no_env, &[]).unwrap_err();
    assert_eq!((e.layer, e.key.as_str()), (Layer::File, "scale"));

    let env = |k: &str| (k == "EQUINOX_THREADS").then(|| "many".to_string());
    let e = resolve(None, &env, &[]).unwrap_err();
    assert_eq!((e.layer, e.key.as_str()), (Layer::Env, "EQUINOX_THREADS"));

    let e = resolve(None, &no_env, &cli(&[("--seeds", "1,x")])).unwrap_err();
    assert_eq!((e.layer, e.key.as_str()), (Layer::Cli, "--seeds"));
}

#[test]
fn emitted_spec_block_feeds_back_as_a_spec_file() {
    // Artifacts embed the resolved spec (with a provenance object);
    // that block must itself be a valid spec file.
    let s = resolve(None, &no_env, &cli(&[("--scale", "0.33"), ("--audit", "1")])).unwrap();
    let text = s.to_json().pretty();
    let back = resolve(Some(("emitted.json", &text)), &no_env, &[]).unwrap();
    assert_eq!(back.scale, 0.33);
    assert!(back.audit);
    assert_eq!(back.provenance_of("scale"), Some(Layer::File));
}

#[test]
fn every_field_is_reachable_from_every_layer() {
    // Round a full non-default spec through the file layer: each field
    // accepts its own to_json() form.
    let defaults = resolve(None, &no_env, &[]).unwrap();
    let mut tweaked = defaults.clone();
    tweaked.n = 12;
    tweaked.n_cbs = 12;
    tweaked.scale = 0.7;
    tweaked.seeds = vec![5];
    tweaked.seed = 11;
    tweaked.full = true;
    tweaked.quick = true;
    tweaked.threads = 3;
    tweaked.max_cycles = 1234;
    tweaked.ni_queue_cap = 4;
    tweaked.cb_inflight_cap = 64;
    tweaked.l2_latency = 25;
    tweaked.pipeline_extra = 2;
    tweaked.reply_compression = 0.5;
    tweaked.activity_gate = false;
    tweaked.audit = true;
    tweaked.audit_check_interval = 32;
    tweaked.audit_watchdog_window = 500;
    tweaked.audit_panic = false;
    tweaked.cycles = 999;
    tweaked.iters = 50;
    let text = tweaked.to_json().pretty();
    let back = resolve(Some(("full.json", &text)), &no_env, &[]).unwrap();
    for f in equinox_config::fields() {
        assert_eq!(back.provenance_of(f.name), Some(Layer::File), "{}", f.name);
    }
    // Compare the value payloads (provenance differs by construction).
    assert_eq!(back.to_json().get("n"), tweaked.to_json().get("n"));
    assert_eq!(text.replace("\"cli\"", "\"file\"").replace("\"default\"", "\"file\""),
        back.to_json().pretty().replace("\"cli\"", "\"file\""));
}
