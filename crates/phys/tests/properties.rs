//! Property-based tests for the interposer physical model.

use equinox_phys::geom::{Coord, Direction};
use equinox_phys::rdl::rdl_layers_required;
use equinox_phys::segment::{count_crossings, Segment};
use equinox_phys::wire::WireModel;
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = Coord> {
    (0u16..16, 0u16..16).prop_map(|(x, y)| Coord::new(x, y))
}

fn segment() -> impl Strategy<Value = Segment> {
    (coord(), coord())
        .prop_filter("nonzero wires", |(a, b)| a != b)
        .prop_map(|(a, b)| Segment::new(a, b))
}

proptest! {
    #[test]
    fn manhattan_triangle_inequality(a in coord(), b in coord(), c in coord()) {
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
    }

    #[test]
    fn manhattan_symmetric_chebyshev_bounded(a in coord(), b in coord()) {
        prop_assert_eq!(a.manhattan(b), b.manhattan(a));
        prop_assert!(a.chebyshev(b) <= a.manhattan(b));
        prop_assert!(a.manhattan(b) <= 2 * a.chebyshev(b));
    }

    #[test]
    fn index_roundtrip(c in coord()) {
        prop_assert_eq!(Coord::from_index(c.to_index(16), 16), c);
    }

    #[test]
    fn queen_attack_is_symmetric(a in coord(), b in coord()) {
        prop_assert_eq!(a.queen_attacks(b), b.queen_attacks(a));
    }

    #[test]
    fn step_moves_one_hop(c in coord(), d in 0usize..4) {
        let dir = Direction::ALL[d];
        if let Some(n) = c.step(dir, 16, 16) {
            prop_assert_eq!(c.manhattan(n), 1);
            prop_assert_eq!(n.step(dir.opposite(), 16, 16), Some(c));
        }
    }

    #[test]
    fn crossing_is_symmetric(s1 in segment(), s2 in segment()) {
        prop_assert_eq!(s1.crosses(&s2), s2.crosses(&s1));
    }

    #[test]
    fn shared_endpoints_never_cross(a in coord(), b in coord(), c in coord()) {
        prop_assume!(a != b && a != c);
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(a, c);
        prop_assert!(!s1.crosses(&s2));
    }

    #[test]
    fn crossing_count_permutation_invariant(mut segs in prop::collection::vec(segment(), 0..8)) {
        let n = count_crossings(&segs);
        segs.reverse();
        prop_assert_eq!(count_crossings(&segs), n);
    }

    #[test]
    fn rdl_layers_bounded(segs in prop::collection::vec(segment(), 0..8)) {
        let layers = rdl_layers_required(&segs);
        prop_assert!(layers >= 1);
        prop_assert!(layers <= segs.len().max(1));
        // Zero crossings iff one layer.
        if count_crossings(&segs) == 0 {
            prop_assert_eq!(layers, 1);
        } else {
            prop_assert!(layers >= 2);
        }
    }

    #[test]
    fn wire_latency_monotone_in_length(s in segment()) {
        let m = WireModel::default();
        let lat = m.latency_cycles(&s);
        prop_assert!(lat >= 1);
        prop_assert_eq!(m.fits_one_cycle(&s), lat == 1);
        // Length scales linearly with pitch.
        let double = WireModel { tile_pitch_mm: m.tile_pitch_mm * 2.0, ..m };
        prop_assert!(double.length_mm(&s) >= m.length_mm(&s));
    }
}
