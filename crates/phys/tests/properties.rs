//! Randomized (seeded, deterministic) tests for the interposer
//! physical model.

use equinox_exec::Rng;
use equinox_phys::geom::{Coord, Direction};
use equinox_phys::rdl::rdl_layers_required;
use equinox_phys::segment::{count_crossings, Segment};
use equinox_phys::wire::WireModel;

const CASES: u64 = 256;

fn coord(rng: &mut Rng) -> Coord {
    Coord::new(rng.random_range(0u16..16), rng.random_range(0u16..16))
}

fn segment(rng: &mut Rng) -> Segment {
    loop {
        let a = coord(rng);
        let b = coord(rng);
        if a != b {
            return Segment::new(a, b);
        }
    }
}

fn segments(rng: &mut Rng, max: usize) -> Vec<Segment> {
    let n = rng.random_range(0..max);
    (0..n).map(|_| segment(rng)).collect()
}

#[test]
fn manhattan_triangle_inequality() {
    let mut rng = Rng::seed_from_u64(0x7A1);
    for _ in 0..CASES {
        let (a, b, c) = (coord(&mut rng), coord(&mut rng), coord(&mut rng));
        assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
    }
}

#[test]
fn manhattan_symmetric_chebyshev_bounded() {
    let mut rng = Rng::seed_from_u64(0x7A2);
    for _ in 0..CASES {
        let (a, b) = (coord(&mut rng), coord(&mut rng));
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert!(a.chebyshev(b) <= a.manhattan(b));
        assert!(a.manhattan(b) <= 2 * a.chebyshev(b));
    }
}

#[test]
fn index_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x7A3);
    for _ in 0..CASES {
        let c = coord(&mut rng);
        assert_eq!(Coord::from_index(c.to_index(16), 16), c);
    }
}

#[test]
fn queen_attack_is_symmetric() {
    let mut rng = Rng::seed_from_u64(0x7A4);
    for _ in 0..CASES {
        let (a, b) = (coord(&mut rng), coord(&mut rng));
        assert_eq!(a.queen_attacks(b), b.queen_attacks(a));
    }
}

#[test]
fn step_moves_one_hop() {
    let mut rng = Rng::seed_from_u64(0x7A5);
    for _ in 0..CASES {
        let c = coord(&mut rng);
        let dir = Direction::ALL[rng.random_range(0usize..4)];
        if let Some(n) = c.step(dir, 16, 16) {
            assert_eq!(c.manhattan(n), 1);
            assert_eq!(n.step(dir.opposite(), 16, 16), Some(c));
        }
    }
}

#[test]
fn crossing_is_symmetric() {
    let mut rng = Rng::seed_from_u64(0x7A6);
    for _ in 0..CASES {
        let s1 = segment(&mut rng);
        let s2 = segment(&mut rng);
        assert_eq!(s1.crosses(&s2), s2.crosses(&s1));
    }
}

#[test]
fn shared_endpoints_never_cross() {
    let mut rng = Rng::seed_from_u64(0x7A7);
    for _ in 0..CASES {
        let (a, b, c) = (coord(&mut rng), coord(&mut rng), coord(&mut rng));
        if a == b || a == c {
            continue;
        }
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(a, c);
        assert!(!s1.crosses(&s2));
    }
}

#[test]
fn crossing_count_permutation_invariant() {
    let mut rng = Rng::seed_from_u64(0x7A8);
    for _ in 0..CASES {
        let mut segs = segments(&mut rng, 8);
        let n = count_crossings(&segs);
        segs.reverse();
        assert_eq!(count_crossings(&segs), n);
    }
}

#[test]
fn rdl_layers_bounded() {
    let mut rng = Rng::seed_from_u64(0x7A9);
    for _ in 0..CASES {
        let segs = segments(&mut rng, 8);
        let layers = rdl_layers_required(&segs);
        assert!(layers >= 1);
        assert!(layers <= segs.len().max(1));
        // Zero crossings iff one layer.
        if count_crossings(&segs) == 0 {
            assert_eq!(layers, 1);
        } else {
            assert!(layers >= 2);
        }
    }
}

#[test]
fn wire_latency_monotone_in_length() {
    let mut rng = Rng::seed_from_u64(0x7AA);
    for _ in 0..CASES {
        let s = segment(&mut rng);
        let m = WireModel::default();
        let lat = m.latency_cycles(&s);
        assert!(lat >= 1);
        assert_eq!(m.fits_one_cycle(&s), lat == 1);
        // Length scales linearly with pitch.
        let double = WireModel {
            tile_pitch_mm: m.tile_pitch_mm * 2.0,
            ..m
        };
        assert!(double.length_mm(&s) >= m.length_mm(&s));
    }
}
