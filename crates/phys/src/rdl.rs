//! Redistribution-layer (RDL) requirements for a set of interposer wires.
//!
//! Two wires that cross must live on different metal layers; the minimum
//! number of RDLs for a wiring plan is the chromatic number of its crossing
//! graph. Because the dual-damascene process makes every extra copper layer
//! expensive (§2.1, §3.2.3), the paper treats the crossing count and the
//! resulting layer count as first-class costs. An EIR selection with zero
//! crossings — which the MCTS finds for 8×8 (§4.3) — needs exactly one RDL.

use crate::segment::{crossing_pairs, Segment};

/// Estimates how many RDL metal layers the wiring plan needs.
///
/// Uses greedy colouring of the crossing graph in descending-degree order
/// (Welsh–Powell). This is exact for the sparse, planar-ish crossing graphs
/// interposer links produce in practice, and an upper bound in general —
/// matching how a router would actually assign layers.
///
/// An empty plan or a plan with no crossings needs one layer (wires still
/// have to be routed somewhere).
///
/// ```
/// # use equinox_phys::{geom::Coord, rdl::rdl_layers_required, segment::Segment};
/// let no_cross = [Segment::new(Coord::new(0, 0), Coord::new(2, 0))];
/// assert_eq!(rdl_layers_required(&no_cross), 1);
///
/// let cross = [
///     Segment::new(Coord::new(0, 1), Coord::new(2, 1)),
///     Segment::new(Coord::new(1, 0), Coord::new(1, 2)),
/// ];
/// assert_eq!(rdl_layers_required(&cross), 2);
/// ```
pub fn rdl_layers_required(segments: &[Segment]) -> usize {
    if segments.is_empty() {
        return 1;
    }
    let pairs = crossing_pairs(segments);
    if pairs.is_empty() {
        return 1;
    }
    let n = segments.len();
    let mut adj = vec![Vec::new(); n];
    for (i, j) in pairs {
        adj[i].push(j);
        adj[j].push(i);
    }
    // Welsh–Powell: colour vertices in order of decreasing degree.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(adj[v].len()));
    let mut colour = vec![usize::MAX; n];
    let mut max_colour = 0;
    for &v in &order {
        let mut used = vec![false; max_colour + 1];
        for &u in &adj[v] {
            if colour[u] != usize::MAX && colour[u] <= max_colour {
                used[colour[u]] = true;
            }
        }
        let c = (0..).find(|&c| c > max_colour || !used[c]).expect("unbounded");
        colour[v] = c;
        max_colour = max_colour.max(c);
    }
    max_colour + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Coord;

    fn c(x: u16, y: u16) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn empty_plan_needs_one_layer() {
        assert_eq!(rdl_layers_required(&[]), 1);
    }

    #[test]
    fn crossing_free_plan_needs_one_layer() {
        // Parallel horizontal wires on different rows.
        let wires: Vec<Segment> = (0..4)
            .map(|y| Segment::new(c(0, y), c(4, y)))
            .collect();
        assert_eq!(rdl_layers_required(&wires), 1);
    }

    #[test]
    fn single_crossing_needs_two_layers() {
        let wires = [
            Segment::new(c(0, 1), c(2, 1)),
            Segment::new(c(1, 0), c(1, 2)),
        ];
        assert_eq!(rdl_layers_required(&wires), 2);
    }

    #[test]
    fn figure3_three_crossings_need_two_layers() {
        // §3.2.3: "at least two layers are needed to handle the three
        // points of intersection". One long wire crossed by two others,
        // plus one crossing among those two -> 2-colourable triangle-free?
        // Build: A crosses B, A crosses C, B and C disjoint => 2 layers.
        let wires = [
            Segment::new(c(0, 2), c(6, 2)),  // A: long horizontal
            Segment::new(c(1, 0), c(1, 4)),  // B: crosses A
            Segment::new(c(4, 0), c(4, 4)),  // C: crosses A
        ];
        assert_eq!(rdl_layers_required(&wires), 2);
    }

    #[test]
    fn mutually_crossing_triple_needs_three_layers() {
        // Three wires pairwise crossing form a triangle in the crossing
        // graph -> chromatic number 3.
        let wires = [
            Segment::new(c(0, 2), c(6, 2)),
            Segment::new(c(1, 0), c(5, 4)),
            Segment::new(c(1, 4), c(5, 0)),
        ];
        assert_eq!(rdl_layers_required(&wires), 3);
    }
}
