#![warn(missing_docs)]
//! Silicon-interposer physical model for EquiNox.
//!
//! This crate models the *physical* side of an interposer-based 2.5D system
//! as described in §2.1/§3.2.3 of the EquiNox paper (HPCA 2020):
//!
//! * [`geom`] — tile-grid coordinates and directions shared by the whole
//!   workspace (routers, cache banks and EIRs all live on the same grid).
//! * [`segment`] — straight wire segments routed in the interposer's
//!   redistribution layers (RDLs) and *proper-crossing* detection between
//!   them. Crossing wires must be assigned to different metal layers, and
//!   yielding complexity grows steeply with layer count, so EquiNox
//!   minimizes crossings.
//! * [`rdl`] — estimating how many RDL metal layers a set of interposer
//!   links requires (greedy coloring of the crossing graph).
//! * [`bumps`] — micro-bump (µbump) count and silicon-area accounting.
//!   Every interposer wire needs a µbump per die attachment, and µbumps
//!   consume processor-die area (§3.2.3, §6.6).
//! * [`wire`] — interposer wire lengths in millimetres and the
//!   single-cycle / repeater-free constraint for passive interposers.
//!
//! # Example
//!
//! ```
//! use equinox_phys::geom::Coord;
//! use equinox_phys::segment::Segment;
//!
//! // Two one-hop links leaving diagonally-adjacent tiles cross in the RDL.
//! let a = Segment::new(Coord::new(2, 2), Coord::new(3, 2));
//! let b = Segment::new(Coord::new(3, 1), Coord::new(3, 3));
//! assert!(a.crosses(&b));
//! ```

pub mod bumps;
pub mod geom;
pub mod rdl;
pub mod segment;
pub mod wire;

pub use bumps::BumpModel;
pub use geom::{Coord, Direction};
pub use rdl::rdl_layers_required;
pub use segment::{count_crossings, Segment};
pub use wire::WireModel;
