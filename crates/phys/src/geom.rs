//! Tile-grid coordinates and directions.
//!
//! The processor die is a `width × height` grid of tiles; each tile holds
//! either a processing element (PE) or a last-level cache bank (CB) plus
//! its router. All placement, routing and interposer-wiring code in the
//! workspace shares this coordinate system. `(0, 0)` is the top-left tile,
//! `x` grows to the right (east) and `y` grows downwards (south), matching
//! the figures in the paper.

use std::fmt;

/// Position of a tile (router / PE / CB) on the processor-die grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    /// Column index, growing eastwards.
    pub x: u16,
    /// Row index, growing southwards.
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate from column `x` and row `y`.
    ///
    /// ```
    /// # use equinox_phys::geom::Coord;
    /// let c = Coord::new(3, 5);
    /// assert_eq!((c.x, c.y), (3, 5));
    /// ```
    pub const fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Flattens this coordinate to a node index in row-major order for a
    /// grid that is `width` tiles wide.
    ///
    /// ```
    /// # use equinox_phys::geom::Coord;
    /// assert_eq!(Coord::new(2, 1).to_index(8), 10);
    /// ```
    pub const fn to_index(self, width: u16) -> usize {
        self.y as usize * width as usize + self.x as usize
    }

    /// Inverse of [`Coord::to_index`].
    ///
    /// ```
    /// # use equinox_phys::geom::Coord;
    /// assert_eq!(Coord::from_index(10, 8), Coord::new(2, 1));
    /// ```
    pub const fn from_index(index: usize, width: u16) -> Self {
        Coord {
            x: (index % width as usize) as u16,
            y: (index / width as usize) as u16,
        }
    }

    /// Manhattan (hop-count) distance to `other` — the minimal number of
    /// mesh hops between the two routers.
    ///
    /// ```
    /// # use equinox_phys::geom::Coord;
    /// assert_eq!(Coord::new(1, 1).manhattan(Coord::new(4, 3)), 5);
    /// ```
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }

    /// Chebyshev (king-move) distance to `other`. Two tiles with Chebyshev
    /// distance 1 are in each other's *hot zone* (§4.2).
    ///
    /// ```
    /// # use equinox_phys::geom::Coord;
    /// assert_eq!(Coord::new(1, 1).chebyshev(Coord::new(2, 2)), 1);
    /// ```
    pub fn chebyshev(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x).max(self.y.abs_diff(other.y)) as u32
    }

    /// `true` if the two tiles share a row, a column, or a diagonal — the
    /// "queen attack" relation used by the N-Queen placement (§4.2).
    ///
    /// ```
    /// # use equinox_phys::geom::Coord;
    /// assert!(Coord::new(0, 0).queen_attacks(Coord::new(3, 3)));
    /// assert!(!Coord::new(0, 0).queen_attacks(Coord::new(1, 2)));
    /// ```
    pub fn queen_attacks(self, other: Coord) -> bool {
        if self == other {
            return false;
        }
        self.x == other.x
            || self.y == other.y
            || self.x.abs_diff(other.x) == self.y.abs_diff(other.y)
    }

    /// The neighbouring tile one hop in `dir`, if it stays inside a
    /// `width × height` grid.
    ///
    /// ```
    /// # use equinox_phys::geom::{Coord, Direction};
    /// let c = Coord::new(0, 0);
    /// assert_eq!(c.step(Direction::East, 8, 8), Some(Coord::new(1, 0)));
    /// assert_eq!(c.step(Direction::West, 8, 8), None);
    /// ```
    pub fn step(self, dir: Direction, width: u16, height: u16) -> Option<Coord> {
        let (dx, dy) = dir.offset();
        let nx = self.x as i32 + dx;
        let ny = self.y as i32 + dy;
        if nx < 0 || ny < 0 || nx >= width as i32 || ny >= height as i32 {
            None
        } else {
            Some(Coord::new(nx as u16, ny as u16))
        }
    }

    /// The eight tiles surrounding this one (the CB *hot zone* of §4.2),
    /// clipped to the grid. Direct-access-zone (DAZ) tiles are the four
    /// orthogonal neighbours; corner-access-zone (CAZ) tiles are the four
    /// diagonal neighbours.
    pub fn hot_zone(self, width: u16, height: u16) -> Vec<Coord> {
        let mut out = Vec::with_capacity(8);
        for dy in -1i32..=1 {
            for dx in -1i32..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let nx = self.x as i32 + dx;
                let ny = self.y as i32 + dy;
                if nx >= 0 && ny >= 0 && nx < width as i32 && ny < height as i32 {
                    out.push(Coord::new(nx as u16, ny as u16));
                }
            }
        }
        out
    }

    /// The four orthogonal neighbours (DAZ tiles), clipped to the grid.
    pub fn daz(self, width: u16, height: u16) -> Vec<Coord> {
        Direction::ALL
            .iter()
            .filter_map(|&d| self.step(d, width, height))
            .collect()
    }

    /// The four diagonal neighbours (CAZ tiles), clipped to the grid.
    pub fn caz(self, width: u16, height: u16) -> Vec<Coord> {
        let mut out = Vec::with_capacity(4);
        for (dx, dy) in [(-1i32, -1i32), (1, -1), (-1, 1), (1, 1)] {
            let nx = self.x as i32 + dx;
            let ny = self.y as i32 + dy;
            if nx >= 0 && ny >= 0 && nx < width as i32 && ny < height as i32 {
                out.push(Coord::new(nx as u16, ny as u16));
            }
        }
        out
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(u16, u16)> for Coord {
    fn from((x, y): (u16, u16)) -> Self {
        Coord::new(x, y)
    }
}

/// One of the four mesh directions.
///
/// The order matches the conventional mesh port numbering used by
/// `equinox-noc` (North, East, South, West).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Towards decreasing `y`.
    North,
    /// Towards increasing `x`.
    East,
    /// Towards increasing `y`.
    South,
    /// Towards decreasing `x`.
    West,
}

impl Direction {
    /// All four directions in port order.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    /// The `(dx, dy)` unit offset of this direction.
    pub const fn offset(self) -> (i32, i32) {
        match self {
            Direction::North => (0, -1),
            Direction::East => (1, 0),
            Direction::South => (0, 1),
            Direction::West => (-1, 0),
        }
    }

    /// The opposite direction.
    ///
    /// ```
    /// # use equinox_phys::geom::Direction;
    /// assert_eq!(Direction::North.opposite(), Direction::South);
    /// ```
    pub const fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
        }
    }

    /// Index of this direction in [`Direction::ALL`].
    pub const fn index(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::East => 1,
            Direction::South => 2,
            Direction::West => 3,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for y in 0..8u16 {
            for x in 0..8u16 {
                let c = Coord::new(x, y);
                assert_eq!(Coord::from_index(c.to_index(8), 8), c);
            }
        }
    }

    #[test]
    fn manhattan_is_symmetric_and_zero_on_self() {
        let a = Coord::new(2, 7);
        let b = Coord::new(5, 1);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(a), 0);
        assert_eq!(a.manhattan(b), 3 + 6);
    }

    #[test]
    fn queen_attack_relation() {
        let c = Coord::new(3, 3);
        assert!(c.queen_attacks(Coord::new(3, 0))); // same column
        assert!(c.queen_attacks(Coord::new(0, 3))); // same row
        assert!(c.queen_attacks(Coord::new(6, 0))); // anti-diagonal
        assert!(c.queen_attacks(Coord::new(5, 5))); // diagonal
        assert!(!c.queen_attacks(Coord::new(4, 1))); // knight move
        assert!(!c.queen_attacks(c)); // not self-attacking
    }

    #[test]
    fn step_clips_at_boundaries() {
        let c = Coord::new(7, 7);
        assert_eq!(c.step(Direction::East, 8, 8), None);
        assert_eq!(c.step(Direction::South, 8, 8), None);
        assert_eq!(c.step(Direction::North, 8, 8), Some(Coord::new(7, 6)));
        assert_eq!(c.step(Direction::West, 8, 8), Some(Coord::new(6, 7)));
    }

    #[test]
    fn hot_zone_sizes() {
        // Interior tile: 8 neighbours; corner: 3; edge: 5.
        assert_eq!(Coord::new(4, 4).hot_zone(8, 8).len(), 8);
        assert_eq!(Coord::new(0, 0).hot_zone(8, 8).len(), 3);
        assert_eq!(Coord::new(0, 4).hot_zone(8, 8).len(), 5);
    }

    #[test]
    fn daz_caz_partition_hot_zone() {
        let c = Coord::new(4, 4);
        let mut union: Vec<_> = c.daz(8, 8);
        union.extend(c.caz(8, 8));
        union.sort();
        let mut hz = c.hot_zone(8, 8);
        hz.sort();
        assert_eq!(union, hz);
    }

    #[test]
    fn direction_opposites_and_offsets() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            let (dx, dy) = d.offset();
            let (ox, oy) = d.opposite().offset();
            assert_eq!((dx + ox, dy + oy), (0, 0));
            assert_eq!(Direction::ALL[d.index()], d);
        }
    }

    #[test]
    fn chebyshev_vs_manhattan() {
        let a = Coord::new(0, 0);
        let b = Coord::new(3, 2);
        assert_eq!(a.chebyshev(b), 3);
        assert!(a.chebyshev(b) <= a.manhattan(b));
    }
}
