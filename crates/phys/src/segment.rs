//! Straight wire segments in the redistribution layers and crossing tests.
//!
//! EquiNox routes each CB→EIR interposer link as a straight segment between
//! the two tile centres (the paper's Figure 3 draws them exactly so). Two
//! segments that *properly cross* — intersect at a point interior to both —
//! cannot share an RDL metal layer, so the MCTS evaluation function counts
//! crossings (§4.3) and the physical model turns the crossing graph into a
//! layer count ([`crate::rdl`]).
//!
//! Segments that merely share an endpoint (e.g. the four links fanning out
//! of one CB) do **not** count as crossings: they originate from the same
//! µbump cluster and are trivially routable on one layer.

use crate::geom::Coord;
use std::fmt;

/// A straight interposer wire between two tile centres.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment {
    /// Source tile (usually a CB).
    pub a: Coord,
    /// Destination tile (usually an EIR).
    pub b: Coord,
}

impl Segment {
    /// Creates a segment between tiles `a` and `b`.
    ///
    /// ```
    /// # use equinox_phys::{geom::Coord, segment::Segment};
    /// let s = Segment::new(Coord::new(0, 0), Coord::new(2, 2));
    /// assert_eq!(s.hop_length(), 4);
    /// ```
    pub const fn new(a: Coord, b: Coord) -> Self {
        Segment { a, b }
    }

    /// Manhattan length of the segment in hops — the paper measures
    /// interposer link length in mesh hops ("2-hop links").
    pub fn hop_length(&self) -> u32 {
        self.a.manhattan(self.b)
    }

    /// Euclidean length in tile pitches.
    ///
    /// ```
    /// # use equinox_phys::{geom::Coord, segment::Segment};
    /// let s = Segment::new(Coord::new(0, 0), Coord::new(3, 4));
    /// assert!((s.euclid_length() - 5.0).abs() < 1e-12);
    /// ```
    pub fn euclid_length(&self) -> f64 {
        let dx = self.a.x as f64 - self.b.x as f64;
        let dy = self.a.y as f64 - self.b.y as f64;
        (dx * dx + dy * dy).sqrt()
    }

    /// `true` if this segment and `other` properly cross, i.e. intersect at
    /// a point that is not a shared endpoint. Collinear overlapping
    /// segments also count as crossing (they would contend for the same
    /// routing track).
    pub fn crosses(&self, other: &Segment) -> bool {
        // Shared endpoints never count: links fanning out of one CB are
        // routable on a single layer.
        if self.a == other.a || self.a == other.b || self.b == other.a || self.b == other.b {
            return false;
        }
        segments_intersect(
            to_f64(self.a),
            to_f64(self.b),
            to_f64(other.a),
            to_f64(other.b),
        )
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.a, self.b)
    }
}

fn to_f64(c: Coord) -> (f64, f64) {
    (c.x as f64, c.y as f64)
}

/// Orientation of the ordered triple (p, q, r): >0 counter-clockwise,
/// <0 clockwise, 0 collinear.
fn orient(p: (f64, f64), q: (f64, f64), r: (f64, f64)) -> f64 {
    (q.0 - p.0) * (r.1 - p.1) - (q.1 - p.1) * (r.0 - p.0)
}

fn on_segment(p: (f64, f64), q: (f64, f64), r: (f64, f64)) -> bool {
    q.0 >= p.0.min(r.0) && q.0 <= p.0.max(r.0) && q.1 >= p.1.min(r.1) && q.1 <= p.1.max(r.1)
}

/// Classic segment-intersection predicate (inclusive of touching interiors).
fn segments_intersect(p1: (f64, f64), q1: (f64, f64), p2: (f64, f64), q2: (f64, f64)) -> bool {
    let o1 = orient(p1, q1, p2);
    let o2 = orient(p1, q1, q2);
    let o3 = orient(p2, q2, p1);
    let o4 = orient(p2, q2, q1);

    if (o1 > 0.0) != (o2 > 0.0) && (o3 > 0.0) != (o4 > 0.0) && o1 != 0.0 && o2 != 0.0 {
        return true;
    }
    // Collinear / touching cases.
    (o1 == 0.0 && on_segment(p1, p2, q1))
        || (o2 == 0.0 && on_segment(p1, q2, q1))
        || (o3 == 0.0 && on_segment(p2, p1, q2))
        || (o4 == 0.0 && on_segment(p2, q1, q2))
}

/// Counts the number of properly-crossing pairs among `segments`.
///
/// This is the "number of intersection points" metric of the MCTS
/// evaluation function (§4.3). The count is over unordered pairs; three
/// mutually-crossing wires yield 3.
///
/// ```
/// # use equinox_phys::{geom::Coord, segment::{count_crossings, Segment}};
/// let wires = [
///     Segment::new(Coord::new(0, 1), Coord::new(2, 1)), // horizontal
///     Segment::new(Coord::new(1, 0), Coord::new(1, 2)), // vertical, crosses
///     Segment::new(Coord::new(5, 5), Coord::new(6, 5)), // far away
/// ];
/// assert_eq!(count_crossings(&wires), 1);
/// ```
pub fn count_crossings(segments: &[Segment]) -> usize {
    let mut n = 0;
    for i in 0..segments.len() {
        for j in (i + 1)..segments.len() {
            if segments[i].crosses(&segments[j]) {
                n += 1;
            }
        }
    }
    n
}

/// Returns the list of crossing pairs (indices into `segments`).
pub fn crossing_pairs(segments: &[Segment]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..segments.len() {
        for j in (i + 1)..segments.len() {
            if segments[i].crosses(&segments[j]) {
                out.push((i, j));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: u16, y: u16) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn perpendicular_cross() {
        let h = Segment::new(c(0, 1), c(2, 1));
        let v = Segment::new(c(1, 0), c(1, 2));
        assert!(h.crosses(&v));
        assert!(v.crosses(&h));
    }

    #[test]
    fn shared_endpoint_is_not_a_crossing() {
        let a = Segment::new(c(2, 2), c(4, 2));
        let b = Segment::new(c(2, 2), c(2, 4));
        assert!(!a.crosses(&b));
    }

    #[test]
    fn disjoint_segments_do_not_cross() {
        let a = Segment::new(c(0, 0), c(1, 0));
        let b = Segment::new(c(5, 5), c(6, 6));
        assert!(!a.crosses(&b));
    }

    #[test]
    fn diagonal_neighbor_cb_links_cross() {
        // The paper's Diamond-placement example (§4.2): upper CB at (3,2)
        // with a horizontal x+ link, lower CB at (4,3) with a vertical y-
        // link; even one-hop links intersect.
        let upper = Segment::new(c(3, 2), c(4, 2));
        let lower = Segment::new(c(4, 3), c(4, 1));
        assert!(upper.crosses(&lower));
    }

    #[test]
    fn collinear_overlap_counts() {
        let a = Segment::new(c(0, 0), c(4, 0));
        let b = Segment::new(c(1, 0), c(3, 0));
        assert!(a.crosses(&b));
    }

    #[test]
    fn touching_interior_counts() {
        // b's endpoint lies in the middle of a (T junction): wires touch,
        // must be on separate layers.
        let a = Segment::new(c(0, 0), c(4, 0));
        let b = Segment::new(c(2, 0), c(2, 3));
        assert!(a.crosses(&b));
    }

    #[test]
    fn count_matches_pairs() {
        let wires = [
            Segment::new(c(0, 1), c(4, 1)),
            Segment::new(c(1, 0), c(1, 3)),
            Segment::new(c(3, 0), c(3, 3)),
        ];
        assert_eq!(count_crossings(&wires), 2);
        assert_eq!(crossing_pairs(&wires), vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn diagonal_cross() {
        let a = Segment::new(c(0, 0), c(2, 2));
        let b = Segment::new(c(2, 0), c(0, 2));
        assert!(a.crosses(&b));
    }
}
