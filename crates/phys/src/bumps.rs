//! Micro-bump (µbump) accounting.
//!
//! Because dies are flip-chip attached face-down onto the interposer, every
//! interposer wire needs a µbump wherever it attaches to a die, and each
//! µbump consumes top-die silicon area (§2.1, §3.2.3). The paper's §6.6
//! compares:
//!
//! * **Interposer-CMesh** — 128 uni-directional 256-bit links between the
//!   processor die and the interposer, one µbump per wire:
//!   128 × 256 = 32,768 µbumps.
//! * **EquiNox** — 24 uni-directional 128-bit links that dive into the
//!   interposer and come back up to the processor die, i.e. two µbumps per
//!   wire: 24 × 128 × 2 = 6,144 µbumps (an 81.25% reduction).
//!
//! With a 40 µm bump pitch each µbump occupies `pitch²` of die surface, so
//! a 128-bit bi-directional link costs about 0.41 mm² (the paper quotes
//! ≈0.34 mm² for a denser hexagonal packing; we expose the pitch so either
//! convention can be computed).


/// µbump geometry and per-link accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BumpModel {
    /// Bump pitch in micrometres (paper default: 40 µm, \[22\]).
    pub pitch_um: f64,
}

impl Default for BumpModel {
    fn default() -> Self {
        BumpModel { pitch_um: 40.0 }
    }
}

impl BumpModel {
    /// Creates a model with the given bump pitch in µm.
    ///
    /// # Panics
    ///
    /// Panics if `pitch_um` is not strictly positive.
    pub fn new(pitch_um: f64) -> Self {
        assert!(pitch_um > 0.0, "bump pitch must be positive");
        BumpModel { pitch_um }
    }

    /// Total µbump count for `links` uni-directional links of
    /// `bits_per_link` wires, each wire attaching to `attachments_per_wire`
    /// die surfaces (1 = die→interposer only, 2 = die→interposer→die).
    ///
    /// ```
    /// # use equinox_phys::bumps::BumpModel;
    /// let m = BumpModel::default();
    /// // Interposer-CMesh (§6.6)
    /// assert_eq!(m.bump_count(128, 256, 1), 32_768);
    /// // EquiNox (§6.6)
    /// assert_eq!(m.bump_count(24, 128, 2), 6_144);
    /// ```
    pub fn bump_count(&self, links: usize, bits_per_link: usize, attachments_per_wire: usize) -> usize {
        links * bits_per_link * attachments_per_wire
    }

    /// Die area consumed by `count` µbumps, in mm².
    ///
    /// Each bump claims a `pitch × pitch` square of die surface.
    ///
    /// ```
    /// # use equinox_phys::bumps::BumpModel;
    /// let m = BumpModel::default();
    /// let area = m.bump_area_mm2(6_144);
    /// assert!((area - 9.8304).abs() < 1e-9);
    /// ```
    pub fn bump_area_mm2(&self, count: usize) -> f64 {
        let pitch_mm = self.pitch_um * 1e-3;
        count as f64 * pitch_mm * pitch_mm
    }

    /// Area of one bi-directional link of `bits` wires with two die
    /// attachments per wire, in mm². For 128-bit links at 40 µm pitch this
    /// is 0.4096 mm², the same order as the paper's ≈0.34 mm² estimate.
    pub fn bidir_link_area_mm2(&self, bits: usize) -> f64 {
        self.bump_area_mm2(self.bump_count(1, bits, 2))
    }
}

/// Relative saving of `ours` vs `theirs` as a fraction in `[0, 1]`.
///
/// ```
/// # use equinox_phys::bumps::saving_fraction;
/// assert!((saving_fraction(6_144.0, 32_768.0) - 0.8125).abs() < 1e-12);
/// ```
pub fn saving_fraction(ours: f64, theirs: f64) -> f64 {
    if theirs <= 0.0 {
        0.0
    } else {
        1.0 - ours / theirs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_section_6_6_numbers() {
        let m = BumpModel::default();
        let cmesh = m.bump_count(128, 256, 1);
        let equinox = m.bump_count(24, 128, 2);
        assert_eq!(cmesh, 32_768);
        assert_eq!(equinox, 6_144);
        let saving = saving_fraction(equinox as f64, cmesh as f64);
        assert!((saving - 0.8125).abs() < 1e-12, "paper reports 81.25%");
    }

    #[test]
    fn area_scales_with_pitch_squared() {
        let a = BumpModel::new(40.0).bump_area_mm2(100);
        let b = BumpModel::new(80.0).bump_area_mm2(100);
        assert!((b / a - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_pitch_rejected() {
        let _ = BumpModel::new(0.0);
    }

    #[test]
    fn bidir_link_area_reasonable() {
        // 128-bit bidirectional link at 40um pitch: 256 bumps * 1.6e-3 mm².
        let m = BumpModel::default();
        assert!((m.bidir_link_area_mm2(128) - 0.4096).abs() < 1e-9);
    }
}
