//! Interposer wire lengths and the passive-interposer timing constraint.
//!
//! RDL wires have electrical characteristics close to on-die global wires
//! (§2.3, \[18\]), but a *passive* interposer cannot host repeaters: a wire
//! must be short enough to traverse in one clock cycle, otherwise the
//! design would need an active interposer with its thermal and cost
//! problems (§3.2.3). The paper's 8×8 design keeps every EIR link at
//! 2 hops, which "can be fit into one clock cycle" (§4.3).

use crate::segment::Segment;

/// Physical wire model for interposer links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireModel {
    /// Distance between adjacent tile centres, in millimetres.
    /// A GPU-class tile (SM + router) is on the order of 1.5 mm.
    pub tile_pitch_mm: f64,
    /// Longest wire that still closes timing in one cycle without
    /// repeaters, in millimetres.
    pub max_single_cycle_mm: f64,
}

impl Default for WireModel {
    fn default() -> Self {
        WireModel {
            tile_pitch_mm: 1.5,
            // 2 mesh hops (3 mm) fit in one cycle per §4.3; leave headroom
            // so exactly-2-hop diagonal links also pass.
            max_single_cycle_mm: 4.5,
        }
    }
}

impl WireModel {
    /// Physical length of `seg` in millimetres (Euclidean, since RDL wires
    /// run point-to-point underneath the die).
    ///
    /// ```
    /// # use equinox_phys::{geom::Coord, segment::Segment, wire::WireModel};
    /// let m = WireModel::default();
    /// let two_hop = Segment::new(Coord::new(2, 2), Coord::new(4, 2));
    /// assert!((m.length_mm(&two_hop) - 3.0).abs() < 1e-12);
    /// ```
    pub fn length_mm(&self, seg: &Segment) -> f64 {
        seg.euclid_length() * self.tile_pitch_mm
    }

    /// `true` if `seg` can be traversed in a single clock cycle without a
    /// repeater, i.e. the design stays on a passive interposer.
    pub fn fits_one_cycle(&self, seg: &Segment) -> bool {
        self.length_mm(seg) <= self.max_single_cycle_mm
    }

    /// Link latency in cycles for `seg`: one cycle per
    /// `max_single_cycle_mm` of wire, minimum one cycle. Lengths beyond
    /// the single-cycle reach imply repeaters (an active interposer).
    ///
    /// ```
    /// # use equinox_phys::{geom::Coord, segment::Segment, wire::WireModel};
    /// let m = WireModel::default();
    /// let short = Segment::new(Coord::new(0, 0), Coord::new(2, 0));
    /// assert_eq!(m.latency_cycles(&short), 1);
    /// let long = Segment::new(Coord::new(0, 0), Coord::new(7, 0));
    /// assert!(m.latency_cycles(&long) > 1);
    /// ```
    pub fn latency_cycles(&self, seg: &Segment) -> u32 {
        let len = self.length_mm(seg);
        (len / self.max_single_cycle_mm).ceil().max(1.0) as u32
    }

    /// Total wire length of a plan in millimetres — the "length of links"
    /// metric in the MCTS evaluation function (§4.3).
    pub fn total_length_mm(&self, segments: &[Segment]) -> f64 {
        segments.iter().map(|s| self.length_mm(s)).sum()
    }

    /// `true` if every wire in the plan closes single-cycle timing, i.e.
    /// the whole design is viable on a passive interposer.
    pub fn all_single_cycle(&self, segments: &[Segment]) -> bool {
        segments.iter().all(|s| self.fits_one_cycle(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Coord;

    fn seg(ax: u16, ay: u16, bx: u16, by: u16) -> Segment {
        Segment::new(Coord::new(ax, ay), Coord::new(bx, by))
    }

    #[test]
    fn two_hop_links_are_single_cycle() {
        let m = WireModel::default();
        assert!(m.fits_one_cycle(&seg(2, 2, 4, 2))); // straight 2-hop
        assert!(m.fits_one_cycle(&seg(2, 2, 3, 3))); // L-shaped 2-hop
        assert_eq!(m.latency_cycles(&seg(2, 2, 4, 2)), 1);
    }

    #[test]
    fn cross_die_links_need_repeaters() {
        let m = WireModel::default();
        let long = seg(0, 0, 7, 7);
        assert!(!m.fits_one_cycle(&long));
        assert!(m.latency_cycles(&long) >= 2);
    }

    #[test]
    fn total_length_sums() {
        let m = WireModel::default();
        let plan = [seg(0, 0, 2, 0), seg(0, 0, 0, 2)];
        assert!((m.total_length_mm(&plan) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn all_single_cycle_rejects_mixed_plans() {
        let m = WireModel::default();
        assert!(m.all_single_cycle(&[seg(0, 0, 2, 0)]));
        assert!(!m.all_single_cycle(&[seg(0, 0, 2, 0), seg(0, 0, 7, 7)]));
    }
}
