//! Randomized (seeded, deterministic) tests of the PE model's
//! accounting invariants.

use equinox_exec::Rng;
use equinox_traffic::profile::all_benchmarks;
use equinox_traffic::{Pe, Workload};

#[test]
fn pe_retires_exactly_its_quota() {
    let mut rng = Rng::seed_from_u64(0xFE1);
    for _ in 0..40 {
        let bench = rng.random_range(0usize..29);
        let seed = rng.random_range(0u64..1000);
        let mshrs = rng.random_range(1u32..32);
        let profile = all_benchmarks()[bench];
        let w = Workload {
            profile,
            scale: 0.05,
            mshrs,
            seed,
            phase_len: None,
        };
        let mut pe = w.make_pes(1).remove(0);
        let quota = w.total_instrs(1);
        let mut issued = 0u64;
        for _ in 0..1_000_000u64 {
            if let Some(_op) = pe.tick(true) {
                issued += 1;
                pe.complete(); // instant replies
            }
            if pe.done() {
                break;
            }
        }
        assert!(pe.done(), "PE must finish with instant replies");
        assert_eq!(pe.stats.retired, quota);
        assert_eq!(pe.stats.mem_ops, issued);
        assert_eq!(pe.outstanding(), 0);
    }
}

#[test]
fn outstanding_never_exceeds_mshrs() {
    let mut rng = Rng::seed_from_u64(0xFE2);
    for _ in 0..40 {
        let bench = rng.random_range(0usize..29);
        let mshrs = rng.random_range(1u32..16);
        let drain_every = rng.random_range(1u64..8);
        let profile = all_benchmarks()[bench];
        let w = Workload {
            profile,
            scale: 0.05,
            mshrs,
            seed: 1,
            phase_len: None,
        };
        let mut pe = w.make_pes(1).remove(0);
        for t in 0..50_000u64 {
            let _ = pe.tick(true);
            assert!(pe.outstanding() <= mshrs);
            if t % drain_every == 0 && pe.outstanding() > 0 {
                pe.complete();
            }
            if pe.done() {
                break;
            }
        }
    }
}

#[test]
fn addresses_stay_in_working_set() {
    let mut rng = Rng::seed_from_u64(0xFE3);
    for _ in 0..40 {
        let index = rng.random_range(0usize..64);
        let seed = rng.random_range(0u64..100);
        let profile = all_benchmarks()[10]; // kmeans: memory heavy
        let mut pe = Pe::new(profile, index, 0.05, 64, seed);
        for _ in 0..20_000u64 {
            if let Some(op) = pe.tick(true) {
                assert_eq!(op.addr % 64, 0, "line aligned");
                assert_eq!((op.addr >> 28) as usize, index, "own working set");
                pe.complete();
            }
            if pe.done() {
                break;
            }
        }
    }
}
