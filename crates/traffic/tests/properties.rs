//! Property-based tests of the PE model's accounting invariants.

use equinox_traffic::profile::all_benchmarks;
use equinox_traffic::{Pe, Workload};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn pe_retires_exactly_its_quota(
        bench in 0usize..29,
        seed in 0u64..1000,
        mshrs in 1u32..32,
    ) {
        let profile = all_benchmarks()[bench];
        let w = Workload { profile, scale: 0.05, mshrs, seed, phase_len: None };
        let mut pe = w.make_pes(1).remove(0);
        let quota = w.total_instrs(1);
        let mut issued = 0u64;
        for _ in 0..1_000_000u64 {
            if let Some(_op) = pe.tick(true) {
                issued += 1;
                pe.complete(); // instant replies
            }
            if pe.done() {
                break;
            }
        }
        prop_assert!(pe.done(), "PE must finish with instant replies");
        prop_assert_eq!(pe.stats.retired, quota);
        prop_assert_eq!(pe.stats.mem_ops, issued);
        prop_assert_eq!(pe.outstanding(), 0);
    }

    #[test]
    fn outstanding_never_exceeds_mshrs(
        bench in 0usize..29,
        mshrs in 1u32..16,
        drain_every in 1u64..8,
    ) {
        let profile = all_benchmarks()[bench];
        let w = Workload { profile, scale: 0.05, mshrs, seed: 1, phase_len: None };
        let mut pe = w.make_pes(1).remove(0);
        for t in 0..50_000u64 {
            let _ = pe.tick(true);
            prop_assert!(pe.outstanding() <= mshrs);
            if t % drain_every == 0 && pe.outstanding() > 0 {
                pe.complete();
            }
            if pe.done() {
                break;
            }
        }
    }

    #[test]
    fn addresses_stay_in_working_set(index in 0usize..64, seed in 0u64..100) {
        let profile = all_benchmarks()[10]; // kmeans: memory heavy
        let mut pe = Pe::new(profile, index, 0.05, 64, seed);
        for _ in 0..20_000u64 {
            if let Some(op) = pe.tick(true) {
                prop_assert_eq!(op.addr % 64, 0, "line aligned");
                prop_assert_eq!((op.addr >> 28) as usize, index, "own working set");
                pe.complete();
            }
            if pe.done() {
                break;
            }
        }
    }
}
