//! The processing-element (streaming multiprocessor) model.
//!
//! A PE retires one instruction per cycle while it can. An instruction is
//! a memory operation with probability `mem_rate`; memory operations must
//! claim an MSHR (bounded outstanding misses) and be accepted by the
//! network interface, otherwise the PE stalls — this is how reply-network
//! congestion back-pressures the cores and stretches execution time, the
//! effect Figure 9(a) measures.
//!
//! Addresses are generated with per-benchmark burstiness and spatial
//! locality: a burst walks sequential cache lines (producing HBM row
//! hits), and bursts jump around a per-PE working set.

use crate::profile::BenchmarkProfile;
use equinox_exec::Rng;

/// A memory operation emitted by a PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Byte address (cache-line aligned).
    pub addr: u64,
    /// `true` for stores.
    pub write: bool,
}

/// Per-PE execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeStats {
    /// Instructions retired.
    pub retired: u64,
    /// Cycles stalled waiting for an MSHR or the NI.
    pub stall_cycles: u64,
    /// Memory operations issued.
    pub mem_ops: u64,
}

/// One processing element.
#[derive(Debug)]
pub struct Pe {
    profile: BenchmarkProfile,
    quota: u64,
    remaining: u64,
    outstanding: u32,
    mshr_cap: u32,
    rng: Rng,
    /// Next sequential address of the current burst.
    cursor: u64,
    burst_left: u32,
    /// Base of this PE's working set.
    base: u64,
    /// Working-set span in bytes.
    span: u64,
    /// A pending mem-op the NI refused; retried before new work.
    pending: Option<MemOp>,
    /// Optional phase length in instructions: phases alternate between
    /// 1.5x and 0.5x the profile's memory intensity, modelling the
    /// compute/memory phase behaviour of real GPU kernels. `None` keeps
    /// the calibrated uniform behaviour.
    phase_len: Option<u64>,
    /// Statistics.
    pub stats: PeStats,
}

/// Cache-line size in bytes (64 B, Table 1's L2 line).
pub const LINE_BYTES: u64 = 64;

impl Pe {
    /// Creates a PE running `profile`, with its instruction quota scaled
    /// by `scale`. `index` seeds the address stream and picks the working
    /// set; `mshr_cap` bounds outstanding memory operations.
    pub fn new(profile: BenchmarkProfile, index: usize, scale: f64, mshr_cap: u32, seed: u64) -> Self {
        let quota = ((profile.instrs as f64 * scale).round() as u64).max(1);
        let base = (index as u64) << 28;
        let mut rng = Rng::seed_from_u64(seed ^ ((index as u64) << 32) ^ 0x5EED);
        let cursor = base + (rng.random_range(0..1u64 << 16)) * LINE_BYTES;
        Pe {
            profile,
            quota,
            remaining: quota,
            outstanding: 0,
            mshr_cap,
            rng,
            cursor,
            burst_left: 0,
            base,
            span: 1 << 24,
            pending: None,
            phase_len: None,
            stats: PeStats::default(),
        }
    }

    /// Enables phase behaviour: every `len` retired instructions the PE
    /// alternates between a memory-hungry (1.5x) and a compute-heavy
    /// (0.5x) variant of its profile's memory intensity.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn with_phases(mut self, len: u64) -> Self {
        assert!(len > 0, "phase length must be nonzero");
        self.phase_len = Some(len);
        self
    }

    /// The memory-op probability for the current phase.
    fn effective_mem_rate(&self, quota: u64) -> f64 {
        match self.phase_len {
            None => self.profile.mem_rate,
            Some(len) => {
                let retired = quota - self.remaining;
                if (retired / len).is_multiple_of(2) {
                    (self.profile.mem_rate * 1.5).min(1.0)
                } else {
                    self.profile.mem_rate * 0.5
                }
            }
        }
    }

    /// Advances one cycle. `ni_ready` says whether the network interface
    /// can accept a request this cycle. Returns a memory operation iff one
    /// is issued (the caller must deliver it). When the PE wants to issue
    /// but cannot (MSHRs full or NI busy), it stalls in place.
    pub fn tick(&mut self, ni_ready: bool) -> Option<MemOp> {
        if self.done() {
            return None;
        }
        // Retry a refused op first.
        if let Some(op) = self.pending {
            if ni_ready && self.outstanding < self.mshr_cap {
                self.pending = None;
                self.issue(op);
                return Some(op);
            }
            self.stats.stall_cycles += 1;
            return None;
        }
        if self.remaining == 0 {
            // Only waiting for outstanding replies.
            return None;
        }
        let is_mem = self.rng.random::<f64>() < self.effective_mem_rate(self.quota);
        if !is_mem {
            self.remaining -= 1;
            self.stats.retired += 1;
            return None;
        }
        let op = self.next_op();
        if ni_ready && self.outstanding < self.mshr_cap {
            self.remaining -= 1;
            self.stats.retired += 1;
            self.issue(op);
            Some(op)
        } else {
            // Hold the op; the instruction has not retired yet.
            self.pending = Some(op);
            self.remaining -= 1;
            self.stats.retired += 1;
            self.stats.stall_cycles += 1;
            None
        }
    }

    fn issue(&mut self, _op: MemOp) {
        self.outstanding += 1;
        self.stats.mem_ops += 1;
    }

    /// Generates the next address following the burst/locality model.
    fn next_op(&mut self) -> MemOp {
        if self.burst_left == 0 || self.rng.random::<f64>() >= self.profile.locality {
            // Start a new burst somewhere in the working set.
            let lines = self.span / LINE_BYTES;
            self.cursor = self.base + self.rng.random_range(0..lines) * LINE_BYTES;
            self.burst_left = 1 + self.rng.random_range(0..self.profile.burst * 2);
        }
        let addr = self.cursor;
        self.cursor += LINE_BYTES;
        self.burst_left = self.burst_left.saturating_sub(1);
        let write = self.rng.random::<f64>() >= self.profile.read_frac;
        MemOp { addr, write }
    }

    /// Records the arrival of one reply (releases an MSHR).
    ///
    /// # Panics
    ///
    /// Panics if no memory operation is outstanding.
    pub fn complete(&mut self) {
        assert!(self.outstanding > 0, "reply without outstanding request");
        self.outstanding -= 1;
    }

    /// `true` when the instruction quota is retired, nothing is pending,
    /// and every reply has arrived.
    pub fn done(&self) -> bool {
        self.remaining == 0 && self.outstanding == 0 && self.pending.is_none()
    }

    /// `true` when [`Pe::tick`] is guaranteed to be a pure stall (no RNG
    /// draw, no issue, no retirement) until a reply arrives — even with
    /// a ready NI. Two shapes qualify: a held-back op with all MSHRs
    /// claimed, or a retired quota still waiting on outstanding replies.
    /// A PE with instructions left and nothing pending does *not*
    /// qualify: its next tick draws from the RNG.
    pub fn blocked_on_replies(&self) -> bool {
        if self.pending.is_some() {
            self.outstanding >= self.mshr_cap
        } else {
            self.remaining == 0 && self.outstanding > 0
        }
    }

    /// Accounts for `cycles` skipped ticks of a PE that
    /// [`Pe::blocked_on_replies`]: the held-op shape would have counted
    /// a stall per tick, the drained-quota shape counts nothing.
    pub fn note_skipped_stall(&mut self, cycles: u64) {
        debug_assert!(self.blocked_on_replies());
        if self.pending.is_some() {
            self.stats.stall_cycles += cycles;
        }
    }

    /// Outstanding memory operations.
    pub fn outstanding(&self) -> u32 {
        self.outstanding
    }

    /// Instructions not yet retired.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Serializes the PE's dynamic state (progress counters, RNG, the
    /// address-stream cursor and a held-back op). The profile, quota,
    /// MSHR cap, working-set geometry and phase knob are build-time.
    pub fn snap_state(&self, e: &mut equinox_snap::Enc) {
        use equinox_snap::Snap;
        e.put_u64(self.remaining);
        e.put_u32(self.outstanding);
        self.rng.snap(e);
        e.put_u64(self.cursor);
        e.put_u32(self.burst_left);
        match self.pending {
            None => e.put_bool(false),
            Some(op) => {
                e.put_bool(true);
                e.put_u64(op.addr);
                e.put_bool(op.write);
            }
        }
        e.put_u64(self.stats.retired);
        e.put_u64(self.stats.stall_cycles);
        e.put_u64(self.stats.mem_ops);
    }

    /// Restores state written by [`Pe::snap_state`] into a PE built with
    /// the same constructor arguments.
    pub fn restore_state(
        &mut self,
        d: &mut equinox_snap::Dec,
    ) -> Result<(), equinox_snap::SnapError> {
        use equinox_snap::{Snap, SnapError};
        let remaining = d.u64()?;
        if remaining > self.quota {
            return Err(SnapError::BadValue("pe remaining over quota"));
        }
        let outstanding = d.u32()?;
        if outstanding > self.mshr_cap {
            return Err(SnapError::BadValue("pe outstanding over mshr cap"));
        }
        self.remaining = remaining;
        self.outstanding = outstanding;
        self.rng = Rng::restore(d)?;
        self.cursor = d.u64()?;
        self.burst_left = d.u32()?;
        self.pending = if d.bool()? {
            Some(MemOp {
                addr: d.u64()?,
                write: d.bool()?,
            })
        } else {
            None
        };
        self.stats.retired = d.u64()?;
        self.stats.stall_cycles = d.u64()?;
        self.stats.mem_ops = d.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::benchmark;

    fn pe(name: &str, scale: f64) -> Pe {
        Pe::new(benchmark(name).unwrap(), 3, scale, 16, 42)
    }

    #[test]
    fn pure_compute_finishes_without_memory() {
        let mut p = Pe::new(
            BenchmarkProfile {
                name: "synthetic",
                mem_rate: 0.0,
                read_frac: 0.8,
                l2_hit: 0.5,
                locality: 0.5,
                burst: 1,
                instrs: 100,
            },
            0,
            1.0,
            16,
            1,
        );
        for _ in 0..100 {
            assert_eq!(p.tick(true), None);
        }
        assert!(p.done());
        assert_eq!(p.stats.retired, 100);
    }

    #[test]
    fn memory_ops_respect_mshr_cap() {
        let mut p = pe("kmeans", 1.0);
        let mut issued = 0;
        for _ in 0..500 {
            if p.tick(true).is_some() {
                issued += 1;
            }
            assert!(p.outstanding() <= 16);
        }
        assert!(issued >= 16, "kmeans must issue plenty of mem ops");
        assert!(!p.done(), "replies never arrived");
        // Drain replies; PE must finish.
        while p.outstanding() > 0 {
            p.complete();
        }
        for _ in 0..5000 {
            if p.tick(true).is_some() {
                p.complete(); // instant replies
            }
            if p.done() {
                break;
            }
        }
        assert!(p.done());
    }

    #[test]
    fn ni_backpressure_stalls() {
        let mut p = pe("kmeans", 1.0);
        let mut issued = 0;
        for _ in 0..200 {
            if p.tick(false).is_some() {
                issued += 1;
            }
        }
        assert_eq!(issued, 0, "NI never ready -> nothing issues");
        assert!(p.stats.stall_cycles > 0);
    }

    #[test]
    fn addresses_are_line_aligned_and_in_working_set() {
        let mut p = pe("bfs", 1.0);
        for _ in 0..2000 {
            if let Some(op) = p.tick(true) {
                assert_eq!(op.addr % LINE_BYTES, 0);
                assert_eq!(op.addr >> 28, 3, "within PE 3's working set");
                p.complete();
            }
            if p.done() {
                break;
            }
        }
    }

    #[test]
    fn read_fraction_approximates_profile() {
        let prof = benchmark("backprop").unwrap(); // read_frac 0.80
        let mut p = Pe::new(prof, 0, 50.0, 1024, 7);
        let mut reads = 0u32;
        let mut total = 0u32;
        for _ in 0..200_000 {
            if let Some(op) = p.tick(true) {
                total += 1;
                if !op.write {
                    reads += 1;
                }
                p.complete();
            }
            if p.done() {
                break;
            }
        }
        assert!(total > 1000);
        let frac = reads as f64 / total as f64;
        assert!((frac - prof.read_frac).abs() < 0.05, "measured {frac}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let collect = || {
            let mut p = pe("cfd", 0.2);
            let mut ops = Vec::new();
            for _ in 0..2000 {
                if let Some(op) = p.tick(true) {
                    ops.push(op);
                    p.complete();
                }
                if p.done() {
                    break;
                }
            }
            ops
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "reply without outstanding")]
    fn spurious_reply_panics() {
        let mut p = pe("bfs", 1.0);
        p.complete();
    }

    #[test]
    fn phases_modulate_memory_intensity() {
        let prof = BenchmarkProfile {
            name: "phased",
            mem_rate: 0.4,
            read_frac: 1.0,
            l2_hit: 0.5,
            locality: 0.5,
            burst: 2,
            instrs: 2_000,
        };
        // Count mem ops in the first phase vs the second.
        let mut pe = Pe::new(prof, 0, 1.0, 4096, 5).with_phases(1_000);
        let (mut first, mut second) = (0u64, 0u64);
        for _ in 0..200_000 {
            let before = pe.remaining();
            if let Some(_op) = pe.tick(true) {
                if 2_000 - before < 1_000 {
                    first += 1;
                } else {
                    second += 1;
                }
                pe.complete();
            }
            if pe.done() {
                break;
            }
        }
        assert!(pe.done());
        assert!(
            first as f64 > 1.8 * second as f64,
            "hungry phase {first} vs calm phase {second}"
        );
    }

    #[test]
    fn bursts_produce_sequential_lines() {
        // With locality 1.0 and long bursts, consecutive ops are mostly
        // sequential lines.
        let prof = BenchmarkProfile {
            name: "seq",
            mem_rate: 1.0,
            read_frac: 1.0,
            l2_hit: 0.0,
            locality: 1.0,
            burst: 64,
            instrs: 500,
        };
        let mut p = Pe::new(prof, 1, 1.0, 1024, 3);
        let mut last = None;
        let mut seq = 0;
        let mut total = 0;
        for _ in 0..2000 {
            if let Some(op) = p.tick(true) {
                if let Some(prev) = last {
                    total += 1;
                    if op.addr == prev + LINE_BYTES {
                        seq += 1;
                    }
                }
                last = Some(op.addr);
                p.complete();
            }
            if p.done() {
                break;
            }
        }
        assert!(total > 100);
        assert!(seq as f64 / total as f64 > 0.8, "{seq}/{total} sequential");
    }
}
