#![warn(missing_docs)]
//! `equinox-traffic` — throughput-processor traffic generation.
//!
//! Replaces the GPGPU-Sim + CUDA-benchmark side of the paper's evaluation
//! (§5) with a calibrated synthetic model:
//!
//! * [`profile`] — one traffic profile per benchmark of the paper's suite
//!   (29 workloads from Rodinia and the NVIDIA CUDA SDK), parameterized by
//!   memory intensity, read fraction, L2 hit rate, spatial locality,
//!   burstiness and length. The profile mix is calibrated so reply traffic
//!   carries ≈72.7% of NoC bits, the split the paper measures (§2.2).
//! * [`pe`] — a processing-element (SM) model: one instruction per cycle
//!   when not blocked, a bounded number of outstanding misses (MSHRs), and
//!   bursty, spatially-local address generation. PEs communicate only with
//!   cache banks — the Many-to-Few-to-Many pattern (§2.1).
//! * [`workload`] — helpers to instantiate a PE array for a benchmark.
//! * [`synthetic`] — classical adversarial patterns (uniform, hotspot,
//!   transpose, bursty on/off) for fabric stress testing.
//!
//! The *system* wiring (NIs, cache banks, HBM) lives in `equinox-core`;
//! this crate deliberately knows nothing about networks.

pub mod pe;
pub mod profile;
pub mod synthetic;
pub mod workload;

pub use pe::{MemOp, Pe};
pub use profile::{BenchmarkProfile, all_benchmarks, benchmark};
pub use synthetic::SyntheticPattern;
pub use workload::Workload;
