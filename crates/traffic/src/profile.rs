//! Benchmark traffic profiles.
//!
//! Each of the 29 benchmarks the paper runs (Rodinia \[42\] + NVIDIA CUDA
//! SDK \[43\]) becomes a parameter vector. The values are chosen to mirror
//! the qualitative behaviour the paper reports per benchmark:
//!
//! * `kmeans`, `heartwall`, `monteCarlo`, `particlefilter` — bandwidth
//!   hungry (DA2Mesh helps them; VC-Mono gains 13.1% on `kmeans`);
//! * `fastWalshTransform`, `scan`, `sortingNetworks` — bursty injection
//!   (MultiPort helps);
//! * `gaussian`, `myocyte` — compute/latency dominated, little queuing;
//! * the remainder span the middle of the intensity range.
//!
//! The suite-average read fraction is ≈0.84, which reproduces the paper's
//! 72.7% / 27.3% reply/request bit split (a read is 1 request flit vs 5
//! reply flits; a write is the reverse; reply share = (4·r + 1) / 6).


/// Synthetic traffic parameters of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name (matches the paper's figures).
    pub name: &'static str,
    /// Memory operations per instruction (0‥1).
    pub mem_rate: f64,
    /// Fraction of memory operations that are reads.
    pub read_frac: f64,
    /// L2 (cache-bank) hit probability.
    pub l2_hit: f64,
    /// Probability that the next access continues the current sequential
    /// burst (spatial locality; drives HBM row hits).
    pub locality: f64,
    /// Mean burst length in accesses (≥ 1).
    pub burst: u32,
    /// Instructions per PE, at scale 1.0.
    pub instrs: u64,
}

impl BenchmarkProfile {
    /// Expected fraction of NoC *bits* that are replies for this profile,
    /// assuming 1-flit read requests / write replies and 5-flit read
    /// replies / write requests.
    pub fn reply_bit_fraction(&self) -> f64 {
        let r = self.read_frac;
        (4.0 * r + 1.0) / 6.0
    }
}

macro_rules! profiles {
    ($($name:literal : $mem:expr, $read:expr, $hit:expr, $loc:expr, $burst:expr, $instrs:expr;)+) => {
        &[$(BenchmarkProfile {
            name: $name,
            mem_rate: $mem,
            read_frac: $read,
            l2_hit: $hit,
            locality: $loc,
            burst: $burst,
            instrs: $instrs,
        }),+]
    };
}

/// The full 29-benchmark suite (Rodinia + CUDA SDK), in the order the
/// paper's figures use.
pub fn all_benchmarks() -> &'static [BenchmarkProfile] {
    profiles! {
        // Rodinia
        "backprop":          0.28, 0.80, 0.55, 0.70, 4, 1000;
        "bfs":               0.35, 0.90, 0.35, 0.30, 1, 1000;
        "b+tree":            0.30, 0.92, 0.45, 0.40, 2, 1000;
        "cfd":               0.40, 0.85, 0.40, 0.60, 4, 1000;
        "dwt2d":             0.25, 0.82, 0.60, 0.80, 4, 1000;
        "gaussian":          0.06, 0.88, 0.75, 0.85, 2, 1000;
        "heartwall":         0.45, 0.86, 0.30, 0.55, 6, 1000;
        "hotspot":           0.22, 0.84, 0.60, 0.75, 4, 1000;
        "hotspot3D":         0.30, 0.85, 0.50, 0.70, 4, 1000;
        "huffman":           0.18, 0.90, 0.55, 0.35, 1, 1000;
        "kmeans":            0.50, 0.88, 0.25, 0.65, 6, 1000;
        "lavaMD":            0.20, 0.83, 0.65, 0.75, 4, 1000;
        "leukocyte":         0.26, 0.85, 0.58, 0.70, 3, 1000;
        "lud":               0.24, 0.80, 0.62, 0.75, 3, 1000;
        "myocyte":           0.05, 0.78, 0.80, 0.85, 2, 1000;
        "nn":                0.32, 0.93, 0.42, 0.50, 2, 1000;
        "nw":                0.28, 0.82, 0.55, 0.65, 3, 1000;
        "particlefilter":    0.42, 0.87, 0.32, 0.50, 5, 1000;
        "pathfinder":        0.26, 0.86, 0.58, 0.75, 4, 1000;
        "srad":              0.34, 0.84, 0.48, 0.70, 4, 1000;
        "streamcluster":     0.38, 0.90, 0.35, 0.55, 4, 1000;
        // NVIDIA CUDA SDK
        "fastWalshTrans":    0.44, 0.85, 0.38, 0.45, 8, 1000;
        "monteCarlo":        0.46, 0.90, 0.28, 0.40, 6, 1000;
        "scan":              0.40, 0.83, 0.42, 0.50, 8, 1000;
        "sortingNetworks":   0.42, 0.82, 0.40, 0.45, 8, 1000;
        "blackScholes":      0.30, 0.88, 0.50, 0.80, 4, 1000;
        "convolutionSep":    0.27, 0.86, 0.58, 0.80, 4, 1000;
        "histogram":         0.33, 0.75, 0.45, 0.35, 2, 1000;
        "reduction":         0.36, 0.92, 0.40, 0.70, 6, 1000;
    }
}

/// Looks up a benchmark profile by name.
///
/// ```
/// # use equinox_traffic::profile::benchmark;
/// assert!(benchmark("kmeans").is_some());
/// assert!(benchmark("doom").is_none());
/// ```
pub fn benchmark(name: &str) -> Option<BenchmarkProfile> {
    all_benchmarks().iter().copied().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_29_unique_benchmarks() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 29, "the paper evaluates 29 benchmarks");
        let mut names: Vec<_> = all.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 29);
    }

    #[test]
    fn parameters_in_valid_ranges() {
        for b in all_benchmarks() {
            assert!(b.mem_rate > 0.0 && b.mem_rate <= 1.0, "{}", b.name);
            assert!(b.read_frac > 0.5 && b.read_frac <= 1.0, "{}", b.name);
            assert!(b.l2_hit >= 0.0 && b.l2_hit <= 1.0, "{}", b.name);
            assert!(b.locality >= 0.0 && b.locality <= 1.0, "{}", b.name);
            assert!(b.burst >= 1, "{}", b.name);
            assert!(b.instrs > 0, "{}", b.name);
        }
    }

    #[test]
    fn suite_average_reply_share_matches_paper() {
        // §2.2: replies are 72.7% of NoC bits. Calibration keeps the
        // traffic-weighted suite average within a couple of points.
        let all = all_benchmarks();
        let (mut num, mut den) = (0.0, 0.0);
        for b in all {
            let weight = b.mem_rate; // traffic volume weight
            num += b.reply_bit_fraction() * weight;
            den += weight;
        }
        let avg = num / den;
        assert!(
            (avg - 0.727).abs() < 0.03,
            "suite reply-bit share {avg:.3} vs paper 0.727"
        );
    }

    #[test]
    fn paper_characterizations_hold() {
        let k = benchmark("kmeans").unwrap();
        let g = benchmark("gaussian").unwrap();
        let m = benchmark("myocyte").unwrap();
        assert!(k.mem_rate > 3.0 * g.mem_rate, "kmeans network-bound, gaussian not");
        assert!(m.mem_rate < 0.1, "myocyte compute-bound");
        for bursty in ["fastWalshTrans", "scan", "sortingNetworks"] {
            assert!(benchmark(bursty).unwrap().burst >= 8);
        }
    }
}
