//! Workload assembly: a benchmark profile instantiated over a PE array.

use crate::pe::Pe;
use crate::profile::BenchmarkProfile;

/// A benchmark run description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// The benchmark's traffic profile.
    pub profile: BenchmarkProfile,
    /// Multiplier on the per-PE instruction quota (tests use ≤ 0.3,
    /// benches 1.0+).
    pub scale: f64,
    /// MSHRs per PE (outstanding memory operations).
    pub mshrs: u32,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Optional phase length in instructions (see [`crate::pe::Pe::with_phases`]).
    pub phase_len: Option<u64>,
}

impl Workload {
    /// A workload with the paper-ish defaults: 48 MSHRs per SM.
    pub fn new(profile: BenchmarkProfile, scale: f64, seed: u64) -> Self {
        Workload {
            profile,
            scale,
            mshrs: 48,
            seed,
            phase_len: None,
        }
    }

    /// Instantiates the PE array (one PE per compute tile).
    pub fn make_pes(&self, num_pes: usize) -> Vec<Pe> {
        (0..num_pes)
            .map(|i| {
                let pe = Pe::new(self.profile, i, self.scale, self.mshrs, self.seed);
                match self.phase_len {
                    Some(len) => pe.with_phases(len),
                    None => pe,
                }
            })
            .collect()
    }

    /// Total instructions across `num_pes` PEs (the IPC denominator's
    /// numerator).
    pub fn total_instrs(&self, num_pes: usize) -> u64 {
        ((self.profile.instrs as f64 * self.scale).round() as u64).max(1) * num_pes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::benchmark;

    #[test]
    fn pe_array_has_requested_size() {
        let w = Workload::new(benchmark("hotspot").unwrap(), 0.1, 1);
        assert_eq!(w.make_pes(56).len(), 56);
    }

    #[test]
    fn total_instrs_scales() {
        let w1 = Workload::new(benchmark("hotspot").unwrap(), 1.0, 1);
        let w2 = Workload::new(benchmark("hotspot").unwrap(), 2.0, 1);
        assert_eq!(w2.total_instrs(10), 2 * w1.total_instrs(10));
    }

    #[test]
    fn pes_have_distinct_address_streams() {
        let w = Workload::new(benchmark("bfs").unwrap(), 1.0, 9);
        let mut pes = w.make_pes(2);
        let mut a0 = None;
        let mut a1 = None;
        for _ in 0..200 {
            if a0.is_none() {
                if let Some(op) = pes[0].tick(true) {
                    a0 = Some(op.addr);
                    pes[0].complete();
                }
            }
            if a1.is_none() {
                if let Some(op) = pes[1].tick(true) {
                    a1 = Some(op.addr);
                    pes[1].complete();
                }
            }
        }
        assert_ne!(a0.unwrap() >> 28, a1.unwrap() >> 28, "separate working sets");
    }
}
