//! Synthetic (non-benchmark) traffic patterns for stressing fabrics.
//!
//! The Rodinia-calibrated profiles in [`crate::profile`] exercise the
//! paper's Many-to-Few-to-Many pattern; these patterns instead provide
//! the classical adversarial workloads of the NoC literature — uniform
//! random, hotspot, transpose and bursty on/off — used by the `fabric`
//! scenario to probe a topology's saturation and deadlock-freedom
//! behavior where benchmark traffic would be too forgiving.
//!
//! All patterns are pure functions of `(source, grid, cycle, rng)` with
//! the in-repo deterministic [`Rng`], so runs are reproducible and
//! thread-count independent.

use equinox_exec::Rng;

/// Fraction of hotspot-pattern packets aimed at the hotspot node.
pub const HOTSPOT_FRACTION: f64 = 0.3;

/// Bursty on/off duty cycle: each source injects during the first
/// [`BURST_ON`] cycles of every [`BURST_PERIOD`]-cycle window, with a
/// per-source phase shift so bursts collide but are not global.
pub const BURST_PERIOD: u64 = 64;
/// On-cycles per burst window (25% duty).
pub const BURST_ON: u64 = 16;

/// A synthetic destination/activity pattern over a `w × h` node grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyntheticPattern {
    /// Uniform random destinations (excluding self).
    #[default]
    Uniform,
    /// [`HOTSPOT_FRACTION`] of packets target the grid's center node,
    /// the rest are uniform — the many-to-one stress that exposes
    /// ejection-side backpressure.
    Hotspot,
    /// Matrix transpose: `(x, y) → (y, x)` on square grids (the
    /// index-complement `n-1-i` permutation on rectangular ones) —
    /// long deterministic flows that defeat adaptive load balancing.
    Transpose,
    /// Uniform destinations but injection gated to phase-shifted on/off
    /// bursts ([`BURST_ON`] of every [`BURST_PERIOD`] cycles) —
    /// transient congestion far above the average offered load.
    BurstyOnOff,
}

impl SyntheticPattern {
    /// Canonical lower-case name (the spec/CLI token).
    pub fn name(self) -> &'static str {
        match self {
            SyntheticPattern::Uniform => "uniform",
            SyntheticPattern::Hotspot => "hotspot",
            SyntheticPattern::Transpose => "transpose",
            SyntheticPattern::BurstyOnOff => "bursty",
        }
    }

    /// Parses a pattern name (the `--traffic` values).
    ///
    /// # Errors
    ///
    /// Returns a message listing the accepted names.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "uniform" => Ok(SyntheticPattern::Uniform),
            "hotspot" => Ok(SyntheticPattern::Hotspot),
            "transpose" => Ok(SyntheticPattern::Transpose),
            "bursty" => Ok(SyntheticPattern::BurstyOnOff),
            other => Err(format!(
                "unknown traffic pattern '{other}' (expected uniform, hotspot, transpose or bursty)"
            )),
        }
    }

    /// Every registered pattern, in spec order.
    pub fn all() -> [SyntheticPattern; 4] {
        [
            SyntheticPattern::Uniform,
            SyntheticPattern::Hotspot,
            SyntheticPattern::Transpose,
            SyntheticPattern::BurstyOnOff,
        ]
    }

    /// Whether node `src` injects at `cycle` (always true except for the
    /// off-phases of [`SyntheticPattern::BurstyOnOff`]).
    pub fn active(self, cycle: u64, src: usize) -> bool {
        match self {
            SyntheticPattern::BurstyOnOff => {
                // Prime-stride phase shift: sources burst at staggered
                // offsets, overlapping enough to pile up at routers.
                (cycle + src as u64 * 7) % BURST_PERIOD < BURST_ON
            }
            _ => true,
        }
    }

    /// Destination node index for a packet from `src` on a `w × h`
    /// grid, or `None` when the pattern maps `src` to itself (the
    /// transpose diagonal; such sources simply stay silent). `rng` is
    /// only consulted by the randomized patterns.
    pub fn dest(self, src: usize, w: u16, h: u16, rng: &mut Rng) -> Option<usize> {
        let n = w as usize * h as usize;
        debug_assert!(src < n);
        match self {
            SyntheticPattern::Uniform | SyntheticPattern::BurstyOnOff => {
                // Draw from n-1 slots and skip over src: uniform over
                // the other nodes without rejection-loop divergence.
                let mut d = rng.random_range(0..n - 1);
                if d >= src {
                    d += 1;
                }
                Some(d)
            }
            SyntheticPattern::Hotspot => {
                let hot = (h as usize / 2) * w as usize + w as usize / 2;
                if src != hot && rng.random::<f64>() < HOTSPOT_FRACTION {
                    Some(hot)
                } else {
                    let mut d = rng.random_range(0..n - 1);
                    if d >= src {
                        d += 1;
                    }
                    Some(d)
                }
            }
            SyntheticPattern::Transpose => {
                let d = if w == h {
                    let (x, y) = (src % w as usize, src / w as usize);
                    x * w as usize + y
                } else {
                    n - 1 - src
                };
                (d != src).then_some(d)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in SyntheticPattern::all() {
            assert_eq!(SyntheticPattern::parse(p.name()), Ok(p));
        }
        assert_eq!(SyntheticPattern::parse(" Hotspot "), Ok(SyntheticPattern::Hotspot));
        assert!(SyntheticPattern::parse("tornado").is_err());
    }

    #[test]
    fn uniform_never_self_targets_and_covers_all() {
        let mut rng = Rng::seed_from_u64(1);
        let mut seen = [false; 12];
        for _ in 0..2_000 {
            let d = SyntheticPattern::Uniform.dest(5, 4, 3, &mut rng).unwrap();
            assert_ne!(d, 5);
            assert!(d < 12);
            seen[d] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert_eq!(covered, 11, "every other node reachable");
    }

    #[test]
    fn hotspot_concentrates_on_the_center() {
        let mut rng = Rng::seed_from_u64(2);
        let hot = 2 * 4 + 2; // center of 4×4
        let trials = 4_000;
        let hits = (0..trials)
            .filter(|_| SyntheticPattern::Hotspot.dest(0, 4, 4, &mut rng) == Some(hot))
            .count();
        let frac = hits as f64 / trials as f64;
        // HOTSPOT_FRACTION plus the uniform tail's 1/15 share.
        assert!(frac > HOTSPOT_FRACTION, "hotspot share {frac} too low");
        assert!(frac < HOTSPOT_FRACTION + 0.15, "hotspot share {frac} too high");
    }

    #[test]
    fn transpose_is_an_involution() {
        let mut rng = Rng::seed_from_u64(3);
        for src in 0..16usize {
            match SyntheticPattern::Transpose.dest(src, 4, 4, &mut rng) {
                Some(d) => {
                    assert_eq!(SyntheticPattern::Transpose.dest(d, 4, 4, &mut rng), Some(src));
                }
                None => {
                    // Fixed points are exactly the diagonal.
                    assert_eq!(src % 4, src / 4);
                }
            }
        }
        // Rectangular grids use the index complement.
        assert_eq!(SyntheticPattern::Transpose.dest(0, 4, 3, &mut rng), Some(11));
    }

    #[test]
    fn bursty_duty_cycle_and_phase() {
        let p = SyntheticPattern::BurstyOnOff;
        let on = (0..BURST_PERIOD).filter(|&c| p.active(c, 0)).count() as u64;
        assert_eq!(on, BURST_ON, "duty cycle");
        // Different sources are phase-shifted, not synchronized.
        assert!((0..BURST_PERIOD).any(|c| p.active(c, 0) != p.active(c, 3)));
        // Everything else always injects.
        assert!(SyntheticPattern::Uniform.active(123, 4));
    }
}
