//! The network: routers, links, injectors and the per-cycle schedule.
//!
//! [`Network::step`] advances one clock cycle in two phases:
//!
//! 1. **Arrivals** — flits and credits that finished traversing links are
//!    delivered into router input buffers / credit counters.
//! 2. **Router stages** — every router performs route computation for new
//!    head flits, VC allocation (adaptive candidates preferred by
//!    downstream credit count, XY escape fallback), separable input-first
//!    switch allocation with round-robin arbiters, and switch traversal,
//!    which pushes flits onto outgoing links (or ejection queues) and
//!    returns a credit upstream for the freed buffer slot.
//!
//! Network interfaces interact only through [`InjectorId`] handles (each an
//! extra input port fed by a private link with NI-side credit counters) and
//! the per-port ejection queues.

use crate::audit::{self, AuditConfig, AuditState, Violation};
use crate::config::NocConfig;
use crate::flit::{Flit, MessageClass};
use crate::link::{CreditDst, Link, LinkKind};
use crate::router::{OutputRole, Router, PORT_LOCAL};
use crate::stats::NetStats;
use crate::topology::{Topology, TopologyKind};
use crate::trace::{Trace, TraceEvent, TraceKind};
use equinox_obs::{NetCause, StallGrid};
use equinox_phys::Coord;
use std::collections::VecDeque;
use std::ops::Range;

/// Handle to one injection point (an input port on some router, fed by a
/// dedicated link with credit-based backpressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InjectorId(pub(crate) usize);

impl equinox_snap::Snap for InjectorId {
    fn snap(&self, e: &mut equinox_snap::Enc) {
        e.put_usize(self.0);
    }
    fn restore(d: &mut equinox_snap::Dec) -> Result<Self, equinox_snap::SnapError> {
        Ok(InjectorId(d.usize()?))
    }
}

#[derive(Debug)]
pub(crate) struct Injector {
    link: usize,
    router: usize,
    /// NI-side credit counter per VC of the fed input port.
    pub(crate) credits: Vec<u32>,
    /// VC chosen for the packet currently being streamed in.
    active_vc: Option<u8>,
    /// Cycle of the last accepted flit (enforces one flit per cycle).
    last_cycle: u64,
    /// Total flits accepted through this injector (observability).
    flits: u64,
}

/// A deduplicated worklist over a dense id space, kept sorted ascending
/// so a gated sweep visits members in exactly the order the exhaustive
/// `for id in 0..n` sweep would. The list's capacity always covers the
/// whole id space, so inserts in the steady state never allocate.
#[derive(Debug, Default)]
struct ActiveSet {
    /// `flags[id]` — membership bit (dedup for `insert`).
    flags: Vec<bool>,
    /// Member ids, sorted ascending.
    list: Vec<u32>,
}

impl ActiveSet {
    fn with_len(n: usize) -> Self {
        ActiveSet {
            flags: vec![false; n],
            list: Vec::with_capacity(n),
        }
    }

    /// Extends the id space by one (new id starts inactive).
    fn grow(&mut self) {
        self.flags.push(false);
        let need = self.flags.len() - self.list.len();
        self.list.reserve(need);
    }

    /// Adds `id` to the worklist, keeping the list sorted. No-op if
    /// already present.
    fn insert(&mut self, id: usize) {
        if !self.flags[id] {
            self.flags[id] = true;
            let id = id as u32;
            let pos = self.list.partition_point(|&x| x < id);
            self.list.insert(pos, id);
        }
    }
}

/// Stall-cause attribution state (the `obs/v2` layer), armed by
/// [`Network::enable_stalls`]. Boxed behind an `Option` like the
/// auditor: disabled, every hook costs one branch and no allocation.
#[derive(Debug)]
pub(crate) struct NetStalls {
    /// Per-router × per-cause stall-cycle counters + per-class totals.
    grid: StallGrid,
    /// Entry cycle of every flit parked in an ejection queue, parallel
    /// deque-for-deque to [`Network::eject`]. Preallocated to
    /// `eject_cap` (the queues' hard bound) so steady-state pushes
    /// never allocate.
    eject_ts: Vec<Vec<VecDeque<u64>>>,
}

/// A cycle-accurate network over one of the registered
/// [`crate::topology`] fabrics.
#[derive(Debug)]
pub struct Network {
    pub(crate) cfg: NocConfig,
    /// The fabric description the network was built from: link graph,
    /// productive-direction function, escape contract.
    pub(crate) topo: Box<dyn Topology>,
    pub(crate) routers: Vec<Router>,
    pub(crate) links: Vec<Link>,
    pub(crate) injectors: Vec<Injector>,
    /// Ejection queues indexed `[router][port]` (only `Eject` ports used).
    pub(crate) eject: Vec<Vec<VecDeque<Flit>>>,
    stats: NetStats,
    pub(crate) cycle: u64,
    /// Cached local injector ids per node (row-major).
    local_injectors: Vec<InjectorId>,
    /// Scratch buffer for credit delivery.
    credit_scratch: Vec<u8>,
    /// Scratch winner table for switch allocation (one slot per port of
    /// the router currently being switched).
    sa_winners: Vec<Option<(usize, usize)>>,
    /// Opt-in flit-event recorder (disabled by default).
    trace: Trace,
    /// Opt-in invariant auditor (disabled by default; boxed so the
    /// disabled case costs one pointer and a branch per cycle).
    pub(crate) audit: Option<Box<AuditState>>,
    /// Opt-in stall-cause attribution (disabled by default; same
    /// one-branch discipline as the auditor).
    stall: Option<Box<NetStalls>>,
    /// Routers that may do work this cycle (≥ 1 buffered flit).
    active_routers: ActiveSet,
    /// Links with flits in flight.
    active_flit_links: ActiveSet,
    /// Links with credits in flight.
    active_credit_links: ActiveSet,
    /// Buffered flits per router (mirrors `Router::buffered_flits`, kept
    /// here because router unit tests mutate buffers directly).
    router_buffered: Vec<u32>,
    /// O(1) idleness aggregates: total flits buffered in routers, flits
    /// in flight on links, credits in flight on links, and flits parked
    /// in ejection queues. `idle()` is the conjunction of all four being
    /// zero.
    buffered_total: u64,
    flits_in_flight: u64,
    credits_in_flight: u64,
    eject_occupancy: u64,
}

impl Network {
    /// Builds the network described by `cfg.topology`: every node gets a
    /// uniform 5-port router (4 network ports + local; ports the fabric
    /// does not wire stay dead), the fabric's link graph is wired both
    /// ways, and each node gets one local injector and one ejection port
    /// tagged with the node's row-major index.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`NocConfig::validate`].
    pub fn new(cfg: NocConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid NoC config: {e}");
        }
        let topo = cfg.topology.build(cfg.width, cfg.height);
        let n = topo.num_nodes();
        let depth = cfg.vc_buf_flits as u32;
        let routers: Vec<Router> = (0..n)
            .map(|i| Router::new(topo.node_coord(i), 5, cfg.vcs_per_port, depth))
            .collect();
        let mut net = Network {
            eject: (0..n).map(|_| vec![VecDeque::new(); 5]).collect(),
            stats: NetStats::new(n),
            topo,
            routers,
            links: Vec::new(),
            injectors: Vec::new(),
            cycle: 0,
            local_injectors: Vec::new(),
            cfg,
            credit_scratch: Vec::new(),
            sa_winners: Vec::new(),
            trace: Trace::default(),
            audit: None,
            stall: None,
            active_routers: ActiveSet::with_len(n),
            active_flit_links: ActiveSet::default(),
            active_credit_links: ActiveSet::default(),
            router_buffered: vec![0; n],
            buffered_total: 0,
            flits_in_flight: 0,
            credits_in_flight: 0,
            eject_occupancy: 0,
        };
        // Network links, in the fabric's deterministic build order (link
        // ids are observable through link-utilization grids, so the order
        // is part of each fabric's contract).
        for l in net.topo.links() {
            let link_id = net.push_link(Link::new(
                LinkKind::Mesh,
                net.cfg.link_latency,
                l.to,
                l.to_port,
                CreditDst::RouterOutput {
                    router: l.from,
                    port: l.from_port,
                },
            ));
            net.routers[l.from].outputs[l.from_port].role = OutputRole::Link(link_id);
            net.routers[l.to].inputs[l.to_port].feed_link = Some(link_id);
        }
        // Local ports: ejection with sink tag, plus one NI injector.
        for i in 0..n {
            net.routers[i].outputs[PORT_LOCAL].role = OutputRole::Eject {
                sink: Some(i as u32),
            };
            let c = net.topo.node_coord(i);
            let id = net.attach_injector(c, PORT_LOCAL, net.cfg.ni_latency, LinkKind::NiLocal);
            net.local_injectors.push(id);
        }
        net.stats.shape = Some((net.cfg.topology, net.cfg.width, net.cfg.height));
        net
    }

    /// [`Network::new`] under its historical name. Kept because most of
    /// the stack builds meshes and reads better saying so; the
    /// constructor itself honours whatever `cfg.topology` requests.
    pub fn mesh(cfg: NocConfig) -> Self {
        Self::new(cfg)
    }

    /// Appends a link and grows the per-link worklists with it.
    fn push_link(&mut self, link: Link) -> usize {
        let id = self.links.len();
        self.links.push(link);
        self.active_flit_links.grow();
        self.active_credit_links.grow();
        id
    }

    fn attach_injector(
        &mut self,
        node: Coord,
        port: usize,
        latency: u32,
        kind: LinkKind,
    ) -> InjectorId {
        let r = self.topo.node_index(node);
        let injector_idx = self.injectors.len();
        let link_id = self.push_link(Link::new(
            kind,
            latency,
            r,
            port,
            CreditDst::Injector {
                injector: injector_idx,
            },
        ));
        self.routers[r].inputs[port].feed_link = Some(link_id);
        self.injectors.push(Injector {
            link: link_id,
            router: r,
            credits: vec![self.cfg.vc_buf_flits as u32; self.cfg.vcs_per_port as usize],
            active_vc: None,
            last_cycle: u64::MAX,
            flits: 0,
        });
        InjectorId(injector_idx)
    }

    /// Adds an extra injection port to the router at `node`, fed by a link
    /// of the given latency and kind, and returns its handle. This is how
    /// MultiPort's extra CB ports and EquiNox's CB→EIR interposer links
    /// are modelled.
    pub fn add_injection_port(&mut self, node: Coord, latency: u32, kind: LinkKind) -> InjectorId {
        let r = self.topo.node_index(node);
        let port = self.routers[r].add_port(self.cfg.vcs_per_port, self.cfg.vc_buf_flits as u32);
        self.eject[r].push(VecDeque::new());
        self.attach_injector(node, port, latency, kind)
    }

    /// Adds an extra ejection port (output only) to the router at `node`,
    /// restricted to flits whose sink tag equals `sink` (or any flit if
    /// `None`). Returns `(router, port)` for use with [`Network::pop_ejected`].
    pub fn add_ejection_port(&mut self, node: Coord, sink: Option<u32>) -> (usize, usize) {
        let r = self.topo.node_index(node);
        let port = self.routers[r].add_port(self.cfg.vcs_per_port, self.cfg.vc_buf_flits as u32);
        self.routers[r].outputs[port].role = OutputRole::Eject { sink };
        self.eject[r].push(VecDeque::new());
        (r, port)
    }

    /// Re-tags an existing ejection port (used by concentrated meshes to
    /// map each local port to a base-mesh node id).
    ///
    /// # Panics
    ///
    /// Panics if `(router, port)` is not an ejection port.
    pub fn set_ejection_sink(&mut self, router: usize, port: usize, sink: Option<u32>) {
        match &mut self.routers[router].outputs[port].role {
            OutputRole::Eject { sink: s } => *s = sink,
            other => panic!("port {port} of router {router} is {other:?}, not an ejection port"),
        }
    }

    /// The local (port-4) injector of `node`.
    pub fn local_injector(&self, node: Coord) -> InjectorId {
        self.local_injectors[self.topo.node_index(node)]
    }

    /// Router index hosting this injector.
    pub fn injector_router(&self, id: InjectorId) -> usize {
        self.injectors[id.0].router
    }

    /// Total flits accepted through this injector since construction
    /// (observability: per-EIR load sampling).
    pub fn injector_flits(&self, id: InjectorId) -> u64 {
        self.injectors[id.0].flits
    }

    /// Number of injection points (used to bound-check restored
    /// [`InjectorId`]s).
    pub fn num_injectors(&self) -> usize {
        self.injectors.len()
    }

    /// `true` if `id` names an injection point of this network (used to
    /// validate restored snapshot state).
    pub fn injector_valid(&self, id: InjectorId) -> bool {
        id.0 < self.injectors.len()
    }

    /// Number of links in the network (mesh links plus every NI/EIR
    /// feed), the denominator of link-utilization figures.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Fills `out` with the cumulative flit count carried by each link
    /// (index = link id). Reuses the caller's buffer so a sampling loop
    /// stays allocation-free after the first call.
    pub fn link_flit_counts(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.links.iter().map(|l| l.flits_carried));
    }

    /// `true` if the injector could accept the head flit of a new packet
    /// of `class` this cycle: it is between packets, no flit was already
    /// injected this cycle, and some VC in the class's partition has
    /// downstream credit. Packets may follow each other back-to-back
    /// through the same VC (standard wormhole injection); what makes an NI
    /// buffer "single-packet" is that the injector streams one packet at a
    /// time.
    pub fn injector_ready(&self, id: InjectorId, class: MessageClass) -> bool {
        let inj = &self.injectors[id.0];
        if inj.last_cycle == self.cycle {
            return false;
        }
        if inj.active_vc.is_some() {
            return false;
        }
        self.free_vc(inj, class).is_some()
    }

    /// Picks the emptiest credited VC of the class partition.
    fn free_vc(&self, inj: &Injector, class: MessageClass) -> Option<u8> {
        let range = self
            .cfg
            .partition
            .range_for(class.is_reply(), self.cfg.vcs_per_port);
        range
            .clone()
            .filter(|&v| inj.credits[v as usize] > 0)
            .max_by_key(|&v| inj.credits[v as usize])
    }

    /// Tries to inject one flit. Head flits claim a fresh VC (requiring an
    /// empty downstream buffer); body/tail flits continue on the claimed
    /// VC. At most one flit per injector per cycle. Returns `false` (and
    /// consumes nothing) when the flit cannot be accepted this cycle.
    pub fn try_inject_flit(&mut self, id: InjectorId, mut flit: Flit) -> bool {
        let cfgdepth = self.cfg.vc_buf_flits as u32;
        let class = flit.class;
        let vc = {
            let inj = &self.injectors[id.0];
            if inj.last_cycle == self.cycle {
                return false;
            }
            if flit.is_head() {
                if inj.active_vc.is_some() {
                    // A packet is still streaming through this buffer; a
                    // new head must wait for its tail (single-packet
                    // injector discipline).
                    return false;
                }
                match self.free_vc(inj, class) {
                    Some(v) => v,
                    None => return false,
                }
            } else {
                match inj.active_vc {
                    Some(v) if inj.credits[v as usize] > 0 => v,
                    _ => return false,
                }
            }
        };
        let inj = &mut self.injectors[id.0];
        debug_assert!(inj.credits[vc as usize] > 0 && inj.credits[vc as usize] <= cfgdepth);
        inj.credits[vc as usize] -= 1;
        inj.last_cycle = self.cycle;
        inj.flits += 1;
        inj.active_vc = if flit.is_tail() { None } else { Some(vc) };
        flit.vc = vc;
        let link = inj.link;
        let kind = self.links[link].kind;
        let to_router = self.links[link].to_router;
        self.links[link].send_flit(self.cycle, flit);
        self.flits_in_flight += 1;
        self.active_flit_links.insert(link);
        self.stats.count_link_flit(kind);
        self.stats.injected_flits += 1;
        if let Some(a) = self.audit.as_deref_mut() {
            a.injected[audit::class_ix(class)] += 1;
        }
        if self.trace.enabled() {
            self.trace.record(TraceEvent {
                cycle: self.cycle,
                router: to_router,
                pkt: flit.pkt,
                seq: flit.seq,
                kind: TraceKind::Inject,
            });
        }
        true
    }

    /// Pops one ejected flit from `(router, port)`, if any.
    pub fn pop_ejected(&mut self, router: usize, port: usize) -> Option<Flit> {
        let f = self.eject[router][port].pop_front();
        if let Some(f) = f.as_ref() {
            self.eject_occupancy -= 1;
            if let Some(a) = self.audit.as_deref_mut() {
                a.note_pop(f.class);
            }
            self.note_eject_pop(router, port, f);
        }
        f
    }

    /// Pops one ejected flit from any ejection port of the router at
    /// `node`.
    pub fn pop_ejected_node(&mut self, node: Coord) -> Option<Flit> {
        let r = self.topo.node_index(node);
        for p in 0..self.eject[r].len() {
            if let Some(f) = self.eject[r][p].pop_front() {
                self.eject_occupancy -= 1;
                if let Some(a) = self.audit.as_deref_mut() {
                    a.note_pop(f.class);
                }
                self.note_eject_pop(r, p, &f);
                return Some(f);
            }
        }
        None
    }

    /// Attribution hook for an ejection-queue pop: advances the parallel
    /// timestamp deque and, on a tail flit, charges the packet's wait in
    /// the queue to `eject_wait`. A flit ejected during the step at
    /// cycle `t` could earliest be popped once the clock reads `t + 1`,
    /// so the wait is `(cycle - 1) - entry` — zero for an ideal sink.
    #[inline]
    fn note_eject_pop(&mut self, router: usize, port: usize, f: &Flit) {
        let cycle = self.cycle;
        if let Some(st) = self.stall.as_deref_mut() {
            let entry = st.eject_ts[router][port]
                .pop_front()
                .expect("eject timestamps track the eject queues");
            if f.is_tail() {
                let wait = cycle.saturating_sub(1).saturating_sub(entry);
                st.grid
                    .charge(router, NetCause::EjectWait, audit::class_ix(f.class), wait);
            }
        }
    }

    /// Advances the network one cycle.
    pub fn step(&mut self) {
        let now = self.cycle;
        if self.cfg.activity_gate {
            self.step_gated(now);
        } else {
            self.step_exhaustive(now);
        }
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        if self.audit.is_some() {
            self.audit_step();
        }
    }

    /// Reference schedule: every link and every router, in id order.
    /// The gated sweep must match this bit-for-bit.
    fn step_exhaustive(&mut self, now: u64) {
        for li in 0..self.links.len() {
            self.deliver_credits_link(li, now);
        }
        for li in 0..self.links.len() {
            self.deliver_flits_link(li, now);
        }
        for r in 0..self.routers.len() {
            self.route_and_allocate(r);
            self.switch(r, now);
        }
    }

    /// Activity-gated schedule: only links with traffic in flight and
    /// routers with buffered flits are visited, in ascending id order —
    /// the same relative order as the exhaustive sweep, whose skipped
    /// elements are exact no-ops (an empty router allocates nothing and
    /// grants nothing, so none of its arbiter state advances). Each
    /// worklist is compacted in place as it is walked; elements are
    /// re-activated by the arrival edges in the delivery helpers,
    /// `try_inject_flit` and `traverse`.
    ///
    /// Taking a worklist out of `self` is safe because no phase inserts
    /// into the set it iterates: credit delivery never sends credits,
    /// flit delivery never sends flits, and the router stages never push
    /// into another router's buffers (links have latency ≥ 1).
    fn step_gated(&mut self, now: u64) {
        let mut list = std::mem::take(&mut self.active_credit_links.list);
        let mut kept = 0;
        for i in 0..list.len() {
            let li = list[i] as usize;
            self.deliver_credits_link(li, now);
            if self.links[li].credits_pending() > 0 {
                list[kept] = list[i];
                kept += 1;
            } else {
                self.active_credit_links.flags[li] = false;
            }
        }
        list.truncate(kept);
        self.active_credit_links.list = list;

        let mut list = std::mem::take(&mut self.active_flit_links.list);
        let mut kept = 0;
        for i in 0..list.len() {
            let li = list[i] as usize;
            self.deliver_flits_link(li, now);
            if self.links[li].in_flight() > 0 {
                list[kept] = list[i];
                kept += 1;
            } else {
                self.active_flit_links.flags[li] = false;
            }
        }
        list.truncate(kept);
        self.active_flit_links.list = list;

        let mut list = std::mem::take(&mut self.active_routers.list);
        let mut kept = 0;
        for i in 0..list.len() {
            let r = list[i] as usize;
            self.route_and_allocate(r);
            self.switch(r, now);
            if self.router_buffered[r] > 0 {
                list[kept] = list[i];
                kept += 1;
            } else {
                self.active_routers.flags[r] = false;
            }
        }
        list.truncate(kept);
        self.active_routers.list = list;
    }

    /// Delivers the credits arriving on link `li` at `now`.
    fn deliver_credits_link(&mut self, li: usize, now: u64) {
        let mut scratch = std::mem::take(&mut self.credit_scratch);
        scratch.clear();
        self.links[li].recv_credits(now, &mut scratch);
        if !scratch.is_empty() {
            self.credits_in_flight -= scratch.len() as u64;
            match self.links[li].credit_dst {
                CreditDst::RouterOutput { router, port } => {
                    for &vc in &scratch {
                        self.routers[router].outputs[port].vcs[vc as usize].credits += 1;
                    }
                }
                CreditDst::Injector { injector } => {
                    for &vc in &scratch {
                        self.injectors[injector].credits[vc as usize] += 1;
                    }
                }
            }
        }
        self.credit_scratch = scratch;
    }

    /// Delivers the flits arriving on link `li` at `now`, activating the
    /// fed router.
    fn deliver_flits_link(&mut self, li: usize, now: u64) {
        while let Some(flit) = self.links[li].recv_flit(now) {
            let (r, p) = (self.links[li].to_router, self.links[li].to_port);
            let buf = &mut self.routers[r].inputs[p].vcs[flit.vc as usize].buf;
            debug_assert!(
                buf.len() < self.cfg.vc_buf_flits,
                "buffer overflow at router {r} port {p} vc {}",
                flit.vc
            );
            buf.push_back((now, flit));
            self.stats.buffer_writes += 1;
            self.flits_in_flight -= 1;
            self.router_buffered[r] += 1;
            self.buffered_total += 1;
            self.active_routers.insert(r);
        }
    }

    /// The VC range `class` may use at router `ri` this cycle, as
    /// `(escape_vc, usable_vcs)`. Monopolization (VC-Mono) widens the set
    /// to the foreign partition when no foreign-class flit is buffered at
    /// the router. Only the *reply* class may monopolize: replies are
    /// unconditionally consumed at the PEs, so a reply parked in a request
    /// VC always drains, whereas a request monopolizing reply VCs at a CB
    /// router can block the very replies whose progress the CB needs to
    /// accept more requests — a protocol deadlock.
    fn usable_vcs(&self, ri: usize, class: MessageClass) -> (u8, Range<u8>, Range<u8>) {
        let total = self.cfg.vcs_per_port;
        let own = self.cfg.partition.range_for(class.is_reply(), total);
        let escape = own.start;
        // VC partitions are contiguous, so both the own and the borrowed
        // (monopolized) sets are plain ranges — no per-allocation Vecs.
        let foreign = if self.cfg.partition.mono()
            && class == MessageClass::Reply
            && !self.routers[ri].class_present(MessageClass::Request)
        {
            self.cfg.partition.range_for(false, total)
        } else {
            0..0
        };
        (escape, own, foreign)
    }

    /// Route computation + VC allocation for every input VC of router `ri`
    /// whose head-of-line flit is a packet head without an allocated
    /// output.
    fn route_and_allocate(&mut self, ri: usize) {
        let coord = self.routers[ri].coord;
        let nports = self.routers[ri].num_ports();
        for ip in 0..nports {
            for iv in 0..self.routers[ri].inputs[ip].vcs.len() {
                let head = {
                    let vc = &self.routers[ri].inputs[ip].vcs[iv];
                    if vc.out_vc.is_some() {
                        continue;
                    }
                    match vc.buf.front() {
                        // Pipeline gating: the head must have cleared the
                        // router's extra stages before allocation.
                        Some(&(enq, f))
                            if enq + self.cfg.pipeline_extra as u64 <= self.cycle =>
                        {
                            f
                        }
                        _ => continue,
                    }
                };
                debug_assert!(head.is_head(), "non-head flit awaiting allocation");
                let (escape, usable, foreign) = self.usable_vcs(ri, head.class);
                let grant = if head.dst == coord {
                    self.alloc_ejection(ri, head.sink, usable)
                } else {
                    // Escape capture (ring fabrics): a flit that arrived
                    // over a network link on its class's escape VC must
                    // stay on the escape path — port *and* VC — so no
                    // adaptive detour can re-enter the escape layer and
                    // create an indirect channel dependence.
                    let captured = self.topo.captures_escape()
                        && ip < PORT_LOCAL
                        && iv == escape as usize;
                    self.alloc_direction(ri, head.dst, escape, usable, foreign, captured)
                };
                if let Some((op, ov)) = grant {
                    let r = &mut self.routers[ri];
                    r.outputs[op].vcs[ov as usize].owner = Some((ip, iv as u8));
                    let vc = &mut r.inputs[ip].vcs[iv];
                    vc.out_port = Some(op);
                    vc.out_vc = Some(ov);
                    self.stats.vc_allocs += 1;
                } else if let Some(st) = self.stall.as_deref_mut() {
                    // The head sat pipeline-clear at the front of its VC
                    // this cycle and got no output VC: one vc_alloc
                    // stall cycle. Mutually exclusive with the switch
                    // post-pass charges, which require `out_vc` set.
                    st.grid
                        .charge(ri, NetCause::VcAlloc, audit::class_ix(head.class), 1);
                }
            }
        }
    }

    /// Finds a free output VC on an ejection port accepting `sink`.
    fn alloc_ejection(&self, ri: usize, sink: u32, usable: Range<u8>) -> Option<(usize, u8)> {
        let r = &self.routers[ri];
        for (op, out) in r.outputs.iter().enumerate() {
            if let OutputRole::Eject { sink: tag } = out.role {
                if tag.is_some_and(|t| t != sink) {
                    continue;
                }
                for v in usable.clone() {
                    if out.vcs[v as usize].owner.is_none() {
                        return Some((op, v));
                    }
                }
            }
        }
        None
    }

    /// Finds a free output VC towards `dst`: adaptive VCs on the
    /// credit-richest candidate port first, then the escape VC on the
    /// fabric's escape port. A `captured` flit (see
    /// [`Topology::captures_escape`]) is restricted to the escape
    /// port/VC pair outright.
    fn alloc_direction(
        &self,
        ri: usize,
        dst: Coord,
        escape: u8,
        usable: Range<u8>,
        foreign: Range<u8>,
        captured: bool,
    ) -> Option<(usize, u8)> {
        let r = &self.routers[ri];
        let di = self.topo.node_index(dst);
        let escape_port = self.topo.escape_port(ri, di);
        if captured {
            let p = escape_port.expect("captured flit routed at its destination");
            let ovc = &r.outputs[p].vcs[escape as usize];
            if matches!(r.outputs[p].role, OutputRole::Link(_))
                && ovc.owner.is_none()
                && ovc.credits > 0
            {
                return Some((p, escape));
            }
            return None;
        }
        // At most two candidate ports on any fabric — keep them in a
        // fixed pair instead of a sorted Vec.
        let mut ports = [usize::MAX; 2];
        let mut n_ports = 0usize;
        for &p in self.topo.route(self.cfg.routing, ri, di).as_slice() {
            let p = p as usize;
            if matches!(r.outputs[p].role, OutputRole::Link(_)) {
                ports[n_ports] = p;
                n_ports += 1;
            }
        }
        // Prefer the port with more free downstream credit (adaptive);
        // stable on ties, matching the previous stable sort.
        if n_ports == 2 {
            let credit_sum = |p: usize| {
                usable
                    .clone()
                    .map(|v| r.outputs[p].vcs[v as usize].credits)
                    .sum::<u32>()
            };
            if credit_sum(ports[1]) > credit_sum(ports[0]) {
                ports.swap(0, 1);
            }
        }
        for &p in &ports[..n_ports] {
            for v in usable.clone() {
                let is_escape = v == escape;
                if is_escape && Some(p) != escape_port {
                    continue; // escape VC only along the escape path
                }
                let ovc = &r.outputs[p].vcs[v as usize];
                if ovc.owner.is_none() && ovc.credits > 0 {
                    return Some((p, v));
                }
            }
            // Monopolized (foreign-class) VCs are borrowed only when the
            // downstream buffer is completely idle AND only along the
            // escape port: all traffic in a borrowed VC then follows the
            // escape discipline, keeping that VC layer's
            // channel-dependence graph acyclic (borrowing as extra
            // *adaptive* channels was observed to wedge wormhole cycles
            // under saturation).
            if Some(p) == escape_port {
                for v in foreign.clone() {
                    let ovc = &r.outputs[p].vcs[v as usize];
                    if ovc.owner.is_none() && ovc.credits as usize == self.cfg.vc_buf_flits {
                        return Some((p, v));
                    }
                }
            }
        }
        None
    }

    /// Separable input-first switch allocation followed by traversal.
    fn switch(&mut self, ri: usize, now: u64) {
        let nports = self.routers[ri].num_ports();
        // Input arbitration: one candidate VC per input port. The winner
        // table lives on `Network` so steady-state cycles are
        // allocation-free (it grows once to the widest router).
        let mut winners = std::mem::take(&mut self.sa_winners); // (in_vc, out_port)
        winners.clear();
        winners.resize(nports, None);
        for (ip, winner) in winners.iter_mut().enumerate() {
            let r = &self.routers[ri];
            let nvcs = r.inputs[ip].vcs.len();
            let start = r.inputs[ip].sa_ptr;
            for k in 0..nvcs {
                let iv = (start + k) % nvcs;
                let vc = &r.inputs[ip].vcs[iv];
                if !vc.sa_ready() {
                    continue;
                }
                if vc
                    .buf
                    .front()
                    .is_some_and(|&(enq, _)| enq + self.cfg.pipeline_extra as u64 > now)
                {
                    continue; // still in the pipeline
                }
                let (op, ov) = (vc.out_port.expect("ready"), vc.out_vc.expect("ready"));
                let out = &r.outputs[op];
                let has_credit = match out.role {
                    OutputRole::Eject { .. } => self.eject[ri][op].len() < self.cfg.eject_cap,
                    OutputRole::Link(_) => out.vcs[ov as usize].credits > 0,
                    OutputRole::Dead => false,
                };
                if has_credit {
                    *winner = Some((iv, op));
                    break;
                }
            }
        }
        // Output arbitration: one input per output port, round-robin.
        // The nearest requester past the round-robin pointer is found by
        // a direct scan — no per-port requester Vec.
        for op in 0..nports {
            let start = self.routers[ri].outputs[op].sa_ptr;
            let mut chosen: Option<(usize, usize)> = None; // (rr_key, ip)
            for (ip, w) in winners.iter().enumerate() {
                if w.is_some_and(|(_, o)| o == op) {
                    let key = (ip + nports - start) % nports;
                    if chosen.is_none_or(|(k, _)| key < k) {
                        chosen = Some((key, ip));
                    }
                }
            }
            let Some((_, chosen)) = chosen else { continue };
            self.routers[ri].outputs[op].sa_ptr = (chosen + 1) % nports;
            let (iv, _) = winners[chosen].expect("winner recorded");
            self.traverse(ri, chosen, iv, op, now);
        }
        self.sa_winners = winners;
        if self.stall.is_some() {
            self.charge_switch_stalls(ri, now);
        }
    }

    /// Attribution post-pass after switch allocation: any input VC still
    /// fronted by a pipeline-clear *head* flit that holds an output VC
    /// did not traverse this cycle (a traversal would have popped it;
    /// a departing tail clears `out_vc`, and a head that just arrived
    /// has none). Charges one stall cycle per such packet — to
    /// `credit_starve` when the allocated output cannot accept a flit,
    /// otherwise to `switch_loss` (it could move but lost input- or
    /// output-stage arbitration). Charging only head-fronted VCs keeps
    /// the per-packet invariant "≤ 1 in-network charge per cycle" (a
    /// packet's head exists in exactly one place), which is what makes
    /// the per-class attribution sum to end-to-end latency.
    fn charge_switch_stalls(&mut self, ri: usize, now: u64) {
        let nports = self.routers[ri].num_ports();
        for ip in 0..nports {
            for iv in 0..self.routers[ri].inputs[ip].vcs.len() {
                let vc = &self.routers[ri].inputs[ip].vcs[iv];
                let (Some(op), Some(ov)) = (vc.out_port, vc.out_vc) else {
                    continue;
                };
                let Some(&(enq, head)) = vc.buf.front() else {
                    continue;
                };
                if !head.is_head() || enq + self.cfg.pipeline_extra as u64 > now {
                    continue;
                }
                let out = &self.routers[ri].outputs[op];
                let has_credit = match out.role {
                    OutputRole::Eject { .. } => self.eject[ri][op].len() < self.cfg.eject_cap,
                    OutputRole::Link(_) => out.vcs[ov as usize].credits > 0,
                    OutputRole::Dead => false,
                };
                let cause = if has_credit {
                    NetCause::SwitchLoss
                } else {
                    NetCause::CreditStarve
                };
                let st = self.stall.as_deref_mut().expect("stalls enabled");
                st.grid.charge(ri, cause, audit::class_ix(head.class), 1);
            }
        }
    }

    /// Moves one flit from input `(ip, iv)` through output `op`.
    fn traverse(&mut self, ri: usize, ip: usize, iv: usize, op: usize, now: u64) {
        let depth_stats = {
            let r = &mut self.routers[ri];
            r.inputs[ip].sa_ptr = (iv + 1) % r.inputs[ip].vcs.len();
            let ov = r.inputs[ip].vcs[iv].out_vc.expect("allocated");
            let (enq, mut flit) = r.inputs[ip].vcs[iv].buf.pop_front().expect("nonempty");
            debug_assert_eq!(flit.vc as usize, iv, "flit buffered in wrong VC");
            let feed = r.inputs[ip].feed_link;
            if flit.is_tail() {
                r.outputs[op].vcs[ov as usize].owner = None;
                r.inputs[ip].vcs[iv].out_port = None;
                r.inputs[ip].vcs[iv].out_vc = None;
            }
            flit.vc = ov;
            (enq, flit, feed, ov)
        };
        let (enq, flit, feed, ov) = depth_stats;
        self.router_buffered[ri] -= 1;
        self.buffered_total -= 1;
        self.stats.buffer_reads += 1;
        self.stats.xbar_traversals += 1;
        self.stats.router_flits[ri] += 1;
        self.stats.router_cycles[ri] += now.saturating_sub(enq) + 1;
        if let Some(l) = feed {
            // Return a credit for the freed input-buffer slot.
            self.links[l].send_credit(now, iv as u8);
            self.credits_in_flight += 1;
            self.active_credit_links.insert(l);
        }
        match self.routers[ri].outputs[op].role {
            OutputRole::Link(l) => {
                self.routers[ri].outputs[op].vcs[ov as usize].credits -= 1;
                let kind = self.links[l].kind;
                self.links[l].send_flit(now, flit);
                self.flits_in_flight += 1;
                self.active_flit_links.insert(l);
                self.stats.count_link_flit(kind);
                if self.trace.enabled() {
                    self.trace.record(TraceEvent {
                        cycle: now,
                        router: ri,
                        pkt: flit.pkt,
                        seq: flit.seq,
                        kind: TraceKind::Hop,
                    });
                }
            }
            OutputRole::Eject { .. } => {
                self.eject[ri][op].push_back(flit);
                self.eject_occupancy += 1;
                self.stats.ejected_flits += 1;
                if let Some(st) = self.stall.as_deref_mut() {
                    st.eject_ts[ri][op].push_back(now);
                }
                if self.trace.enabled() {
                    self.trace.record(TraceEvent {
                        cycle: now,
                        router: ri,
                        pkt: flit.pkt,
                        seq: flit.seq,
                        kind: TraceKind::Eject,
                    });
                }
            }
            OutputRole::Dead => unreachable!("flit routed to dead port"),
        }
    }

    /// `true` when no flit is buffered anywhere, in flight on a link, or
    /// waiting in an ejection queue.
    pub fn quiescent(&self) -> bool {
        let q = self.buffered_total == 0 && self.flits_in_flight == 0 && self.eject_occupancy == 0;
        debug_assert_eq!(
            q,
            self.routers.iter().all(|r| r.buffered_flits() == 0)
                && self.links.iter().all(|l| l.in_flight() == 0)
                && self.eject.iter().flatten().all(|v| v.is_empty()),
            "idleness aggregates out of sync with network state"
        );
        q
    }

    /// `true` when a cycle of stepping could not change any network
    /// state: quiescent *and* no credit is still in flight back upstream
    /// (a late credit would update an output-VC counter or an injector).
    /// O(1) — this is the per-cycle skip check of the system-level
    /// quiescence fast-forward.
    /// `true` when any flit sits in an eject queue — the one case a
    /// `pop_ejected` call can succeed, so sink-drain loops can skip the
    /// whole network otherwise. O(1).
    pub fn has_ejected(&self) -> bool {
        self.eject_occupancy > 0
    }

    /// `true` when the network holds no state that a step could
    /// advance: no buffered flits, nothing in flight on any link, no
    /// credits in flight, and empty eject queues. Stricter than
    /// [`Network::quiescent`] (which ignores credit returns); an idle
    /// network's `step` only advances the clock, which is what makes
    /// [`Network::skip_idle`] sound. O(1).
    pub fn idle(&self) -> bool {
        self.buffered_total == 0
            && self.flits_in_flight == 0
            && self.credits_in_flight == 0
            && self.eject_occupancy == 0
    }

    /// Fast-forwards an idle network by `steps` cycles by advancing the
    /// clock alone. Stepping an idle network only increments the cycle
    /// counter (every sweep phase is a no-op), so this is bit-identical
    /// to calling [`Network::step`] `steps` times — provided `steps`
    /// stays within [`Network::max_idle_skip`] so no audit boundary is
    /// jumped over.
    pub fn skip_idle(&mut self, steps: u64) {
        debug_assert!(self.idle(), "skip_idle on a non-idle network");
        debug_assert!(steps <= self.max_idle_skip(), "skip crosses an audit boundary");
        self.cycle += steps;
        self.stats.cycles = self.cycle;
    }

    /// Upper bound on [`Network::skip_idle`]: the skip must stop short
    /// of the next conservation-sweep boundary and the next
    /// watchdog-window expiry so that every audit action still happens
    /// inside a real [`Network::step`] (skipped audit evaluations are
    /// no-ops only while neither boundary is crossed — progress counters
    /// are constant on an idle network). Unaudited networks are
    /// unbounded.
    pub fn max_idle_skip(&self) -> u64 {
        let Some(a) = self.audit.as_deref() else {
            return u64::MAX;
        };
        let t = self.cycle;
        let interval = a.cfg.check_interval.max(1);
        // Audit checks run after the cycle increment, i.e. at values
        // t+1..=t+k for a skip of k; the largest safe k keeps both
        // boundaries out of that range.
        let next_sweep = (t / interval + 1) * interval;
        let mut cap = next_sweep - 1 - t;
        if a.cfg.watchdog_window > 0 {
            let expiry = a.last_progress_cycle + a.cfg.watchdog_window;
            cap = cap.min(expiry.saturating_sub(t + 1));
        }
        cap
    }

    /// Enables the invariant auditor. The per-class injection ledgers are
    /// seeded with the flits currently resident so flit conservation holds
    /// even when auditing starts mid-run.
    pub fn enable_audit(&mut self, cfg: AuditConfig) {
        let mut state = AuditState::new(cfg);
        state.injected = audit::resident_by_class(self);
        state.last_progress_cycle = self.cycle;
        self.audit = Some(Box::new(state));
    }

    /// `true` when the auditor is active.
    pub fn audit_enabled(&self) -> bool {
        self.audit.is_some()
    }

    /// Arms stall-cause attribution (the `obs/v2` layer): per-router ×
    /// per-cause stall-cycle counters charged by the router pipeline.
    /// Ejection timestamps for flits already parked in ejection queues
    /// are seeded with the current cycle, so arming mid-run never
    /// misaligns the parallel deques (their wait before arming is
    /// simply not charged). Everything is preallocated here; the armed
    /// steady state allocates nothing.
    pub fn enable_stalls(&mut self) {
        let cap = self.cfg.eject_cap;
        let eject_ts = self
            .eject
            .iter()
            .map(|ports| {
                ports
                    .iter()
                    .map(|q| {
                        let mut ts = VecDeque::with_capacity(cap.max(q.len()));
                        ts.extend(std::iter::repeat_n(self.cycle, q.len()));
                        ts
                    })
                    .collect()
            })
            .collect();
        self.stall = Some(Box::new(NetStalls {
            grid: StallGrid::new(self.routers.len()),
            eject_ts,
        }));
    }

    /// `true` when stall-cause attribution is armed.
    pub fn stalls_enabled(&self) -> bool {
        self.stall.is_some()
    }

    /// The stall-attribution grid, when armed.
    pub fn stall_grid(&self) -> Option<&StallGrid> {
        self.stall.as_deref().map(|s| &s.grid)
    }

    /// Violations retained so far (always empty while
    /// `panic_on_violation` is set, since those panic instead).
    pub fn audit_violations(&self) -> &[Violation] {
        self.audit.as_deref().map_or(&[], |a| &a.violations)
    }

    /// Drains and returns the retained violations.
    pub fn take_audit_violations(&mut self) -> Vec<Violation> {
        self.audit
            .as_deref_mut()
            .map_or_else(Vec::new, |a| std::mem::take(&mut a.violations))
    }

    /// Conservation/escape sweeps performed so far — lets tests assert the
    /// auditor actually ran rather than being vacuously green.
    pub fn audit_sweeps(&self) -> u64 {
        self.audit.as_deref().map_or(0, |a| a.sweeps)
    }

    /// Tail flits currently resident in this network (router buffers,
    /// links, ejection queues). One per packet in flight, which is what
    /// system-level packet accounting needs.
    pub fn resident_tail_flits(&self) -> u64 {
        let bufs: u64 = self
            .routers
            .iter()
            .flat_map(|r| &r.inputs)
            .flat_map(|p| &p.vcs)
            .flat_map(|vc| &vc.buf)
            .filter(|(_, f)| f.is_tail())
            .count() as u64;
        let links: u64 = self
            .links
            .iter()
            .flat_map(|l| l.iter_flits())
            .filter(|f| f.is_tail())
            .count() as u64;
        let eject: u64 = self
            .eject
            .iter()
            .flatten()
            .flatten()
            .filter(|f| f.is_tail())
            .count() as u64;
        bufs + links + eject
    }

    /// Fault-injection hook for auditor tests: steals one credit from the
    /// first link-role output VC `vc` of the router at `node` that has
    /// any. Returns `false` if no credit was available to leak. Breaks the
    /// credit-conservation invariant by construction — never call outside
    /// tests.
    #[doc(hidden)]
    pub fn fault_leak_credit(&mut self, node: Coord, vc: u8) -> bool {
        let r = self.topo.node_index(node);
        for out in &mut self.routers[r].outputs {
            if matches!(out.role, OutputRole::Link(_)) && out.vcs[vc as usize].credits > 0 {
                out.vcs[vc as usize].credits -= 1;
                return true;
            }
        }
        false
    }

    /// Fault-injection hook for auditor tests: silently discards the
    /// oldest flit of the first non-empty input VC of the router at
    /// `node`. Returns `false` when nothing was buffered there. Breaks
    /// both flit and credit conservation — never call outside tests.
    #[doc(hidden)]
    pub fn fault_drop_flit(&mut self, node: Coord) -> bool {
        let r = self.topo.node_index(node);
        for port in &mut self.routers[r].inputs {
            for vc in &mut port.vcs {
                if vc.buf.pop_front().is_some() {
                    self.router_buffered[r] -= 1;
                    self.buffered_total -= 1;
                    return true;
                }
            }
        }
        false
    }

    /// Per-cycle audit work: watchdog progress tracking every cycle, full
    /// conservation/escape sweeps every `check_interval` cycles. Performs
    /// no allocation unless a violation is found.
    fn audit_step(&mut self) {
        let a = self.audit.as_deref().expect("audit enabled");
        let (interval, window) = (a.cfg.check_interval.max(1), a.cfg.watchdog_window);
        let progress = self.stats.injected_flits + self.stats.xbar_traversals + a.pops;
        let mut fresh = Vec::new();
        {
            let a = self.audit.as_deref_mut().expect("audit enabled");
            if progress != a.last_progress {
                a.last_progress = progress;
                a.last_progress_cycle = self.cycle;
            }
        }
        let stalled = self.cycle - self.audit.as_deref().expect("audit enabled").last_progress_cycle;
        if window > 0 && stalled >= window {
            if !self.quiescent() {
                fresh.push(Violation::Deadlock(audit::deadlock_report(self, stalled)));
            }
            // Restart the window — an idle network is simply idle, and
            // after a report (panic off) don't re-report every cycle.
            self.audit.as_deref_mut().expect("audit enabled").last_progress_cycle = self.cycle;
        }
        if self.cycle.is_multiple_of(interval) {
            audit::sweep(self, &mut fresh);
            self.audit.as_deref_mut().expect("audit enabled").sweeps += 1;
        }
        audit::record_violations(self, fresh);
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Collected statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The configuration this network was built from.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// The fabric this network was built from.
    pub fn topology(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// Grid width in routers.
    pub fn width(&self) -> u16 {
        self.cfg.width
    }

    /// Grid height in routers.
    pub fn height(&self) -> u16 {
        self.cfg.height
    }

    /// Total buffered flits (for saturation diagnostics).
    pub fn buffered_flits(&self) -> usize {
        debug_assert_eq!(
            self.buffered_total,
            self.routers.iter().map(|r| r.buffered_flits() as u64).sum::<u64>(),
            "buffered_total out of sync"
        );
        self.buffered_total as usize
    }

    /// Number of ports on the router at `node` (for area accounting).
    pub fn router_ports(&self, node: Coord) -> usize {
        self.routers[self.topo.node_index(node)].num_ports()
    }

    /// Enables flit-event tracing with the given ring capacity
    /// (0 disables it again).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Trace::new(capacity);
    }

    /// Drains all recorded trace events.
    pub fn drain_trace(&mut self) -> Vec<crate::trace::TraceEvent> {
        self.trace.drain()
    }

    /// Mean router port count across the network (for energy scaling).
    pub fn avg_ports(&self) -> f64 {
        if self.routers.is_empty() {
            return 0.0;
        }
        self.routers.iter().map(|r| r.num_ports()).sum::<usize>() as f64
            / self.routers.len() as f64
    }

    /// Serializes all dynamic network state: the clock, statistics, every
    /// router/link/injector, ejection queues, trace events and (when the
    /// auditor is armed) its ledgers. Topology, config, scratch buffers
    /// and the activity worklists are *not* written — the worklists are
    /// recomputed exactly on restore (at a step boundary, membership
    /// equals the retention predicates the gated sweep itself uses).
    pub fn snapshot_state(&self, e: &mut equinox_snap::Enc) {
        use equinox_snap::Snap;
        // Shape tag: restoring into a different fabric would scramble
        // link/port meanings silently, so the target validates it first.
        e.put_u8(self.topo.kind().tag());
        e.put_u16(self.cfg.width);
        e.put_u16(self.cfg.height);
        e.put_u64(self.cycle);
        self.stats.snap(e);
        e.put_usize(self.routers.len());
        for r in &self.routers {
            r.snap_state(e);
        }
        e.put_usize(self.links.len());
        for l in &self.links {
            l.snap_state(e);
        }
        e.put_usize(self.injectors.len());
        for inj in &self.injectors {
            inj.credits.snap(e);
            inj.active_vc.snap(e);
            e.put_u64(inj.last_cycle);
            e.put_u64(inj.flits);
        }
        e.put_usize(self.eject.len());
        for ports in &self.eject {
            e.put_usize(ports.len());
            for q in ports {
                q.snap(e);
            }
        }
        self.trace.snap_state(e);
        match self.audit.as_deref() {
            None => e.put_bool(false),
            Some(a) => {
                e.put_bool(true);
                a.snap_state(e);
            }
        }
        match self.stall.as_deref() {
            None => e.put_bool(false),
            Some(s) => {
                e.put_bool(true);
                s.grid.snap_state(e);
                for ports in &s.eject_ts {
                    for q in ports {
                        q.snap(e);
                    }
                }
            }
        }
    }

    /// Restores state written by [`Network::snapshot_state`] into a
    /// network built from the *same* configuration (same topology, same
    /// extra ports, same audit/trace arming). Shape mismatches and
    /// malformed input are rejected with a structured error; on error the
    /// network may be partially overwritten and must be discarded.
    pub fn restore_state(
        &mut self,
        d: &mut equinox_snap::Dec,
    ) -> Result<(), equinox_snap::SnapError> {
        use equinox_snap::{Snap, SnapError};
        let depth = self.cfg.vc_buf_flits as u32;
        let kind = TopologyKind::from_tag(d.u8()?);
        if kind != Some(self.topo.kind()) {
            return Err(SnapError::BadValue("snapshot topology kind"));
        }
        if (d.u16()?, d.u16()?) != (self.cfg.width, self.cfg.height) {
            return Err(SnapError::BadValue("snapshot grid dimensions"));
        }
        self.cycle = d.u64()?;
        let stats = NetStats::restore(d)?;
        if stats.router_flits.len() != self.routers.len() {
            return Err(SnapError::BadValue("stats router count"));
        }
        self.stats = stats;
        // The shape stamp is build-derived, not serialized: re-stamp.
        self.stats.shape = Some((self.cfg.topology, self.cfg.width, self.cfg.height));
        if d.usize()? != self.routers.len() {
            return Err(SnapError::BadValue("router count"));
        }
        for r in &mut self.routers {
            r.restore_state(d, depth)?;
        }
        if d.usize()? != self.links.len() {
            return Err(SnapError::BadValue("link count"));
        }
        for l in &mut self.links {
            l.restore_state(d)?;
        }
        if d.usize()? != self.injectors.len() {
            return Err(SnapError::BadValue("injector count"));
        }
        for inj in &mut self.injectors {
            let credits: Vec<u32> = Vec::restore(d)?;
            if credits.len() != inj.credits.len() || credits.iter().any(|&c| c > depth) {
                return Err(SnapError::BadValue("injector credits"));
            }
            inj.credits = credits;
            inj.active_vc = Option::restore(d)?;
            inj.last_cycle = d.u64()?;
            inj.flits = d.u64()?;
        }
        if d.usize()? != self.eject.len() {
            return Err(SnapError::BadValue("eject router count"));
        }
        for ports in &mut self.eject {
            if d.usize()? != ports.len() {
                return Err(SnapError::BadValue("eject port count"));
            }
            for q in ports.iter_mut() {
                *q = VecDeque::restore(d)?;
            }
        }
        self.trace.restore_state(d)?;
        let audited = d.bool()?;
        match (audited, self.audit.as_deref_mut()) {
            (true, Some(a)) => a.restore_state(d)?,
            (false, None) => {}
            _ => return Err(SnapError::BadValue("audit arming mismatch")),
        }
        let stalled = d.bool()?;
        match (stalled, self.stall.is_some()) {
            (true, true) => {
                // The eject queues were restored above; the timestamp
                // deques must mirror them element-for-element.
                let eject = std::mem::take(&mut self.eject);
                let st = self.stall.as_deref_mut().expect("stalls armed");
                let res = (|| {
                    st.grid.restore_state(d)?;
                    for (ports, qs) in st.eject_ts.iter_mut().zip(&eject) {
                        for (ts, q) in ports.iter_mut().zip(qs) {
                            *ts = VecDeque::restore(d)?;
                            if ts.len() != q.len() {
                                return Err(SnapError::BadValue("eject timestamp shape"));
                            }
                        }
                    }
                    Ok(())
                })();
                self.eject = eject;
                res?;
            }
            (false, false) => {}
            _ => return Err(SnapError::BadValue("stall arming mismatch")),
        }
        self.recompute_activity();
        Ok(())
    }

    /// Rebuilds the O(1) idleness aggregates and the activity worklists
    /// from restored router/link/eject state. At a step boundary the
    /// gated sweep keeps exactly the elements whose retention predicate
    /// is positive (`credits_pending`, `in_flight`, buffered flits), and
    /// re-activation edges insert elements only when those predicates
    /// become positive — so recomputing membership from the predicates
    /// reproduces the worklists bit-for-bit.
    fn recompute_activity(&mut self) {
        self.router_buffered = self
            .routers
            .iter()
            .map(|r| r.buffered_flits() as u32)
            .collect();
        self.buffered_total = self.router_buffered.iter().map(|&b| b as u64).sum();
        self.flits_in_flight = self.links.iter().map(|l| l.in_flight() as u64).sum();
        self.credits_in_flight = self.links.iter().map(|l| l.credits_pending() as u64).sum();
        self.eject_occupancy = self.eject.iter().flatten().map(|q| q.len() as u64).sum();
        self.active_routers = ActiveSet::with_len(self.routers.len());
        for r in 0..self.routers.len() {
            if self.router_buffered[r] > 0 {
                self.active_routers.insert(r);
            }
        }
        self.active_flit_links = ActiveSet::with_len(self.links.len());
        self.active_credit_links = ActiveSet::with_len(self.links.len());
        for li in 0..self.links.len() {
            if self.links[li].in_flight() > 0 {
                self.active_flit_links.insert(li);
            }
            if self.links[li].credits_pending() > 0 {
                self.active_credit_links.insert(li);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RoutingKind;
    use crate::flit::PacketDesc;

    fn drive_packet(net: &mut Network, pkt: PacketDesc, max_cycles: u64) -> Option<u64> {
        let injector = net.local_injector(pkt.src);
        let mut flits = pkt.flits(net.width()).into_iter().peekable();
        let start = net.cycle();
        for _ in 0..max_cycles {
            if let Some(&f) = flits.peek() {
                if net.try_inject_flit(injector, f) {
                    flits.next();
                }
            }
            net.step();
            let mut tail_seen = false;
            while let Some(f) = net.pop_ejected_node(pkt.dst) {
                assert_eq!(f.pkt, pkt.id);
                if f.is_tail() {
                    tail_seen = true;
                }
            }
            if tail_seen {
                return Some(net.cycle() - start);
            }
        }
        None
    }

    #[test]
    fn single_packet_delivery_xy() {
        let mut cfg = NocConfig::mesh_8x8();
        cfg.routing = RoutingKind::Xy;
        let mut net = Network::mesh(cfg);
        let pkt = PacketDesc::new(0, Coord::new(0, 0), Coord::new(7, 7), MessageClass::Reply, 5);
        let lat = drive_packet(&mut net, pkt, 500).expect("delivered");
        // 14 hops with ~2 cycles/hop + serialization; sanity band.
        assert!(lat >= 14, "too fast: {lat}");
        assert!(lat <= 120, "too slow: {lat}");
        assert!(net.quiescent());
    }

    #[test]
    fn single_packet_delivery_adaptive() {
        let mut net = Network::mesh(NocConfig::mesh_8x8());
        let pkt = PacketDesc::new(1, Coord::new(7, 0), Coord::new(0, 7), MessageClass::Reply, 5);
        assert!(drive_packet(&mut net, pkt, 500).is_some());
        assert!(net.quiescent());
    }

    #[test]
    fn delivery_to_self_distance_one() {
        let mut net = Network::mesh(NocConfig::mesh_8x8());
        let pkt = PacketDesc::new(2, Coord::new(3, 3), Coord::new(3, 4), MessageClass::Request, 1);
        assert!(drive_packet(&mut net, pkt, 100).is_some());
    }

    #[test]
    fn many_packets_all_to_one_drain() {
        // Few-to-many reversed: every node sends to (0,0); network must
        // deliver all and drain (no deadlock under contention).
        let mut net = Network::mesh(NocConfig::mesh(4));
        let dst = Coord::new(0, 0);
        let mut pending: Vec<std::iter::Peekable<std::vec::IntoIter<Flit>>> = Vec::new();
        let mut expected = 0;
        for i in 0..16u64 {
            let src = Coord::from_index(i as usize, 4);
            if src == dst {
                continue;
            }
            let pkt = PacketDesc::new(i, src, dst, MessageClass::Reply, 5);
            pending.push(pkt.flits(4).into_iter().peekable());
            expected += 5;
        }
        let injectors: Vec<InjectorId> = (0..16)
            .map(|i| net.local_injector(Coord::from_index(i, 4)))
            .collect();
        let mut got = 0;
        for _ in 0..3000 {
            for (k, flits) in pending.iter_mut().enumerate() {
                let src = if k < dst.to_index(4) { k } else { k + 1 };
                if let Some(&f) = flits.peek() {
                    if net.try_inject_flit(injectors[src], f) {
                        flits.next();
                    }
                }
            }
            net.step();
            while net.pop_ejected_node(dst).is_some() {
                got += 1;
            }
            if got == expected {
                break;
            }
        }
        assert_eq!(got, expected, "all flits must arrive");
        assert!(net.quiescent());
    }

    #[test]
    fn extra_injection_port_works() {
        let mut net = Network::mesh(NocConfig::mesh_8x8());
        // Inject at a remote router (2 hops from source tile), like an EIR.
        let eir = net.add_injection_port(Coord::new(4, 2), 1, LinkKind::Interposer);
        let pkt = PacketDesc::new(9, Coord::new(2, 2), Coord::new(7, 2), MessageClass::Reply, 5);
        let mut flits = pkt.flits(8).into_iter().peekable();
        let mut done = false;
        for _ in 0..300 {
            if let Some(&f) = flits.peek() {
                if net.try_inject_flit(eir, f) {
                    flits.next();
                }
            }
            net.step();
            while let Some(f) = net.pop_ejected_node(Coord::new(7, 2)) {
                if f.is_tail() {
                    done = true;
                }
            }
        }
        assert!(done, "packet via EIR injection must arrive");
        assert!(net.stats().link_flits_interposer >= 5);
    }

    #[test]
    fn tagged_ejection_ports_separate_sinks() {
        let mut net = Network::mesh(NocConfig::mesh(4));
        // Give router (1,1) a second ejection port for sink 99; packets
        // tagged 99 leave there, others via the default port.
        let (r, p) = net.add_ejection_port(Coord::new(1, 1), Some(99));
        let inj = net.local_injector(Coord::new(0, 0));
        let pkt = PacketDesc::new(5, Coord::new(0, 0), Coord::new(1, 1), MessageClass::Reply, 1);
        let f = pkt.flits(4)[0].with_sink(99);
        assert!(net.try_inject_flit(inj, f));
        for _ in 0..50 {
            net.step();
        }
        assert!(net.pop_ejected(r, p).is_some(), "flit must use tagged port");
        assert!(net.pop_ejected_node(Coord::new(1, 1)).is_none());
    }

    #[test]
    fn one_flit_per_cycle_per_injector() {
        let mut net = Network::mesh(NocConfig::mesh_8x8());
        let inj = net.local_injector(Coord::new(0, 0));
        let pkt = PacketDesc::new(0, Coord::new(0, 0), Coord::new(5, 5), MessageClass::Reply, 3);
        let flits = pkt.flits(8);
        assert!(net.try_inject_flit(inj, flits[0]));
        assert!(!net.try_inject_flit(inj, flits[1]), "second flit same cycle");
        net.step();
        assert!(net.try_inject_flit(inj, flits[1]));
    }

    #[test]
    fn injector_backpressure_blocks_heads() {
        // Keep injecting packets without stepping the destination far
        // away; eventually all VC buffers fill and injection refuses.
        let mut cfg = NocConfig::mesh(4);
        cfg.vcs_per_port = 1;
        let mut net = Network::mesh(cfg);
        let inj = net.local_injector(Coord::new(0, 0));
        let mut id = 0u64;
        let mut refused = false;
        for _ in 0..200 {
            let pkt = PacketDesc::new(id, Coord::new(0, 0), Coord::new(3, 3), MessageClass::Reply, 5);
            let mut ok_all = true;
            for f in pkt.flits(4) {
                if !net.try_inject_flit(inj, f) {
                    ok_all = false;
                    refused = true;
                    break;
                }
                net.step();
            }
            if !ok_all {
                break;
            }
            id += 1;
        }
        assert!(refused || id > 10, "either backpressure or free flow");
    }

    #[test]
    fn single_network_class_partition_respected() {
        let mut net = Network::mesh(NocConfig::single_net(4, false));
        let inj = net.local_injector(Coord::new(0, 0));
        // Request packets must land in VCs 0..2, replies in 2..4.
        let req = PacketDesc::new(0, Coord::new(0, 0), Coord::new(2, 0), MessageClass::Request, 1);
        let rep = PacketDesc::new(1, Coord::new(0, 0), Coord::new(2, 0), MessageClass::Reply, 1);
        assert!(net.try_inject_flit(inj, req.flits(4)[0]));
        net.step();
        assert!(net.try_inject_flit(inj, rep.flits(4)[0]));
        let mut seen = Vec::new();
        for _ in 0..60 {
            net.step();
            while let Some(f) = net.pop_ejected_node(Coord::new(2, 0)) {
                seen.push(f);
            }
        }
        assert_eq!(seen.len(), 2);
        assert!(net.quiescent());
    }

    #[test]
    fn injector_ready_reflects_credits() {
        let mut net = Network::mesh(NocConfig::mesh_8x8());
        let inj = net.local_injector(Coord::new(0, 0));
        assert!(net.injector_ready(inj, MessageClass::Reply));
        let pkt = PacketDesc::new(0, Coord::new(0, 0), Coord::new(1, 0), MessageClass::Reply, 2);
        let flits = pkt.flits(8);
        assert!(net.try_inject_flit(inj, flits[0]));
        // Mid-packet: not ready for a new head.
        assert!(!net.injector_ready(inj, MessageClass::Reply));
    }

    #[test]
    fn pipeline_extra_adds_per_hop_latency() {
        let base = {
            let mut net = Network::mesh(NocConfig::mesh_8x8());
            let pkt = PacketDesc::new(0, Coord::new(0, 0), Coord::new(5, 0), MessageClass::Reply, 1);
            drive_packet(&mut net, pkt, 400).expect("delivered")
        };
        let deep = {
            let mut cfg = NocConfig::mesh_8x8();
            cfg.pipeline_extra = 2;
            let mut net = Network::mesh(cfg);
            let pkt = PacketDesc::new(0, Coord::new(0, 0), Coord::new(5, 0), MessageClass::Reply, 1);
            drive_packet(&mut net, pkt, 400).expect("delivered")
        };
        // 5 hops (+ final ejection) each gain ~2 cycles of pipeline.
        assert!(
            deep >= base + 2 * 5,
            "deep {deep} vs base {base}: pipeline must add latency"
        );
    }

    #[test]
    fn zero_load_latency_matches_the_analytic_model() {
        // Single 1-flit packet, empty mesh. The default router is
        // single-cycle (RC/VA/SA/ST all resolve within a step when
        // uncontended), so the ideal is: 1 cycle NI link + 1 cycle per
        // hop (link traversal) + ejection pop on arrival.
        let mut net = Network::mesh(NocConfig::mesh_8x8());
        let hops = 6u64; // (0,0) -> (3,3)
        let pkt = PacketDesc::new(0, Coord::new(0, 0), Coord::new(3, 3), MessageClass::Request, 1);
        let lat = drive_packet(&mut net, pkt, 300).expect("delivered");
        let ideal = 1 + hops + 1;
        assert!(
            lat >= ideal && lat <= ideal + 4,
            "zero-load latency {lat} outside [{ideal}, {}]",
            ideal + 4
        );
    }

    #[test]
    fn trace_records_a_packet_journey() {
        let mut net = Network::mesh(NocConfig::mesh(4));
        net.enable_trace(256);
        let pkt = PacketDesc::new(7, Coord::new(0, 0), Coord::new(2, 1), MessageClass::Reply, 2);
        drive_packet(&mut net, pkt, 200).expect("delivered");
        let events = net.drain_trace();
        let head: Vec<_> = events.iter().filter(|e| e.seq == 0).collect();
        // Head flit: 1 inject + one hop event per forwarding router
        // (manhattan distance = 3) + 1 eject at (2,1).
        assert_eq!(head.first().map(|e| e.kind), Some(crate::trace::TraceKind::Inject));
        assert_eq!(head.last().map(|e| e.kind), Some(crate::trace::TraceKind::Eject));
        assert_eq!(head.len(), 1 + 3 + 1);
        // Cycles are monotone along the path.
        assert!(head.windows(2).all(|w| w[0].cycle <= w[1].cycle));
    }

    /// Saturating many-to-one traffic for `cycles`, returning the network
    /// mid-flight (buffers, links and eject queues all populated).
    fn loaded_net(cycles: u64) -> (Network, Vec<std::iter::Peekable<std::vec::IntoIter<Flit>>>) {
        let mut net = Network::mesh(NocConfig::mesh(4));
        net.enable_trace(64);
        let dst = Coord::new(0, 0);
        let mut pending = Vec::new();
        for i in 0..16u64 {
            let src = Coord::from_index(i as usize, 4);
            if src == dst {
                continue;
            }
            let pkt = PacketDesc::new(i, src, dst, MessageClass::Reply, 5);
            pending.push((src, pkt.flits(4).into_iter().peekable()));
        }
        for _ in 0..cycles {
            for (src, flits) in pending.iter_mut() {
                let inj = net.local_injector(*src);
                if let Some(&f) = flits.peek() {
                    if net.try_inject_flit(inj, f) {
                        flits.next();
                    }
                }
            }
            net.step();
        }
        (net, pending.into_iter().map(|(_, f)| f).collect())
    }

    #[test]
    fn snapshot_round_trip_is_bit_exact_under_load() {
        use equinox_snap::{Dec, Enc};
        let (mut net, mut flits_a) = loaded_net(9);
        let mut e = Enc::new();
        net.snapshot_state(&mut e);
        let bytes = e.into_bytes();
        let mut restored = Network::mesh(NocConfig::mesh(4));
        restored.enable_trace(64);
        let mut d = Dec::new(&bytes);
        restored.restore_state(&mut d).unwrap();
        d.finish().unwrap();
        // Same aggregates immediately after restore...
        assert_eq!(restored.cycle(), net.cycle());
        assert_eq!(restored.buffered_flits(), net.buffered_flits());
        assert_eq!(restored.stats(), net.stats());
        // ...and bit-identical evolution: drive both with the remaining
        // flits and compare everything observable.
        let mut flits_b: Vec<_> = flits_a.to_vec();
        let dst = Coord::new(0, 0);
        let drive = |net: &mut Network,
                     pend: &mut Vec<std::iter::Peekable<std::vec::IntoIter<Flit>>>| {
            let mut ejected = Vec::new();
            for _ in 0..600 {
                for flits in pend.iter_mut() {
                    if let Some(&f) = flits.peek() {
                        let inj = net.local_injector(f.src);
                        if net.try_inject_flit(inj, f) {
                            flits.next();
                        }
                    }
                }
                net.step();
                while let Some(f) = net.pop_ejected_node(dst) {
                    ejected.push((net.cycle(), f));
                }
            }
            ejected
        };
        let a = drive(&mut net, &mut flits_a);
        let b = drive(&mut restored, &mut flits_b);
        assert_eq!(a, b, "ejection streams diverged after restore");
        assert_eq!(net.stats(), restored.stats(), "stats diverged after restore");
        assert_eq!(
            net.drain_trace(),
            restored.drain_trace(),
            "flit traces diverged after restore"
        );
    }

    #[test]
    fn snapshot_restore_rejects_corruption_structurally() {
        use equinox_snap::{Dec, Enc, SnapError};
        let (net, _) = loaded_net(9);
        let mut e = Enc::new();
        net.snapshot_state(&mut e);
        let bytes = e.into_bytes();
        // Every truncation point must fail with an error, never panic.
        for cut in (0..bytes.len()).step_by(7) {
            let mut fresh = Network::mesh(NocConfig::mesh(4));
            fresh.enable_trace(64);
            assert!(
                fresh.restore_state(&mut Dec::new(&bytes[..cut])).is_err(),
                "cut at {cut} must fail"
            );
        }
        // A topology mismatch is a BadValue, not a crash.
        let mut wrong = Network::mesh(NocConfig::mesh_8x8());
        assert!(matches!(
            wrong.restore_state(&mut Dec::new(&bytes)),
            Err(SnapError::BadValue(_))
        ));
        // Audit arming must match between snapshot and target.
        let mut unarmed = Network::mesh(NocConfig::mesh(4));
        unarmed.enable_trace(64);
        let mut armed_src = Network::mesh(NocConfig::mesh(4));
        armed_src.enable_audit(AuditConfig::default());
        let mut e = Enc::new();
        armed_src.snapshot_state(&mut e);
        let armed_bytes = e.into_bytes();
        assert!(matches!(
            unarmed.restore_state(&mut Dec::new(&armed_bytes)),
            Err(SnapError::BadValue(_))
        ));
    }

    #[test]
    fn stats_accumulate() {
        let mut net = Network::mesh(NocConfig::mesh_8x8());
        let pkt = PacketDesc::new(0, Coord::new(0, 0), Coord::new(3, 0), MessageClass::Reply, 5);
        drive_packet(&mut net, pkt, 300).expect("delivered");
        let s = net.stats();
        assert_eq!(s.injected_flits, 5);
        assert_eq!(s.ejected_flits, 5);
        assert!(s.buffer_writes >= 5);
        assert_eq!(s.buffer_reads, s.xbar_traversals);
        assert!(s.link_flits_mesh >= 5 * 2, "at least 3 hops minus local");
        assert!(s.vc_allocs >= 4, "one per hop");
        assert!(s.router_flits.iter().sum::<u64>() >= 5);
    }

    #[test]
    fn uncontended_packet_accrues_no_stall_charges() {
        // A lone packet on an empty mesh, drained every cycle: nothing
        // ever blocks it, so every in-network cause must stay at zero —
        // the attribution layer must not invent stalls.
        use equinox_obs::NetCause;
        let mut net = Network::mesh(NocConfig::mesh_8x8());
        net.enable_stalls();
        let pkt = PacketDesc::new(0, Coord::new(0, 0), Coord::new(5, 4), MessageClass::Reply, 5);
        drive_packet(&mut net, pkt, 400).expect("delivered");
        let g = net.stall_grid().expect("armed");
        for class in 0..equinox_obs::STALL_CLASSES {
            for cause in [
                NetCause::VcAlloc,
                NetCause::SwitchLoss,
                NetCause::CreditStarve,
                NetCause::EjectWait,
            ] {
                assert_eq!(
                    g.class_total(class, cause),
                    0,
                    "phantom {cause:?} charge for class {class}"
                );
            }
        }
    }

    #[test]
    fn contended_traffic_charges_stalls_consistently() {
        use equinox_obs::NetCause;
        // All-to-one with a lazy sink (popped every 4th cycle): the hot
        // router must show switch contention and the stalled sink must
        // show ejection wait. Per-router cells and per-class totals are
        // two views of the same charges and must agree.
        let mut net = Network::mesh(NocConfig::mesh(4));
        net.enable_stalls();
        let dst = Coord::new(0, 0);
        let mut pending = Vec::new();
        for i in 0..16u64 {
            let src = Coord::from_index(i as usize, 4);
            if src != dst {
                let pkt = PacketDesc::new(i, src, dst, MessageClass::Reply, 5);
                pending.push((src, pkt.flits(4).into_iter().peekable()));
            }
        }
        for t in 0..2000u64 {
            for (src, flits) in pending.iter_mut() {
                if let Some(&f) = flits.peek() {
                    let inj = net.local_injector(*src);
                    if net.try_inject_flit(inj, f) {
                        flits.next();
                    }
                }
            }
            net.step();
            if t % 4 == 0 {
                while net.pop_ejected_node(dst).is_some() {}
            }
        }
        while net.pop_ejected_node(dst).is_some() {}
        assert!(net.quiescent(), "traffic must drain");
        let g = net.stall_grid().expect("armed");
        let rep = 1; // all packets are replies
        assert!(
            g.class_total(rep, NetCause::SwitchLoss) + g.class_total(rep, NetCause::CreditStarve)
                > 0,
            "many-to-one must lose switch arbitration somewhere"
        );
        assert!(
            g.class_total(rep, NetCause::EjectWait) > 0,
            "a lazy sink must charge ejection wait"
        );
        assert_eq!(g.class_sum(0), 0, "no request traffic, no request charges");
        for cause in [
            NetCause::VcAlloc,
            NetCause::SwitchLoss,
            NetCause::CreditStarve,
            NetCause::EjectWait,
        ] {
            let cells: u64 = g.heat(cause).sum();
            assert_eq!(
                cells,
                g.class_total(0, cause) + g.class_total(1, cause),
                "{cause:?}: per-router cells must sum to the class totals"
            );
        }
    }

    #[test]
    fn stall_state_snapshots_and_rejects_arming_mismatch() {
        use equinox_snap::{Dec, Enc, SnapError};
        let mut net = Network::mesh(NocConfig::mesh(4));
        net.enable_stalls();
        let pkt = PacketDesc::new(0, Coord::new(0, 0), Coord::new(3, 3), MessageClass::Request, 3);
        drive_packet(&mut net, pkt, 300).expect("delivered");
        let mut e = Enc::new();
        net.snapshot_state(&mut e);
        let bytes = e.into_bytes();

        let mut armed = Network::mesh(NocConfig::mesh(4));
        armed.enable_stalls();
        let mut d = Dec::new(&bytes);
        armed.restore_state(&mut d).expect("restore into armed net");
        d.finish().expect("snapshot fully consumed");
        let (a, b) = (net.stall_grid().unwrap(), armed.stall_grid().unwrap());
        for cause in [
            NetCause::VcAlloc,
            NetCause::SwitchLoss,
            NetCause::CreditStarve,
            NetCause::EjectWait,
        ] {
            assert_eq!(a.heat(cause).sum::<u64>(), b.heat(cause).sum::<u64>());
        }

        let mut unarmed = Network::mesh(NocConfig::mesh(4));
        assert!(matches!(
            unarmed.restore_state(&mut Dec::new(&bytes)),
            Err(SnapError::BadValue(_))
        ));
    }
}
