//! Flit-event tracing.
//!
//! An opt-in ring buffer of per-flit events (injection, hop, ejection)
//! for debugging routing or reproducing a congestion pathology. Tracing
//! is off by default and costs one branch per event when disabled.

use crate::flit::PacketId;
use std::collections::VecDeque;

/// What happened to a flit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A flit entered the network through an injector.
    Inject,
    /// A flit won switch allocation and left a router towards a link.
    Hop,
    /// A flit left the network through an ejection port.
    Eject,
}

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle the event happened.
    pub cycle: u64,
    /// Router index involved (the receiving router for `Inject`).
    pub router: usize,
    /// Packet the flit belongs to.
    pub pkt: PacketId,
    /// Flit sequence number within the packet.
    pub seq: u16,
    /// Event kind.
    pub kind: TraceKind,
}

/// Bounded event recorder (oldest events are dropped at capacity).
#[derive(Debug, Default)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
}

impl Trace {
    /// Creates a recorder holding up to `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
        }
    }

    /// `true` when tracing is active.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records an event (drops the oldest at capacity).
    pub fn record(&mut self, ev: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(ev);
    }

    /// Drains and returns all recorded events in order.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events of one packet, in order.
    pub fn packet_path(&self, pkt: PacketId) -> Vec<TraceEvent> {
        self.events.iter().copied().filter(|e| e.pkt == pkt).collect()
    }

    /// Serializes the recorded events. The capacity is build-time
    /// configuration and not written.
    pub fn snap_state(&self, e: &mut equinox_snap::Enc) {
        use equinox_snap::Snap;
        self.events.snap(e);
    }

    /// Restores events into a recorder of the *same* capacity.
    pub fn restore_state(
        &mut self,
        d: &mut equinox_snap::Dec,
    ) -> Result<(), equinox_snap::SnapError> {
        use equinox_snap::Snap;
        let events: VecDeque<TraceEvent> = VecDeque::restore(d)?;
        if events.len() > self.capacity {
            return Err(equinox_snap::SnapError::BadValue("trace over capacity"));
        }
        self.events = events;
        Ok(())
    }
}

impl equinox_snap::Snap for TraceKind {
    fn snap(&self, e: &mut equinox_snap::Enc) {
        e.put_u8(match self {
            TraceKind::Inject => 0,
            TraceKind::Hop => 1,
            TraceKind::Eject => 2,
        });
    }
    fn restore(d: &mut equinox_snap::Dec) -> Result<Self, equinox_snap::SnapError> {
        match d.u8()? {
            0 => Ok(TraceKind::Inject),
            1 => Ok(TraceKind::Hop),
            2 => Ok(TraceKind::Eject),
            _ => Err(equinox_snap::SnapError::BadValue("trace kind tag")),
        }
    }
}

impl equinox_snap::Snap for TraceEvent {
    fn snap(&self, e: &mut equinox_snap::Enc) {
        e.put_u64(self.cycle);
        e.put_usize(self.router);
        self.pkt.snap(e);
        e.put_u16(self.seq);
        self.kind.snap(e);
    }
    fn restore(d: &mut equinox_snap::Dec) -> Result<Self, equinox_snap::SnapError> {
        Ok(TraceEvent {
            cycle: d.u64()?,
            router: d.usize()?,
            pkt: PacketId::restore(d)?,
            seq: d.u16()?,
            kind: TraceKind::restore(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            cycle,
            router: 0,
            pkt: PacketId(1),
            seq: 0,
            kind,
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(0);
        assert!(!t.enabled());
        t.record(ev(1, TraceKind::Inject));
        assert!(t.is_empty());
    }

    #[test]
    fn capacity_drops_oldest() {
        let mut t = Trace::new(2);
        t.record(ev(1, TraceKind::Inject));
        t.record(ev(2, TraceKind::Hop));
        t.record(ev(3, TraceKind::Eject));
        let evs = t.drain();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].cycle, 2);
        assert_eq!(evs[1].cycle, 3);
        assert!(t.is_empty());
    }

    #[test]
    fn packet_path_filters() {
        let mut t = Trace::new(8);
        t.record(ev(1, TraceKind::Inject));
        t.record(TraceEvent {
            pkt: PacketId(2),
            ..ev(2, TraceKind::Hop)
        });
        t.record(ev(3, TraceKind::Eject));
        let path = t.packet_path(PacketId(1));
        assert_eq!(path.len(), 2);
        assert_eq!(path[1].kind, TraceKind::Eject);
    }
}
