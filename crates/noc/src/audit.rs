//! Simulation invariant auditor and deadlock/livelock watchdog.
//!
//! The cycle-accurate simulator's results are only as trustworthy as its
//! conservation laws: a leaked credit or a dropped flit does not crash
//! anything — it silently skews every downstream figure. This module turns
//! such latent bugs into loud, diagnosable failures. Three families of
//! checks run against a [`Network`] at a configurable interval:
//!
//! 1. **Conservation.** For every link/VC pair, the credit loop must be
//!    airtight: upstream credits held + flits in flight on the link +
//!    flits buffered downstream + credits in flight back upstream must
//!    equal the VC buffer depth at every cycle boundary. Independently,
//!    flits are conserved per message class: everything injected is either
//!    ejected or still resident (buffered, on a link, or in an ejection
//!    queue).
//! 2. **Escape-VC compliance.** Deadlock freedom rests on the Duato
//!    escape construction: the escape VC of each class partition (and any
//!    monopolized foreign VC) may only be allocated along the fabric's
//!    escape path — [`crate::topology::Topology::escape_port`], the XY
//!    dimension-order port on a mesh — and on fabrics with escape capture
//!    a flit that arrived on the escape VC must stay on it. A violation
//!    here means the channel-dependence graph can cycle — the exact
//!    property EquiNox's EIR ports must preserve (§4.4). The check is
//!    generic over the topology: it asks the fabric for the escape port
//!    instead of assuming dimension order.
//! 3. **Watchdog.** If no flit moves for a configurable window while work
//!    is pending, the network is wedged; instead of hanging a sweep, the
//!    auditor emits a structured [`DeadlockReport`] naming the stuck
//!    packets, their router/VC/credit state, and the blocked-on edges.
//!
//! The auditor is an opt-in [`AuditState`] boxed inside the network:
//! disabled (the default) it costs one branch per cycle and zero
//! allocations, so the alloc-free and golden-trace guarantees are
//! untouched. Enabled, the sweeps are read-only walks; they allocate only
//! when a violation is actually found.

use crate::flit::MessageClass;
use crate::link::CreditDst;
use crate::network::Network;
use crate::router::{OutputRole, PORT_LOCAL};
use equinox_phys::Coord;
use std::fmt;

/// How many stuck flits a [`DeadlockReport`] lists in full.
const MAX_REPORTED_STUCK: usize = 64;
/// Cap on retained violations when `panic_on_violation` is off.
const MAX_RETAINED_VIOLATIONS: usize = 256;

/// Auditor knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditConfig {
    /// Cycles between conservation / escape-compliance sweeps (the
    /// watchdog's cheap progress counter runs every cycle regardless).
    /// Clamped to at least 1.
    pub check_interval: u64,
    /// Zero-progress cycles (with work pending) before the watchdog
    /// declares a deadlock. 0 disables the watchdog.
    pub watchdog_window: u64,
    /// Panic with a full report on the first violation (the default, so
    /// sweeps fail fast); when off, violations accumulate for inspection
    /// via [`Network::audit_violations`].
    pub panic_on_violation: bool,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            check_interval: 64,
            watchdog_window: 20_000,
            panic_on_violation: true,
        }
    }
}

impl AuditConfig {
    /// Checks every cycle with a short watchdog — for tests.
    pub fn strict() -> Self {
        AuditConfig {
            check_interval: 1,
            watchdog_window: 2_000,
            panic_on_violation: true,
        }
    }
}

/// Reads the `EQUINOX_AUDIT` environment variable: unset, empty, `0`,
/// `false` or `off` mean disabled; anything else enables the default
/// [`AuditConfig`].
///
/// **Fallback-only shim.** The drivers resolve auditing from the layered
/// `equinox_config::ExperimentSpec` (which folds this variable into its
/// environment layer) and pass the resulting `AuditConfig` down
/// explicitly; the library itself no longer consults the environment.
/// This reader remains for ad-hoc embedders that want the process-wide
/// opt-in without carrying a spec around.
pub fn audit_from_env() -> Option<AuditConfig> {
    match std::env::var("EQUINOX_AUDIT") {
        Ok(v) => {
            let v = v.trim();
            if v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false") || v.eq_ignore_ascii_case("off")
            {
                None
            } else {
                Some(AuditConfig::default())
            }
        }
        Err(_) => None,
    }
}

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The credit loop of one link/VC does not sum to the buffer depth.
    CreditConservation {
        /// Link index in the network's link table.
        link: usize,
        /// Downstream router fed by the link.
        router: usize,
        /// Downstream input port.
        port: usize,
        /// Virtual channel.
        vc: u8,
        /// Expected sum (the VC buffer depth).
        depth: u32,
        /// Credits held by the upstream endpoint.
        upstream: u32,
        /// Flits buffered in the downstream input VC.
        buffered: u32,
        /// Flits in flight on the link.
        flits_in_flight: u32,
        /// Credits in flight back upstream.
        credits_in_flight: u32,
    },
    /// Injected ≠ ejected + resident for one message class.
    FlitConservation {
        /// The class whose ledger is off.
        class: MessageClass,
        /// Flits injected since the audit was enabled (plus the residents
        /// at enable time).
        injected: u64,
        /// Flits ejected (popped from ejection queues).
        ejected: u64,
        /// Flits currently buffered, on links, or in ejection queues.
        resident: u64,
    },
    /// An escape (or monopolized, or captured) VC was allocated off the
    /// fabric's escape path.
    EscapeVcViolation {
        /// Router where the allocation lives.
        router: usize,
        /// Router coordinate.
        coord: Coord,
        /// Input port of the offending VC.
        port: usize,
        /// Input VC index.
        vc: usize,
        /// Allocated output VC (escape or foreign).
        out_vc: u8,
        /// Allocated output port.
        out_port: usize,
        /// The escape port the allocation should have used.
        escape_port: Option<usize>,
        /// Destination of the packet holding the allocation.
        dst: Coord,
    },
    /// The watchdog found pending work with zero progress for a window.
    Deadlock(DeadlockReport),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::CreditConservation {
                link,
                router,
                port,
                vc,
                depth,
                upstream,
                buffered,
                flits_in_flight,
                credits_in_flight,
            } => write!(
                f,
                "credit conservation broken on link {link} -> router {router} port {port} vc {vc}: \
                 upstream {upstream} + buffered {buffered} + flits-in-flight {flits_in_flight} + \
                 credits-in-flight {credits_in_flight} = {} != depth {depth}",
                upstream + buffered + flits_in_flight + credits_in_flight
            ),
            Violation::FlitConservation {
                class,
                injected,
                ejected,
                resident,
            } => write!(
                f,
                "flit conservation broken for {class:?}: injected {injected} != \
                 ejected {ejected} + resident {resident}"
            ),
            Violation::EscapeVcViolation {
                router,
                coord,
                port,
                vc,
                out_vc,
                out_port,
                escape_port,
                dst,
            } => write!(
                f,
                "escape-VC discipline broken at router {router} {coord:?} input ({port},{vc}): \
                 output vc {out_vc} allocated on port {out_port}, but the escape port toward \
                 {dst:?} is {escape_port:?}"
            ),
            Violation::Deadlock(report) => write!(f, "{report}"),
        }
    }
}

/// One stuck head-of-line flit in a [`DeadlockReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct StuckFlit {
    /// Router holding the flit.
    pub router: usize,
    /// Router coordinate.
    pub coord: Coord,
    /// Input port.
    pub port: usize,
    /// Input VC.
    pub vc: usize,
    /// Owning packet.
    pub pkt: crate::flit::PacketId,
    /// Flit sequence number within the packet.
    pub seq: u16,
    /// Message class.
    pub class: MessageClass,
    /// Packet destination.
    pub dst: Coord,
    /// Allocated `(out_port, out_vc, downstream_credits)`, or `None` while
    /// the head still waits for VC allocation.
    pub allocation: Option<(usize, u8, u32)>,
}

/// A zero-credit dependence edge in the blocked-on graph: the flit at
/// `(from, via_port)` waits for buffer space at router `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedEdge {
    /// Upstream router.
    pub from: usize,
    /// Output port the allocation holds.
    pub via_port: usize,
    /// Downstream router that owes credits.
    pub to: usize,
    /// The starved output VC.
    pub vc: u8,
}

/// Structured diagnosis emitted by the watchdog instead of hanging.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlockReport {
    /// Cycle the report was taken at.
    pub cycle: u64,
    /// Zero-progress cycles observed.
    pub stalled_for: u64,
    /// Flits buffered in routers.
    pub buffered_flits: u64,
    /// Flits in flight on links.
    pub link_flits: u64,
    /// Flits parked in ejection queues.
    pub eject_flits: u64,
    /// Stuck head-of-line flits (first [`MAX_REPORTED_STUCK`]).
    pub stuck: Vec<StuckFlit>,
    /// Zero-credit dependences between routers.
    pub edges: Vec<BlockedEdge>,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "deadlock: no forward progress for {} cycles at cycle {} with work pending \
             ({} buffered, {} on links, {} in ejection queues)",
            self.stalled_for, self.cycle, self.buffered_flits, self.link_flits, self.eject_flits
        )?;
        writeln!(f, "  stuck head-of-line flits ({} shown):", self.stuck.len())?;
        for s in &self.stuck {
            match s.allocation {
                Some((op, ov, credits)) => writeln!(
                    f,
                    "    {} seq {} ({:?} -> {:?}) at router {} {:?} in ({},{}) \
                     allocated out ({}, vc {}) with {} downstream credits",
                    s.pkt, s.seq, s.class, s.dst, s.router, s.coord, s.port, s.vc, op, ov, credits
                )?,
                None => writeln!(
                    f,
                    "    {} seq {} ({:?} -> {:?}) at router {} {:?} in ({},{}) \
                     awaiting VC allocation",
                    s.pkt, s.seq, s.class, s.dst, s.router, s.coord, s.port, s.vc
                )?,
            }
        }
        writeln!(f, "  blocked-on edges (zero-credit):")?;
        for e in &self.edges {
            writeln!(
                f,
                "    router {} --port {} vc {}--> router {}",
                e.from, e.via_port, e.vc, e.to
            )?;
        }
        Ok(())
    }
}

/// Per-network auditor state, boxed inside [`Network`] when enabled.
#[derive(Debug)]
pub(crate) struct AuditState {
    pub(crate) cfg: AuditConfig,
    /// Flits injected per class (seeded with the residents at enable time
    /// so mid-run enabling stays consistent). Index 0 = Request, 1 = Reply.
    pub(crate) injected: [u64; 2],
    /// Flits popped from ejection queues per class.
    pub(crate) ejected: [u64; 2],
    /// Ejection-queue pops (progress signal not covered by `NetStats`).
    pub(crate) pops: u64,
    /// Progress counter value at the last observed change.
    pub(crate) last_progress: u64,
    /// Cycle of the last observed change.
    pub(crate) last_progress_cycle: u64,
    /// Violations retained when `panic_on_violation` is off.
    pub(crate) violations: Vec<Violation>,
    /// Conservation sweeps performed (lets tests prove the auditor ran).
    pub(crate) sweeps: u64,
}

impl AuditState {
    /// Records an ejection-queue pop: both a per-class ledger entry and a
    /// forward-progress signal for the watchdog (queue drains bump no
    /// `NetStats` counter, so a network whose only activity is the NI
    /// emptying its queues must not look stalled).
    pub(crate) fn note_pop(&mut self, class: MessageClass) {
        self.pops += 1;
        self.ejected[class_ix(class)] += 1;
    }

    pub(crate) fn new(cfg: AuditConfig) -> Self {
        AuditState {
            cfg,
            injected: [0; 2],
            ejected: [0; 2],
            pops: 0,
            last_progress: 0,
            last_progress_cycle: 0,
            violations: Vec::new(),
            sweeps: 0,
        }
    }

    /// Serializes the auditor's ledgers and watchdog counters. The config
    /// is build-time; retained violations are diagnostic output, not
    /// simulation state, and are *not* carried across a snapshot (with
    /// `panic_on_violation` — the default for checkpointed runs — they
    /// are always empty anyway).
    pub(crate) fn snap_state(&self, e: &mut equinox_snap::Enc) {
        use equinox_snap::Snap;
        debug_assert!(
            self.violations.is_empty(),
            "snapshotting discards retained audit violations"
        );
        self.injected.snap(e);
        self.ejected.snap(e);
        e.put_u64(self.pops);
        e.put_u64(self.last_progress);
        e.put_u64(self.last_progress_cycle);
        e.put_u64(self.sweeps);
    }

    /// Restores state written by [`AuditState::snap_state`].
    pub(crate) fn restore_state(
        &mut self,
        d: &mut equinox_snap::Dec,
    ) -> Result<(), equinox_snap::SnapError> {
        use equinox_snap::Snap;
        self.injected = <[u64; 2]>::restore(d)?;
        self.ejected = <[u64; 2]>::restore(d)?;
        self.pops = d.u64()?;
        self.last_progress = d.u64()?;
        self.last_progress_cycle = d.u64()?;
        self.sweeps = d.u64()?;
        self.violations.clear();
        Ok(())
    }
}

/// Class index for the per-class ledgers.
pub(crate) fn class_ix(class: MessageClass) -> usize {
    match class {
        MessageClass::Request => 0,
        MessageClass::Reply => 1,
    }
}

/// Runs the conservation and escape-compliance sweeps over `net`,
/// appending any violations to `out`. Read-only; allocates only on
/// failure.
pub(crate) fn sweep(net: &Network, out: &mut Vec<Violation>) {
    check_credit_conservation(net, out);
    check_flit_conservation(net, out);
    check_escape_compliance(net, out);
}

/// Per-link/VC credit-loop conservation: upstream credits + flits on the
/// link + flits buffered downstream + credits returning upstream must
/// equal the buffer depth.
fn check_credit_conservation(net: &Network, out: &mut Vec<Violation>) {
    let depth = net.cfg.vc_buf_flits as u32;
    for (li, link) in net.links.iter().enumerate() {
        let (r, p) = (link.to_router, link.to_port);
        let vcs = net.routers[r].inputs[p].vcs.len();
        for vc in 0..vcs {
            let upstream = match link.credit_dst {
                CreditDst::RouterOutput { router, port } => {
                    net.routers[router].outputs[port].vcs[vc].credits
                }
                CreditDst::Injector { injector } => net.injectors[injector].credits[vc],
            };
            let buffered = net.routers[r].inputs[p].vcs[vc].buf.len() as u32;
            let flits_in_flight = link.flits_in_flight_on_vc(vc as u8);
            let credits_in_flight = link.credits_in_flight_for_vc(vc as u8);
            if upstream + buffered + flits_in_flight + credits_in_flight != depth {
                out.push(Violation::CreditConservation {
                    link: li,
                    router: r,
                    port: p,
                    vc: vc as u8,
                    depth,
                    upstream,
                    buffered,
                    flits_in_flight,
                    credits_in_flight,
                });
            }
        }
    }
}

/// Counts flits resident in `net` per class: router input buffers, link
/// pipelines, and ejection queues.
pub(crate) fn resident_by_class(net: &Network) -> [u64; 2] {
    let mut resident = [0u64; 2];
    for r in &net.routers {
        for ip in &r.inputs {
            for vc in &ip.vcs {
                for &(_, f) in &vc.buf {
                    resident[class_ix(f.class)] += 1;
                }
            }
        }
    }
    for link in &net.links {
        for f in link.iter_flits() {
            resident[class_ix(f.class)] += 1;
        }
    }
    for q in net.eject.iter().flatten() {
        for f in q {
            resident[class_ix(f.class)] += 1;
        }
    }
    resident
}

fn check_flit_conservation(net: &Network, out: &mut Vec<Violation>) {
    let Some(a) = net.audit.as_deref() else { return };
    let resident = resident_by_class(net);
    for class in [MessageClass::Request, MessageClass::Reply] {
        let ix = class_ix(class);
        if a.injected[ix] != a.ejected[ix] + resident[ix] {
            out.push(Violation::FlitConservation {
                class,
                injected: a.injected[ix],
                ejected: a.ejected[ix],
                resident: resident[ix],
            });
        }
    }
}

/// Escape-VC discipline, checked against the fabric's own contract: an
/// input VC allocated to the escape VC of its class partition (or to a
/// borrowed foreign-class VC under VC-Mono) on a *link* output must hold
/// the topology's escape port toward the packet's destination, and on
/// capturing fabrics a flit that arrived over a network link on its
/// escape VC must also have been allocated the escape VC again.
fn check_escape_compliance(net: &Network, out: &mut Vec<Violation>) {
    let total = net.cfg.vcs_per_port;
    let captures = net.topo.captures_escape();
    for (ri, router) in net.routers.iter().enumerate() {
        let coord = router.coord;
        for (ip, port) in router.inputs.iter().enumerate() {
            for (iv, vc) in port.vcs.iter().enumerate() {
                let (Some(op), Some(ov)) = (vc.out_port, vc.out_vc) else {
                    continue;
                };
                if !matches!(router.outputs[op].role, OutputRole::Link(_)) {
                    continue;
                }
                let Some(&(_, f)) = vc.buf.front() else {
                    continue;
                };
                let own = net.cfg.partition.range_for(f.class.is_reply(), total);
                let captured = captures && ip < PORT_LOCAL && iv == own.start as usize;
                let constrained = ov == own.start || !own.contains(&ov);
                if !captured && !constrained {
                    continue;
                }
                let escape = net.topo.escape_port(ri, net.topo.node_index(f.dst));
                if Some(op) != escape || (captured && ov != own.start) {
                    out.push(Violation::EscapeVcViolation {
                        router: ri,
                        coord,
                        port: ip,
                        vc: iv,
                        out_vc: ov,
                        out_port: op,
                        escape_port: escape,
                        dst: f.dst,
                    });
                }
            }
        }
    }
}

/// Builds the structured deadlock diagnosis for a wedged network.
pub(crate) fn deadlock_report(net: &Network, stalled_for: u64) -> DeadlockReport {
    let mut stuck = Vec::new();
    let mut edges = Vec::new();
    let mut buffered_flits = 0u64;
    for (ri, router) in net.routers.iter().enumerate() {
        for (ip, port) in router.inputs.iter().enumerate() {
            for (iv, vc) in port.vcs.iter().enumerate() {
                buffered_flits += vc.buf.len() as u64;
                let Some(&(_, f)) = vc.buf.front() else {
                    continue;
                };
                let allocation = match (vc.out_port, vc.out_vc) {
                    (Some(op), Some(ov)) => {
                        let credits = match router.outputs[op].role {
                            OutputRole::Link(li) => {
                                let c = router.outputs[op].vcs[ov as usize].credits;
                                if c == 0 {
                                    edges.push(BlockedEdge {
                                        from: ri,
                                        via_port: op,
                                        to: net.links[li].to_router,
                                        vc: ov,
                                    });
                                }
                                c
                            }
                            // Eject ports block on queue space, not
                            // credits; report the free slots instead.
                            OutputRole::Eject { .. } => {
                                (net.cfg.eject_cap - net.eject[ri][op].len()) as u32
                            }
                            OutputRole::Dead => 0,
                        };
                        Some((op, ov, credits))
                    }
                    _ => None,
                };
                if stuck.len() < MAX_REPORTED_STUCK {
                    stuck.push(StuckFlit {
                        router: ri,
                        coord: router.coord,
                        port: ip,
                        vc: iv,
                        pkt: f.pkt,
                        seq: f.seq,
                        class: f.class,
                        dst: f.dst,
                        allocation,
                    });
                }
            }
        }
    }
    let link_flits: u64 = net.links.iter().map(|l| l.in_flight() as u64).sum();
    let eject_flits: u64 = net.eject.iter().flatten().map(|q| q.len() as u64).sum();
    DeadlockReport {
        cycle: net.cycle,
        stalled_for,
        buffered_flits,
        link_flits,
        eject_flits,
        stuck,
        edges,
    }
}

/// Records fresh violations on the network's audit state, panicking if so
/// configured.
pub(crate) fn record_violations(net: &mut Network, fresh: Vec<Violation>) {
    if fresh.is_empty() {
        return;
    }
    let a = net.audit.as_deref_mut().expect("audit enabled");
    if a.cfg.panic_on_violation {
        let mut msg = format!(
            "NoC audit failed at cycle {} with {} violation(s):\n",
            net.cycle,
            fresh.len()
        );
        for v in &fresh {
            msg.push_str(&format!("  - {v}\n"));
        }
        panic!("{msg}");
    }
    let room = MAX_RETAINED_VIOLATIONS.saturating_sub(a.violations.len());
    a.violations.extend(fresh.into_iter().take(room));
}
