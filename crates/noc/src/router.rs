//! Virtual-channel router state.
//!
//! Each router has paired input/output ports. Ports 0–3 are the mesh
//! directions (N, E, S, W), port 4 is the primary local port (NI injection
//! on the input side, packet ejection on the output side), and ports 5+
//! are scheme-specific extras: MultiPort's additional injection/ejection
//! ports, or the one extra input port every EIR gains in EquiNox (§4.4).
//!
//! The per-cycle pipeline (route computation, VC allocation, separable
//! input-first switch allocation, switch traversal) is driven by
//! [`crate::network::Network::step`], which owns the links and statistics;
//! this module holds the state machines.

use crate::flit::Flit;
use std::collections::VecDeque;

/// Mesh port indices. `PORT_LOCAL` is the first local (NI) port.
pub const PORT_N: usize = 0;
/// East.
pub const PORT_E: usize = 1;
/// South.
pub const PORT_S: usize = 2;
/// West.
pub const PORT_W: usize = 3;
/// Primary local port.
pub const PORT_LOCAL: usize = 4;

/// What an output port drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OutputRole {
    /// Drives a link (index into the network's link table).
    Link(usize),
    /// Ejects flits into a local sink queue. `sink` restricts which flits
    /// may leave here (concentrated meshes tag one port per attached
    /// node); `None` accepts anything.
    Eject { sink: Option<u32> },
    /// Unused side of a paired port (e.g. the output side of an
    /// injection-only port).
    Dead,
}

/// One virtual channel of an input port.
#[derive(Debug)]
pub(crate) struct InputVc {
    /// Buffered flits with their enqueue cycle (for per-router heat
    /// statistics).
    pub buf: VecDeque<(u64, Flit)>,
    /// Output port allocated to the packet currently draining.
    pub out_port: Option<usize>,
    /// Output VC allocated to that packet.
    pub out_vc: Option<u8>,
}

impl InputVc {
    /// `depth` is the VC's buffer capacity in flits; the backing deque is
    /// preallocated to it so steady-state stepping never reallocates.
    fn new(depth: u32) -> Self {
        InputVc {
            buf: VecDeque::with_capacity(depth as usize),
            out_port: None,
            out_vc: None,
        }
    }

    /// `true` if this VC has a flit ready and a channel allocated.
    pub fn sa_ready(&self) -> bool {
        !self.buf.is_empty() && self.out_vc.is_some()
    }
}

/// An input port: a set of VCs fed by one link.
#[derive(Debug)]
pub(crate) struct InputPort {
    pub vcs: Vec<InputVc>,
    /// Link feeding this port (`None` for dead input sides).
    pub feed_link: Option<usize>,
    /// Round-robin pointer for input-side switch arbitration.
    pub sa_ptr: usize,
}

/// One virtual channel of an output port: downstream credit counter plus
/// exclusive ownership while a packet is in flight.
#[derive(Debug)]
pub(crate) struct OutputVc {
    pub credits: u32,
    pub owner: Option<(usize, u8)>,
}

/// An output port: a set of VC credit counters driving one link, an
/// ejection queue, or nothing.
#[derive(Debug)]
pub(crate) struct OutputPort {
    pub vcs: Vec<OutputVc>,
    pub role: OutputRole,
    /// Round-robin pointer for output-side switch arbitration.
    pub sa_ptr: usize,
}

/// A virtual-channel wormhole router.
#[derive(Debug)]
pub struct Router {
    pub(crate) coord: equinox_phys::Coord,
    pub(crate) inputs: Vec<InputPort>,
    pub(crate) outputs: Vec<OutputPort>,
}

impl Router {
    /// Creates a router with `ports` paired ports, `vcs` VCs per port and
    /// `depth` flits of buffering per VC. All ports start dead; the
    /// network builder wires them up.
    pub(crate) fn new(coord: equinox_phys::Coord, ports: usize, vcs: u8, depth: u32) -> Self {
        let inputs = (0..ports)
            .map(|_| InputPort {
                vcs: (0..vcs).map(|_| InputVc::new(depth)).collect(),
                feed_link: None,
                sa_ptr: 0,
            })
            .collect();
        let outputs = (0..ports)
            .map(|_| OutputPort {
                vcs: (0..vcs)
                    .map(|_| OutputVc {
                        credits: depth,
                        owner: None,
                    })
                    .collect(),
                role: OutputRole::Dead,
                sa_ptr: 0,
            })
            .collect();
        Router {
            coord,
            inputs,
            outputs,
        }
    }

    /// Appends a fresh paired port and returns its index.
    pub(crate) fn add_port(&mut self, vcs: u8, depth: u32) -> usize {
        let idx = self.inputs.len();
        self.inputs.push(InputPort {
            vcs: (0..vcs).map(|_| InputVc::new(depth)).collect(),
            feed_link: None,
            sa_ptr: 0,
        });
        self.outputs.push(OutputPort {
            vcs: (0..vcs)
                .map(|_| OutputVc {
                    credits: depth,
                    owner: None,
                })
                .collect(),
            role: OutputRole::Dead,
            sa_ptr: 0,
        });
        idx
    }

    /// This router's mesh coordinate.
    pub fn coord(&self) -> equinox_phys::Coord {
        self.coord
    }

    /// Number of paired ports.
    pub fn num_ports(&self) -> usize {
        self.inputs.len()
    }

    /// Total flits currently buffered across all input VCs.
    pub fn buffered_flits(&self) -> usize {
        self.inputs
            .iter()
            .flat_map(|p| p.vcs.iter())
            .map(|vc| vc.buf.len())
            .sum()
    }

    /// `true` if any buffered flit belongs to `class`.
    pub(crate) fn class_present(&self, class: crate::flit::MessageClass) -> bool {
        self.inputs
            .iter()
            .flat_map(|p| p.vcs.iter())
            .flat_map(|vc| vc.buf.iter())
            .any(|&(_, f)| f.class == class)
    }

    /// Serializes the router's dynamic state: per-input-VC buffers and
    /// allocations, arbiter pointers, and per-output-VC credits/owners.
    /// Coordinates, port roles and feed links are topology and skipped.
    pub(crate) fn snap_state(&self, e: &mut equinox_snap::Enc) {
        use equinox_snap::Snap;
        for ip in &self.inputs {
            e.put_usize(ip.sa_ptr);
            for vc in &ip.vcs {
                vc.buf.snap(e);
                vc.out_port.snap(e);
                vc.out_vc.snap(e);
            }
        }
        for op in &self.outputs {
            e.put_usize(op.sa_ptr);
            for vc in &op.vcs {
                e.put_u32(vc.credits);
                vc.owner.snap(e);
            }
        }
    }

    /// Restores state written by [`Router::snap_state`] into a router of
    /// the *same* shape; `depth` is the configured per-VC buffer capacity
    /// used to validate restored buffers and credit counters.
    pub(crate) fn restore_state(
        &mut self,
        d: &mut equinox_snap::Dec,
        depth: u32,
    ) -> Result<(), equinox_snap::SnapError> {
        use equinox_snap::{Snap, SnapError};
        let nports = self.inputs.len();
        for ip in &mut self.inputs {
            ip.sa_ptr = d.usize()?;
            if ip.sa_ptr >= ip.vcs.len().max(1) {
                return Err(SnapError::BadValue("input sa_ptr"));
            }
            for vc in &mut ip.vcs {
                let buf: VecDeque<(u64, Flit)> = VecDeque::restore(d)?;
                if buf.len() > depth as usize {
                    return Err(SnapError::BadValue("input buffer over depth"));
                }
                vc.buf = buf;
                vc.out_port = Option::restore(d)?;
                vc.out_vc = Option::restore(d)?;
                if vc.out_port.is_some_and(|p| p >= nports) {
                    return Err(SnapError::BadValue("allocated out_port"));
                }
            }
        }
        for op in &mut self.outputs {
            op.sa_ptr = d.usize()?;
            if op.sa_ptr >= nports.max(1) {
                return Err(SnapError::BadValue("output sa_ptr"));
            }
            for vc in &mut op.vcs {
                vc.credits = d.u32()?;
                if vc.credits > depth {
                    return Err(SnapError::BadValue("credits over depth"));
                }
                vc.owner = Option::restore(d)?;
                if vc.owner.is_some_and(|(p, _)| p >= nports) {
                    return Err(SnapError::BadValue("owner input port"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{MessageClass, PacketDesc};
    use equinox_phys::Coord;

    #[test]
    fn construction_shapes() {
        let r = Router::new(Coord::new(1, 1), 5, 2, 5);
        assert_eq!(r.num_ports(), 5);
        assert_eq!(r.inputs[0].vcs.len(), 2);
        assert_eq!(r.outputs[4].vcs.len(), 2);
        assert_eq!(r.outputs[0].vcs[0].credits, 5);
        assert_eq!(r.buffered_flits(), 0);
        assert_eq!(r.coord(), Coord::new(1, 1));
    }

    #[test]
    fn add_port_extends_pairs() {
        let mut r = Router::new(Coord::new(0, 0), 5, 2, 5);
        let p = r.add_port(2, 5);
        assert_eq!(p, 5);
        assert_eq!(r.num_ports(), 6);
        assert!(matches!(r.outputs[5].role, OutputRole::Dead));
    }

    #[test]
    fn class_presence_detection() {
        let mut r = Router::new(Coord::new(0, 0), 5, 2, 5);
        assert!(!r.class_present(MessageClass::Reply));
        let f = PacketDesc::new(0, Coord::new(0, 0), Coord::new(1, 1), MessageClass::Reply, 1)
            .flits(8)[0];
        r.inputs[0].vcs[0].buf.push_back((0, f));
        assert!(r.class_present(MessageClass::Reply));
        assert!(!r.class_present(MessageClass::Request));
        assert_eq!(r.buffered_flits(), 1);
    }

    #[test]
    fn sa_ready_requires_allocation_and_flit() {
        let mut vc = InputVc::new(5);
        assert!(!vc.sa_ready());
        let f = PacketDesc::new(0, Coord::new(0, 0), Coord::new(1, 1), MessageClass::Reply, 1)
            .flits(8)[0];
        vc.buf.push_back((0, f));
        assert!(!vc.sa_ready(), "no output VC allocated yet");
        vc.out_port = Some(1);
        vc.out_vc = Some(0);
        assert!(vc.sa_ready());
    }
}
