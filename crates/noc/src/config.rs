//! Network configuration.
//!
//! Mirrors Table 1 of the paper: 8×8 / 12×12 / 16×16 meshes, minimal
//! adaptive routing, 2 VCs per port with one packet of buffering per VC,
//! and a separable input-first allocator (which is the allocator the
//! simulator implements — it is not configurable because none of the seven
//! schemes varies it).

use crate::topology::TopologyKind;
use std::ops::Range;

/// Routing algorithm for a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingKind {
    /// Dimension-ordered X-then-Y routing. Deterministic, deadlock-free.
    Xy,
    /// Minimal adaptive routing: any productive direction on adaptive VCs,
    /// with VC 0 of each class partition reserved as an XY escape channel
    /// (Duato). Degrades to pure XY when a partition has a single VC.
    MinimalAdaptive,
}

/// How virtual channels are shared between message classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VcPartition {
    /// All VCs belong to whatever class the network carries — used by the
    /// separate-network schemes where request and reply have their own
    /// physical networks.
    Shared,
    /// Single physical network: requests and replies get disjoint VC
    /// ranges to avoid protocol deadlock. With `mono` set (the VC-Mono
    /// scheme), a class may claim the other class's VCs at a router where
    /// no flit of the other class is currently present.
    ByClass {
        /// VCs usable by request packets.
        request: Range<u8>,
        /// VCs usable by reply packets.
        reply: Range<u8>,
        /// Enable VC monopolization (the VC-Mono scheme, DAC'15 \[4\]).
        mono: bool,
    },
}

impl VcPartition {
    /// The VC range class `reply` may *normally* use (ignoring
    /// monopolization) given `total` VCs per port.
    pub fn range_for(&self, reply: bool, total: u8) -> Range<u8> {
        match self {
            VcPartition::Shared => 0..total,
            VcPartition::ByClass { request, reply: rep, .. } => {
                if reply {
                    rep.clone()
                } else {
                    request.clone()
                }
            }
        }
    }

    /// `true` if monopolization is enabled.
    pub fn mono(&self) -> bool {
        matches!(self, VcPartition::ByClass { mono: true, .. })
    }
}

/// Full configuration of one physical network.
#[derive(Debug, Clone, PartialEq)]
pub struct NocConfig {
    /// Fabric the routers are wired into (mesh unless a scheme opts into
    /// one of the ring reply fabrics).
    pub topology: TopologyKind,
    /// Grid width in routers.
    pub width: u16,
    /// Grid height in routers.
    pub height: u16,
    /// Virtual channels per port (Table 1: 2).
    pub vcs_per_port: u8,
    /// Buffer depth per VC in flits (Table 1: 1 packet = 5 flits at
    /// 128-bit flits and 64 B cache lines).
    pub vc_buf_flits: usize,
    /// Routing algorithm.
    pub routing: RoutingKind,
    /// Latency of a mesh link in cycles.
    pub link_latency: u32,
    /// Latency of the NI→router injection link in cycles.
    pub ni_latency: u32,
    /// VC sharing policy.
    pub partition: VcPartition,
    /// Link width in bits — only used by the energy model and for
    /// computing serialization (flits per packet) in upper layers.
    pub link_bits: u32,
    /// Clock frequency in GHz, used to convert latencies to nanoseconds
    /// when networks with different clocks are compared (DA2Mesh).
    pub freq_ghz: f64,
    /// Extra router pipeline stages beyond the single-cycle minimum.
    /// A flit that arrives in an input buffer at cycle `t` becomes
    /// eligible for allocation at `t + pipeline_extra`, modelling the
    /// RC/VA/SA/ST stage registers of a deeper router (BookSim's
    /// `routing_delay`/`vc_alloc_delay` knobs). 0 keeps the aggressive
    /// 2-cycle-per-hop router the rest of the evaluation uses.
    pub pipeline_extra: u32,
    /// Ejection-queue capacity in flits. When a network interface stops
    /// draining an ejection port (e.g. a busy cache bank), the queue fills
    /// to this cap and the router stops granting the port — backpressure
    /// then propagates into the network, which is how reply-side
    /// congestion stretches request latencies (§6.4's parking-lot effect).
    pub eject_cap: usize,
    /// Step only routers and links on the active worklist instead of
    /// sweeping the whole mesh every cycle. A router with no buffered
    /// flit is an exact no-op in every pipeline stage, so gating is
    /// bit-identical to the exhaustive sweep; this flag exists purely as
    /// a cross-checking escape hatch (`--no-activity-gate`).
    pub activity_gate: bool,
}

/// `true` unless `EQUINOX_NO_ACTIVITY_GATE` is set to a truthy value.
///
/// **Fallback-only shim.** Configuration normally arrives explicitly via
/// `equinox_config::ExperimentSpec` (which folds this variable into its
/// environment layer); nothing in the library reads the environment on
/// its own anymore. This reader remains for ad-hoc embedders that build
/// `NocConfig`s directly and still want the process-wide escape hatch.
/// Unset, empty, `0`, `false` and `off` keep the gate enabled.
pub fn activity_gate_from_env() -> bool {
    match std::env::var("EQUINOX_NO_ACTIVITY_GATE") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            v.is_empty() || v == "0" || v == "false" || v == "off"
        }
        Err(_) => true,
    }
}

impl NocConfig {
    /// The paper's default 8×8 reply-network configuration (Table 1).
    pub fn mesh_8x8() -> Self {
        NocConfig {
            topology: TopologyKind::Mesh,
            width: 8,
            height: 8,
            vcs_per_port: 2,
            vc_buf_flits: 5,
            routing: RoutingKind::MinimalAdaptive,
            link_latency: 1,
            ni_latency: 1,
            partition: VcPartition::Shared,
            link_bits: 128,
            freq_ghz: 1.126,
            pipeline_extra: 0,
            eject_cap: 16,
            // Gating is bit-identical to the exhaustive sweep, so the
            // default is unconditionally on; callers that want the
            // cross-checking escape hatch set this explicitly (the
            // drivers plumb it down from the resolved experiment spec).
            activity_gate: true,
        }
    }

    /// Square mesh of the given size with otherwise default parameters.
    pub fn mesh(n: u16) -> Self {
        NocConfig {
            width: n,
            height: n,
            ..Self::mesh_8x8()
        }
    }

    /// Square grid of the given size wired as `topology`, with otherwise
    /// default parameters. `fabric(TopologyKind::Mesh, n)` equals
    /// [`NocConfig::mesh`].
    pub fn fabric(topology: TopologyKind, n: u16) -> Self {
        NocConfig {
            topology,
            ..Self::mesh(n)
        }
    }

    /// Single-network configuration per Table 1: 2 VCs per port, one per
    /// message class (the class split is mandatory for protocol-deadlock
    /// freedom). With a single VC per class the escape discipline forces
    /// dimension-order routing — one of the structural reasons the
    /// single-network schemes trail the separate-network ones (§6.1).
    /// VC-Mono (`mono`) lets replies borrow the request VC at routers
    /// with no buffered request, restoring some adaptivity and buffering.
    pub fn single_net(n: u16, mono: bool) -> Self {
        NocConfig {
            width: n,
            height: n,
            vcs_per_port: 2,
            partition: VcPartition::ByClass {
                request: 0..1,
                reply: 1..2,
                mono,
            },
            ..Self::mesh_8x8()
        }
    }

    /// Number of routers in the grid.
    pub fn num_nodes(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: zero
    /// dimensions, dimensions the chosen topology cannot be built on,
    /// zero VCs/buffers, or a class partition that exceeds
    /// `vcs_per_port` / overlaps / is empty.
    pub fn validate(&self) -> Result<(), String> {
        if self.width == 0 || self.height == 0 {
            return Err("grid dimensions must be nonzero".into());
        }
        match self.topology {
            TopologyKind::Mesh => {}
            TopologyKind::Ring => {
                if self.num_nodes() < 2 {
                    return Err("a ring topology needs at least two nodes".into());
                }
            }
            TopologyKind::HierRing => {
                if self.width < 2 || self.height < 2 {
                    return Err(
                        "a hierarchical ring needs width >= 2 and height >= 2 \
                         (each row is a ring, bridged by a global ring)"
                            .into(),
                    );
                }
            }
        }
        if self.vcs_per_port == 0 {
            return Err("need at least one VC per port".into());
        }
        if self.vc_buf_flits == 0 {
            return Err("VC buffers must hold at least one flit".into());
        }
        if self.link_latency == 0 || self.ni_latency == 0 {
            return Err("link latencies must be at least one cycle".into());
        }
        if self.freq_ghz <= 0.0 {
            return Err("clock frequency must be positive".into());
        }
        if self.eject_cap == 0 {
            return Err("ejection queues need capacity".into());
        }
        if self.topology != TopologyKind::Mesh && self.partition.mono() {
            return Err(
                "VC monopolization (VC-Mono) is only supported on the mesh: a borrowed \
                 foreign VC defeats the escape-capture discipline ring fabrics rely on"
                    .into(),
            );
        }
        if let VcPartition::ByClass { request, reply, .. } = &self.partition {
            if request.is_empty() || reply.is_empty() {
                return Err("each class needs at least one VC".into());
            }
            if request.end > self.vcs_per_port || reply.end > self.vcs_per_port {
                return Err("class VC range exceeds vcs_per_port".into());
            }
            if request.start < reply.end && reply.start < request.end {
                return Err("class VC ranges overlap".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(NocConfig::mesh_8x8().validate().is_ok());
        assert!(NocConfig::mesh(12).validate().is_ok());
        assert!(NocConfig::single_net(8, true).validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = NocConfig::mesh_8x8();
        c.width = 0;
        assert!(c.validate().is_err());

        let mut c = NocConfig::mesh_8x8();
        c.vc_buf_flits = 0;
        assert!(c.validate().is_err());

        let mut c = NocConfig::single_net(8, false);
        c.partition = VcPartition::ByClass {
            request: 0..3,
            reply: 2..4,
            mono: false,
        };
        assert!(c.validate().is_err(), "overlapping ranges");

        let mut c = NocConfig::single_net(8, false);
        c.partition = VcPartition::ByClass {
            request: 0..2,
            reply: 2..5,
            mono: false,
        };
        assert!(c.validate().is_err(), "range beyond vcs_per_port");
    }

    #[test]
    fn topology_dimension_constraints() {
        assert!(NocConfig::fabric(TopologyKind::Ring, 4).validate().is_ok());
        assert!(NocConfig::fabric(TopologyKind::HierRing, 4).validate().is_ok());

        let mut c = NocConfig::fabric(TopologyKind::Ring, 1);
        assert!(c.validate().is_err(), "one-node ring");
        c.height = 2;
        assert!(c.validate().is_ok(), "1x2 ring is a legal two-node ring");

        let mut c = NocConfig::fabric(TopologyKind::HierRing, 4);
        c.height = 1;
        assert!(c.validate().is_err(), "hier ring needs height >= 2");
        let mut c = NocConfig::fabric(TopologyKind::HierRing, 4);
        c.width = 1;
        assert!(c.validate().is_err(), "hier ring needs width >= 2");
    }

    #[test]
    fn partition_ranges() {
        let p = VcPartition::ByClass {
            request: 0..2,
            reply: 2..4,
            mono: false,
        };
        assert_eq!(p.range_for(false, 4), 0..2);
        assert_eq!(p.range_for(true, 4), 2..4);
        assert!(!p.mono());
        assert_eq!(VcPartition::Shared.range_for(true, 2), 0..2);
    }

    #[test]
    fn node_count() {
        assert_eq!(NocConfig::mesh_8x8().num_nodes(), 64);
        assert_eq!(NocConfig::mesh(16).num_nodes(), 256);
    }
}
