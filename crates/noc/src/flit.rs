//! Packets and flits.
//!
//! A packet is the unit of transfer between network interfaces (a read
//! request, a cache-line reply, …); a flit is the unit of flow control.
//! With the paper's 128-bit links a read request is a single flit while a
//! 64 B cache-line reply serializes into 5 flits (header + 4 data), which
//! is what makes the reply network carry ~3/4 of all NoC bits (§2.2).

use equinox_phys::Coord;
use std::fmt;

/// Globally-unique packet identifier (assigned by the traffic layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt#{}", self.0)
    }
}

/// Message class: the two logical networks of a throughput processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageClass {
    /// PE → CB traffic (read/write requests).
    Request,
    /// CB → PE traffic (read data / write acks) — the bottleneck class.
    Reply,
}

impl MessageClass {
    /// `true` for [`MessageClass::Reply`].
    pub const fn is_reply(self) -> bool {
        matches!(self, MessageClass::Reply)
    }
}

/// Immutable description of a packet before serialization into flits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketDesc {
    /// Unique id.
    pub id: PacketId,
    /// Source tile.
    pub src: Coord,
    /// Destination tile.
    pub dst: Coord,
    /// Message class.
    pub class: MessageClass,
    /// Length in flits (≥ 1).
    pub len: u16,
}

impl PacketDesc {
    /// Creates a packet description.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(id: u64, src: Coord, dst: Coord, class: MessageClass, len: u16) -> Self {
        assert!(len > 0, "packets have at least one flit");
        PacketDesc {
            id: PacketId(id),
            src,
            dst,
            class,
            len,
        }
    }

    /// Serializes the packet into its flits, in order. The `sink` of every
    /// flit defaults to the row-major index of `dst` on a mesh `width`
    /// wide; concentrated networks overwrite it via [`Flit::with_sink`].
    pub fn flits(&self, width: u16) -> Vec<Flit> {
        (0..self.len).map(|seq| self.flit_at(seq, width)).collect()
    }

    /// Builds the single flit at position `seq` without materializing the
    /// whole packet — the form the NI injection hot loop uses, so that
    /// streaming a packet one flit per cycle never touches the heap.
    /// `seq` must be `< len`; the `sink` default matches [`PacketDesc::flits`].
    pub fn flit_at(&self, seq: u16, width: u16) -> Flit {
        debug_assert!(seq < self.len, "flit index out of range");
        Flit {
            pkt: self.id,
            src: self.src,
            dst: self.dst,
            class: self.class,
            seq,
            len: self.len,
            sink: self.dst.to_index(width) as u32,
            vc: 0,
        }
    }
}

/// The flow-control unit traversing the network.
///
/// Flits are small `Copy` values; all per-packet bookkeeping (latency
/// accounting, reassembly) lives in the traffic layer keyed by
/// [`Flit::pkt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Owning packet.
    pub pkt: PacketId,
    /// Source tile (in this network's coordinate space).
    pub src: Coord,
    /// Destination tile (in this network's coordinate space).
    pub dst: Coord,
    /// Message class.
    pub class: MessageClass,
    /// Position within the packet (0 = head).
    pub seq: u16,
    /// Packet length in flits.
    pub len: u16,
    /// Ejection sink tag — disambiguates which local port to leave through
    /// on routers with several ejection ports (concentrated meshes).
    pub sink: u32,
    /// Current virtual channel (rewritten at every hop).
    pub vc: u8,
}

impl Flit {
    /// `true` for the first flit of a packet (carries routing info).
    pub const fn is_head(&self) -> bool {
        self.seq == 0
    }

    /// `true` for the last flit of a packet (releases channel state).
    pub const fn is_tail(&self) -> bool {
        self.seq + 1 == self.len
    }

    /// Returns a copy with the ejection sink tag replaced.
    pub fn with_sink(mut self, sink: u32) -> Self {
        self.sink = sink;
        self
    }

    /// Returns a copy re-addressed to `dst` (used when mapping a packet
    /// into a concentrated network's coordinate space).
    pub fn with_dst(mut self, dst: Coord) -> Self {
        self.dst = dst;
        self
    }

    /// Returns a copy with the source coordinate replaced.
    pub fn with_src(mut self, src: Coord) -> Self {
        self.src = src;
        self
    }
}

impl equinox_snap::Snap for PacketId {
    fn snap(&self, e: &mut equinox_snap::Enc) {
        e.put_u64(self.0);
    }
    fn restore(d: &mut equinox_snap::Dec) -> Result<Self, equinox_snap::SnapError> {
        Ok(PacketId(d.u64()?))
    }
}

impl equinox_snap::Snap for PacketDesc {
    fn snap(&self, e: &mut equinox_snap::Enc) {
        self.id.snap(e);
        e.put_u16(self.src.x);
        e.put_u16(self.src.y);
        e.put_u16(self.dst.x);
        e.put_u16(self.dst.y);
        self.class.snap(e);
        e.put_u16(self.len);
    }
    fn restore(d: &mut equinox_snap::Dec) -> Result<Self, equinox_snap::SnapError> {
        let id = PacketId::restore(d)?;
        let src = Coord::new(d.u16()?, d.u16()?);
        let dst = Coord::new(d.u16()?, d.u16()?);
        let class = MessageClass::restore(d)?;
        let len = d.u16()?;
        if len == 0 {
            return Err(equinox_snap::SnapError::BadValue("packet len zero"));
        }
        Ok(PacketDesc {
            id,
            src,
            dst,
            class,
            len,
        })
    }
}

impl equinox_snap::Snap for MessageClass {
    fn snap(&self, e: &mut equinox_snap::Enc) {
        e.put_u8(match self {
            MessageClass::Request => 0,
            MessageClass::Reply => 1,
        });
    }
    fn restore(d: &mut equinox_snap::Dec) -> Result<Self, equinox_snap::SnapError> {
        match d.u8()? {
            0 => Ok(MessageClass::Request),
            1 => Ok(MessageClass::Reply),
            _ => Err(equinox_snap::SnapError::BadValue("message class tag")),
        }
    }
}

// `Coord` belongs to `equinox-phys` (which has no snap dependency), so
// flits encode it field-wise.
impl equinox_snap::Snap for Flit {
    fn snap(&self, e: &mut equinox_snap::Enc) {
        self.pkt.snap(e);
        e.put_u16(self.src.x);
        e.put_u16(self.src.y);
        e.put_u16(self.dst.x);
        e.put_u16(self.dst.y);
        self.class.snap(e);
        e.put_u16(self.seq);
        e.put_u16(self.len);
        e.put_u32(self.sink);
        e.put_u8(self.vc);
    }
    fn restore(d: &mut equinox_snap::Dec) -> Result<Self, equinox_snap::SnapError> {
        let f = Flit {
            pkt: PacketId::restore(d)?,
            src: Coord::new(d.u16()?, d.u16()?),
            dst: Coord::new(d.u16()?, d.u16()?),
            class: MessageClass::restore(d)?,
            seq: d.u16()?,
            len: d.u16()?,
            sink: d.u32()?,
            vc: d.u8()?,
        };
        if f.len == 0 || f.seq >= f.len {
            return Err(equinox_snap::SnapError::BadValue("flit seq/len"));
        }
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_order_and_flags() {
        let p = PacketDesc::new(7, Coord::new(1, 2), Coord::new(5, 5), MessageClass::Reply, 5);
        let flits = p.flits(8);
        assert_eq!(flits.len(), 5);
        assert!(flits[0].is_head());
        assert!(!flits[0].is_tail());
        assert!(flits[4].is_tail());
        assert!(flits[1..4].iter().all(|f| !f.is_head() && !f.is_tail()));
        assert!(flits.iter().all(|f| f.pkt == PacketId(7)));
        assert_eq!(flits[0].sink, 5 * 8 + 5);
    }

    #[test]
    fn single_flit_packet_is_head_and_tail() {
        let p = PacketDesc::new(1, Coord::new(0, 0), Coord::new(1, 0), MessageClass::Request, 1);
        let f = p.flits(8)[0];
        assert!(f.is_head() && f.is_tail());
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_length_rejected() {
        let _ = PacketDesc::new(0, Coord::new(0, 0), Coord::new(1, 1), MessageClass::Reply, 0);
    }

    #[test]
    fn with_sink_and_dst() {
        let p = PacketDesc::new(2, Coord::new(0, 0), Coord::new(7, 7), MessageClass::Reply, 2);
        let f = p.flits(8)[0].with_sink(9).with_dst(Coord::new(3, 3));
        assert_eq!(f.sink, 9);
        assert_eq!(f.dst, Coord::new(3, 3));
        assert_eq!(f.src, Coord::new(0, 0));
    }

    #[test]
    fn class_helpers() {
        assert!(MessageClass::Reply.is_reply());
        assert!(!MessageClass::Request.is_reply());
    }
}
