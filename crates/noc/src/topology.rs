//! Topology as a first-class abstraction.
//!
//! Historically the network builder, the route-compute stage and the
//! escape-VC auditor all assumed a 2D mesh. This module factors that
//! assumption into a [`Topology`] trait: a fabric describes its link
//! graph ([`Topology::links`]), its productive output ports per
//! (current, destination) pair ([`Topology::route`]) and its
//! deadlock-freedom *escape contract* ([`Topology::escape_port`]), and
//! `Network` builds, routes and audits against that description. Adding
//! a fabric is a one-file change: implement the trait, register the
//! [`TopologyKind`], done.
//!
//! # Conventions shared by every fabric
//!
//! * Nodes are laid out on a `width × height` grid: node `i` sits at
//!   [`Coord::from_index`]`(i, width)`. This keeps NI indexing, heat
//!   maps, placement logic and obs link grids topology-agnostic.
//! * Every router has the uniform five-port shape: network ports
//!   `0..4` and the local (injection/ejection) port
//!   [`crate::router::PORT_LOCAL`]. Ports a fabric does not wire stay
//!   [`crate::router::OutputRole::Dead`] and cost nothing.
//! * [`Topology::route`] returns at most two candidate ports in
//!   preference order (the allocator's credit tie-break may swap two),
//!   and **must** include the escape port so the escape VC is always
//!   reachable (Duato's condition).
//!
//! # Escape contracts
//!
//! * **Mesh** — the escape VC is restricted to the dimension-ordered
//!   (XY) port; the XY channel dependence graph is acyclic.
//! * **Ring** — nodes form one bidirectional cycle in boustrophedon
//!   (snake) order over the grid. The escape path is *linearized*: it
//!   travels toward the destination in linear ring order and never
//!   crosses the wrap edge, so escape channels form two disjoint
//!   directed paths (acyclic). Minimal-adaptive routing may use the
//!   wrap links on non-escape VCs; to keep indirect dependencies out of
//!   the escape graph the fabric *captures* escaped packets
//!   ([`Topology::captures_escape`]): once a flit travels on the escape
//!   VC over a network link it stays on escape VCs to the destination.
//! * **HierarchicalRing** — each row is a local bidirectional ring and
//!   the column-0 hubs form a global ring. The escape path is
//!   hierarchical and wrap-free (linear to the hub, linear along the
//!   global ring, linear into the destination row), ordered
//!   row-backward < global < row-forward, hence acyclic; escaped
//!   packets are captured exactly as on the ring.

use crate::config::RoutingKind;
use crate::routing::{candidate_set, dor_direction};
use equinox_phys::Coord;
use std::fmt;

/// The registered fabrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TopologyKind {
    /// 2D mesh, XY escape (the paper's fabric).
    #[default]
    Mesh,
    /// One bidirectional ring in snake order over the grid.
    Ring,
    /// Row rings bridged by a global ring over the column-0 hubs.
    HierRing,
}

impl TopologyKind {
    /// Stable lower-case name (spec values, artifact JSON).
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Mesh => "mesh",
            TopologyKind::Ring => "ring",
            TopologyKind::HierRing => "hring",
        }
    }

    /// Parses a spec-layer name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the legal names.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim() {
            "mesh" => Ok(TopologyKind::Mesh),
            "ring" => Ok(TopologyKind::Ring),
            "hring" => Ok(TopologyKind::HierRing),
            other => Err(format!(
                "unknown topology '{other}' (expected mesh, ring or hring)"
            )),
        }
    }

    /// Stable tag for snapshot shape validation.
    pub(crate) fn tag(self) -> u8 {
        match self {
            TopologyKind::Mesh => 0,
            TopologyKind::Ring => 1,
            TopologyKind::HierRing => 2,
        }
    }

    /// Inverse of [`TopologyKind::tag`].
    pub(crate) fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(TopologyKind::Mesh),
            1 => Some(TopologyKind::Ring),
            2 => Some(TopologyKind::HierRing),
            _ => None,
        }
    }

    /// Instantiates the fabric for a `width × height` grid.
    ///
    /// # Panics
    ///
    /// Panics on dimensions the fabric cannot be built on; call
    /// [`crate::config::NocConfig::validate`] first for an error value.
    pub fn build(self, width: u16, height: u16) -> Box<dyn Topology> {
        match self {
            TopologyKind::Mesh => Box::new(Mesh { width, height }),
            TopologyKind::Ring => Box::new(Ring::new(width, height)),
            TopologyKind::HierRing => Box::new(HierRing::new(width, height)),
        }
    }
}

/// One directed network link of a fabric's graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopoLink {
    /// Source node (row-major grid index).
    pub from: usize,
    /// Output port on the source router (`< PORT_LOCAL`).
    pub from_port: usize,
    /// Destination node.
    pub to: usize,
    /// Input port on the destination router (`< PORT_LOCAL`).
    pub to_port: usize,
}

/// Up to two candidate output ports in preference order — the
/// port-index analogue of [`crate::routing::DirSet`]. Fixed capacity
/// keeps route compute allocation-free on the hot path.
#[derive(Debug, Clone, Copy, Default)]
pub struct PortSet {
    ports: [u8; 2],
    len: u8,
}

impl PortSet {
    /// The empty set.
    pub const fn new() -> Self {
        PortSet { ports: [0; 2], len: 0 }
    }

    /// Appends `port` unless it is already present.
    ///
    /// # Panics
    ///
    /// Panics beyond two distinct ports — no supported fabric offers
    /// more than two productive directions per hop.
    pub fn push(&mut self, port: usize) {
        if self.as_slice().contains(&(port as u8)) {
            return;
        }
        assert!(self.len < 2, "PortSet overflow");
        self.ports[self.len as usize] = port as u8;
        self.len += 1;
    }

    /// The candidate ports, in preference order.
    pub fn as_slice(&self) -> &[u8] {
        &self.ports[..self.len as usize]
    }
}

/// A fabric: link graph + productive-direction function + escape
/// contract. See the module docs for the conventions implementations
/// must uphold.
pub trait Topology: fmt::Debug + Send + Sync {
    /// Which registered fabric this is.
    fn kind(&self) -> TopologyKind;
    /// Grid width (node `i` is at `Coord::from_index(i, width)`).
    fn width(&self) -> u16;
    /// Grid height.
    fn height(&self) -> u16;

    /// Number of nodes (= routers).
    fn num_nodes(&self) -> usize {
        self.width() as usize * self.height() as usize
    }

    /// The node table: grid coordinate → node index.
    fn node_index(&self, c: Coord) -> usize {
        c.to_index(self.width())
    }

    /// Inverse of [`Topology::node_index`].
    fn node_coord(&self, i: usize) -> Coord {
        Coord::from_index(i, self.width())
    }

    /// Every directed network link, in a deterministic build order.
    fn links(&self) -> Vec<TopoLink>;

    /// Productive output ports from `cur` toward `dst` (`cur != dst`),
    /// in preference order. Must always include
    /// [`Topology::escape_port`]`(cur, dst)`.
    fn route(&self, routing: RoutingKind, cur: usize, dst: usize) -> PortSet;

    /// The port the deadlock-free escape path takes from `cur` toward
    /// `dst` (`None` when `cur == dst`). The escape VC of each message
    /// class is allocatable only on this port, and the per-fabric
    /// escape channel dependence graph must be acyclic — the invariant
    /// the auditor checks generically.
    fn escape_port(&self, cur: usize, dst: usize) -> Option<usize>;

    /// `true` if a flit that arrives over a network link on the escape
    /// VC must stay on the escape path (port *and* VC) until ejection.
    /// Ring-like fabrics use this to keep adaptive wrap detours from
    /// introducing indirect dependencies between escape channels.
    fn captures_escape(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------- mesh

/// The 2D mesh, re-expressed behind the trait. Route compute and the
/// escape port delegate to the original [`crate::routing`] functions,
/// and [`Mesh::links`] enumerates links in exactly the order the old
/// mesh builder did — the refactor is behavior-preserving down to link
/// IDs and the golden flit trace.
#[derive(Debug, Clone, Copy)]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Topology for Mesh {
    fn kind(&self) -> TopologyKind {
        TopologyKind::Mesh
    }
    fn width(&self) -> u16 {
        self.width
    }
    fn height(&self) -> u16 {
        self.height
    }

    fn links(&self) -> Vec<TopoLink> {
        let mut out = Vec::new();
        for i in 0..self.num_nodes() {
            let c = self.node_coord(i);
            for dir in equinox_phys::Direction::ALL {
                if let Some(nc) = c.step(dir, self.width, self.height) {
                    out.push(TopoLink {
                        from: i,
                        from_port: dir.index(),
                        to: self.node_index(nc),
                        to_port: dir.opposite().index(),
                    });
                }
            }
        }
        out
    }

    fn route(&self, routing: RoutingKind, cur: usize, dst: usize) -> PortSet {
        let mut set = PortSet::new();
        for &d in candidate_set(routing, self.node_coord(cur), self.node_coord(dst)).as_slice() {
            set.push(d.index());
        }
        set
    }

    fn escape_port(&self, cur: usize, dst: usize) -> Option<usize> {
        dor_direction(self.node_coord(cur), self.node_coord(dst)).map(|d| d.index())
    }
}

// ---------------------------------------------------------------- ring

/// Ring port facing the previous node in ring order.
const PORT_PREV: usize = 0;
/// Ring port facing the next node in ring order.
const PORT_NEXT: usize = 1;

/// One bidirectional ring over all `width × height` nodes in
/// boustrophedon (snake) order, so consecutive ring neighbours are
/// physically adjacent on the grid. Port [`PORT_PREV`] faces the
/// previous node, [`PORT_NEXT`] the next; ports 2 and 3 stay dead.
#[derive(Debug, Clone, Copy)]
pub struct Ring {
    width: u16,
    height: u16,
}

impl Ring {
    /// # Panics
    ///
    /// Panics with fewer than two nodes.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(
            width as usize * height as usize >= 2,
            "a ring needs at least two nodes"
        );
        Ring { width, height }
    }

    /// Snake position of node index `i`: even rows run left-to-right,
    /// odd rows right-to-left.
    fn pos(&self, i: usize) -> usize {
        let w = self.width as usize;
        let (x, y) = (i % w, i / w);
        y * w + if y % 2 == 0 { x } else { w - 1 - x }
    }

    /// Node index at snake position `p`.
    fn at(&self, p: usize) -> usize {
        let w = self.width as usize;
        let (q, y) = (p % w, p / w);
        y * w + if y % 2 == 0 { q } else { w - 1 - q }
    }
}

impl Topology for Ring {
    fn kind(&self) -> TopologyKind {
        TopologyKind::Ring
    }
    fn width(&self) -> u16 {
        self.width
    }
    fn height(&self) -> u16 {
        self.height
    }

    fn links(&self) -> Vec<TopoLink> {
        let n = self.num_nodes();
        let mut out = Vec::new();
        for p in 0..n {
            let (a, b) = (self.at(p), self.at((p + 1) % n));
            out.push(TopoLink { from: a, from_port: PORT_NEXT, to: b, to_port: PORT_PREV });
            out.push(TopoLink { from: b, from_port: PORT_PREV, to: a, to_port: PORT_NEXT });
        }
        out
    }

    fn route(&self, routing: RoutingKind, cur: usize, dst: usize) -> PortSet {
        let n = self.num_nodes();
        let (sc, sd) = (self.pos(cur), self.pos(dst));
        let escape = if sd > sc { PORT_NEXT } else { PORT_PREV };
        let mut set = PortSet::new();
        if routing == RoutingKind::Xy {
            // Deterministic routing degenerates to the escape path.
            set.push(escape);
            return set;
        }
        let fwd = (sd + n - sc) % n;
        let bwd = n - fwd;
        // Minimal direction first (wrap links are fair game on adaptive
        // VCs), then the linear escape direction.
        set.push(if fwd <= bwd { PORT_NEXT } else { PORT_PREV });
        set.push(escape);
        set
    }

    fn escape_port(&self, cur: usize, dst: usize) -> Option<usize> {
        if cur == dst {
            return None;
        }
        Some(if self.pos(dst) > self.pos(cur) {
            PORT_NEXT
        } else {
            PORT_PREV
        })
    }

    fn captures_escape(&self) -> bool {
        true
    }
}

// ----------------------------------------------------- hierarchical ring

/// Hub port facing the previous row's hub on the global ring.
const PORT_GLOBAL_PREV: usize = 2;
/// Hub port facing the next row's hub on the global ring.
const PORT_GLOBAL_NEXT: usize = 3;

/// Rows as local bidirectional rings (ports [`PORT_PREV`]/[`PORT_NEXT`]
/// along x with wrap), bridged by one global bidirectional ring over
/// the column-0 hubs (ports [`PORT_GLOBAL_PREV`]/[`PORT_GLOBAL_NEXT`]
/// along y with wrap). Traffic between rows transfers at the hubs.
#[derive(Debug, Clone, Copy)]
pub struct HierRing {
    width: u16,
    height: u16,
}

impl HierRing {
    /// # Panics
    ///
    /// Panics unless both dimensions are at least two (each row must be
    /// a real ring and there must be a global ring to bridge them).
    pub fn new(width: u16, height: u16) -> Self {
        assert!(
            width >= 2 && height >= 2,
            "a hierarchical ring needs width >= 2 and height >= 2"
        );
        HierRing { width, height }
    }

    fn xy(&self, i: usize) -> (usize, usize) {
        let w = self.width as usize;
        (i % w, i / w)
    }
}

impl Topology for HierRing {
    fn kind(&self) -> TopologyKind {
        TopologyKind::HierRing
    }
    fn width(&self) -> u16 {
        self.width
    }
    fn height(&self) -> u16 {
        self.height
    }

    fn links(&self) -> Vec<TopoLink> {
        let (w, h) = (self.width as usize, self.height as usize);
        let mut out = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let (a, b) = (y * w + x, y * w + (x + 1) % w);
                out.push(TopoLink { from: a, from_port: PORT_NEXT, to: b, to_port: PORT_PREV });
                out.push(TopoLink { from: b, from_port: PORT_PREV, to: a, to_port: PORT_NEXT });
            }
        }
        for y in 0..h {
            let (a, b) = (y * w, ((y + 1) % h) * w);
            out.push(TopoLink {
                from: a,
                from_port: PORT_GLOBAL_NEXT,
                to: b,
                to_port: PORT_GLOBAL_PREV,
            });
            out.push(TopoLink {
                from: b,
                from_port: PORT_GLOBAL_PREV,
                to: a,
                to_port: PORT_GLOBAL_NEXT,
            });
        }
        out
    }

    fn route(&self, routing: RoutingKind, cur: usize, dst: usize) -> PortSet {
        let escape = self.escape_port(cur, dst).expect("route requires cur != dst");
        let mut set = PortSet::new();
        if routing == RoutingKind::Xy {
            set.push(escape);
            return set;
        }
        let (w, h) = (self.width as usize, self.height as usize);
        let ((cx, cy), (dx, dy)) = (self.xy(cur), self.xy(dst));
        // Minimal next hop within the current ring phase (wrap allowed),
        // then the wrap-free escape direction.
        let minimal = if cy == dy {
            let fwd = (dx + w - cx) % w;
            if fwd <= w - fwd { PORT_NEXT } else { PORT_PREV }
        } else if cx != 0 {
            // Reach the hub of this row first.
            let fwd = (w - cx) % w;
            if fwd < cx { PORT_NEXT } else { PORT_PREV }
        } else {
            let fwd = (dy + h - cy) % h;
            if fwd <= h - fwd { PORT_GLOBAL_NEXT } else { PORT_GLOBAL_PREV }
        };
        set.push(minimal);
        set.push(escape);
        set
    }

    fn escape_port(&self, cur: usize, dst: usize) -> Option<usize> {
        if cur == dst {
            return None;
        }
        let ((cx, cy), (dx, dy)) = (self.xy(cur), self.xy(dst));
        Some(if cy == dy {
            // Linear within the row (never the row wrap edge).
            if dx > cx { PORT_NEXT } else { PORT_PREV }
        } else if cx != 0 {
            // Linear toward the hub at x = 0.
            PORT_PREV
        } else {
            // Linear along the global ring (never the column wrap edge).
            if dy > cy { PORT_GLOBAL_NEXT } else { PORT_GLOBAL_PREV }
        })
    }

    fn captures_escape(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::PORT_LOCAL;

    fn check_link_graph(t: &dyn Topology) {
        let links = t.links();
        // Every input port is fed by at most one link, every output
        // port drives at most one, and endpoints are in range.
        let n = t.num_nodes();
        let mut in_used = vec![[false; 4]; n];
        let mut out_used = vec![[false; 4]; n];
        for l in &links {
            assert!(l.from < n && l.to < n, "{l:?} endpoint out of range");
            assert!(l.from_port < PORT_LOCAL && l.to_port < PORT_LOCAL);
            assert!(!out_used[l.from][l.from_port], "double-driven output {l:?}");
            assert!(!in_used[l.to][l.to_port], "double-fed input {l:?}");
            out_used[l.from][l.from_port] = true;
            in_used[l.to][l.to_port] = true;
        }
        // Routing only ever returns wired ports, includes the escape
        // port, and the escape path reaches the destination (bounded by
        // the node count per phase ordering argument — 3n is generous).
        for (cur, outs) in out_used.iter().enumerate() {
            for dst in 0..n {
                if cur == dst {
                    assert_eq!(t.escape_port(cur, dst), None);
                    continue;
                }
                let esc = t.escape_port(cur, dst).expect("escape port exists");
                for routing in [RoutingKind::Xy, RoutingKind::MinimalAdaptive] {
                    let set = t.route(routing, cur, dst);
                    assert!(!set.as_slice().is_empty(), "no route {cur}->{dst}");
                    assert!(
                        set.as_slice().contains(&(esc as u8)),
                        "escape port missing from candidates {cur}->{dst}"
                    );
                    for &p in set.as_slice() {
                        assert!(
                            outs[p as usize],
                            "unwired candidate port {p} at {cur}->{dst}"
                        );
                    }
                }
                // Walk the escape path to the destination.
                let (mut at, mut hops) = (cur, 0usize);
                while at != dst {
                    let p = t.escape_port(at, dst).expect("progress");
                    let l = links
                        .iter()
                        .find(|l| l.from == at && l.from_port == p)
                        .expect("escape port wired");
                    at = l.to;
                    hops += 1;
                    assert!(hops <= 3 * n, "escape path loops {cur}->{dst}");
                }
            }
        }
    }

    #[test]
    fn mesh_link_graph_and_routes_are_sound() {
        check_link_graph(&Mesh { width: 4, height: 3 });
    }

    #[test]
    fn ring_link_graph_and_routes_are_sound() {
        check_link_graph(&Ring::new(4, 4));
        check_link_graph(&Ring::new(5, 3));
    }

    #[test]
    fn hier_ring_link_graph_and_routes_are_sound() {
        check_link_graph(&HierRing::new(4, 4));
        check_link_graph(&HierRing::new(5, 3));
    }

    #[test]
    fn mesh_route_matches_the_legacy_routing_functions() {
        // The trait is a re-expression, not a re-implementation: for
        // every pair, candidates and escape port equal the historical
        // candidate_set / dor_direction results, in order.
        let m = Mesh { width: 5, height: 4 };
        for cur in 0..m.num_nodes() {
            for dst in 0..m.num_nodes() {
                if cur == dst {
                    continue;
                }
                let (c, d) = (m.node_coord(cur), m.node_coord(dst));
                for routing in [RoutingKind::Xy, RoutingKind::MinimalAdaptive] {
                    let got: Vec<u8> = m.route(routing, cur, dst).as_slice().to_vec();
                    let want: Vec<u8> = candidate_set(routing, c, d)
                        .as_slice()
                        .iter()
                        .map(|dir| dir.index() as u8)
                        .collect();
                    assert_eq!(got, want, "{cur}->{dst} {routing:?}");
                }
                assert_eq!(
                    m.escape_port(cur, dst),
                    dor_direction(c, d).map(|dir| dir.index())
                );
            }
        }
    }

    #[test]
    fn ring_snake_order_is_a_permutation_of_adjacent_nodes() {
        let r = Ring::new(4, 4);
        let n = r.num_nodes();
        for p in 0..n {
            assert_eq!(r.pos(r.at(p)), p, "pos/at must be inverses");
            // Consecutive ring positions other than the wrap edge are
            // grid-adjacent (the point of the snake order).
            if p + 1 < n {
                let (a, b) = (r.node_coord(r.at(p)), r.node_coord(r.at(p + 1)));
                assert_eq!(a.manhattan(b), 1, "snake neighbours {a:?} {b:?}");
            }
        }
    }

    #[test]
    fn ring_escape_never_crosses_the_wrap_edge() {
        let r = Ring::new(4, 4);
        let n = r.num_nodes();
        let (first, last) = (r.at(0), r.at(n - 1));
        // From the linear end toward the linear start the escape path
        // must go backward through the whole line, not over the wrap.
        assert_eq!(r.escape_port(last, first), Some(PORT_PREV));
        assert_eq!(r.escape_port(first, last), Some(PORT_NEXT));
    }

    #[test]
    fn kind_names_round_trip() {
        for k in [TopologyKind::Mesh, TopologyKind::Ring, TopologyKind::HierRing] {
            assert_eq!(TopologyKind::parse(k.name()), Ok(k));
            assert_eq!(TopologyKind::from_tag(k.tag()), Some(k));
        }
        assert!(TopologyKind::parse("torus").is_err());
        assert_eq!(TopologyKind::from_tag(9), None);
    }
}
