#![warn(missing_docs)]
//! `equinox-noc` — a cycle-accurate network-on-chip simulator.
//!
//! This crate rebuilds, from scratch, the NoC substrate the EquiNox paper
//! (HPCA 2020) obtained from a heavily-modified BookSim 2.0: a flit-level,
//! cycle-based mesh simulator with virtual-channel routers, credit-based
//! flow control, separable input-first switch allocation, and minimal
//! adaptive routing with an XY escape channel.
//!
//! The simulator is deliberately *mechanism-complete* rather than
//! RTL-exact: every architectural feature the seven evaluated schemes rely
//! on is modelled —
//!
//! * single or separate physical networks with per-class VC partitions and
//!   optional VC monopolization (VC-Mono),
//! * extra injection/ejection ports on chosen routers (MultiPort and the
//!   EIR input port of EquiNox),
//! * auxiliary interposer links feeding remote routers (EquiNox's CB→EIR
//!   links, tagged so energy/µbump accounting can separate them),
//! * concentrated meshes (the Interposer-CMesh baseline),
//! * narrow subnets running at a different clock (DA2Mesh).
//!
//! # Architecture
//!
//! A [`network::Network`] owns a grid of [`router::Router`]s connected by
//! `Link`s. Network interfaces (built in `equinox-core`) inject
//! flits through [`network::InjectorId`] handles — each handle is an extra
//! input port on some router, fed by a link with its own latency and
//! credit loop, which is exactly how the EquiNox NI's five single-packet
//! buffers attach to the local router and the four EIRs.
//!
//! Every cycle proceeds in two phases: arrivals (flits and credits land in
//! input buffers) and router stages (route computation → VC allocation →
//! switch allocation → traversal). A flit advances at most one hop per
//! cycle; links add configurable latency on top.
//!
//! # Example
//!
//! ```
//! use equinox_noc::config::NocConfig;
//! use equinox_noc::flit::{MessageClass, PacketDesc};
//! use equinox_noc::network::Network;
//! use equinox_phys::Coord;
//!
//! let cfg = NocConfig::mesh_8x8();
//! let mut net = Network::mesh(cfg);
//! let injector = net.local_injector(Coord::new(0, 0));
//! let pkt = PacketDesc::new(0, Coord::new(0, 0), Coord::new(3, 3), MessageClass::Reply, 5);
//!
//! // Feed the packet one flit per cycle, then run until it pops out.
//! let mut flits = pkt.flits(net.width()).into_iter().peekable();
//! let mut got = 0;
//! for _ in 0..200 {
//!     if let Some(&f) = flits.peek() {
//!         if net.try_inject_flit(injector, f) {
//!             flits.next();
//!         }
//!     }
//!     net.step();
//!     while net.pop_ejected_node(Coord::new(3, 3)).is_some() {
//!         got += 1;
//!     }
//! }
//! assert_eq!(got, 5, "all five flits of the packet must arrive");
//! ```

pub mod audit;
pub mod config;
pub mod flit;
pub mod link;
pub mod network;
pub mod router;
pub mod routing;
pub mod stats;
pub mod topology;
pub mod trace;

pub use audit::{audit_from_env, AuditConfig, DeadlockReport, Violation};
pub use config::{activity_gate_from_env, NocConfig, RoutingKind, VcPartition};
pub use flit::{Flit, MessageClass, PacketDesc, PacketId};
pub use link::LinkKind;
pub use network::{InjectorId, Network};
pub use stats::NetStats;
pub use topology::{PortSet, TopoLink, Topology, TopologyKind};
pub use trace::{Trace, TraceEvent, TraceKind};
