//! Route computation: XY dimension-order and minimal adaptive routing.
//!
//! Minimal adaptive routing (Table 1) lets a packet take any *productive*
//! direction — one that reduces its distance to the destination — and
//! picks among them greedily by downstream credit availability. Deadlock
//! freedom follows Duato's construction: VC 0 of each class partition is
//! an *escape* channel restricted to the XY dimension-order path, and VC
//! allocation always falls back to it, so the escape sub-network's acyclic
//! channel-dependence graph guarantees progress (§4.4 argues EquiNox's
//! extra injection ports leave this property intact, which our tests
//! verify by draining saturating workloads).

use crate::config::RoutingKind;
use equinox_phys::{Coord, Direction};

/// The XY dimension-order direction from `cur` towards `dst`: exhaust X
/// first, then Y. Returns `None` when already at the destination.
///
/// ```
/// # use equinox_noc::routing::dor_direction;
/// # use equinox_phys::{Coord, Direction};
/// assert_eq!(dor_direction(Coord::new(0, 0), Coord::new(2, 2)), Some(Direction::East));
/// assert_eq!(dor_direction(Coord::new(2, 0), Coord::new(2, 2)), Some(Direction::South));
/// assert_eq!(dor_direction(Coord::new(2, 2), Coord::new(2, 2)), None);
/// ```
pub fn dor_direction(cur: Coord, dst: Coord) -> Option<Direction> {
    if cur.x < dst.x {
        Some(Direction::East)
    } else if cur.x > dst.x {
        Some(Direction::West)
    } else if cur.y < dst.y {
        Some(Direction::South)
    } else if cur.y > dst.y {
        Some(Direction::North)
    } else {
        None
    }
}

/// Up to two directions, inline, so per-flit route computation never
/// touches the heap. Two slots suffice for every registered fabric — a
/// mesh has at most two productive directions, and the ring fabrics
/// offer at most a minimal and an escape port per hop (the port-index
/// analogue is [`crate::topology::PortSet`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirSet {
    dirs: [Direction; 2],
    len: u8,
}

impl Default for DirSet {
    fn default() -> Self {
        DirSet {
            dirs: [Direction::North; 2], // placeholder slots, len = 0
            len: 0,
        }
    }
}

impl DirSet {
    #[inline]
    fn push(&mut self, d: Direction) {
        self.dirs[self.len as usize] = d;
        self.len += 1;
    }

    /// The directions, in preference order.
    #[inline]
    pub fn as_slice(&self) -> &[Direction] {
        &self.dirs[..self.len as usize]
    }

    /// True when no direction is productive (already at destination).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// All productive (distance-reducing) directions from `cur` to `dst`.
/// At most two on a mesh; empty when already there.
///
/// ```
/// # use equinox_noc::routing::productive_directions;
/// # use equinox_phys::{Coord, Direction};
/// let dirs = productive_directions(Coord::new(1, 1), Coord::new(3, 0));
/// assert_eq!(dirs, vec![Direction::East, Direction::North]);
/// ```
pub fn productive_directions(cur: Coord, dst: Coord) -> Vec<Direction> {
    productive_set(cur, dst).as_slice().to_vec()
}

/// Allocation-free [`productive_directions`].
pub fn productive_set(cur: Coord, dst: Coord) -> DirSet {
    let mut dirs = DirSet::default();
    if cur.x < dst.x {
        dirs.push(Direction::East);
    } else if cur.x > dst.x {
        dirs.push(Direction::West);
    }
    if cur.y < dst.y {
        dirs.push(Direction::South);
    } else if cur.y > dst.y {
        dirs.push(Direction::North);
    }
    dirs
}

/// Candidate output directions under `kind`, in preference order (the
/// router reorders adaptive candidates by credit count at allocation
/// time). The DOR direction is always included so the escape VC has a
/// legal port.
pub fn candidates(kind: RoutingKind, cur: Coord, dst: Coord) -> Vec<Direction> {
    candidate_set(kind, cur, dst).as_slice().to_vec()
}

/// Allocation-free [`candidates`] — the form the router hot path uses.
pub fn candidate_set(kind: RoutingKind, cur: Coord, dst: Coord) -> DirSet {
    match kind {
        RoutingKind::Xy => {
            let mut dirs = DirSet::default();
            if let Some(d) = dor_direction(cur, dst) {
                dirs.push(d);
            }
            dirs
        }
        RoutingKind::MinimalAdaptive => productive_set(cur, dst),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dor_is_x_first() {
        assert_eq!(
            dor_direction(Coord::new(0, 5), Coord::new(3, 1)),
            Some(Direction::East)
        );
        assert_eq!(
            dor_direction(Coord::new(3, 5), Coord::new(3, 1)),
            Some(Direction::North)
        );
    }

    #[test]
    fn productive_set_is_minimal() {
        // Every productive direction must strictly reduce distance.
        for (cx, cy, dx, dy) in [(0u16, 0u16, 7u16, 7u16), (4, 4, 0, 0), (3, 3, 3, 0), (2, 5, 2, 5)] {
            let cur = Coord::new(cx, cy);
            let dst = Coord::new(dx, dy);
            for d in productive_directions(cur, dst) {
                let next = cur.step(d, 8, 8).expect("productive stays on grid");
                assert!(next.manhattan(dst) < cur.manhattan(dst));
            }
        }
    }

    #[test]
    fn dor_contained_in_productive() {
        for (cx, cy, dx, dy) in [(0u16, 0u16, 7u16, 7u16), (6, 1, 2, 5), (3, 3, 3, 7)] {
            let cur = Coord::new(cx, cy);
            let dst = Coord::new(dx, dy);
            if let Some(d) = dor_direction(cur, dst) {
                assert!(productive_directions(cur, dst).contains(&d));
            }
        }
    }

    #[test]
    fn at_destination_no_candidates() {
        let c = Coord::new(4, 4);
        assert!(productive_directions(c, c).is_empty());
        assert!(candidates(RoutingKind::MinimalAdaptive, c, c).is_empty());
        assert!(candidates(RoutingKind::Xy, c, c).is_empty());
    }

    #[test]
    fn xy_gives_single_candidate() {
        let c = candidates(RoutingKind::Xy, Coord::new(0, 0), Coord::new(5, 5));
        assert_eq!(c, vec![Direction::East]);
    }
}
