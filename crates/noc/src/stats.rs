//! Event counters collected by the simulator.
//!
//! The counters are the raw material of two downstream consumers:
//!
//! * the DSENT-style energy model in `equinox-power`, which charges an
//!   energy per buffer write/read, crossbar traversal, allocation and link
//!   flit (split by link class so interposer wires can be costed
//!   differently), plus leakage per cycle;
//! * the placement heat maps of Figure 4, built from the per-router
//!   `router_flits` / `router_cycles` accumulators (average cycles a flit
//!   spends in each router).

use crate::link::LinkKind;
use crate::topology::TopologyKind;

/// Aggregate event counters for one physical network.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetStats {
    /// Shape of the network the counters came from, as
    /// `(topology, width, height)`. Build-derived (stamped by the network
    /// constructor, `None` for hand-built stats): it is neither
    /// serialized in snapshots nor emitted in artifacts, but
    /// [`NetStats::merge`] uses it to reject mixing counters from
    /// different fabrics, not just different router counts.
    pub shape: Option<(TopologyKind, u16, u16)>,
    /// Simulated cycles (of this network's clock).
    pub cycles: u64,
    /// Flits written into input-VC buffers.
    pub buffer_writes: u64,
    /// Flits read out of input-VC buffers (= switch-allocation grants).
    pub buffer_reads: u64,
    /// Flits that crossed the switch.
    pub xbar_traversals: u64,
    /// Successful output-VC allocations (one per packet per hop).
    pub vc_allocs: u64,
    /// Flits carried by regular mesh links.
    pub link_flits_mesh: u64,
    /// Flits carried by interposer (RDL) links.
    pub link_flits_interposer: u64,
    /// Flits carried by NI-to-router local connections.
    pub link_flits_ni: u64,
    /// Flits ejected to network interfaces.
    pub ejected_flits: u64,
    /// Flits injected by network interfaces.
    pub injected_flits: u64,
    /// Per-router count of flits that traversed the router.
    pub router_flits: Vec<u64>,
    /// Per-router total cycles those flits spent inside the router
    /// (buffer entry to switch traversal, inclusive).
    pub router_cycles: Vec<u64>,
}

impl equinox_snap::Snap for NetStats {
    fn snap(&self, e: &mut equinox_snap::Enc) {
        e.put_u64(self.cycles);
        e.put_u64(self.buffer_writes);
        e.put_u64(self.buffer_reads);
        e.put_u64(self.xbar_traversals);
        e.put_u64(self.vc_allocs);
        e.put_u64(self.link_flits_mesh);
        e.put_u64(self.link_flits_interposer);
        e.put_u64(self.link_flits_ni);
        e.put_u64(self.ejected_flits);
        e.put_u64(self.injected_flits);
        self.router_flits.snap(e);
        self.router_cycles.snap(e);
    }
    fn restore(d: &mut equinox_snap::Dec) -> Result<Self, equinox_snap::SnapError> {
        let s = NetStats {
            // Build-derived; the restoring network re-stamps its own.
            shape: None,
            cycles: d.u64()?,
            buffer_writes: d.u64()?,
            buffer_reads: d.u64()?,
            xbar_traversals: d.u64()?,
            vc_allocs: d.u64()?,
            link_flits_mesh: d.u64()?,
            link_flits_interposer: d.u64()?,
            link_flits_ni: d.u64()?,
            ejected_flits: d.u64()?,
            injected_flits: d.u64()?,
            router_flits: Vec::restore(d)?,
            router_cycles: Vec::restore(d)?,
        };
        if s.router_flits.len() != s.router_cycles.len() {
            return Err(equinox_snap::SnapError::BadValue("router stats lengths"));
        }
        Ok(s)
    }
}

impl NetStats {
    /// Creates zeroed stats for `routers` routers.
    pub fn new(routers: usize) -> Self {
        NetStats {
            router_flits: vec![0; routers],
            router_cycles: vec![0; routers],
            ..Default::default()
        }
    }

    /// Records a flit crossing a link of the given kind.
    pub(crate) fn count_link_flit(&mut self, kind: LinkKind) {
        match kind {
            LinkKind::Mesh => self.link_flits_mesh += 1,
            LinkKind::Interposer => self.link_flits_interposer += 1,
            LinkKind::NiLocal => self.link_flits_ni += 1,
        }
    }

    /// Average number of cycles a flit spends in router `r`, the quantity
    /// plotted in the paper's Figure 4 heat maps. Routers that never saw a
    /// flit report 0.
    pub fn avg_router_cycles(&self, r: usize) -> f64 {
        if self.router_flits[r] == 0 {
            0.0
        } else {
            self.router_cycles[r] as f64 / self.router_flits[r] as f64
        }
    }

    /// The heat map over all routers (row-major).
    pub fn heat_map(&self) -> Vec<f64> {
        (0..self.router_flits.len())
            .map(|r| self.avg_router_cycles(r))
            .collect()
    }

    /// Population variance of the heat map — the paper's Figure 4 reports
    /// this per placement (N-Queen: 0.54 vs Top: 16+).
    pub fn heat_variance(&self) -> f64 {
        let heat = self.heat_map();
        if heat.is_empty() {
            return 0.0;
        }
        let mean = heat.iter().sum::<f64>() / heat.len() as f64;
        heat.iter().map(|h| (h - mean).powi(2)).sum::<f64>() / heat.len() as f64
    }

    /// Total flits over all link classes.
    pub fn total_link_flits(&self) -> u64 {
        self.link_flits_mesh + self.link_flits_interposer + self.link_flits_ni
    }

    /// Merges another stats block into this one (used when a scheme runs
    /// several physical networks, e.g. DA2Mesh's eight reply subnets).
    ///
    /// # Panics
    ///
    /// Panics on a topology-shape or router count mismatch: merging stats
    /// from differently shaped networks would silently drop the
    /// per-router accumulators and corrupt the Figure 4 heat maps, so it
    /// is rejected loudly instead. The shape check only fires when both
    /// sides carry a stamp (hand-built stats have none).
    pub fn merge(&mut self, other: &NetStats) {
        if let (Some(a), Some(b)) = (self.shape, other.shape) {
            assert_eq!(
                a, b,
                "topology shape mismatch in NetStats::merge: per-router counters \
                 only merge between networks of the same fabric and dimensions"
            );
        }
        self.cycles = self.cycles.max(other.cycles);
        self.buffer_writes += other.buffer_writes;
        self.buffer_reads += other.buffer_reads;
        self.xbar_traversals += other.xbar_traversals;
        self.vc_allocs += other.vc_allocs;
        self.link_flits_mesh += other.link_flits_mesh;
        self.link_flits_interposer += other.link_flits_interposer;
        self.link_flits_ni += other.link_flits_ni;
        self.ejected_flits += other.ejected_flits;
        self.injected_flits += other.injected_flits;
        assert_eq!(
            self.router_flits.len(),
            other.router_flits.len(),
            "router count mismatch in NetStats::merge ({} vs {}): \
             per-router counters only merge between equally sized networks",
            self.router_flits.len(),
            other.router_flits.len()
        );
        for i in 0..self.router_flits.len() {
            self.router_flits[i] += other.router_flits[i];
            self.router_cycles[i] += other.router_cycles[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heat_math() {
        let mut s = NetStats::new(2);
        s.router_flits = vec![10, 0];
        s.router_cycles = vec![30, 0];
        assert_eq!(s.avg_router_cycles(0), 3.0);
        assert_eq!(s.avg_router_cycles(1), 0.0);
        assert_eq!(s.heat_map(), vec![3.0, 0.0]);
        // mean 1.5, variance ((1.5)^2 + (1.5)^2)/2 = 2.25
        assert!((s.heat_variance() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn link_kind_counting() {
        let mut s = NetStats::new(1);
        s.count_link_flit(LinkKind::Mesh);
        s.count_link_flit(LinkKind::Interposer);
        s.count_link_flit(LinkKind::Interposer);
        s.count_link_flit(LinkKind::NiLocal);
        assert_eq!(s.link_flits_mesh, 1);
        assert_eq!(s.link_flits_interposer, 2);
        assert_eq!(s.link_flits_ni, 1);
        assert_eq!(s.total_link_flits(), 4);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = NetStats::new(2);
        a.buffer_writes = 5;
        a.cycles = 100;
        a.router_flits = vec![1, 2];
        a.router_cycles = vec![3, 4];
        let mut b = NetStats::new(2);
        b.buffer_writes = 7;
        b.cycles = 50;
        b.router_flits = vec![10, 20];
        b.router_cycles = vec![30, 40];
        a.merge(&b);
        assert_eq!(a.buffer_writes, 12);
        assert_eq!(a.cycles, 100, "cycles take the max, not the sum");
        assert_eq!(a.router_flits, vec![11, 22]);
        assert_eq!(a.router_cycles, vec![33, 44]);
    }

    #[test]
    #[should_panic(expected = "router count mismatch")]
    fn merge_rejects_mismatched_router_counts() {
        let mut a = NetStats::new(2);
        let b = NetStats::new(3);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "topology shape mismatch")]
    fn merge_rejects_mismatched_topologies() {
        // Same router count, different fabric: the shape stamp catches
        // what the router-count check cannot.
        let mut a = NetStats::new(16);
        a.shape = Some((TopologyKind::Mesh, 4, 4));
        let mut b = NetStats::new(16);
        b.shape = Some((TopologyKind::Ring, 4, 4));
        a.merge(&b);
    }

    #[test]
    fn merge_allows_unstamped_stats() {
        let mut a = NetStats::new(2);
        a.shape = Some((TopologyKind::Mesh, 2, 1));
        let b = NetStats::new(2);
        a.merge(&b); // other side unstamped: only the count check applies
    }

    #[test]
    fn empty_variance_is_zero() {
        let s = NetStats::new(0);
        assert_eq!(s.heat_variance(), 0.0);
    }
}
