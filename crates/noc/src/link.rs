//! Links: pipelined flit channels with a reverse credit channel.
//!
//! Every input port of every router is fed by exactly one link. Mesh links
//! connect neighbouring routers; NI links connect a network interface's
//! injection buffer to a router input port (the local port, or — in
//! EquiNox — an EIR's extra port, in which case the link physically lives
//! in the interposer's RDL and is tagged [`LinkKind::Interposer`] so the
//! energy and µbump models can account for it separately).

use crate::flit::Flit;
use std::collections::VecDeque;

/// Physical class of a link, for energy/area accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Regular on-die link between adjacent routers.
    Mesh,
    /// Link routed in the interposer RDLs (EquiNox CB→EIR links,
    /// Interposer-CMesh links).
    Interposer,
    /// Short NI→router connection inside a tile.
    NiLocal,
}

/// Where a link's returned credits go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CreditDst {
    /// Credits replenish an upstream router's output-VC counters.
    RouterOutput { router: usize, port: usize },
    /// Credits replenish an injector's NI-side counters.
    Injector { injector: usize },
}

/// A unidirectional pipelined channel carrying flits downstream and
/// credits upstream, each with the link's latency.
#[derive(Debug)]
pub(crate) struct Link {
    pub kind: LinkKind,
    pub latency: u32,
    /// Downstream endpoint.
    pub to_router: usize,
    pub to_port: usize,
    /// Upstream credit endpoint.
    pub credit_dst: CreditDst,
    /// In-flight flits, as (arrival_cycle, flit), ordered by arrival.
    flits: VecDeque<(u64, Flit)>,
    /// In-flight credits, as (arrival_cycle, vc).
    credits: VecDeque<(u64, u8)>,
    /// Cumulative flits sent down this link (per-link utilization).
    pub flits_carried: u64,
}

impl Link {
    pub fn new(
        kind: LinkKind,
        latency: u32,
        to_router: usize,
        to_port: usize,
        credit_dst: CreditDst,
    ) -> Self {
        assert!(latency >= 1, "links need at least one cycle of latency");
        Link {
            kind,
            latency,
            to_router,
            to_port,
            credit_dst,
            flits: VecDeque::new(),
            credits: VecDeque::new(),
            flits_carried: 0,
        }
    }

    /// Sends a flit; it arrives downstream at `now + latency`.
    pub fn send_flit(&mut self, now: u64, flit: Flit) {
        debug_assert!(
            self.flits.back().is_none_or(|&(t, _)| t < now + self.latency as u64),
            "more than one flit per cycle on a link"
        );
        self.flits.push_back((now + self.latency as u64, flit));
        self.flits_carried += 1;
    }

    /// Sends a credit back upstream for `vc`; arrives at `now + latency`.
    pub fn send_credit(&mut self, now: u64, vc: u8) {
        self.credits.push_back((now + self.latency as u64, vc));
    }

    /// Pops the flit arriving at exactly `now`, if any.
    pub fn recv_flit(&mut self, now: u64) -> Option<Flit> {
        if self.flits.front().is_some_and(|&(t, _)| t <= now) {
            Some(self.flits.pop_front().expect("checked front").1)
        } else {
            None
        }
    }

    /// Pops all credits that have arrived by `now`.
    pub fn recv_credits(&mut self, now: u64, out: &mut Vec<u8>) {
        while self.credits.front().is_some_and(|&(t, _)| t <= now) {
            out.push(self.credits.pop_front().expect("checked front").1);
        }
    }

    /// Number of flits currently in flight (used by drain checks).
    pub fn in_flight(&self) -> usize {
        self.flits.len()
    }

    /// Number of credits currently in flight back upstream (used by the
    /// activity gate to keep a link on the credit worklist).
    pub fn credits_pending(&self) -> usize {
        self.credits.len()
    }

    /// Flits in flight destined for downstream input VC `vc` (audit).
    pub fn flits_in_flight_on_vc(&self, vc: u8) -> u32 {
        self.flits.iter().filter(|&&(_, f)| f.vc == vc).count() as u32
    }

    /// Credits in flight back upstream for VC `vc` (audit).
    pub fn credits_in_flight_for_vc(&self, vc: u8) -> u32 {
        self.credits.iter().filter(|&&(_, v)| v == vc).count() as u32
    }

    /// All in-flight flits, oldest first (audit).
    pub fn iter_flits(&self) -> impl Iterator<Item = &Flit> {
        self.flits.iter().map(|(_, f)| f)
    }

    /// Serializes the link's dynamic state (in-flight flits/credits and
    /// the carried counter); endpoints and latency are topology.
    pub fn snap_state(&self, e: &mut equinox_snap::Enc) {
        use equinox_snap::Snap;
        self.flits.snap(e);
        self.credits.snap(e);
        e.put_u64(self.flits_carried);
    }

    /// Restores state written by [`Link::snap_state`].
    pub fn restore_state(
        &mut self,
        d: &mut equinox_snap::Dec,
    ) -> Result<(), equinox_snap::SnapError> {
        use equinox_snap::Snap;
        self.flits = VecDeque::restore(d)?;
        self.credits = VecDeque::restore(d)?;
        self.flits_carried = d.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{MessageClass, PacketDesc};
    use equinox_phys::Coord;

    fn test_flit() -> Flit {
        PacketDesc::new(0, Coord::new(0, 0), Coord::new(1, 1), MessageClass::Reply, 1).flits(8)[0]
    }

    fn test_link(latency: u32) -> Link {
        Link::new(
            LinkKind::Mesh,
            latency,
            1,
            0,
            CreditDst::RouterOutput { router: 0, port: 1 },
        )
    }

    #[test]
    fn flit_arrives_after_latency() {
        let mut l = test_link(3);
        l.send_flit(10, test_flit());
        assert_eq!(l.recv_flit(11), None);
        assert_eq!(l.recv_flit(12), None);
        assert!(l.recv_flit(13).is_some());
        assert_eq!(l.recv_flit(13), None, "only one flit was sent");
    }

    #[test]
    fn credits_travel_independently() {
        let mut l = test_link(2);
        l.send_credit(5, 1);
        l.send_credit(6, 0);
        let mut got = Vec::new();
        l.recv_credits(6, &mut got);
        assert!(got.is_empty());
        l.recv_credits(7, &mut got);
        assert_eq!(got, vec![1]);
        got.clear();
        l.recv_credits(8, &mut got);
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn in_flight_counts() {
        let mut l = test_link(5);
        assert_eq!(l.in_flight(), 0);
        l.send_flit(0, test_flit());
        assert_eq!(l.in_flight(), 1);
        let _ = l.recv_flit(5);
        assert_eq!(l.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_latency_rejected() {
        let _ = test_link(0);
    }
}
