//! Fault-injection tests for the invariant auditor and watchdog.
//!
//! A clean network must pass the strictest audit silently; a seeded
//! fault (leaked credit, dropped flit) must be detected at the next
//! sweep; a wedged network must produce a structured deadlock report
//! within the watchdog window instead of hanging.

use equinox_noc::config::NocConfig;
use equinox_noc::flit::{Flit, MessageClass, PacketDesc};
use equinox_noc::network::Network;
use equinox_noc::{AuditConfig, Violation};
use equinox_phys::Coord;
use std::collections::VecDeque;

/// Streams `packets` 5-flit reply packets along each `(src, dst)` flow,
/// popping every node's ejection queue each cycle. Returns the number of
/// flits that arrived.
fn drive(net: &mut Network, flows: &[(Coord, Coord)], packets: usize, cycles: u64) -> u64 {
    let width = net.width();
    let mut id = 0u64;
    let mut queues: Vec<(equinox_noc::InjectorId, VecDeque<Flit>)> = flows
        .iter()
        .map(|&(src, dst)| {
            let inj = net.local_injector(src);
            let mut q = VecDeque::new();
            for _ in 0..packets {
                let desc = PacketDesc::new(id, src, dst, MessageClass::Reply, 5);
                id += 1;
                q.extend(desc.flits(width));
            }
            (inj, q)
        })
        .collect();
    let mut got = 0u64;
    for _ in 0..cycles {
        for (inj, q) in &mut queues {
            if let Some(&f) = q.front() {
                if net.try_inject_flit(*inj, f) {
                    q.pop_front();
                }
            }
        }
        net.step();
        for y in 0..net.height() {
            for x in 0..net.width() {
                while net.pop_ejected_node(Coord::new(x, y)).is_some() {
                    got += 1;
                }
            }
        }
    }
    got
}

fn crossing_flows() -> Vec<(Coord, Coord)> {
    vec![
        (Coord::new(0, 0), Coord::new(3, 3)),
        (Coord::new(3, 0), Coord::new(0, 3)),
        (Coord::new(0, 3), Coord::new(3, 0)),
        (Coord::new(1, 2), Coord::new(2, 1)),
    ]
}

#[test]
fn clean_traffic_passes_strict_audit() {
    let mut net = Network::mesh(NocConfig::mesh(4));
    // Per-cycle sweeps, panic on the first violation: a healthy network
    // must run this gauntlet silently.
    net.enable_audit(AuditConfig::strict());
    let got = drive(&mut net, &crossing_flows(), 6, 2_000);
    assert_eq!(got, 4 * 6 * 5, "all flits delivered under audit");
    assert!(net.audit_sweeps() >= 1_000, "sweeps actually ran");
    assert!(net.audit_violations().is_empty());
}

#[test]
fn auditor_detects_a_leaked_credit() {
    let mut net = Network::mesh(NocConfig::mesh(4));
    let cfg = AuditConfig {
        panic_on_violation: false,
        ..AuditConfig::strict()
    };
    net.enable_audit(cfg);
    assert!(
        net.fault_leak_credit(Coord::new(1, 1), 0),
        "fault hook found a credit to leak"
    );
    net.step();
    let vs = net.take_audit_violations();
    assert!(
        vs.iter()
            .any(|v| matches!(v, Violation::CreditConservation { .. })),
        "expected a credit-conservation violation, got {vs:?}"
    );
}

#[test]
fn auditor_detects_a_dropped_flit() {
    let mut net = Network::mesh(NocConfig::mesh(4));
    let cfg = AuditConfig {
        panic_on_violation: false,
        ..AuditConfig::strict()
    };
    net.enable_audit(cfg);
    // Single-cycle routers forward an uncontended flit the same step it
    // arrives, so between steps the buffers are empty. Flood one sink
    // without draining it: once its ejection queue fills, flits park in
    // the router buffers and stay there across the step boundary.
    let inj = net.local_injector(Coord::new(0, 0));
    let width = net.width();
    let mut flits: VecDeque<Flit> = VecDeque::new();
    for id in 0..8 {
        let desc = PacketDesc::new(id, Coord::new(0, 0), Coord::new(3, 3), MessageClass::Reply, 5);
        flits.extend(desc.flits(width));
    }
    let mut dropped = false;
    for _ in 0..200 {
        if let Some(&f) = flits.front() {
            if net.try_inject_flit(inj, f) {
                flits.pop_front();
            }
        }
        if net.buffered_flits() > 0 {
            'search: for y in 0..4 {
                for x in 0..4 {
                    if net.fault_drop_flit(Coord::new(x, y)) {
                        dropped = true;
                        break 'search;
                    }
                }
            }
        }
        net.step();
        if dropped {
            break;
        }
    }
    assert!(dropped, "traffic never reached a router buffer");
    let vs = net.take_audit_violations();
    assert!(
        vs.iter()
            .any(|v| matches!(v, Violation::FlitConservation { .. })),
        "expected a flit-conservation violation, got {vs:?}"
    );
}

#[test]
fn watchdog_diagnoses_a_wedged_network() {
    let mut net = Network::mesh(NocConfig::mesh(4));
    net.enable_audit(AuditConfig {
        check_interval: 64,
        watchdog_window: 200,
        panic_on_violation: false,
    });
    // Everyone floods node (0,0) and nobody ever drains its ejection
    // queue: the queue fills (cap 16), backpressure freezes the mesh,
    // and progress stops with work very much pending.
    let flows = [
        (Coord::new(3, 3), Coord::new(0, 0)),
        (Coord::new(0, 3), Coord::new(0, 0)),
        (Coord::new(3, 0), Coord::new(0, 0)),
        (Coord::new(1, 1), Coord::new(0, 0)),
    ];
    let width = net.width();
    let mut id = 0u64;
    let mut queues: Vec<(equinox_noc::InjectorId, VecDeque<Flit>)> = flows
        .iter()
        .map(|&(src, dst)| {
            let inj = net.local_injector(src);
            let mut q = VecDeque::new();
            for _ in 0..4 {
                let desc = PacketDesc::new(id, src, dst, MessageClass::Reply, 5);
                id += 1;
                q.extend(desc.flits(width));
            }
            (inj, q)
        })
        .collect();
    for _ in 0..1_000 {
        for (inj, q) in &mut queues {
            if let Some(&f) = q.front() {
                if net.try_inject_flit(*inj, f) {
                    q.pop_front();
                }
            }
        }
        net.step();
        // No pops: the sink is wedged.
    }
    let vs = net.take_audit_violations();
    let report = vs
        .iter()
        .find_map(|v| match v {
            Violation::Deadlock(r) => Some(r),
            _ => None,
        })
        .expect("watchdog fired within the window");
    assert!(report.stalled_for >= 200);
    assert!(report.eject_flits > 0, "the full ejection queue shows up");
    assert!(
        !report.stuck.is_empty(),
        "head-of-line flits are named: {report:?}"
    );
    assert!(
        report.stuck.iter().all(|s| s.dst == Coord::new(0, 0)),
        "every stuck flit heads for the wedged sink"
    );
}

#[test]
#[should_panic(expected = "credit conservation")]
fn audit_panics_on_violation_by_default() {
    let mut net = Network::mesh(NocConfig::mesh(4));
    net.enable_audit(AuditConfig::strict());
    assert!(net.fault_leak_credit(Coord::new(2, 2), 1));
    net.step();
}
