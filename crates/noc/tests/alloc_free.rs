//! Steady-state allocation check for the simulation hot loop.
//!
//! A counting global allocator wraps the system allocator; after a
//! warm-up period (during which scratch buffers, link queues and VC
//! buffers reach their steady-state capacities), driving sustained
//! traffic through `Network::step()` must perform **zero** heap
//! allocations. This is the enforcement half of the PR-1 tentpole; the
//! behavioral half is the golden-trace test.
//!
//! This file deliberately contains a single test: the counter is
//! process-global, and a concurrently running test would pollute it.

use equinox_exec::Rng;
use equinox_noc::config::NocConfig;
use equinox_noc::flit::{Flit, MessageClass, PacketDesc};
use equinox_noc::network::Network;
use equinox_phys::Coord;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Pre-generated flit schedule: every node keeps a queue of packets to
/// stream toward random destinations (pop-only during measurement).
fn schedule(n: u16, packets_per_node: usize, seed: u64) -> Vec<(Coord, Vec<Flit>)> {
    let mut rng = Rng::seed_from_u64(seed);
    let nodes = n as usize * n as usize;
    let mut pkt_id = 0u64;
    (0..nodes)
        .map(|i| {
            let src = Coord::from_index(i, n);
            // One long reversed flit stream; `pop()` from the end during
            // the measured window is allocation-free.
            let mut flits = Vec::new();
            for _ in 0..packets_per_node {
                let dst = loop {
                    let d = Coord::new(rng.random_range(0..n), rng.random_range(0..n));
                    if d != src {
                        break d;
                    }
                };
                let class = if rng.random::<bool>() {
                    MessageClass::Reply
                } else {
                    MessageClass::Request
                };
                let len = rng.random_range(1u16..6);
                flits.extend(PacketDesc::new(pkt_id, src, dst, class, len).flits(n));
                pkt_id += 1;
            }
            flits.reverse();
            (src, flits)
        })
        .collect()
}

fn drive(net: &mut Network, sources: &mut [(Coord, Vec<Flit>)], dests: &[Coord], cycles: u64) {
    for _ in 0..cycles {
        for (src, flits) in sources.iter_mut() {
            if let Some(&f) = flits.last() {
                let inj = net.local_injector(*src);
                if net.try_inject_flit(inj, f) {
                    flits.pop();
                }
            }
        }
        net.step();
        for &d in dests {
            while net.pop_ejected_node(d).is_some() {}
        }
    }
}

#[test]
fn step_is_allocation_free_in_steady_state() {
    let n = 8u16;
    let mut net = Network::mesh(NocConfig::mesh_8x8());
    let mut sources = schedule(n, 400, 0xA110C);
    let dests: Vec<Coord> = (0..(n as usize * n as usize))
        .map(|i| Coord::from_index(i, n))
        .collect();

    // Warm-up: scratch buffers, link queues and eject queues grow to
    // their steady-state capacities here.
    drive(&mut net, &mut sources, &dests, 4_000);
    assert!(
        sources.iter().any(|(_, f)| !f.is_empty()),
        "schedule exhausted during warm-up; raise packets_per_node"
    );

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    drive(&mut net, &mut sources, &dests, 2_000);
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "Network::step() allocated {} times in the steady-state window",
        after - before
    );
    assert!(
        net.stats().ejected_flits > 1_000,
        "window must carry real traffic (got {} flits)",
        net.stats().ejected_flits
    );
}
