//! Network-level tests for the non-mesh reply fabrics (ring and
//! hierarchical ring): randomized delivery, saturating many-to-one
//! drains under the strict auditor, and snapshot round-trips including
//! cross-topology rejection.
//!
//! The mesh has golden-trace coverage; these fabrics are validated by
//! property instead — every packet delivered exactly once, in order,
//! with the network draining to quiescence while the per-cycle audit
//! (credit conservation, escape compliance, watchdog) runs in panic
//! mode.

use equinox_exec::Rng;
use equinox_noc::config::{NocConfig, RoutingKind};
use equinox_noc::flit::{Flit, MessageClass, PacketDesc};
use equinox_noc::network::Network;
use equinox_noc::{AuditConfig, TopologyKind};
use equinox_phys::Coord;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
struct Traffic {
    src: Coord,
    dst: Coord,
    len: u16,
    class: MessageClass,
}

fn random_traffic(w: u16, h: u16, max_packets: usize, rng: &mut Rng) -> Vec<Traffic> {
    let count = rng.random_range(1..max_packets);
    (0..count)
        .map(|_| loop {
            let src = Coord::new(rng.random_range(0..w), rng.random_range(0..h));
            let dst = Coord::new(rng.random_range(0..w), rng.random_range(0..h));
            if src == dst {
                continue;
            }
            break Traffic {
                src,
                dst,
                len: rng.random_range(1u16..6),
                class: if rng.random::<bool>() {
                    MessageClass::Reply
                } else {
                    MessageClass::Request
                },
            };
        })
        .collect()
}

/// Drives a packet set through the network under the strict auditor and
/// checks delivery, exactly-once semantics, in-order flits per packet,
/// and drain to quiescence.
fn exercise(mut net: Network, packets: Vec<Traffic>) {
    net.enable_audit(AuditConfig::strict());
    let w = net.width();
    let mut sources: Vec<(Coord, Vec<Flit>)> = packets
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut flits = PacketDesc::new(i as u64, t.src, t.dst, t.class, t.len).flits(w);
            flits.reverse();
            (t.src, flits)
        })
        .collect();
    let mut got: BTreeMap<u64, u16> = BTreeMap::new();
    let mut last_seq: BTreeMap<u64, i32> = BTreeMap::new();
    let budget = 6_000 + 300 * packets.len() as u64;
    for _ in 0..budget {
        for (src, flits) in sources.iter_mut() {
            if let Some(&f) = flits.last() {
                let inj = net.local_injector(*src);
                if net.try_inject_flit(inj, f) {
                    flits.pop();
                }
            }
        }
        net.step();
        for t in &packets {
            while let Some(f) = net.pop_ejected_node(t.dst) {
                let prev = last_seq.insert(f.pkt.0, f.seq as i32);
                assert!(
                    prev.is_none_or(|p| p < f.seq as i32),
                    "flit reordering within packet {}",
                    f.pkt.0
                );
                *got.entry(f.pkt.0).or_insert(0) += 1;
            }
        }
        if got.len() == packets.len() && got.iter().all(|(id, &c)| c == packets[*id as usize].len)
        {
            break;
        }
    }
    for (i, t) in packets.iter().enumerate() {
        assert_eq!(
            got.get(&(i as u64)).copied().unwrap_or(0),
            t.len,
            "packet {i} incomplete"
        );
    }
    assert!(net.quiescent(), "network must drain");
    assert!(net.audit_violations().is_empty());
    let s = net.stats();
    assert_eq!(s.injected_flits, s.ejected_flits);
    assert_eq!(s.buffer_reads, s.xbar_traversals);
}

fn fabric_cfg(kind: TopologyKind, w: u16, h: u16, routing: RoutingKind) -> NocConfig {
    let mut cfg = NocConfig::fabric(kind, w.max(h));
    cfg.width = w;
    cfg.height = h;
    cfg.routing = routing;
    cfg
}

const CASES: u64 = 16;

#[test]
fn ring_delivers_random_traffic_both_routings() {
    for routing in [RoutingKind::MinimalAdaptive, RoutingKind::Xy] {
        for case in 0..CASES {
            let mut rng = Rng::stream(0x21, case);
            let packets = random_traffic(4, 4, 20, &mut rng);
            exercise(
                Network::new(fabric_cfg(TopologyKind::Ring, 4, 4, routing)),
                packets,
            );
        }
    }
}

#[test]
fn ring_rectangular_delivers() {
    for case in 0..CASES {
        let mut rng = Rng::stream(0x22, case);
        let packets = random_traffic(5, 3, 16, &mut rng);
        exercise(
            Network::new(fabric_cfg(
                TopologyKind::Ring,
                5,
                3,
                RoutingKind::MinimalAdaptive,
            )),
            packets,
        );
    }
}

#[test]
fn hring_delivers_random_traffic_both_routings() {
    for routing in [RoutingKind::MinimalAdaptive, RoutingKind::Xy] {
        for case in 0..CASES {
            let mut rng = Rng::stream(0x23, case);
            let packets = random_traffic(4, 4, 20, &mut rng);
            exercise(
                Network::new(fabric_cfg(TopologyKind::HierRing, 4, 4, routing)),
                packets,
            );
        }
    }
}

#[test]
fn hring_rectangular_delivers() {
    for case in 0..CASES {
        let mut rng = Rng::stream(0x24, case);
        let packets = random_traffic(5, 3, 16, &mut rng);
        exercise(
            Network::new(fabric_cfg(
                TopologyKind::HierRing,
                5,
                3,
                RoutingKind::MinimalAdaptive,
            )),
            packets,
        );
    }
}

/// Saturating many-to-one: every node floods packets at one hotspot
/// while the strict auditor sweeps every cycle, then injection stops
/// and the network must drain. This is the adversarial pattern that
/// exposes escape-channel deadlocks — the hotspot's ejection queue
/// backs traffic up across the whole fabric.
fn saturate_one_hotspot(kind: TopologyKind, routing: RoutingKind) {
    let mut net = Network::new(fabric_cfg(kind, 4, 4, routing));
    net.enable_audit(AuditConfig::strict());
    let w = net.width();
    let hotspot = Coord::new(0, 0);
    let mut id = 0u64;
    let mut queues: Vec<(Coord, Vec<Flit>)> = (0..net.height())
        .flat_map(|y| (0..w).map(move |x| Coord::new(x, y)))
        .filter(|&c| c != hotspot)
        .map(|src| {
            let mut flits = Vec::new();
            for _ in 0..4 {
                let mut f =
                    PacketDesc::new(id, src, hotspot, MessageClass::Reply, 5).flits(w);
                id += 1;
                flits.append(&mut f);
            }
            flits.reverse();
            (src, flits)
        })
        .collect();
    let expect: u64 = queues.iter().map(|(_, q)| q.len() as u64).sum();
    let mut got = 0u64;
    for _ in 0..30_000 {
        for (src, flits) in queues.iter_mut() {
            if let Some(&f) = flits.last() {
                let inj = net.local_injector(*src);
                if net.try_inject_flit(inj, f) {
                    flits.pop();
                }
            }
        }
        net.step();
        while net.pop_ejected_node(hotspot).is_some() {
            got += 1;
        }
        if got == expect && net.quiescent() {
            break;
        }
    }
    assert_eq!(got, expect, "hotspot must receive every flit");
    assert!(net.quiescent(), "network must drain after injection stops");
    assert!(net.audit_violations().is_empty());
}

#[test]
fn ring_saturating_hotspot_drains_under_audit() {
    saturate_one_hotspot(TopologyKind::Ring, RoutingKind::MinimalAdaptive);
    saturate_one_hotspot(TopologyKind::Ring, RoutingKind::Xy);
}

#[test]
fn hring_saturating_hotspot_drains_under_audit() {
    saturate_one_hotspot(TopologyKind::HierRing, RoutingKind::MinimalAdaptive);
    saturate_one_hotspot(TopologyKind::HierRing, RoutingKind::Xy);
}

/// Snapshots a ring mid-flight, keeps running the original, restores
/// the snapshot into a fresh network and runs it the same number of
/// cycles: both must finish with identical statistics (the snapshot
/// captures the complete dynamic state).
#[test]
fn ring_snapshot_round_trip_mid_flight() {
    let cfg = fabric_cfg(TopologyKind::Ring, 4, 4, RoutingKind::MinimalAdaptive);
    let mut net = Network::new(cfg.clone());
    let w = net.width();
    let mut rng = Rng::stream(0x25, 7);
    let packets = random_traffic(4, 4, 20, &mut rng);
    let mut sources: Vec<(Coord, Vec<Flit>)> = packets
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut flits = PacketDesc::new(i as u64, t.src, t.dst, t.class, t.len).flits(w);
            flits.reverse();
            (t.src, flits)
        })
        .collect();
    // Inject everything and run a handful of cycles so flits are in
    // flight, then snapshot.
    for _ in 0..6 {
        for (src, flits) in sources.iter_mut() {
            if let Some(&f) = flits.last() {
                let inj = net.local_injector(*src);
                if net.try_inject_flit(inj, f) {
                    flits.pop();
                }
            }
        }
        net.step();
    }
    let mut enc = equinox_snap::Enc::new();
    net.snapshot_state(&mut enc);
    let bytes = enc.into_bytes();

    let drain = |net: &mut Network| {
        for _ in 0..4_000 {
            net.step();
            for y in 0..net.height() {
                for x in 0..net.width() {
                    while net.pop_ejected_node(Coord::new(x, y)).is_some() {}
                }
            }
            if net.quiescent() {
                break;
            }
        }
    };

    drain(&mut net);
    assert!(net.quiescent());

    let mut restored = Network::new(cfg);
    let mut dec = equinox_snap::Dec::new(&bytes);
    restored
        .restore_state(&mut dec)
        .expect("restore into identically configured network");
    drain(&mut restored);
    assert!(restored.quiescent());
    assert_eq!(net.stats(), restored.stats(), "divergent replay after restore");
}

/// A snapshot taken on one fabric must refuse to restore into another,
/// even at identical dimensions — link and port meanings differ.
#[test]
fn restore_rejects_cross_topology_snapshots() {
    let mut ring = Network::new(fabric_cfg(
        TopologyKind::Ring,
        4,
        4,
        RoutingKind::MinimalAdaptive,
    ));
    let mut enc = equinox_snap::Enc::new();
    ring.snapshot_state(&mut enc);
    let bytes = enc.into_bytes();

    let mut mesh = Network::mesh(NocConfig::mesh(4));
    let mut dec = equinox_snap::Dec::new(&bytes);
    assert!(matches!(
        mesh.restore_state(&mut dec),
        Err(equinox_snap::SnapError::BadValue("snapshot topology kind"))
    ));

    // Same fabric, different dimensions: also rejected.
    let mut small = Network::new(fabric_cfg(
        TopologyKind::Ring,
        4,
        3,
        RoutingKind::MinimalAdaptive,
    ));
    let mut dec = equinox_snap::Dec::new(&bytes);
    assert!(matches!(
        small.restore_state(&mut dec),
        Err(equinox_snap::SnapError::BadValue("snapshot grid dimensions"))
    ));
    let _ = ring.pop_ejected_node(Coord::new(0, 0));
}
