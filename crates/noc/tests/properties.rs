//! Randomized (but fully deterministic, seeded) tests of the NoC
//! simulator's core guarantees: every injected packet is delivered
//! exactly once, the network drains, and the event accounting balances
//! — under randomized traffic from the in-repo PRNG.

use equinox_exec::Rng;
use equinox_noc::config::{NocConfig, RoutingKind};
use equinox_noc::flit::{Flit, MessageClass, PacketDesc};
use equinox_noc::network::Network;
use equinox_phys::Coord;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
struct Traffic {
    src: Coord,
    dst: Coord,
    len: u16,
    class: MessageClass,
}

/// One random packet on an `n`×`n` mesh with distinct endpoints.
fn traffic(n: u16, rng: &mut Rng) -> Traffic {
    loop {
        let src = Coord::new(rng.random_range(0..n), rng.random_range(0..n));
        let dst = Coord::new(rng.random_range(0..n), rng.random_range(0..n));
        if src == dst {
            continue;
        }
        return Traffic {
            src,
            dst,
            len: rng.random_range(1u16..6),
            class: if rng.random::<bool>() {
                MessageClass::Reply
            } else {
                MessageClass::Request
            },
        };
    }
}

fn traffic_vec(n: u16, max_packets: usize, rng: &mut Rng) -> Vec<Traffic> {
    let count = rng.random_range(1..max_packets);
    (0..count).map(|_| traffic(n, rng)).collect()
}

/// Drives a random packet set through the network and checks delivery,
/// exactly-once semantics, in-order flits per packet, and drain.
fn exercise(mut net: Network, packets: Vec<Traffic>) {
    let n = net.width();
    let mut sources: Vec<(Coord, Vec<Flit>)> = packets
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut flits = PacketDesc::new(i as u64, t.src, t.dst, t.class, t.len).flits(n);
            flits.reverse();
            (t.src, flits)
        })
        .collect();
    let mut got: BTreeMap<u64, u16> = BTreeMap::new();
    let mut last_seq: BTreeMap<u64, i32> = BTreeMap::new();
    let budget = 4_000 + 200 * packets.len() as u64;
    for _ in 0..budget {
        for (src, flits) in sources.iter_mut() {
            if let Some(&f) = flits.last() {
                let inj = net.local_injector(*src);
                if net.try_inject_flit(inj, f) {
                    flits.pop();
                }
            }
        }
        net.step();
        for t in &packets {
            while let Some(f) = net.pop_ejected_node(t.dst) {
                let prev = last_seq.insert(f.pkt.0, f.seq as i32);
                assert!(
                    prev.is_none_or(|p| p < f.seq as i32),
                    "flit reordering within packet {}",
                    f.pkt.0
                );
                *got.entry(f.pkt.0).or_insert(0) += 1;
            }
        }
        if got.len() == packets.len() && got.iter().all(|(id, &c)| c == packets[*id as usize].len)
        {
            break;
        }
    }
    for (i, t) in packets.iter().enumerate() {
        assert_eq!(
            got.get(&(i as u64)).copied().unwrap_or(0),
            t.len,
            "packet {i} incomplete"
        );
    }
    assert!(net.quiescent(), "network must drain");
    let s = net.stats();
    assert_eq!(s.injected_flits, s.ejected_flits);
    assert_eq!(s.buffer_reads, s.xbar_traversals);
}

const CASES: u64 = 24;

#[test]
fn adaptive_mesh_delivers_everything() {
    for case in 0..CASES {
        let mut rng = Rng::stream(0xAD, case);
        let packets = traffic_vec(5, 24, &mut rng);
        exercise(Network::mesh(NocConfig::mesh(5)), packets);
    }
}

#[test]
fn xy_mesh_delivers_everything() {
    for case in 0..CASES {
        let mut rng = Rng::stream(0x01, case);
        let packets = traffic_vec(5, 24, &mut rng);
        let mut cfg = NocConfig::mesh(5);
        cfg.routing = RoutingKind::Xy;
        exercise(Network::mesh(cfg), packets);
    }
}

#[test]
fn single_network_with_classes_delivers() {
    for case in 0..CASES {
        let mut rng = Rng::stream(0x51, case);
        let packets = traffic_vec(4, 16, &mut rng);
        exercise(Network::mesh(NocConfig::single_net(4, false)), packets);
    }
}

#[test]
fn vc_mono_delivers() {
    for case in 0..CASES {
        let mut rng = Rng::stream(0x7C, case);
        let packets = traffic_vec(4, 16, &mut rng);
        exercise(Network::mesh(NocConfig::single_net(4, true)), packets);
    }
}
