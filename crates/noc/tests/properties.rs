//! Property-based tests of the NoC simulator's core guarantees:
//! every injected packet is delivered exactly once, the network drains,
//! and the event accounting balances — under randomized traffic.

use equinox_noc::config::{NocConfig, RoutingKind};
use equinox_noc::flit::{Flit, MessageClass, PacketDesc};
use equinox_noc::network::Network;
use equinox_phys::Coord;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
struct Traffic {
    src: Coord,
    dst: Coord,
    len: u16,
    class: MessageClass,
}

fn traffic(n: u16) -> impl Strategy<Value = Traffic> {
    (
        0u16..n,
        0u16..n,
        0u16..n,
        0u16..n,
        1u16..6,
        prop::bool::ANY,
    )
        .prop_filter("distinct endpoints", |(sx, sy, dx, dy, _, _)| {
            (sx, sy) != (dx, dy)
        })
        .prop_map(|(sx, sy, dx, dy, len, reply)| Traffic {
            src: Coord::new(sx, sy),
            dst: Coord::new(dx, dy),
            len,
            class: if reply {
                MessageClass::Reply
            } else {
                MessageClass::Request
            },
        })
}

/// Drives a random packet set through the network and checks delivery,
/// exactly-once semantics, in-order flits per packet, and drain.
fn exercise(mut net: Network, packets: Vec<Traffic>) -> Result<(), TestCaseError> {
    let n = net.width();
    let mut sources: Vec<(Coord, Vec<Flit>)> = packets
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut flits = PacketDesc::new(i as u64, t.src, t.dst, t.class, t.len).flits(n);
            flits.reverse();
            (t.src, flits)
        })
        .collect();
    let mut got: BTreeMap<u64, u16> = BTreeMap::new();
    let mut last_seq: BTreeMap<u64, i32> = BTreeMap::new();
    let budget = 4_000 + 200 * packets.len() as u64;
    for _ in 0..budget {
        for (src, flits) in sources.iter_mut() {
            if let Some(&f) = flits.last() {
                let inj = net.local_injector(*src);
                if net.try_inject_flit(inj, f) {
                    flits.pop();
                }
            }
        }
        net.step();
        for t in &packets {
            while let Some(f) = net.pop_ejected_node(t.dst) {
                let prev = last_seq.insert(f.pkt.0, f.seq as i32);
                prop_assert!(
                    prev.is_none_or(|p| p < f.seq as i32),
                    "flit reordering within packet {}",
                    f.pkt.0
                );
                *got.entry(f.pkt.0).or_insert(0) += 1;
            }
        }
        if got.len() == packets.len()
            && got.iter().all(|(id, &c)| c == packets[*id as usize].len)
        {
            break;
        }
    }
    for (i, t) in packets.iter().enumerate() {
        prop_assert_eq!(
            got.get(&(i as u64)).copied().unwrap_or(0),
            t.len,
            "packet {} incomplete",
            i
        );
    }
    prop_assert!(net.quiescent(), "network must drain");
    let s = net.stats();
    prop_assert_eq!(s.injected_flits, s.ejected_flits);
    prop_assert_eq!(s.buffer_reads, s.xbar_traversals);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn adaptive_mesh_delivers_everything(packets in prop::collection::vec(traffic(5), 1..24)) {
        let net = Network::mesh(NocConfig::mesh(5));
        exercise(net, packets)?;
    }

    #[test]
    fn xy_mesh_delivers_everything(packets in prop::collection::vec(traffic(5), 1..24)) {
        let mut cfg = NocConfig::mesh(5);
        cfg.routing = RoutingKind::Xy;
        exercise(Network::mesh(cfg), packets)?;
    }

    #[test]
    fn single_network_with_classes_delivers(packets in prop::collection::vec(traffic(4), 1..16)) {
        let net = Network::mesh(NocConfig::single_net(4, false));
        exercise(net, packets)?;
    }

    #[test]
    fn vc_mono_delivers(packets in prop::collection::vec(traffic(4), 1..16)) {
        let net = Network::mesh(NocConfig::single_net(4, true));
        exercise(net, packets)?;
    }
}
