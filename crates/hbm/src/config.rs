//! HBM stack configuration and timing.
//!
//! Timings are expressed in *controller cycles*; we clock the controller
//! together with the core (1.126 GHz, Table 1), a small approximation of
//! HBM2's 1 GHz that keeps the whole simulation on one clock. The default
//! values are HBM2-class (tRCD/tRP/tCL ≈ 14 ns, 64 B bursts).


/// DRAM timing parameters, in controller cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HbmTiming {
    /// Activate-to-read delay (row open).
    pub t_rcd: u64,
    /// Precharge delay (row close).
    pub t_rp: u64,
    /// CAS latency (column read).
    pub t_cl: u64,
    /// Data-bus occupancy of one 64 B burst.
    pub t_burst: u64,
    /// Write recovery added to write accesses.
    pub t_wr: u64,
}

impl Default for HbmTiming {
    fn default() -> Self {
        HbmTiming {
            t_rcd: 16,
            t_rp: 16,
            t_cl: 16,
            t_burst: 4,
            t_wr: 18,
        }
    }
}

/// Configuration of one HBM stack (one per memory controller / CB).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HbmConfig {
    /// Channels per stack (Table 1 / §5: 16 channels per chip).
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Cache-line / burst size in bytes.
    pub line_bytes: u64,
    /// Per-channel request queue capacity (backpressure threshold).
    pub queue_cap: usize,
    /// DRAM timings.
    pub timing: HbmTiming,
}

impl HbmConfig {
    /// HBM2-class stack: 16 channels × 16 banks, 1 KiB rows, 64 B lines.
    pub fn hbm2() -> Self {
        HbmConfig {
            channels: 16,
            banks_per_channel: 16,
            row_bytes: 1024,
            line_bytes: 64,
            queue_cap: 32,
            timing: HbmTiming::default(),
        }
    }

    /// A small configuration for fast unit tests.
    pub fn tiny() -> Self {
        HbmConfig {
            channels: 2,
            banks_per_channel: 2,
            row_bytes: 256,
            line_bytes: 64,
            queue_cap: 4,
            timing: HbmTiming::default(),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a message.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 || self.banks_per_channel == 0 {
            return Err("need at least one channel and one bank".into());
        }
        if self.row_bytes == 0 || self.line_bytes == 0 || self.row_bytes < self.line_bytes {
            return Err("row must hold at least one line".into());
        }
        if self.queue_cap == 0 {
            return Err("queue capacity must be nonzero".into());
        }
        if self.timing.t_burst == 0 {
            return Err("burst occupancy must be nonzero".into());
        }
        Ok(())
    }

    /// Peak data bandwidth of a stack in bytes per controller cycle:
    /// every channel can move one line per `t_burst` cycles.
    ///
    /// ```
    /// # use equinox_hbm::HbmConfig;
    /// let c = HbmConfig::hbm2();
    /// // 16 channels * 64B / 4 cycles = 256 B/cycle ≈ 288 GB/s at 1.126 GHz,
    /// // i.e. HBM2-class per-stack bandwidth (§2.2's 256 GB/s).
    /// assert_eq!(c.peak_bytes_per_cycle(), 256.0);
    /// ```
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        self.channels as f64 * self.line_bytes as f64 / self.timing.t_burst as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_valid() {
        assert!(HbmConfig::hbm2().validate().is_ok());
        assert!(HbmConfig::tiny().validate().is_ok());
    }

    #[test]
    fn invalid_rejected() {
        let mut c = HbmConfig::hbm2();
        c.channels = 0;
        assert!(c.validate().is_err());
        let mut c = HbmConfig::hbm2();
        c.row_bytes = 32; // smaller than a line
        assert!(c.validate().is_err());
        let mut c = HbmConfig::hbm2();
        c.timing.t_burst = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn bandwidth_scales_with_channels() {
        let mut c = HbmConfig::hbm2();
        let b16 = c.peak_bytes_per_cycle();
        c.channels = 8;
        assert_eq!(c.peak_bytes_per_cycle() * 2.0, b16);
    }
}
