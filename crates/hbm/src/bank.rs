//! DRAM bank state: open row tracking and per-access latency.

use crate::config::HbmTiming;

/// Row-buffer outcome of an access, in decreasing speed order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// Requested row already open: column access only.
    Hit,
    /// Bank idle (no row open): activate + column access.
    Miss,
    /// Different row open: precharge + activate + column access.
    Conflict,
}

/// One DRAM bank.
#[derive(Debug, Clone, Default)]
pub struct Bank {
    /// Currently open row (open-page policy: rows stay open).
    open_row: Option<u64>,
    /// Cycle until which the bank is busy with its current access.
    busy_until: u64,
    /// Row-buffer hit/miss/conflict counters for statistics.
    pub hits: u64,
    /// Row misses (bank was idle).
    pub misses: u64,
    /// Row conflicts (had to precharge).
    pub conflicts: u64,
}

impl Bank {
    /// `true` if the bank can accept a new access at `now`.
    pub fn ready(&self, now: u64) -> bool {
        now >= self.busy_until
    }

    /// First cycle at which the bank is ready again (next-event query).
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// What the row buffer would do for `row` (without issuing).
    pub fn probe(&self, row: u64) -> RowOutcome {
        match self.open_row {
            Some(r) if r == row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Miss,
        }
    }

    /// Issues an access to `row` at `now`, returning the cycle at which
    /// the data burst completes. The row stays open afterwards.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the bank is still busy.
    pub fn access(&mut self, row: u64, write: bool, now: u64, t: &HbmTiming) -> u64 {
        debug_assert!(self.ready(now), "bank busy until {}", self.busy_until);
        let outcome = self.probe(row);
        let latency = match outcome {
            RowOutcome::Hit => {
                self.hits += 1;
                t.t_cl + t.t_burst
            }
            RowOutcome::Miss => {
                self.misses += 1;
                t.t_rcd + t.t_cl + t.t_burst
            }
            RowOutcome::Conflict => {
                self.conflicts += 1;
                t.t_rp + t.t_rcd + t.t_cl + t.t_burst
            }
        } + if write { t.t_wr } else { 0 };
        self.open_row = Some(row);
        self.busy_until = now + latency;
        now + latency
    }
}

impl equinox_snap::Snap for Bank {
    fn snap(&self, e: &mut equinox_snap::Enc) {
        self.open_row.snap(e);
        e.put_u64(self.busy_until);
        e.put_u64(self.hits);
        e.put_u64(self.misses);
        e.put_u64(self.conflicts);
    }
    fn restore(d: &mut equinox_snap::Dec) -> Result<Self, equinox_snap::SnapError> {
        Ok(Bank {
            open_row: Option::restore(d)?,
            busy_until: d.u64()?,
            hits: d.u64()?,
            misses: d.u64()?,
            conflicts: d.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_faster_than_miss_faster_than_conflict() {
        let t = HbmTiming::default();
        let mut b = Bank::default();
        let miss_done = b.access(5, false, 0, &t);
        let hit_done = b.access(5, false, miss_done, &t) - miss_done;
        let conflict_done = b.access(9, false, miss_done + hit_done, &t) - (miss_done + hit_done);
        assert!(hit_done < miss_done);
        assert!(miss_done < conflict_done);
        assert!(conflict_done > hit_done);
        assert_eq!((b.hits, b.misses, b.conflicts), (1, 1, 1));
    }

    #[test]
    fn probe_matches_state() {
        let t = HbmTiming::default();
        let mut b = Bank::default();
        assert_eq!(b.probe(3), RowOutcome::Miss);
        let done = b.access(3, false, 0, &t);
        assert_eq!(b.probe(3), RowOutcome::Hit);
        assert_eq!(b.probe(4), RowOutcome::Conflict);
        assert!(!b.ready(done - 1));
        assert!(b.ready(done));
    }

    #[test]
    fn writes_cost_recovery_time() {
        let t = HbmTiming::default();
        let mut a = Bank::default();
        let mut b = Bank::default();
        let read_done = a.access(1, false, 0, &t);
        let write_done = b.access(1, true, 0, &t);
        assert_eq!(write_done, read_done + t.t_wr);
    }
}
