//! A memory channel: banks, a shared data bus, and an FR-FCFS scheduler.
//!
//! FR-FCFS ("first-ready, first-come-first-served", Table 1) issues the
//! oldest request whose bank is ready *and* whose row is open (a row hit);
//! if no hit is ready it falls back to the oldest ready request. The data
//! bus serializes bursts: at most one access begins per `t_burst` window.

use crate::bank::Bank;
use crate::config::HbmConfig;
use std::collections::VecDeque;

/// A request queued inside a channel.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChannelRequest {
    pub id: u64,
    pub bank: usize,
    pub row: u64,
    pub write: bool,
    /// Enqueue cycle — kept for queue-age statistics and debugging.
    #[allow(dead_code)]
    pub arrival: u64,
}

/// One HBM channel.
#[derive(Debug)]
pub(crate) struct Channel {
    banks: Vec<Bank>,
    queue: VecDeque<ChannelRequest>,
    /// Cycle until which the data bus is claimed by the last issue.
    bus_busy_until: u64,
    /// Issued requests awaiting completion: (finish_cycle, id).
    in_service: Vec<(u64, u64)>,
    cap: usize,
}

impl Channel {
    pub fn new(cfg: &HbmConfig) -> Self {
        Channel {
            banks: (0..cfg.banks_per_channel).map(|_| Bank::default()).collect(),
            queue: VecDeque::new(),
            bus_busy_until: 0,
            in_service: Vec::new(),
            cap: cfg.queue_cap,
        }
    }

    /// `true` if the queue has room for another request.
    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.cap
    }

    /// Enqueues a request; caller must have checked [`Channel::can_accept`].
    pub fn enqueue(&mut self, req: ChannelRequest) {
        debug_assert!(self.can_accept());
        self.queue.push_back(req);
    }

    /// One scheduling step at cycle `now`; completed request ids are pushed
    /// into `done`.
    pub fn step(&mut self, now: u64, cfg: &HbmConfig, done: &mut Vec<(u64, u64)>) {
        // Retire finished accesses.
        let mut i = 0;
        while i < self.in_service.len() {
            if self.in_service[i].0 <= now {
                let (t, id) = self.in_service.swap_remove(i);
                done.push((t, id));
            } else {
                i += 1;
            }
        }
        // Issue at most one access per bus slot.
        if now < self.bus_busy_until {
            return;
        }
        let pick = self.pick(now);
        if let Some(qi) = pick {
            let req = self.queue.remove(qi).expect("index valid");
            let finish = self.banks[req.bank].access(req.row, req.write, now, &cfg.timing);
            self.bus_busy_until = now + cfg.timing.t_burst;
            self.in_service.push((finish, req.id));
        }
    }

    /// FR-FCFS pick: oldest ready row-hit, else oldest ready request.
    fn pick(&self, now: u64) -> Option<usize> {
        let mut first_ready: Option<usize> = None;
        for (qi, req) in self.queue.iter().enumerate() {
            let bank = &self.banks[req.bank];
            if !bank.ready(now) {
                continue;
            }
            if bank.probe(req.row) == crate::bank::RowOutcome::Hit {
                return Some(qi); // oldest hit (queue is FIFO-ordered)
            }
            if first_ready.is_none() {
                first_ready = Some(qi);
            }
        }
        first_ready
    }

    /// Outstanding work (queued + in service).
    pub fn outstanding(&self) -> usize {
        self.queue.len() + self.in_service.len()
    }

    /// Earliest future cycle at which [`Channel::step`] could do
    /// anything: the soonest in-service completion, or — when requests
    /// are queued — the first cycle an issue could happen (every bank a
    /// queued request targets is busy until then, and the bus may hold
    /// the issue back further). `None` when the channel is empty.
    ///
    /// Exact with respect to the FR-FCFS scheduler: `pick` returns
    /// `None` strictly before the returned cycle (no targeted bank is
    /// ready and the retire loop has nothing due), so skipped `step`
    /// calls are no-ops.
    pub fn next_event(&self) -> Option<u64> {
        let mut next = self.in_service.iter().map(|&(t, _)| t).min();
        if !self.queue.is_empty() {
            let bank_free = self
                .queue
                .iter()
                .map(|r| self.banks[r.bank].busy_until())
                .min()
                .expect("queue nonempty");
            let issue = bank_free.max(self.bus_busy_until);
            next = Some(next.map_or(issue, |n| n.min(issue)));
        }
        next
    }

    /// Aggregate row-buffer statistics over all banks:
    /// `(hits, misses, conflicts)`.
    pub fn row_stats(&self) -> (u64, u64, u64) {
        self.banks.iter().fold((0, 0, 0), |(h, m, c), b| {
            (h + b.hits, m + b.misses, c + b.conflicts)
        })
    }

    /// Serializes the channel's dynamic state (banks, queue, bus, the
    /// in-service list). `cap` is build-time config and not written.
    pub fn snap_state(&self, e: &mut equinox_snap::Enc) {
        use equinox_snap::Snap;
        self.banks.snap(e);
        self.queue.snap(e);
        e.put_u64(self.bus_busy_until);
        self.in_service.snap(e);
    }

    /// Restores state written by [`Channel::snap_state`] into a channel
    /// built from the *same* config; shape mismatches are rejected.
    pub fn restore_state(
        &mut self,
        d: &mut equinox_snap::Dec,
    ) -> Result<(), equinox_snap::SnapError> {
        use equinox_snap::{Snap, SnapError};
        let banks = Vec::restore(d)?;
        if banks.len() != self.banks.len() {
            return Err(SnapError::BadValue("channel bank count"));
        }
        let queue: std::collections::VecDeque<ChannelRequest> = VecDeque::restore(d)?;
        if queue.len() > self.cap {
            return Err(SnapError::BadValue("channel queue over capacity"));
        }
        if queue.iter().any(|r| r.bank >= banks.len()) {
            return Err(SnapError::BadValue("channel request bank index"));
        }
        self.banks = banks;
        self.queue = queue;
        self.bus_busy_until = d.u64()?;
        self.in_service = Vec::restore(d)?;
        Ok(())
    }
}

impl equinox_snap::Snap for ChannelRequest {
    fn snap(&self, e: &mut equinox_snap::Enc) {
        e.put_u64(self.id);
        e.put_usize(self.bank);
        e.put_u64(self.row);
        e.put_bool(self.write);
        e.put_u64(self.arrival);
    }
    fn restore(d: &mut equinox_snap::Dec) -> Result<Self, equinox_snap::SnapError> {
        Ok(ChannelRequest {
            id: d.u64()?,
            bank: d.usize()?,
            row: d.u64()?,
            write: d.bool()?,
            arrival: d.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, bank: usize, row: u64, arrival: u64) -> ChannelRequest {
        ChannelRequest {
            id,
            bank,
            row,
            write: false,
            arrival,
        }
    }

    fn run_until_done(ch: &mut Channel, cfg: &HbmConfig, n: usize, max: u64) -> Vec<(u64, u64)> {
        let mut done = Vec::new();
        for t in 0..max {
            ch.step(t, cfg, &mut done);
            if done.len() == n {
                break;
            }
        }
        done
    }

    #[test]
    fn frfcfs_prefers_row_hits() {
        let cfg = HbmConfig::tiny();
        let mut ch = Channel::new(&cfg);
        // Open row 1 on bank 0 first.
        ch.enqueue(req(1, 0, 1, 0));
        let mut done = Vec::new();
        for t in 0..100 {
            ch.step(t, &cfg, &mut done);
            if !done.is_empty() {
                break;
            }
        }
        // Now a conflict request (row 2) arrives BEFORE a hit (row 1);
        // FR-FCFS must issue the hit first.
        ch.enqueue(req(2, 0, 2, 100));
        ch.enqueue(req(3, 0, 1, 101));
        let mut finished = Vec::new();
        for t in 100..600 {
            ch.step(t, &cfg, &mut finished);
            if finished.len() == 2 {
                break;
            }
        }
        assert_eq!(finished[0].1, 3, "row hit must be serviced first");
        assert_eq!(finished[1].1, 2);
    }

    #[test]
    fn queue_capacity_enforced() {
        let cfg = HbmConfig::tiny(); // cap = 4
        let mut ch = Channel::new(&cfg);
        for i in 0..4 {
            assert!(ch.can_accept());
            ch.enqueue(req(i, 0, 0, 0));
        }
        assert!(!ch.can_accept());
    }

    #[test]
    fn bus_serializes_issues() {
        let cfg = HbmConfig::tiny();
        let mut ch = Channel::new(&cfg);
        // Two requests to different banks, same row-miss latency: they
        // finish t_burst apart because the bus staggers them.
        ch.enqueue(req(1, 0, 0, 0));
        ch.enqueue(req(2, 1, 0, 0));
        let done = run_until_done(&mut ch, &cfg, 2, 500);
        assert_eq!(done.len(), 2);
        let d1 = done.iter().find(|d| d.1 == 1).unwrap().0;
        let d2 = done.iter().find(|d| d.1 == 2).unwrap().0;
        assert_eq!(d2 - d1, cfg.timing.t_burst);
    }

    #[test]
    fn outstanding_tracks_lifecycle() {
        let cfg = HbmConfig::tiny();
        let mut ch = Channel::new(&cfg);
        assert_eq!(ch.outstanding(), 0);
        ch.enqueue(req(1, 0, 0, 0));
        assert_eq!(ch.outstanding(), 1);
        let _ = run_until_done(&mut ch, &cfg, 1, 500);
        assert_eq!(ch.outstanding(), 0);
    }
}
