//! An HBM stack: address decoding over channels, completion collection.

use crate::channel::{Channel, ChannelRequest};
use crate::config::HbmConfig;
use std::collections::VecDeque;

/// A memory access submitted by a cache bank on a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Caller-chosen identifier returned in the [`Completion`].
    pub id: u64,
    /// Physical byte address.
    pub addr: u64,
    /// `true` for writes (adds write-recovery time).
    pub write: bool,
}

/// A finished memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The id passed to [`HbmStack::enqueue`].
    pub id: u64,
    /// Cycle at which the data burst completed.
    pub finished_at: u64,
}

/// Error returned when a channel queue is full; the caller should retry
/// next cycle (this is the memory-side backpressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("channel request queue is full")
    }
}

impl std::error::Error for QueueFull {}

/// One HBM stack (8 per system, one behind each CB's memory controller).
#[derive(Debug)]
pub struct HbmStack {
    cfg: HbmConfig,
    channels: Vec<Channel>,
    completed: VecDeque<Completion>,
    /// Total accesses accepted.
    pub accesses: u64,
    /// Reused completion scratch for `step` (keeps the hot loop
    /// allocation-free).
    done_scratch: Vec<(u64, u64)>,
}

impl HbmStack {
    /// Creates a stack.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: HbmConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid HBM config: {e}");
        }
        HbmStack {
            channels: (0..cfg.channels).map(|_| Channel::new(&cfg)).collect(),
            completed: VecDeque::new(),
            accesses: 0,
            done_scratch: Vec::new(),
            cfg,
        }
    }

    /// Address decomposition: lines interleave across channels for
    /// parallelism, then fill a row's columns before moving to the next
    /// bank — the standard open-page-friendly HBM mapping, so sequential
    /// streams enjoy row-buffer hits.
    fn decode(&self, addr: u64) -> (usize, usize, u64) {
        let line = addr / self.cfg.line_bytes;
        let channel = (line % self.cfg.channels as u64) as usize;
        let rest = line / self.cfg.channels as u64;
        let lines_per_row = self.cfg.row_bytes / self.cfg.line_bytes;
        let bank_row = rest / lines_per_row;
        let bank = (bank_row % self.cfg.banks_per_channel as u64) as usize;
        let row = bank_row / self.cfg.banks_per_channel as u64;
        (channel, bank, row)
    }

    /// Submits an access at cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the target channel's queue has no room;
    /// retry on a later cycle.
    pub fn enqueue(&mut self, acc: MemAccess, now: u64) -> Result<(), QueueFull> {
        let (ch, bank, row) = self.decode(acc.addr);
        if !self.channels[ch].can_accept() {
            return Err(QueueFull);
        }
        self.channels[ch].enqueue(ChannelRequest {
            id: acc.id,
            bank,
            row,
            write: acc.write,
            arrival: now,
        });
        self.accesses += 1;
        Ok(())
    }

    /// `true` if an access to `addr` could be enqueued right now.
    pub fn can_accept(&self, addr: u64) -> bool {
        let (ch, _, _) = self.decode(addr);
        self.channels[ch].can_accept()
    }

    /// Advances all channels one cycle.
    pub fn step(&mut self, now: u64) {
        let mut done = std::mem::take(&mut self.done_scratch);
        done.clear();
        for ch in &mut self.channels {
            ch.step(now, &self.cfg, &mut done);
        }
        for &(t, id) in &done {
            self.completed.push_back(Completion {
                id,
                finished_at: t,
            });
        }
        self.done_scratch = done;
    }

    /// Earliest future cycle at which [`HbmStack::step`] (or a
    /// [`HbmStack::pop_completed`] poll) could make progress, or `None`
    /// when the stack is completely empty. Undrained completions report
    /// `Some(0)`: the caller still has work to pick up *now*.
    pub fn next_event(&self) -> Option<u64> {
        if !self.completed.is_empty() {
            return Some(0);
        }
        self.channels.iter().filter_map(Channel::next_event).min()
    }

    /// Pops one finished access, if any.
    pub fn pop_completed(&mut self) -> Option<Completion> {
        self.completed.pop_front()
    }

    /// Requests queued or in flight across all channels.
    pub fn outstanding(&self) -> usize {
        self.channels.iter().map(|c| c.outstanding()).sum::<usize>() + self.completed.len()
    }

    /// Aggregate row-buffer statistics: `(hits, misses, conflicts)`.
    pub fn row_stats(&self) -> (u64, u64, u64) {
        self.channels.iter().fold((0, 0, 0), |(h, m, c), ch| {
            let (h2, m2, c2) = ch.row_stats();
            (h + h2, m + m2, c + c2)
        })
    }

    /// This stack's configuration.
    pub fn config(&self) -> &HbmConfig {
        &self.cfg
    }

    /// Serializes the stack's dynamic state: every channel, the pending
    /// completion queue, and the accepted-access counter. The config and
    /// the reusable step scratch buffer are build-time/transient and not
    /// written.
    pub fn snap_state(&self, e: &mut equinox_snap::Enc) {
        e.put_usize(self.channels.len());
        for ch in &self.channels {
            ch.snap_state(e);
        }
        e.put_usize(self.completed.len());
        for c in &self.completed {
            e.put_u64(c.id);
            e.put_u64(c.finished_at);
        }
        e.put_u64(self.accesses);
    }

    /// Restores state written by [`HbmStack::snap_state`] into a stack
    /// built from the *same* config.
    pub fn restore_state(
        &mut self,
        d: &mut equinox_snap::Dec,
    ) -> Result<(), equinox_snap::SnapError> {
        use equinox_snap::SnapError;
        let n = d.usize()?;
        if n != self.channels.len() {
            return Err(SnapError::BadValue("hbm channel count"));
        }
        for ch in &mut self.channels {
            ch.restore_state(d)?;
        }
        let nc = d.usize()?;
        let mut completed = VecDeque::with_capacity(nc.min(d.remaining()));
        for _ in 0..nc {
            completed.push_back(Completion {
                id: d.u64()?,
                finished_at: d.u64()?,
            });
        }
        self.completed = completed;
        self.accesses = d.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(stack: &mut HbmStack, until: u64) -> Vec<Completion> {
        let mut out = Vec::new();
        for t in 0..until {
            stack.step(t);
            while let Some(c) = stack.pop_completed() {
                out.push(c);
            }
        }
        out
    }

    #[test]
    fn single_access_completes() {
        let mut s = HbmStack::new(HbmConfig::tiny());
        s.enqueue(MemAccess { id: 42, addr: 0x1000, write: false }, 0).unwrap();
        let done = run(&mut s, 200);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 42);
        assert!(done[0].finished_at >= 30, "at least tRCD+tCL+burst");
        assert_eq!(s.outstanding(), 0);
    }

    #[test]
    fn channel_interleave_spreads_lines() {
        let s = HbmStack::new(HbmConfig::hbm2());
        let (c0, _, _) = s.decode(0);
        let (c1, _, _) = s.decode(64);
        let (c2, _, _) = s.decode(128);
        assert_ne!(c0, c1);
        assert_ne!(c1, c2);
        let (c16, _, _) = s.decode(64 * 16);
        assert_eq!(c0, c16, "wraps after #channels lines");
    }

    #[test]
    fn parallel_channels_overlap() {
        // Two accesses to different channels finish at the same cycle;
        // two to the same channel are serialized by the bus.
        let cfg = HbmConfig::tiny();
        let mut s = HbmStack::new(cfg);
        s.enqueue(MemAccess { id: 1, addr: 0, write: false }, 0).unwrap();
        s.enqueue(MemAccess { id: 2, addr: 64, write: false }, 0).unwrap(); // other channel
        let done = run(&mut s, 300);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].finished_at, done[1].finished_at);
    }

    #[test]
    fn backpressure_when_queue_full() {
        let cfg = HbmConfig::tiny(); // queue_cap 4
        let mut s = HbmStack::new(cfg);
        let mut accepted = 0;
        for i in 0..10 {
            // All to channel 0 (addresses multiple of 128 with 2 channels).
            if s.enqueue(MemAccess { id: i, addr: i * 128, write: false }, 0).is_ok() {
                accepted += 1;
            }
        }
        assert!(accepted <= 5, "queue must fill: accepted {accepted}");
        assert!(!s.can_accept(11 * 128));
    }

    #[test]
    fn sequential_stream_gets_row_hits() {
        let mut s = HbmStack::new(HbmConfig::hbm2());
        // Stream 64 sequential lines; after the cold misses, the
        // open-page policy should produce plenty of row hits.
        for i in 0..64u64 {
            s.enqueue(MemAccess { id: i, addr: i * 64, write: false }, 0).unwrap();
        }
        let done = run(&mut s, 2000);
        assert_eq!(done.len(), 64);
        let (hits, misses, conflicts) = s.row_stats();
        assert!(hits > 0, "sequential stream must hit rows: {hits}/{misses}/{conflicts}");
    }

    #[test]
    fn throughput_approaches_peak_under_load() {
        let cfg = HbmConfig::hbm2();
        let mut s = HbmStack::new(cfg);
        let mut submitted = 0u64;
        let mut done = 0u64;
        let horizon = 2000u64;
        for t in 0..horizon {
            // Saturate: keep every channel queue topped up.
            for _ in 0..8 {
                let addr = submitted * 64;
                if s.enqueue(MemAccess { id: submitted, addr, write: false }, t).is_ok() {
                    submitted += 1;
                }
            }
            s.step(t);
            while s.pop_completed().is_some() {
                done += 1;
            }
        }
        let bytes_per_cycle = done as f64 * 64.0 / horizon as f64;
        let peak = cfg.peak_bytes_per_cycle();
        assert!(
            bytes_per_cycle > peak * 0.5,
            "sustained {bytes_per_cycle:.1} B/cy vs peak {peak:.1}"
        );
    }

    #[test]
    fn snapshot_round_trip_resumes_identically() {
        use equinox_snap::{Dec, Enc};
        let cfg = HbmConfig::hbm2();
        let mut s = HbmStack::new(cfg);
        // Mid-flight state: queued + in-service + undrained completions.
        for i in 0..32u64 {
            let _ = s.enqueue(MemAccess { id: i, addr: i * 64, write: i % 3 == 0 }, 0);
        }
        for t in 0..40 {
            s.step(t);
        }
        let mut e = Enc::new();
        s.snap_state(&mut e);
        let bytes = e.into_bytes();
        let mut restored = HbmStack::new(cfg);
        let mut d = Dec::new(&bytes);
        restored.restore_state(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(restored.outstanding(), s.outstanding());
        assert_eq!(restored.row_stats(), s.row_stats());
        // Both copies must evolve in lockstep from here on.
        let a = run(&mut s, 3000);
        let b = run(&mut restored, 3000);
        assert_eq!(a, b, "restored stack must produce identical completions");
    }

    #[test]
    fn snapshot_rejects_wrong_shape_and_truncation() {
        use equinox_snap::{Dec, Enc, SnapError};
        let mut s = HbmStack::new(HbmConfig::hbm2());
        s.enqueue(MemAccess { id: 1, addr: 0, write: false }, 0).unwrap();
        let mut e = Enc::new();
        s.snap_state(&mut e);
        let bytes = e.into_bytes();
        // Wrong config shape: tiny() has a different channel count.
        let mut other = HbmStack::new(HbmConfig::tiny());
        assert_eq!(
            other.restore_state(&mut Dec::new(&bytes)).unwrap_err(),
            SnapError::BadValue("hbm channel count")
        );
        // Truncation anywhere must yield a structured error, not a panic.
        let mut fresh = HbmStack::new(HbmConfig::hbm2());
        for cut in 0..bytes.len() {
            let r = fresh.restore_state(&mut Dec::new(&bytes[..cut]));
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn writes_complete_too() {
        let mut s = HbmStack::new(HbmConfig::tiny());
        s.enqueue(MemAccess { id: 7, addr: 0, write: true }, 0).unwrap();
        let done = run(&mut s, 300);
        assert_eq!(done.len(), 1);
    }
}
