#![warn(missing_docs)]
//! `equinox-hbm` — a bank-level High Bandwidth Memory model.
//!
//! Stands in for the Ramulator integration the paper used (§5): each
//! memory controller owns one HBM *stack* composed of several channels;
//! each channel has banks with open-row state and a shared data bus; the
//! controller schedules requests with FR-FCFS (row hits first, then oldest)
//! — Table 1's configuration.
//!
//! The model is calibrated so a stack sustains HBM2-class bandwidth
//! (256 GB/s, §2.2): 16 channels × one 64 B burst per ~4 controller cycles
//! comfortably exceeds what a single NoC injection router can drain, which
//! is precisely the mismatch EquiNox attacks.
//!
//! # Example
//!
//! ```
//! use equinox_hbm::{HbmConfig, HbmStack, MemAccess};
//!
//! let mut stack = HbmStack::new(HbmConfig::hbm2());
//! stack.enqueue(MemAccess { id: 1, addr: 0x4000, write: false }, 0).unwrap();
//! let mut done = Vec::new();
//! for t in 0..200 {
//!     stack.step(t);
//!     while let Some(c) = stack.pop_completed() {
//!         done.push(c.id);
//!     }
//! }
//! assert_eq!(done, vec![1]);
//! ```

pub mod bank;
pub mod channel;
pub mod config;
pub mod stack;

pub use config::{HbmConfig, HbmTiming};
pub use stack::{Completion, HbmStack, MemAccess};
